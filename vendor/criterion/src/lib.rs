//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace benches
//! use (`Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, the `criterion_group!`/`criterion_main!`
//! macros) on top of a plain wall-clock harness: per benchmark it warms
//! up, auto-calibrates an iteration batch, then reports the median of
//! `sample_size` batch means. No statistics machinery, no HTML reports —
//! just stable, comparable numbers printed to stdout.
//!
//! Output format (one line per benchmark):
//!
//! ```text
//! group/name                     time:   12.345 µs/iter   (thrpt: 1.30 GiB/s)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which this simply forwards to).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement configuration and bench registry.
pub struct Criterion {
    filter: Option<String>,
    /// Measurement time budget per benchmark.
    measurement: Duration,
    warm_up: Duration,
    default_sample_size: usize,
    /// Smoke mode: run each benchmark exactly once, skipping warm-up and
    /// sampling — CI uses it to prove every bench still builds *and runs*
    /// without paying for measurements.
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` (and any user filter words) to
        // harness=false binaries; accept the flags we understand, treat the
        // first free-standing word as a substring filter, ignore the rest.
        let mut filter = None;
        let mut smoke = std::env::var_os("CRITERION_SMOKE").is_some_and(|v| v != "0");
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" => {}
                "--smoke" => smoke = true,
                "--save-baseline" | "--baseline" | "--load-baseline" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s if filter.is_none() => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Self {
            filter,
            measurement: Duration::from_millis(400),
            warm_up: Duration::from_millis(80),
            default_sample_size: 20,
            smoke,
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: None }
    }

    /// Group-less convenience used by some criterion setups.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_string(), f);
        group.finish();
        self
    }
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Shortens the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full =
            if self.name.is_empty() { id.id.clone() } else { format!("{}/{}", self.name, id.id) };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            samples: self.sample_size.unwrap_or(self.criterion.default_sample_size),
            ns_per_iter: None,
            smoke: self.criterion.smoke,
        };
        f(&mut bencher);
        if self.criterion.smoke {
            println!("{full:<44} smoke: ran 1 iteration");
        } else {
            report(&full, bencher.ns_per_iter, self.throughput);
        }
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing happens per benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    ns_per_iter: Option<f64>,
    smoke: bool,
}

impl Bencher {
    /// Measures `f`, storing the median per-iteration time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        if self.smoke {
            // Smoke mode: prove the payload runs, skip all measurement.
            std::hint::black_box(f());
            return;
        }
        // Warm-up: run until the warm-up budget elapses, counting iters to
        // calibrate the batch size.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let warm_elapsed = start.elapsed().as_nanos().max(1) as f64;
        let ns_per_iter_est = warm_elapsed / warm_iters as f64;
        // Batch size: aim for each sample to take measurement/samples.
        let target_ns = self.measurement.as_nanos() as f64 / self.samples as f64;
        let batch = ((target_ns / ns_per_iter_est).ceil() as u64).max(1);
        let mut means: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            means.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        means.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(means[means.len() / 2]);
    }

    /// `iter_batched` compatibility: setup runs outside the timed section.
    pub fn iter_batched<S, T, Sf: FnMut() -> S, F: FnMut(S) -> T>(
        &mut self,
        mut setup: Sf,
        mut f: F,
        _size: BatchSize,
    ) {
        // Simplified: time routine including a fresh setup value per call,
        // subtracting nothing. Adequate for comparative numbers.
        self.iter(|| f(setup()));
    }
}

/// Batch sizing hint (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn report(name: &str, ns: Option<f64>, throughput: Option<Throughput>) {
    let Some(ns) = ns else {
        println!("{name:<44} (no measurement)");
        return;
    };
    let time = human_time(ns);
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let rate = bytes as f64 / (ns * 1e-9);
            println!("{name:<44} time: {time:>12}/iter   thrpt: {}", human_rate(rate, "B/s"));
        }
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{name:<44} time: {time:>12}/iter   thrpt: {}", human_rate(rate, "elem/s"));
        }
        None => println!("{name:<44} time: {time:>12}/iter"),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_s: f64, unit: &str) -> String {
    if per_s >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} Gi{unit}", per_s / (1024.0 * 1024.0 * 1024.0))
    } else if per_s >= 1024.0 * 1024.0 {
        format!("{:.2} Mi{unit}", per_s / (1024.0 * 1024.0))
    } else if per_s >= 1024.0 {
        format!("{:.2} Ki{unit}", per_s / 1024.0)
    } else {
        format!("{per_s:.2} {unit}")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
