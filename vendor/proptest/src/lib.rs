//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_recursive`/
//! `boxed`, range and tuple strategies, `any::<T>()`,
//! `collection::{vec, btree_set}`, the `proptest!`, `prop_oneof!` and
//! `prop_assert*` macros, [`test_runner::ProptestConfig`] and
//! [`test_runner::TestCaseError`].
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — the harness reports the first failing sample
//! as-is. Sampling is deterministic (fixed seed per test function), so
//! failures reproduce across runs; the failure message prints the seed,
//! and setting `PROPTEST_SEED=<u64>` overrides every test function's
//! seed for replay (CI pins one so its proptest runs are reproducible
//! verbatim).

use std::rc::Rc;

pub mod test_runner {
    //! Configuration and failure plumbing.

    /// Per-test configuration. Only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The input was rejected (kept for API compatibility).
        Reject(String),
    }

    impl TestCaseError {
        /// Fails the current case with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }

        /// Rejects the current case with `reason`.
        pub fn reject(reason: impl Into<String>) -> Self {
            Self::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(r) => write!(f, "{r}"),
                Self::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Result type of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG driving strategy sampling.
    pub type TestRng = rand::rngs::StdRng;
}

use test_runner::TestRng;

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// A generator of random values of type `Value`.
///
/// Object safe: `sample` is the only required method; the combinators are
/// `where Self: Sized`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into the next level. `depth` bounds the
    /// recursion; the size parameters are accepted for API compatibility
    /// but not interpreted (each level mixes in leaves with probability
    /// 1/2, which keeps generated values small).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let next = recurse(strat).boxed();
            strat = Union::new(vec![base.clone(), next]).boxed();
        }
        strat
    }
}

/// Type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy mapping values through a function (`Strategy::prop_map`).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one strategy");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        // The closed upper end has measure zero; sampling the half-open
        // range is indistinguishable in practice.
        let (start, end) = (*self.start(), *self.end());
        if start == end {
            return start;
        }
        rng.gen_range(start..end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> Self {
                    use rand::Rng;
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, bool, f64);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; like real proptest, duplicates may make
    /// the generated set smaller than the drawn size.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets of values drawn from `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Best-effort: retry a bounded number of times to reach the
            // drawn size even when the element domain is small.
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 16 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring the real crate layout.
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prelude {
    //! The usual glob import.
    pub use super::arbitrary::any;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror: `prop::collection::vec(...)` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), left, right
        );
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Resolves the RNG seed for one proptest function: the `PROPTEST_SEED`
/// environment variable when set (replay mode — every proptest function
/// in the run uses it, so a failure reproduces with
/// `PROPTEST_SEED=<seed> cargo test <name>`), otherwise a deterministic
/// per-function default derived from the function name.
#[doc(hidden)]
pub fn __resolve_seed(fn_name: &str) -> u64 {
    __resolve_seed_with(fn_name, std::env::var("PROPTEST_SEED").ok().as_deref())
}

/// Pure core of [`__resolve_seed`]: the env override, when present, wins
/// for every function; otherwise the seed derives from the function
/// name. Factored out so it is testable without touching process env
/// (mutating env in a test races the parallel test threads reading it).
#[doc(hidden)]
pub fn __resolve_seed_with(fn_name: &str, env_override: Option<&str>) -> u64 {
    if let Some(var) = env_override {
        match var.trim().parse::<u64>() {
            Ok(seed) => return seed,
            Err(_) => panic!("PROPTEST_SEED must be a u64, got {var:?}"),
        }
    }
    let mut seed: u64 = 0x9E37_79B9;
    for b in fn_name.bytes() {
        seed = seed.wrapping_mul(31).wrapping_add(b as u64);
    }
    seed
}

/// Declares property tests. Each function body runs `config.cases` times
/// with freshly sampled arguments; the first failing sample is reported
/// without shrinking, together with the seed that reproduces it
/// (re-run with `PROPTEST_SEED=<seed>`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Deterministic per-function seed (failures reproduce), or
            // the PROPTEST_SEED override for replaying a failure.
            let seed: u64 = $crate::__resolve_seed(stringify!($name));
            let mut rng: $crate::test_runner::TestRng =
                <$crate::test_runner::TestRng as $crate::__SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match result {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!(
                        "proptest `{}` failed at case #{case} (seed {seed}; replay with \
                         PROPTEST_SEED={seed}): {e}",
                        stringify!($name),
                    ),
                }
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..16, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 16));
        }

        #[test]
        fn tuples_and_any(t in (0u32..2, any::<bool>()), s in any::<u64>()) {
            prop_assert!(t.0 < 2);
            let _ = (t.1, s);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0usize..4).prop_map(|x| x * 2),
            (10usize..12).prop_map(|x| x),
        ]) {
            prop_assert!(v == 0 || v == 2 || v == 4 || v == 6 || v == 10 || v == 11);
        }
    }

    #[test]
    fn seed_resolution_prefers_the_env_override() {
        // Default: deterministic per-name (distinct names, distinct
        // seeds; same name, same seed). Exercised through the pure core
        // so the test neither mutates process env (racy under parallel
        // test threads) nor depends on whether PROPTEST_SEED is set for
        // this run.
        let a = crate::__resolve_seed_with("alpha", None);
        assert_eq!(a, crate::__resolve_seed_with("alpha", None));
        assert_ne!(a, crate::__resolve_seed_with("beta", None));
        // Override: the value wins for every function name; surrounding
        // whitespace is tolerated.
        assert_eq!(crate::__resolve_seed_with("alpha", Some("12345")), 12345);
        assert_eq!(crate::__resolve_seed_with("beta", Some(" 12345\n")), 12345);
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // payload exercises the map strategy, never read back
            Leaf(usize),
            Node(Vec<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(size).sum::<usize>(),
            }
        }
        let strat = (0usize..8).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 2..4).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let t = strat.sample(&mut rng);
            assert!(size(&t) <= 1 + 3 + 9 + 27 + 81, "bounded by construction");
        }
    }
}
