//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The stub traits are markers, so the derives only need the item's name
//! (and generics, if any) to emit an empty `impl`. Parsing is done directly
//! on the token stream — no `syn`/`quote`, which the offline container
//! cannot download.

use proc_macro::{TokenStream, TokenTree};

/// Extracted shape of the derive target: its name and raw generics tokens.
struct Target {
    name: String,
    /// Generic parameter list *without* bounds or defaults, e.g. `<T, 'a>`,
    /// for use in the `impl` header and the type position.
    params: Vec<String>,
}

fn parse_target(input: TokenStream) -> Target {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    iter.next(); // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
    // Expect `struct`/`enum`/`union` then the name.
    match iter.next() {
        Some(TokenTree::Ident(kw))
            if matches!(kw.to_string().as_str(), "struct" | "enum" | "union") => {}
        other => panic!("derive target must be a struct or enum, found {other:?}"),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    // Collect generic parameter names if a `<...>` list follows. Only the
    // parameter identifiers are kept (bounds and defaults are dropped);
    // that is sufficient for an empty marker impl.
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            let mut current = String::new();
            let mut at_param_start = true;
            let mut skipping = false; // inside bounds/defaults of the current param
            while depth > 0 {
                match iter.next() {
                    Some(TokenTree::Punct(p)) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => {
                            if !current.is_empty() {
                                params.push(std::mem::take(&mut current));
                            }
                            at_param_start = true;
                            skipping = false;
                        }
                        ':' | '=' if depth == 1 => skipping = true,
                        '\'' if at_param_start => current.push('\''),
                        _ => {}
                    },
                    Some(TokenTree::Ident(id)) => {
                        if at_param_start && !skipping {
                            // `const N: usize` — keep the N, drop `const`.
                            let s = id.to_string();
                            if s != "const" {
                                current.push_str(&s);
                                at_param_start = false;
                            }
                        }
                    }
                    Some(_) => {}
                    None => panic!("unbalanced generics in derive target"),
                }
            }
            if !current.is_empty() {
                params.push(current);
            }
        }
    }
    Target { name, params }
}

fn empty_impl(trait_path: &str, lifetime: Option<&str>, target: &Target) -> TokenStream {
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(lt) = lifetime {
        impl_params.push(lt.to_string());
    }
    impl_params.extend(target.params.iter().cloned());
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let trait_generics = lifetime.map(|lt| format!("<{lt}>")).unwrap_or_default();
    let ty_generics = if target.params.is_empty() {
        String::new()
    } else {
        format!("<{}>", target.params.join(", "))
    };
    let code = format!(
        "#[automatically_derived] impl{impl_generics} {trait_path}{trait_generics} for {}{ty_generics} {{}}",
        target.name
    );
    code.parse().expect("generated impl must parse")
}

/// Emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    empty_impl("serde::Serialize", None, &target)
}

/// Emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    empty_impl("serde::Deserialize", Some("'de"), &target)
}
