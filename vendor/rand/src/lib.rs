//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! small slice of the rand 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] convenience methods
//! `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across runs and platforms, which is all the simulator's seeded
//! experiments require. Streams are *not* bit-compatible with the real
//! `rand` crate; nothing in this workspace depends on rand's exact stream.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the multiply-shift reduction unbiased.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(span, rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_below(span, rng) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(span, rng) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// The user-facing convenience methods, blanket-implemented over any
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanded through SplitMix64 (the same
    /// construction real rand uses, so small seeds still give well-mixed
    /// state).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            chunk.copy_from_slice(&out.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility: callers wanting a "small" RNG get
    /// the same generator.
    pub type SmallRng = StdRng;
}

/// A thread-local style convenience generator, seeded deterministically
/// (there is no OS entropy source in the build container).
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x5EED_CAFE)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 reachable");
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&x));
        }
        for _ in 0..1000 {
            let x = rng.gen_range(0.3f64..0.9);
            assert!((0.3..0.9).contains(&x));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
