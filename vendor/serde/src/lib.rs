//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types for
//! API compatibility, but never actually serializes anything (there is no
//! `serde_json` or other format crate in the tree). This stub provides the
//! two traits as markers and re-exports no-op derive macros, so the derive
//! annotations compile unchanged in the offline build container. If a real
//! serialization need appears, swap this out for the real crate by editing
//! `[workspace.dependencies]`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

/// Blanket impls for the std types the model types compose, so derived
/// impls never need field-level bounds.
mod impls {
    use super::{Deserialize, Serialize};

    macro_rules! mark {
        ($($t:ty),*) => {$(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*};
    }

    mark!(
        (),
        bool,
        char,
        u8,
        u16,
        u32,
        u64,
        u128,
        usize,
        i8,
        i16,
        i32,
        i64,
        i128,
        isize,
        f32,
        f64,
        String
    );

    impl<T> Serialize for Option<T> {}
    impl<'de, T> Deserialize<'de> for Option<T> {}
    impl<T> Serialize for Vec<T> {}
    impl<'de, T> Deserialize<'de> for Vec<T> {}
    impl<T> Serialize for Box<T> {}
    impl<'de, T> Deserialize<'de> for Box<T> {}
    impl<K, V> Serialize for std::collections::HashMap<K, V> {}
    impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V> {}
    impl<K, V> Serialize for std::collections::BTreeMap<K, V> {}
    impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V> {}
    impl<T> Serialize for std::collections::BTreeSet<T> {}
    impl<'de, T> Deserialize<'de> for std::collections::BTreeSet<T> {}
    impl<A, B> Serialize for (A, B) {}
    impl<'de, A, B> Deserialize<'de> for (A, B) {}
    impl<A, B, C> Serialize for (A, B, C) {}
    impl<'de, A, B, C> Deserialize<'de> for (A, B, C) {}
    impl<T, const N: usize> Serialize for [T; N] {}
    impl<'de, T, const N: usize> Deserialize<'de> for [T; N] {}
}
