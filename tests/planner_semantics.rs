//! Property-based verification that compiled MWS programs compute the
//! same function as direct expression evaluation — the planner's
//! correctness contract, checked by executing every generated program on
//! the functional chip model.

use fc_bits::BitVec;
use fc_nand::chip::NandChip;
use fc_nand::command::Command;
use fc_nand::config::ChipConfig;
use fc_nand::geometry::WlAddr;
use flash_cosmos::planner::{self, PlacementMap, PlannerCaps};
use flash_cosmos::{Expr, FlashCosmosDevice, StoreHints};
use proptest::prelude::*;

const PAGE_BITS: usize = 256;

/// Generates random expressions over `n` operands with limited depth so
/// they stay within the planner's supported shapes (AND/OR/NOT trees).
fn arb_expr(n: usize) -> impl Strategy<Value = Expr> {
    let leaf = (0..n).prop_map(Expr::var);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::and),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::or),
            inner.prop_map(Expr::not),
        ]
    })
}

/// Executes a compiled program on a chip pre-loaded with `vectors`
/// according to `layout` (operand i → block/wl/inverted).
fn run_program(vectors: &[BitVec], layout: &[(u32, u32, bool)], expr: &Expr) -> Option<BitVec> {
    let mut cfg = ChipConfig::tiny_test();
    cfg.geometry.page_bytes = (PAGE_BITS / 8) as u32;
    let mut chip = NandChip::new(cfg);
    let mut placements = PlacementMap::new();
    for (i, &(block, wl, inverted)) in layout.iter().enumerate() {
        let stored = if inverted { vectors[i].not() } else { vectors[i].clone() };
        chip.execute(Command::esp_program(WlAddr::new(0, block, wl), stored)).unwrap();
        placements.insert(i, WlAddr::new(0, block, wl), inverted);
    }
    let caps = PlannerCaps { max_inter_blocks: 4, wls_per_block: 8 };
    let program = planner::compile(&expr.to_nnf(), &placements, caps).ok()?;
    let mut last = None;
    for cmd in &program.commands {
        last = chip.execute(cmd.clone()).unwrap().into_page();
    }
    let page = last.expect("programs end with a transfer");
    Some(if program.controller_not { page.not() } else { page })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whatever the planner accepts, it must compute exactly.
    #[test]
    fn compiled_programs_match_reference_eval(
        expr in arb_expr(6),
        seed in any::<u64>(),
        inverted_mask in 0u8..64,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let vectors: Vec<BitVec> =
            (0..6).map(|_| BitVec::random(PAGE_BITS, &mut rng)).collect();
        // Operands spread over 3 blocks, 2 wordlines each; random
        // inversion decisions exercise the polarity logic.
        let layout: Vec<(u32, u32, bool)> = (0..6)
            .map(|i| ((i / 2) as u32, (i % 2) as u32, inverted_mask & (1 << i) != 0))
            .collect();
        if let Some(result) = run_program(&vectors, &layout, &expr) {
            let lookup = |i: usize| vectors[i].clone();
            prop_assert_eq!(result, expr.eval(&lookup), "expr {}", expr);
        }
        // Planner rejections are acceptable (layout-dependent); silently
        // wrong answers are not.
    }

    /// NNF normalization preserves semantics for arbitrary expressions.
    #[test]
    fn nnf_preserves_semantics(expr in arb_expr(5), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let vectors: Vec<BitVec> =
            (0..5).map(|_| BitVec::random(128, &mut rng)).collect();
        let lookup = |i: usize| vectors[i].clone();
        prop_assert_eq!(expr.to_nnf().eval(&lookup), expr.eval(&lookup));
    }

    /// The device API computes any accepted expression exactly, for
    /// arbitrary grouping choices.
    #[test]
    fn device_reads_match_reference(
        expr in arb_expr(5),
        seed in any::<u64>(),
        grouping in prop::collection::vec(0u8..3, 5),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let dev = FlashCosmosDevice::new(fc_ssd::SsdConfig::tiny_test());
        let vectors: Vec<BitVec> =
            (0..5).map(|_| BitVec::random(600, &mut rng)).collect();
        for (i, v) in vectors.iter().enumerate() {
            dev.fc_write(
                &format!("v{i}"),
                v,
                StoreHints::and_group(&format!("g{}", grouping[i])),
            )
            .unwrap();
        }
        match dev.fc_read(&expr) {
            Ok((result, _)) => {
                let lookup = |i: usize| vectors[i].clone();
                prop_assert_eq!(result, expr.eval(&lookup), "expr {}", expr);
            }
            Err(flash_cosmos::device::FcError::Plan(_)) => {
                // Layout-dependent rejection: fine.
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
        }
    }

    /// ParaBit and Flash-Cosmos agree wherever both accept the shape.
    #[test]
    fn parabit_agrees_with_flash_cosmos(
        n_and in 1usize..6,
        n_or in 1usize..4,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let total = n_and + n_or;
        let dev = FlashCosmosDevice::new(fc_ssd::SsdConfig::tiny_test());
        let vectors: Vec<BitVec> =
            (0..total).map(|_| BitVec::random(300, &mut rng)).collect();
        for (i, v) in vectors.iter().enumerate() {
            let group = if i < n_and { "and" } else { "or" };
            dev.fc_write(&format!("v{i}"), v, StoreHints::and_group(&format!("{group}{i}")))
                .unwrap();
        }
        // (v0 & .. & v_{n_and-1}) | v_{n_and} | ... — a DNF both support.
        let mut children = vec![Expr::and_vars(0..n_and)];
        children.extend((n_and..total).map(Expr::var));
        let expr = Expr::or(children);
        let fc = dev.fc_read(&expr);
        let pb = dev.parabit_read(&expr);
        if let (Ok((fc_res, fc_stats)), Ok((pb_res, pb_stats))) = (fc, pb) {
            prop_assert_eq!(&fc_res, &pb_res);
            let lookup = |i: usize| vectors[i].clone();
            prop_assert_eq!(fc_res, expr.eval(&lookup));
            prop_assert!(fc_stats.senses <= pb_stats.senses);
        }
    }
}
