//! The channel/cluster scale-out path, end to end: operands spread
//! channel-first across a multi-channel device answer cross-channel
//! batches bit-exactly, and the multi-shard router ([`FcCluster`])
//! preserves batch ≡ serial ≡ ground-truth equivalence for random
//! cross-shard expressions — including `fc_overwrite` interleaving
//! through the router between submissions.

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use flash_cosmos::cluster::FcCluster;
use flash_cosmos::{Expr, FlashCosmosDevice, QueryBatch, StoreHints};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 4-channel single-die-per-channel geometry: every die is its own
/// channel, so group spreading is channel spreading.
fn four_channel_config() -> SsdConfig {
    let mut cfg = SsdConfig::tiny_test();
    cfg.channels = 4;
    cfg.dies_per_channel = 1;
    cfg
}

/// Builds a random expression over the given operand ids (cluster ids
/// and device ids share the `usize` shape).
fn random_expr(rng: &mut StdRng, ids: &[usize], depth: usize) -> Expr {
    let leaf = |rng: &mut StdRng| Expr::var(ids[rng.gen_range(0..ids.len())]);
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..6) {
        0 | 1 => {
            let k = rng.gen_range(2..=ids.len().min(4));
            let start = rng.gen_range(0..=ids.len() - k);
            let children: Vec<Expr> = ids[start..start + k].iter().map(|&i| Expr::var(i)).collect();
            if rng.gen_bool(0.5) {
                Expr::and(children)
            } else {
                Expr::or(children)
            }
        }
        2 => Expr::or(vec![random_expr(rng, ids, depth - 1), random_expr(rng, ids, depth - 1)]),
        3 => Expr::and(vec![random_expr(rng, ids, depth - 1), random_expr(rng, ids, depth - 1)]),
        4 => Expr::not(random_expr(rng, ids, depth - 1)),
        _ => leaf(rng),
    }
}

/// A batch whose queries combine groups homed on different channels
/// answers bit-exactly, and the channel lane sees the output transfers.
#[test]
fn cross_channel_batch_is_bit_exact() {
    let dev = FlashCosmosDevice::new(four_channel_config());
    let bits = dev.config().page_bits();
    let mut rng = StdRng::seed_from_u64(0xC4A7);
    let vectors: Vec<BitVec> = (0..8).map(|_| BitVec::random(bits, &mut rng)).collect();
    // One group per operand: channel-first placement spreads them over
    // all four channels before reusing a die.
    let ids: Vec<usize> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| {
            dev.fc_write(&format!("v{i}"), v, StoreHints::and_group(&format!("solo{i}")))
                .unwrap()
                .id
        })
        .collect();

    let mut batch = QueryBatch::new();
    // Adjacent operand indices land on different channels under the
    // channel-first rotation, so every query spans channels.
    batch.push(Expr::and(vec![Expr::var(ids[0]), Expr::var(ids[1]), Expr::var(ids[2])]));
    batch.push(Expr::or(vec![Expr::var(ids[3]), Expr::var(ids[4])]));
    batch.push(Expr::xor(Expr::var(ids[5]), Expr::var(ids[6])));
    batch.push(Expr::and(vec![Expr::var(ids[7]), Expr::not(Expr::var(ids[0]))]));

    let out = dev.submit(&batch).unwrap();
    assert!(out.failures.is_empty());
    let lookup = |i: usize| vectors[i].clone();
    for (q, expr) in batch.queries().iter().enumerate() {
        assert_eq!(out.results[q], expr.eval(&lookup), "query {q} diverged");
    }
    assert!(out.stats.busiest_channel_us > 0.0, "output transfers must occupy the channel lane");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The router preserves batch ≡ serial ≡ ground truth for random
    /// cross-shard expressions, and `fc_overwrite` through the router
    /// between submissions is observed by the very next batch.
    #[test]
    fn cross_shard_batch_matches_serial_and_eval(seed in any::<u64>()) {
        let mut cluster = FcCluster::new(SsdConfig::tiny_test(), 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let bits = 256; // one tiny-geometry stripe per shard
        let mut vectors: Vec<BitVec> = (0..8).map(|_| BitVec::random(bits, &mut rng)).collect();
        let ids: Vec<usize> = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                cluster
                    .fc_write(&format!("v{i}"), v, StoreHints::and_group(&format!("solo{i}")))
                    .unwrap()
                    .id
            })
            .collect();
        // The rendezvous hash should scatter 8 names over 3 shards.
        let homes: std::collections::BTreeSet<usize> =
            (0..8).map(|i| cluster.home_shard(&format!("v{i}"))).collect();
        prop_assert!(homes.len() >= 2, "operands all homed on one shard");

        let queries: Vec<Expr> = (0..5).map(|_| random_expr(&mut rng, &ids, 2)).collect();
        let lookup = |vs: &[BitVec]| {
            let vs = vs.to_vec();
            move |i: usize| vs[i].clone()
        };

        // Serial pass: each query alone through the router.
        let mut serial = Vec::new();
        for e in &queries {
            let (r, _) = cluster.fc_read(e).unwrap();
            prop_assert_eq!(&r, &e.eval(&lookup(&vectors)), "serial diverged from eval on {}", e);
            serial.push(r);
        }

        // Batched pass: one cross-shard submission.
        let batch: QueryBatch = queries.iter().cloned().collect();
        let out = cluster.submit(&batch).unwrap();
        prop_assert!(out.failures.is_empty());
        for (qi, s) in serial.iter().enumerate() {
            prop_assert_eq!(&out.results[qi], s, "query {} diverged from serial", qi);
        }
        prop_assert_eq!(out.stats.per_shard.len(), 3);

        // Overwrite interleaving: mutate random operands through the
        // router; the next submission must serve the fresh data.
        for _ in 0..2 {
            let victim = rng.gen_range(0..ids.len());
            let fresh = BitVec::random(bits, &mut rng);
            cluster.fc_overwrite(&format!("v{victim}"), &fresh).unwrap();
            vectors[victim] = fresh;
            let out = cluster.submit(&batch).unwrap();
            prop_assert!(out.failures.is_empty());
            for (qi, e) in batch.queries().iter().enumerate() {
                prop_assert_eq!(
                    &out.results[qi],
                    &e.eval(&lookup(&vectors)),
                    "post-overwrite query {} diverged",
                    qi
                );
            }
        }
    }
}
