//! Batched query sessions end to end: a [`QueryBatch`] submitted through
//! the full stack (FTL placement → joint planner → chip MWS → result
//! assembly) returns bit-exact the same vectors as serial `fc_read`
//! calls, while the joint plan saves senses whenever queries overlap.

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use flash_cosmos::{Expr, FlashCosmosDevice, QueryBatch, StoreHints};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn device() -> FlashCosmosDevice {
    FlashCosmosDevice::new(SsdConfig::tiny_test())
}

/// Stores `n` random vectors in one placement group, returning their ids.
fn store_group(
    dev: &mut FlashCosmosDevice,
    n: usize,
    bits: usize,
    group: &str,
    or_group: bool,
    rng: &mut StdRng,
) -> Vec<usize> {
    (0..n)
        .map(|i| {
            let v = BitVec::random(bits, rng);
            let hints =
                if or_group { StoreHints::or_group(group) } else { StoreHints::and_group(group) };
            dev.fc_write(&format!("{group}-{i}"), &v, hints).unwrap().id
        })
        .collect()
}

/// The ISSUE acceptance criterion: a batch of N ≥ 4 AND queries over
/// operands in one sense group completes with fewer total senses than N
/// serial `fc_read` calls, with bit-exact results, asserted via
/// `BatchStats`.
#[test]
fn same_group_and_batch_beats_serial_senses() {
    let mut dev = device();
    // This test measures the joint *planner* against a genuinely serial
    // reference, so the cross-batch result cache (which would answer the
    // repeated fc_reads for free) is disabled.
    dev.set_result_cache_capacity(0);
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let ids = store_group(&mut dev, 6, 700, "g", false, &mut rng);

    // Six AND queries over the group; a production bitmap-index batch
    // repeats popular filters, here as reorderings and duplicates of the
    // same conjunctions.
    let queries = vec![
        Expr::and_vars(ids.iter().copied()),
        Expr::and_vars(ids.iter().rev().copied()), // same function, reordered
        Expr::and_vars(ids[..3].iter().copied()),
        Expr::and_vars(ids[..3].iter().rev().copied()), // dup of the above
        Expr::and_vars(ids[2..].iter().copied()),
        Expr::and_vars(ids.iter().copied()), // straight duplicate
    ];
    let n = queries.len();
    assert!(n >= 4);

    // Serial reference: N independent fc_read calls.
    let mut serial_results = Vec::new();
    let mut serial_senses = 0;
    for q in &queries {
        let (r, s) = dev.fc_read(q).unwrap();
        serial_results.push(r);
        serial_senses += s.senses;
    }

    let batch: QueryBatch = queries.iter().cloned().collect();
    let out = dev.submit(&batch).unwrap();

    for (qi, serial) in serial_results.iter().enumerate() {
        assert_eq!(&out.results[qi], serial, "query {qi} must be bit-exact vs serial");
    }
    assert_eq!(out.stats.serial_senses, serial_senses, "stats must model the serial cost");
    assert!(
        out.stats.senses < serial_senses,
        "joint plan must save senses: {} vs {serial_senses}",
        out.stats.senses
    );
    assert_eq!(out.stats.senses_saved(), serial_senses - out.stats.senses);
    assert_eq!(out.stats.deduped_queries, 3);
    assert!(out.stats.critical_path_us <= out.stats.chip_time_us);
    assert_stats_finite(&out.stats);
}

/// Every aggregate and per-query stat must be finite — the amortization
/// split divides by the consumer count, which must never reach zero (a
/// unit with no consumers would otherwise yield `inf` shares).
fn assert_stats_finite(stats: &flash_cosmos::BatchStats) {
    assert!(stats.chip_time_us.is_finite());
    assert!(stats.critical_path_us.is_finite());
    assert!(stats.energy_uj.is_finite());
    let mut senses = 0.0;
    for (qi, q) in stats.per_query.iter().enumerate() {
        assert!(q.senses.is_finite(), "query {qi} senses not finite: {}", q.senses);
        assert!(q.chip_time_us.is_finite(), "query {qi} time not finite: {}", q.chip_time_us);
        assert!(q.energy_uj.is_finite(), "query {qi} energy not finite: {}", q.energy_uj);
        senses += q.senses;
    }
    // The per-query split must also re-sum to the executed totals.
    assert!(
        (senses - stats.senses as f64).abs() < 1e-9,
        "per-query senses {senses} must sum to {}",
        stats.senses
    );
}

/// Builds a random plannable expression over the stored operand table.
fn random_expr(rng: &mut StdRng, and_ids: &[usize], or_ids: &[usize], depth: usize) -> Expr {
    let leaf = |rng: &mut StdRng| {
        let all = [and_ids, or_ids].concat();
        Expr::var(all[rng.gen_range(0..all.len())])
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..6) {
        0 => {
            // AND over a random slice of the co-located AND group.
            let k = rng.gen_range(2..=and_ids.len());
            let start = rng.gen_range(0..=and_ids.len() - k);
            Expr::and_vars(and_ids[start..start + k].iter().copied())
        }
        1 => {
            // OR over a random slice of the inverse-stored OR group.
            let k = rng.gen_range(2..=or_ids.len());
            let start = rng.gen_range(0..=or_ids.len() - k);
            Expr::or_vars(or_ids[start..start + k].iter().copied())
        }
        2 => Expr::or(vec![
            random_expr(rng, and_ids, or_ids, depth - 1),
            random_expr(rng, and_ids, or_ids, depth - 1),
        ]),
        3 => Expr::not(random_expr(rng, and_ids, or_ids, depth - 1)),
        4 => Expr::xor(leaf(rng), leaf(rng)),
        _ => leaf(rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A shuffled batch of random expressions returns bit-exact the same
    /// results as serial `fc_read` calls, and never costs more senses.
    #[test]
    fn shuffled_batch_matches_serial(seed in any::<u64>()) {
        let mut dev = device();
        // Serial-reference test: keep the result cache out of the picture
        // (it would answer repeated fc_reads without sensing).
        dev.set_result_cache_capacity(0);
        let mut rng = StdRng::seed_from_u64(seed);
        let and_ids = store_group(&mut dev, 5, 300, "ands", false, &mut rng);
        let or_ids = store_group(&mut dev, 4, 300, "ors", true, &mut rng);

        // Generate candidate queries, keeping the ones the serial path
        // can plan (the batch must match serial on exactly those).
        let mut queries = Vec::new();
        let mut serial_results = Vec::new();
        let mut serial_senses = 0;
        while queries.len() < 8 {
            let e = random_expr(&mut rng, &and_ids, &or_ids, 2);
            match dev.fc_read(&e) {
                Ok((r, s)) => {
                    queries.push(e);
                    serial_results.push(r);
                    serial_senses += s.senses;
                }
                Err(_) => continue,
            }
        }

        // Shuffle the submission order (Fisher–Yates).
        let mut order: Vec<usize> = (0..queries.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let batch: QueryBatch = order.iter().map(|&i| queries[i].clone()).collect();
        let out = dev.submit(&batch).unwrap();

        for (pos, &qi) in order.iter().enumerate() {
            prop_assert_eq!(
                &out.results[pos],
                &serial_results[qi],
                "query {} (batch slot {}) diverged from serial",
                qi,
                pos
            );
        }
        prop_assert_eq!(out.stats.serial_senses, serial_senses);
        prop_assert!(out.stats.senses <= serial_senses,
            "joint plan must never cost extra senses: {} vs {}", out.stats.senses, serial_senses);
        let finite = out.stats.per_query.iter()
            .all(|q| q.senses.is_finite() && q.chip_time_us.is_finite() && q.energy_uj.is_finite());
        prop_assert!(finite, "per-query stats must stay finite");
    }
}

/// Mixed-size batches assemble each query at its own length.
#[test]
fn mixed_size_batch_end_to_end() {
    let dev = device();
    let mut rng = StdRng::seed_from_u64(0x517E);
    let long: Vec<BitVec> = (0..3).map(|_| BitVec::random(1500, &mut rng)).collect();
    let short: Vec<BitVec> = (0..2).map(|_| BitVec::random(120, &mut rng)).collect();
    let long_ids: Vec<usize> = long
        .iter()
        .enumerate()
        .map(|(i, v)| dev.fc_write(&format!("l{i}"), v, StoreHints::and_group("L")).unwrap().id)
        .collect();
    let short_ids: Vec<usize> = short
        .iter()
        .enumerate()
        .map(|(i, v)| dev.fc_write(&format!("s{i}"), v, StoreHints::or_group("S")).unwrap().id)
        .collect();
    let mut batch = QueryBatch::new();
    batch.push(Expr::and_vars(long_ids.iter().copied()));
    batch.push(Expr::or_vars(short_ids.iter().copied()));
    batch.push(Expr::nand(long_ids.iter().map(|&i| Expr::var(i)).collect()));
    let out = dev.submit(&batch).unwrap();
    assert_eq!(out.results[0], long[0].and(&long[1]).and(&long[2]));
    assert_eq!(out.results[1], short[0].or(&short[1]));
    assert_eq!(out.results[2], long[0].and(&long[1]).and(&long[2]).not());
    assert_eq!(out.results[0].len(), 1500);
    assert_eq!(out.results[1].len(), 120);
}
