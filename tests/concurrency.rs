//! Multi-threaded serving: N OS threads hammer one shared
//! `Arc<FlashCosmosDevice>` with interleaved `submit_async` / `wait` /
//! `fc_overwrite` / `drain` traffic and every thread's results must stay
//! bit-exact against (a) a software fold model and (b) a single-threaded
//! replay of the identical schedule on a fresh device — plus a clean
//! `fc_audit` device pass at the default `Deny` ruleset afterwards.
//!
//! Schedules are generated up front from a pinned seed
//! (`PROPTEST_SEED` env override, decimal or `0x`-hex), so a CI failure
//! reproduces with `PROPTEST_SEED=<seed> cargo test --test concurrency`.

use std::sync::Arc;
use std::thread;

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use flash_cosmos::{Expr, FcError, FlashCosmosDevice, QueryBatch, StoreHints};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 6;
const ROUNDS: usize = 10;

/// Pinned default, overridable via `PROPTEST_SEED` (the same variable
/// the proptest suites replay from, so the CI jobs pin one value).
fn seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => {
            let s = s.trim();
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| s.parse())
                .unwrap_or_else(|_| panic!("unparseable PROPTEST_SEED {s:?}"))
        }
        Err(_) => 0xC0_5E_47_11,
    }
}

/// One step of a worker thread's program order. Disjoint operand sets
/// per thread mean cross-thread interleavings can reorder *device*
/// work freely without changing any thread's observable results.
enum Step {
    /// AND query batch over the thread's own operands (by local index).
    Submit(Vec<Vec<usize>>),
    /// Overwrite own operand `idx` with `data` (model updated in step).
    Overwrite(usize, BitVec),
    /// Explicit drain pass (on top of the drains `wait` issues).
    Drain,
}

/// The full deterministic schedule for one thread. Submissions always
/// complete (`wait`) before the thread's own overwrites run, so each
/// query's expected bits follow from the thread-local model alone.
fn schedule(thread: usize, seed: u64, page_bits: usize) -> Vec<Step> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(thread as u64 + 1));
    let mut steps = Vec::new();
    for round in 0..ROUNDS {
        let queries = (0..2 + round % 3)
            .map(|_| {
                let k = rng.gen_range(2..=OPS_PER_THREAD);
                let mut subset: Vec<usize> = (0..OPS_PER_THREAD).collect();
                for i in (1..subset.len()).rev() {
                    subset.swap(i, rng.gen_range(0..=i));
                }
                subset.truncate(k);
                subset
            })
            .collect();
        steps.push(Step::Submit(queries));
        if round % 3 == 1 {
            let idx = rng.gen_range(0..OPS_PER_THREAD);
            steps.push(Step::Overwrite(idx, BitVec::random(page_bits, &mut rng)));
        }
        if round % 4 == 3 {
            steps.push(Step::Drain);
        }
    }
    steps
}

/// Stores every thread's operand set (thread `t` owns AND group `t<t>`)
/// in a fixed order so the shared device and the single-threaded replay
/// device assign identical operand ids.
fn store_all(dev: &FlashCosmosDevice, seed: u64) -> Vec<(Vec<usize>, Vec<BitVec>)> {
    let bits = dev.config().page_bits();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..THREADS)
        .map(|t| {
            let mut ids = Vec::new();
            let mut data = Vec::new();
            for i in 0..OPS_PER_THREAD {
                let v = BitVec::random(bits, &mut rng);
                let hints = StoreHints::and_group(&format!("t{t}"));
                ids.push(dev.fc_write(&format!("t{t}-{i}"), &v, hints).unwrap().id);
                data.push(v);
            }
            (ids, data)
        })
        .collect()
}

/// Runs one thread's schedule against `dev`, keeping the thread-local
/// bit model current, asserting every batch result against it, and
/// returning the raw result vectors for cross-run comparison.
fn run_schedule(
    dev: &FlashCosmosDevice,
    thread: usize,
    ids: &[usize],
    model: &mut [BitVec],
    steps: &[Step],
) -> Vec<BitVec> {
    let mut observed = Vec::new();
    for step in steps {
        match step {
            Step::Submit(queries) => {
                let batch: QueryBatch = queries
                    .iter()
                    .map(|subset| Expr::and_vars(subset.iter().map(|&i| ids[i])))
                    .collect();
                let ticket = loop {
                    match dev.submit_async(&batch) {
                        Ok(t) => break t,
                        // Backpressure, not failure: drain the queue we
                        // (collectively) filled and resubmit.
                        Err(FcError::Overloaded { queued }) => {
                            assert!(queued > 0, "Overloaded with an empty queue");
                            dev.drain().unwrap();
                        }
                        Err(e) => panic!("submit_async failed: {e}"),
                    }
                };
                let got = ticket.wait(dev).unwrap();
                for (q, subset) in queries.iter().enumerate() {
                    let expect =
                        BitVec::and_fold(&subset.iter().map(|&i| &model[i]).collect::<Vec<_>>());
                    assert_eq!(
                        got.results[q], expect,
                        "thread {thread}: query {q} diverged from the bit model"
                    );
                }
                observed.extend(got.results);
            }
            Step::Overwrite(idx, data) => {
                dev.fc_overwrite(&format!("t{thread}-{idx}"), data).unwrap();
                model[*idx] = data.clone();
            }
            Step::Drain => {
                dev.drain().unwrap();
            }
        }
    }
    observed
}

/// Tentpole acceptance: 4 threads × 10 rounds of interleaved
/// submit/wait/overwrite/drain on one shared device are bit-exact
/// against the software model *and* against a single-threaded replay of
/// the same schedules, and the post-run `fc_audit` device pass is
/// finding-free at `Deny` (which also means every debug-build drain
/// audit along the way stayed silent — a finding panics the worker).
#[test]
fn concurrent_serving_is_bit_exact_and_audit_clean() {
    let seed = seed();
    let dev = Arc::new(FlashCosmosDevice::new(SsdConfig::tiny_test()));
    let page_bits = dev.config().page_bits();
    let operands = store_all(&dev, seed);

    let concurrent: Vec<Vec<BitVec>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let dev = Arc::clone(&dev);
                let (ids, data) = operands[t].clone();
                scope.spawn(move || {
                    let steps = schedule(t, seed, page_bits);
                    let mut model = data;
                    run_schedule(&dev, t, &ids, &mut model, &steps)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    // Settle any still-queued work, then the full device audit: the
    // default ruleset is Deny, and a healthy device reports nothing.
    dev.drain().unwrap();
    let findings = dev.audit();
    assert!(findings.is_empty(), "device audit after concurrent serving: {findings:?}");

    // Single-threaded ground truth: identical stores + schedules on a
    // fresh device, threads replayed back to back on one thread.
    let reference = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let ref_operands = store_all(&reference, seed);
    for (t, concurrent_results) in concurrent.iter().enumerate() {
        let steps = schedule(t, seed, page_bits);
        let (ids, data) = ref_operands[t].clone();
        let mut model = data;
        let serial = run_schedule(&reference, t, &ids, &mut model, &steps);
        assert_eq!(
            concurrent_results, &serial,
            "thread {t}: concurrent results diverged from the single-threaded replay"
        );
    }
    assert!(reference.audit().is_empty());
}

/// The admission queue is bounded: past capacity `submit_async` fails
/// fast with the typed `FcError::Overloaded { queued }` load signal
/// instead of queueing without limit, and a drain reopens admission.
#[test]
fn admission_queue_is_bounded_and_reopens_after_drain() {
    let mut rng = StdRng::seed_from_u64(seed());
    let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let bits = dev.config().page_bits();
    let ids: Vec<usize> = (0..2)
        .map(|i| {
            let v = BitVec::random(bits, &mut rng);
            dev.fc_write(&format!("b{i}"), &v, StoreHints::and_group("b")).unwrap().id
        })
        .collect();
    let batch: QueryBatch = std::iter::once(Expr::and_vars(ids.iter().copied())).collect();

    dev.set_admission_capacity(3);
    let tickets: Vec<_> = (0..3).map(|_| dev.submit_async(&batch).unwrap()).collect();
    match dev.submit_async(&batch) {
        Err(FcError::Overloaded { queued }) => assert_eq!(queued, 3),
        other => panic!("expected Overloaded at capacity, got {other:?}"),
    }
    // Still exactly at the bound — the rejected submission queued nothing.
    assert_eq!(dev.session().in_flight(), 3);

    dev.drain().unwrap();
    let reopened = dev.submit_async(&batch).unwrap();
    for t in tickets {
        assert_eq!(t.wait(&dev).unwrap().results.len(), 1);
    }
    assert_eq!(reopened.wait(&dev).unwrap().results.len(), 1);
}

/// Contended backpressure: more threads than queue slots, each retrying
/// `Overloaded` rejections by draining. Every admitted batch retires
/// exactly once with correct bits, and the retire counter balances.
#[test]
fn overloaded_retries_never_lose_or_duplicate_batches() {
    let mut rng = StdRng::seed_from_u64(seed() ^ 0xBEEF);
    let dev = Arc::new(FlashCosmosDevice::new(SsdConfig::tiny_test()));
    let bits = dev.config().page_bits();
    let mut data = Vec::new();
    let ids: Vec<usize> = (0..3)
        .map(|i| {
            let v = BitVec::random(bits, &mut rng);
            let id = dev.fc_write(&format!("c{i}"), &v, StoreHints::and_group("c")).unwrap().id;
            data.push(v);
            id
        })
        .collect();
    let expect = BitVec::and_fold(&data.iter().collect::<Vec<_>>());
    dev.set_admission_capacity(2);

    const PER_THREAD: usize = 8;
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let dev = Arc::clone(&dev);
            let batch: QueryBatch = std::iter::once(Expr::and_vars(ids.iter().copied())).collect();
            let expect = expect.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    let ticket = loop {
                        match dev.submit_async(&batch) {
                            Ok(t) => break t,
                            Err(FcError::Overloaded { queued }) => {
                                assert!(queued <= 2, "queue exceeded its bound: {queued}");
                                dev.drain().unwrap();
                            }
                            Err(e) => panic!("submit_async failed: {e}"),
                        }
                    };
                    let got = ticket.wait(&dev).unwrap();
                    assert_eq!(got.results, vec![expect.clone()]);
                }
            });
        }
    });
    // Every admitted batch was redeemed by exactly one wait (each loop
    // iteration above consumed its own ticket), so the session ends
    // fully settled: nothing in flight, nothing left unclaimed.
    assert_eq!(dev.session().in_flight(), 0);
    assert_eq!(dev.session().retired(), 0);
    assert!(dev.audit().is_empty());
}
