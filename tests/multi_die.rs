//! Die-aware placement and cross-die execution, end to end: distinct
//! placement groups spread across dies, a batch of independent queries
//! senses on several dies concurrently (critical path < chip time), and
//! a query whose operands span dies still answers bit-exactly via the
//! controller merge instead of failing with `PlaneMismatch`.

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use flash_cosmos::{Expr, FlashCosmosDevice, QueryBatch, StoreHints};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn device() -> FlashCosmosDevice {
    FlashCosmosDevice::new(SsdConfig::tiny_test())
}

/// Stores `groups` placement groups of `per_group` single-stripe vectors
/// each; returns (per-group operand ids, the vectors).
fn store_spread(
    dev: &mut FlashCosmosDevice,
    groups: usize,
    per_group: usize,
    die: Option<usize>,
    rng: &mut StdRng,
) -> (Vec<Vec<usize>>, Vec<Vec<BitVec>>) {
    let bits = dev.config().page_bits(); // single stripe
    let mut ids = Vec::new();
    let mut data = Vec::new();
    for g in 0..groups {
        let mut hints = StoreHints::and_group(&format!("g{g}"));
        if let Some(d) = die {
            hints = hints.with_die(d);
        }
        let vs: Vec<BitVec> = (0..per_group).map(|_| BitVec::random(bits, rng)).collect();
        let gids: Vec<usize> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| dev.fc_write(&format!("g{g}-{i}"), v, hints.clone()).unwrap().id)
            .collect();
        ids.push(gids);
        data.push(vs);
    }
    (ids, data)
}

/// The ISSUE acceptance criterion: a single-stripe batch of ≥8
/// independent queries on the tiny geometry (8 planes, 4 dies) executes
/// across ≥2 dies with `critical_path_us < chip_time_us`, bit-exactly.
#[test]
fn single_stripe_batch_spans_dies() {
    let mut dev = device();
    let mut rng = StdRng::seed_from_u64(0xD1E5);
    let (ids, data) = store_spread(&mut dev, 8, 2, None, &mut rng);

    let batch: QueryBatch = ids.iter().map(|g| Expr::and_vars(g.iter().copied())).collect();
    assert!(batch.len() >= 8);
    let out = dev.submit(&batch).unwrap();

    for (g, vs) in data.iter().enumerate() {
        assert_eq!(out.results[g], vs[0].and(&vs[1]), "query {g} must be bit-exact");
    }
    assert!(out.stats.dies_used >= 2, "work must span dies, used {}", out.stats.dies_used);
    assert_eq!(out.stats.dies_used, 4, "8 groups on tiny cover all 4 dies");
    assert!(
        out.stats.critical_path_us < out.stats.chip_time_us,
        "die parallelism must shorten the critical path: {} vs {}",
        out.stats.critical_path_us,
        out.stats.chip_time_us
    );
}

/// The die-0-serialized baseline (every group pinned to die 0) is ≥2×
/// slower on the critical path than die-aware placement for the same
/// 8-query batch — the bug this PR fixes made *every* batch behave like
/// the pinned one.
#[test]
fn die_aware_critical_path_beats_die0_serialization() {
    let run = |die: Option<usize>| {
        let mut dev = device();
        let mut rng = StdRng::seed_from_u64(0xD1E6);
        let (ids, data) = store_spread(&mut dev, 8, 2, die, &mut rng);
        let batch: QueryBatch = ids.iter().map(|g| Expr::and_vars(g.iter().copied())).collect();
        let out = dev.submit(&batch).unwrap();
        for (g, vs) in data.iter().enumerate() {
            assert_eq!(out.results[g], vs[0].and(&vs[1]));
        }
        out.stats
    };
    let spread = run(None);
    let pinned = run(Some(0));
    assert_eq!(pinned.dies_used, 1, "pinned baseline serializes on die 0");
    assert_eq!(spread.senses, pinned.senses, "placement must not change sense counts");
    assert!(
        pinned.critical_path_us >= 2.0 * spread.critical_path_us,
        "die-aware placement must be ≥2× better on critical path: {} vs {}",
        spread.critical_path_us,
        pinned.critical_path_us
    );
}

/// A query whose operands live on different dies returns the correct
/// result (per-die programs + controller merge) for every operator
/// shape, instead of `PlanError::PlaneMismatch`.
#[test]
fn cross_die_queries_answer_exactly() {
    let dev = device();
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let bits = 700; // 3 stripes
    let a = BitVec::random(bits, &mut rng);
    let b = BitVec::random(bits, &mut rng);
    let ha = dev.fc_write("a", &a, StoreHints::and_group("ga")).unwrap();
    let hb = dev.fc_write("b", &b, StoreHints::and_group("gb")).unwrap();
    assert_ne!(
        dev.operand_dies(ha.id).unwrap()[0],
        dev.operand_dies(hb.id).unwrap()[0],
        "distinct groups land on distinct dies"
    );
    let cases: Vec<(Expr, BitVec)> = vec![
        (ha & hb, a.and(&b)),
        (ha | hb, a.or(&b)),
        (ha ^ hb, a.xor(&b)),
        (!(ha & hb), a.and(&b).not()),
        (!(ha | hb), a.or(&b).not()),
        (Expr::xnor(ha.into(), hb.into()), a.xor(&b).not()),
    ];
    for (expr, expect) in cases {
        let (result, stats) = dev.fc_read(&expr).unwrap();
        assert_eq!(result, expect, "cross-die {expr:?} diverged");
        assert!(stats.senses >= 2, "at least one sense per die");
    }
}

/// The ParaBit baseline used to keep only the *last* operand's die and
/// silently execute all stripes on one chip — wrong data, no error. It
/// now reuses the die-split machinery and must match ground truth.
#[test]
fn parabit_cross_die_regression() {
    let dev = device();
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    let bits = dev.config().page_bits();
    let vs: Vec<BitVec> = (0..4).map(|_| BitVec::random(bits, &mut rng)).collect();
    // Two groups of two → two dies.
    let ids: Vec<usize> = vs
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let g = if i < 2 { "left" } else { "right" };
            dev.fc_write(&format!("op{i}"), v, StoreHints::and_group(g)).unwrap().id
        })
        .collect();
    assert_ne!(
        dev.operand_dies(ids[0]).unwrap()[0],
        dev.operand_dies(ids[2]).unwrap()[0],
        "operands must sit on two dies for the regression to bite"
    );
    let and_expr = Expr::and_vars(ids.iter().copied());
    let (pb, pb_stats) = dev.parabit_read(&and_expr).unwrap();
    let expect = vs.iter().skip(1).fold(vs[0].clone(), |acc, v| acc.and(v));
    assert_eq!(pb, expect, "ParaBit must not silently mis-execute cross-die operands");
    assert_eq!(pb_stats.senses, 4, "ParaBit still senses every operand once");
    assert!(pb_stats.critical_path_us < pb_stats.chip_time_us, "two dies sense concurrently");

    let or_expr = Expr::or(vec![Expr::and_vars(ids[..2].iter().copied()), Expr::var(ids[2])]);
    let (pb, _) = dev.parabit_read(&or_expr).unwrap();
    assert_eq!(pb, vs[0].and(&vs[1]).or(&vs[2]));
}

/// Migrating operands into a shared group gathers them from several dies
/// onto one plane (die-internal moves via copyback where possible), and
/// an `fc_read` after migration is back to a single sense.
#[test]
fn migration_regathers_across_dies() {
    let dev = device();
    let mut rng = StdRng::seed_from_u64(0x6A7);
    let bits = dev.config().page_bits();
    let vs: Vec<BitVec> = (0..3).map(|_| BitVec::random(bits, &mut rng)).collect();
    let ids: Vec<usize> = vs
        .iter()
        .enumerate()
        .map(|(i, v)| {
            dev.fc_write(&format!("op{i}"), v, StoreHints::and_group(&format!("s{i}"))).unwrap().id
        })
        .collect();
    let expr = Expr::and_vars(ids.iter().copied());
    let (before, before_stats) = dev.fc_read(&expr).unwrap();
    assert_eq!(before_stats.senses, 3, "three dies, one sense each");
    for i in 0..3 {
        dev.migrate_operand(&format!("op{i}"), StoreHints::and_group("gathered")).unwrap();
    }
    let dies: Vec<_> = ids.iter().map(|&id| dev.operand_dies(id).unwrap()[0]).collect();
    assert!(dies.windows(2).all(|w| w[0] == w[1]), "gathered onto one die: {dies:?}");
    let (after, after_stats) = dev.fc_read(&expr).unwrap();
    assert_eq!(after, before);
    assert_eq!(after_stats.senses, 1, "gathered: single intra-block MWS");
}

/// Builds a random expression over per-operand singleton groups (so
/// operands scatter across dies as widely as possible).
fn random_expr(rng: &mut StdRng, ids: &[usize], depth: usize) -> Expr {
    let leaf = |rng: &mut StdRng| Expr::var(ids[rng.gen_range(0..ids.len())]);
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..6) {
        0 | 1 => {
            let k = rng.gen_range(2..=ids.len().min(4));
            let start = rng.gen_range(0..=ids.len() - k);
            let children: Vec<Expr> = ids[start..start + k].iter().map(|&i| Expr::var(i)).collect();
            if rng.gen_bool(0.5) {
                Expr::and(children)
            } else {
                Expr::or(children)
            }
        }
        2 => Expr::or(vec![random_expr(rng, ids, depth - 1), random_expr(rng, ids, depth - 1)]),
        3 => Expr::and(vec![random_expr(rng, ids, depth - 1), random_expr(rng, ids, depth - 1)]),
        4 => Expr::not(random_expr(rng, ids, depth - 1)),
        _ => leaf(rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Die-aware placement preserves batch ≡ serial ≡ ground-truth
    /// equivalence for random expressions over die-scattered operands.
    #[test]
    fn die_aware_batch_matches_serial(seed in any::<u64>()) {
        let dev = device();
        // Serial-reference test: disable the result cache so repeated
        // random expressions really re-sense on the serial path.
        dev.set_result_cache_capacity(0);
        let mut rng = StdRng::seed_from_u64(seed);
        let bits = 300; // 2 stripes
        let vectors: Vec<BitVec> = (0..6).map(|_| BitVec::random(bits, &mut rng)).collect();
        // Every operand in its own group: maximal die scatter.
        let ids: Vec<usize> = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                dev.fc_write(&format!("v{i}"), v, StoreHints::and_group(&format!("solo{i}")))
                    .unwrap()
                    .id
            })
            .collect();

        let mut queries = Vec::new();
        let mut serial_results = Vec::new();
        let mut serial_senses = 0;
        while queries.len() < 6 {
            let e = random_expr(&mut rng, &ids, 2);
            match dev.fc_read(&e) {
                Ok((r, s)) => {
                    let lookup = |i: usize| vectors[i].clone();
                    prop_assert_eq!(&r, &e.eval(&lookup), "serial diverged from eval on {}", e);
                    queries.push(e);
                    serial_results.push(r);
                    serial_senses += s.senses;
                }
                Err(_) => continue, // layout-dependent rejection: fine
            }
        }
        let batch: QueryBatch = queries.iter().cloned().collect();
        let out = dev.submit(&batch).unwrap();
        for (qi, serial) in serial_results.iter().enumerate() {
            prop_assert_eq!(&out.results[qi], serial, "query {} diverged from serial", qi);
        }
        prop_assert_eq!(out.stats.serial_senses, serial_senses);
        prop_assert!(out.stats.senses <= serial_senses);
    }
}
