//! Cross-crate reliability integration: the §3.2 incompatibility results
//! and the §5.2 zero-error property, exercised through the full stack.

use fc_bits::BitVec;
use fc_nand::command::{Command, IscmFlags, MwsTarget};
use fc_nand::geometry::BlockAddr;
use fc_nand::ispp::ProgramScheme;
use fc_ssd::device::{SsdDevice, WriteOptions};
use fc_ssd::topology::DieId;
use fc_ssd::SsdConfig;
use flash_cosmos::reliability;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §3.2: in-flash AND over two *conventionally stored* pages (randomized
/// + ECC) does not decode to the AND of the logical pages.
#[test]
fn in_flash_and_over_conventional_pages_is_corrupt() {
    let mut dev = SsdDevice::new(SsdConfig::tiny_test());
    let bits = dev.logical_page_bits(true);
    let mut rng = StdRng::seed_from_u64(0x0BAD);
    let a = BitVec::random(bits, &mut rng);
    let b = BitVec::random(bits, &mut rng);
    // Conventional path stripes pages; force both onto one die/block by
    // writing through the FC grouped path but with conventional metadata.
    let mut opts = WriteOptions::conventional();
    opts.placement = fc_ssd::ftl::PlacementHint::Grouped {
        group: fc_ssd::ftl::GroupKey::new(0, 0),
        plane: None,
    };
    dev.write(0, &a, opts).unwrap();
    dev.write(1, &b, opts).unwrap();
    let (die, wl_a) = dev.locate(0).unwrap();
    let (_, wl_b) = dev.locate(1).unwrap();
    assert_eq!(wl_a.block(), wl_b.block(), "co-located for the MWS");
    // Intra-block MWS over the two *stored* (randomized, encoded) pages.
    let out = dev
        .chip_mut(die)
        .execute(Command::Mws {
            flags: IscmFlags::single_read(),
            targets: vec![MwsTarget::new(wl_a.block(), &[wl_a.wl, wl_b.wl])],
        })
        .unwrap();
    let sensed = out.into_page().unwrap();
    // Descramble with either page's keystream and decode: the payload
    // cannot match a AND b (overwhelmingly it is uncorrectable).
    let chip = dev.chip(die);
    let descrambled = chip.randomizer().derandomize(wl_a, &sensed);
    let codec = fc_ssd::ecc::PageCodec::new(fc_ssd::ecc::EccConfig::small());
    let n = codec.code().n();
    let words = bits / codec.code().k();
    let stored = descrambled.slice(0, words * n);
    match codec.decode_page(&stored, bits) {
        fc_ssd::ecc::PageDecode::Uncorrectable => {} // expected
        fc_ssd::ecc::PageDecode::Corrected { data, .. } => {
            assert_ne!(data, a.and(&b), "silent success would be a miscomputation");
        }
    }
}

/// §5.2 scaled: the ESP campaign observes zero errors, the plain-SLC
/// campaign does not, and the measured SLC RBER sits in the Fig. 8 decade.
#[test]
fn validation_campaigns() {
    let esp = reliability::validate_zero_errors(4_000_000, 7);
    assert_eq!(esp.bit_errors, 0);
    assert!(esp.bits_checked >= 4_000_000);

    let slc = reliability::validate_slc_baseline(4_000_000, 7);
    assert!(slc.bit_errors > 0);
    let rber = slc.bit_errors as f64 / slc.bits_checked as f64;
    // MWS over 8 operands compounds per-page RBER roughly 8×; accept the
    // broad Fig. 8 decade.
    assert!(rber > 1e-4 && rber < 1e-1, "SLC MWS-result RBER {rber}");
}

/// ECC on the conventional path corrects injected errors until the error
/// rate exceeds the correction budget.
#[test]
fn conventional_path_ecc_protects_reads() {
    let mut dev = SsdDevice::new_noisy(SsdConfig::tiny_test());
    let bits = dev.logical_page_bits(true);
    let mut rng = StdRng::seed_from_u64(0xECC);
    let data = BitVec::random(bits, &mut rng);
    dev.write(42, &data, WriteOptions::conventional()).unwrap();
    let (die, addr) = dev.locate(42).unwrap();
    dev.chip_mut(die).cycle_block(addr.block(), 10_000).unwrap();
    dev.set_retention_months(12.0);
    for _ in 0..25 {
        assert_eq!(dev.read(42).unwrap(), data);
    }
}

/// The copyback path (§2.1 footnote 3) moves pages without off-chip
/// transfer and is exact on clean chips.
#[test]
fn copyback_via_chip_commands() {
    let mut dev = SsdDevice::new(SsdConfig::tiny_test());
    let bits = dev.logical_page_bits(false);
    let mut rng = StdRng::seed_from_u64(0xC0B);
    let data = BitVec::random(bits, &mut rng);
    dev.write(1, &data, WriteOptions::flash_cosmos(fc_ssd::ftl::GroupKey::new(3, 0), None, false))
        .unwrap();
    let (die, src) = dev.locate(1).unwrap();
    let dst = BlockAddr::new(src.plane, src.block + 1).wordline(0);
    dev.chip_mut(die).execute(Command::Copyback { from: src, to: dst }).unwrap();
    assert_eq!(dev.chip(die).page_raw(dst).unwrap(), &data);
}

/// Erase-verify (the intra-block MWS precedent in commodity chips, §4.1)
/// works through the device stack.
#[test]
fn erase_verify_through_device() {
    let mut dev = SsdDevice::new(SsdConfig::tiny_test());
    let die = DieId::new(0, 0);
    let blk = BlockAddr::new(0, 5);
    let verify = dev.chip_mut(die).execute(Command::EraseVerify { block: blk }).unwrap();
    assert!(verify.into_page().unwrap().is_all_ones());
    let bits = dev.config().page_bits();
    dev.chip_mut(die)
        .execute(Command::Program {
            addr: blk.wordline(0),
            data: BitVec::zeros(bits),
            scheme: ProgramScheme::Slc,
            randomize: false,
        })
        .unwrap();
    let verify = dev.chip_mut(die).execute(Command::EraseVerify { block: blk }).unwrap();
    assert!(!verify.into_page().unwrap().is_all_ones());
}
