//! The reliability tiers end to end: read-retry under modeled aging,
//! cross-die parity rebuild, drain-time retention scrubbing, and the
//! deterministic fault-injection harness — exercised through the full
//! stack against clean in-memory shadows.

use fc_bits::BitVec;
use fc_ssd::ecc::EccConfig;
use fc_ssd::SsdConfig;
use fc_workloads::skew::ZipfSampler;
use flash_cosmos::{Expr, FaultPlan, FcError, FlashCosmosDevice, QueryBatch, StoreHints};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn physics_device() -> FlashCosmosDevice {
    let mut dev = FlashCosmosDevice::new_physics(SsdConfig::tiny_test());
    dev.ssd_mut().set_ecc(EccConfig::durable());
    dev
}

/// ISSUE scenario 1: a device aged to the paper's retention/PEC corner
/// fails a large fraction of nominal-Vref reads, and the retry ladder
/// recovers every one of them bit-exactly — no uncorrectable result ever
/// reaches the caller.
#[test]
fn retry_ladder_recovers_aged_reads_bit_exact() {
    let mut dev = physics_device();
    dev.enable_parity();
    let mut rng = StdRng::seed_from_u64(0x4E7241);
    let data = BitVec::random(2000, &mut rng);
    dev.store_durable("journal", &data).unwrap();
    dev.inject_faults(&FaultPlan::new().retention(48.0).age("journal", 15_000)).unwrap();
    for _ in 0..5 {
        assert_eq!(dev.read_durable("journal").unwrap(), data, "recovered reads stay bit-exact");
    }
    let h = dev.health();
    assert!(h.retry_reads > 0, "the aged corner must actually trigger the ladder: {h:?}");
    assert!(h.retry_recoveries > 0, "shifted-Vref re-senses must recover reads: {h:?}");
    assert_eq!(h.uncorrectable_after_recovery, 0, "no read may stay unrecovered: {h:?}");
}

/// ISSUE scenario 3: a Zipf-skewed read workload over aged durable
/// records, with drain-time scrubbing riding the idle-die slack, never
/// surfaces an uncorrectable result — and the scrubber converges (a
/// refreshed page does not re-queue).
#[test]
fn scrub_keeps_zipf_workload_at_zero_uncorrectable() {
    let mut dev = physics_device();
    dev.enable_parity();
    let mut rng = StdRng::seed_from_u64(0x5C4B);
    let names = ["rec-0", "rec-1", "rec-2", "rec-3"];
    let shadows: Vec<BitVec> = names.iter().map(|_| BitVec::random(800, &mut rng)).collect();
    for (name, data) in names.iter().zip(&shadows) {
        dev.store_durable(name, data).unwrap();
    }
    // Striped conventional placement interleaves the records into shared
    // blocks, so aging one record's blocks ages the whole working set —
    // aging every name would stack cycles 4× past any recoverable corner.
    dev.inject_faults(&FaultPlan::new().retention(48.0).age("rec-0", 15_000)).unwrap();

    let zipf = ZipfSampler::new(names.len(), 0.99);
    let mut scrubbed_total = 0;
    for _round in 0..6 {
        for _ in 0..4 {
            let rank = zipf.sample(&mut rng);
            assert_eq!(dev.read_durable(names[rank]).unwrap(), shadows[rank]);
        }
        // Drains with nothing queued still run the scrubber in the slack
        // budget; what does not fit one pass stays queued for the next.
        let drained = dev.drain().unwrap();
        scrubbed_total += drained.maintenance.pages_scrubbed;
    }
    assert!(scrubbed_total > 0, "aged pages must cross the scrub threshold");
    assert_eq!(dev.pending_scrub(), 0, "repeated drains fully drain the scrub queue");
    assert_eq!(dev.schedule_scrub(), 0, "refreshed pages must not re-queue");
    let h = dev.health();
    assert!(h.pages_scrubbed >= scrubbed_total);
    assert_eq!(h.uncorrectable_after_recovery, 0, "workload saw no uncorrectable: {h:?}");
}

/// ISSUE scenario 4: faults injected *between* async submission and the
/// drain are observed by the drained queries — the generation bump from
/// the injection-time rebuild forces a drain-time recompile, so the
/// results match the clean ground truth, not the poisoned wordlines.
#[test]
fn faults_between_submit_and_drain_observe_ground_truth() {
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    dev.enable_parity();
    let mut rng = StdRng::seed_from_u64(0xD4A1);
    let vs: Vec<BitVec> = (0..4).map(|_| BitVec::random(256, &mut rng)).collect();
    let handles: Vec<_> = vs
        .iter()
        .enumerate()
        .map(|(i, v)| dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("g")).unwrap())
        .collect();
    let mut batch = QueryBatch::new();
    let q = batch.push(Expr::and_vars(handles.iter().map(|h| h.id)));
    let ticket = dev.submit_async(&batch).unwrap();

    // The queued program now points at wordlines a stuck block corrupts;
    // the injection-time parity rebuild relocates them.
    let report = dev.inject_faults(&FaultPlan::new().stuck_block("op0", 0)).unwrap();
    assert!(report.rebuilt_pages >= 1);
    assert_eq!(report.lost_pages, 0);

    let drained = dev.drain().unwrap();
    assert!(drained.health.parity_rebuilds >= 1, "DrainStats carries the health snapshot");
    let out = ticket.wait(&dev).unwrap();
    assert!(out.failures.is_empty(), "nothing was lost: {:?}", out.failures);
    let expect = vs.iter().skip(1).fold(vs[0].clone(), |a, v| a.and(v));
    assert_eq!(out.results[q], expect, "drained query observes ground truth");
}

/// Per-query failure isolation: a page that stays unreadable after every
/// recovery tier fails exactly the queries that touch it. The rest of
/// the batch completes with bit-exact results, on the sync, fail-fast,
/// and async paths alike.
#[test]
fn lost_page_fails_only_the_queries_that_touch_it() {
    // No parity: the stuck block is genuinely unrecoverable.
    let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let mut rng = StdRng::seed_from_u64(0x105E);
    let bad_data = BitVec::random(256, &mut rng);
    let ok_data: Vec<BitVec> = (0..2).map(|_| BitVec::random(256, &mut rng)).collect();
    let bad = dev.fc_write("bad", &bad_data, StoreHints::and_group("gb")).unwrap();
    let ok: Vec<_> = ok_data
        .iter()
        .enumerate()
        .map(|(i, v)| dev.fc_write(&format!("ok{i}"), v, StoreHints::and_group("gg")).unwrap())
        .collect();
    let report = dev.inject_faults(&FaultPlan::new().stuck_block("bad", 0)).unwrap();
    assert!(report.lost_pages >= 1, "without parity the page is lost: {report:?}");
    assert_eq!(dev.lost_page_count() as u64, report.lost_pages);

    let mut batch = QueryBatch::new();
    let q_bad = batch.push(Expr::var(bad.id));
    let q_ok = batch.push(Expr::and_vars(ok.iter().map(|h| h.id)));
    let out = dev.submit(&batch).unwrap();
    assert_eq!(out.failures.len(), 1, "exactly one query fails: {:?}", out.failures);
    assert_eq!(out.failures[0].query, q_bad);
    assert_eq!(out.failures[0].tiers_tried, 2, "retry ladder and parity were both exhausted");
    assert_eq!(out.results[q_bad].len(), 0, "a failed query yields no bits, not zeros");
    assert_eq!(out.results[q_ok], ok_data[0].and(&ok_data[1]), "healthy query is unaffected");

    // Fail-fast paths surface the same facts as an error.
    let err = dev.fc_read(&Expr::var(bad.id)).unwrap_err();
    assert!(matches!(err, FcError::QueryFailed { query: 0, tiers_tried: 2, .. }), "{err}");

    // The async path delivers partial results through the ticket.
    let ticket = dev.submit_async(&batch).unwrap();
    let out = ticket.wait(&dev).unwrap();
    assert_eq!(out.failures.len(), 1);
    assert_eq!(out.failures[0].query, q_bad);
    assert_eq!(out.results[q_ok], ok_data[0].and(&ok_data[1]));
}

/// The ISSUE acceptance scenario: a Zipf-skewed overwrite-and-query
/// endurance run with retention aging, read disturb, and a stuck block
/// injected mid-run completes with zero uncorrectable results, bit-exact
/// against a clean in-memory shadow, and a health snapshot showing every
/// recovery tier fired.
#[test]
fn endurance_run_with_full_fault_mix_stays_exact() {
    let mut dev = physics_device();
    dev.enable_parity();
    let mut rng = StdRng::seed_from_u64(0xE2D);
    let n_ops = 6;
    let mut shadows: Vec<BitVec> = (0..n_ops).map(|_| BitVec::random(700, &mut rng)).collect();
    let handles: Vec<_> = shadows
        .iter()
        .enumerate()
        .map(|(i, v)| dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("g")).unwrap())
        .collect();
    let journal = BitVec::random(600, &mut rng);
    dev.store_durable("journal", &journal).unwrap();

    // The physics corner: chip-wide retention, a heavily cycled journal
    // (read-retry territory), and read disturb on the hottest operand.
    dev.inject_faults(
        &FaultPlan::new().retention(48.0).age("journal", 15_000).disturb("op0", 50_000),
    )
    .unwrap();

    let zipf = ZipfSampler::new(n_ops, 0.99);
    for round in 0..6 {
        // Zipf-skewed overwrite keeps the placement (and parity stripes)
        // churning.
        let hot = zipf.sample(&mut rng);
        shadows[hot] = BitVec::random(700, &mut rng);
        dev.fc_overwrite(&format!("op{hot}"), &shadows[hot]).unwrap();

        if round == 2 {
            // One stuck block mid-run: silently corrupts co-resident raw
            // pages, recovered from the parity stripes at injection time.
            let report = dev.inject_faults(&FaultPlan::new().stuck_block("op1", 0)).unwrap();
            assert_eq!(report.lost_pages, 0, "stuck block is within parity budget: {report:?}");
        }

        let mut batch = QueryBatch::new();
        let a = zipf.sample(&mut rng);
        let b = (a + 1) % n_ops;
        let q_pair = batch.push(Expr::and_vars([handles[a].id, handles[b].id]));
        let q_all = batch.push(Expr::and_vars(handles.iter().map(|h| h.id)));
        let ticket = dev.submit_async(&batch).unwrap();
        let drained = dev.drain().unwrap();
        assert_eq!(drained.health, dev.health());
        let out = ticket.wait(&dev).unwrap();
        assert!(out.failures.is_empty(), "no query may fail: {:?}", out.failures);
        assert_eq!(out.results[q_pair], shadows[a].and(&shadows[b]), "round {round}");
        let all = shadows.iter().skip(1).fold(shadows[0].clone(), |acc, v| acc.and(v));
        assert_eq!(out.results[q_all], all, "round {round}");
        assert_eq!(dev.read_durable("journal").unwrap(), journal, "round {round}");
    }
    // Drain until the scrub backlog (refreshes deferred past each
    // drain's slack budget) fully clears.
    for _ in 0..16 {
        if dev.pending_scrub() == 0 {
            break;
        }
        dev.drain().unwrap();
    }

    let h = dev.health();
    assert!(h.retry_recoveries > 0, "tier 1 (read-retry) must have fired: {h:?}");
    assert!(h.parity_rebuilds > 0, "tier 2 (parity rebuild) must have fired: {h:?}");
    assert!(h.pages_scrubbed > 0, "tier 3 (retention scrub) must have fired: {h:?}");
    assert_eq!(h.uncorrectable_after_recovery, 0, "zero unrecovered reads: {h:?}");
    assert_eq!(dev.lost_page_count(), 0, "nothing was lost");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ISSUE scenario 2: for random operand data and a random single-die
    /// failure, every parity-rebuilt operand reads back identical to a
    /// clean shadow, individually and through an MWS query.
    #[test]
    fn parity_rebuild_matches_clean_shadow(seed in 0u64..1_000, victim in 0usize..4) {
        let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
        dev.enable_parity();
        let mut rng = StdRng::seed_from_u64(seed);
        let shadows: Vec<BitVec> = (0..3).map(|_| BitVec::random(700, &mut rng)).collect();
        let handles: Vec<_> = shadows
            .iter()
            .enumerate()
            .map(|(i, v)| {
                dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("g")).unwrap()
            })
            .collect();
        let report = dev.inject_faults(&FaultPlan::new().fail_die(victim)).unwrap();
        prop_assert_eq!(report.lost_pages, 0, "one die is within the parity budget");
        for (h, shadow) in handles.iter().zip(&shadows) {
            let (got, _) = dev.fc_read(&Expr::var(h.id)).unwrap();
            prop_assert_eq!(&got, shadow);
        }
        let (got, _) = dev.fc_read(&Expr::and_vars(handles.iter().map(|h| h.id))).unwrap();
        let expect = shadows.iter().skip(1).fold(shadows[0].clone(), |a, v| a.and(v));
        prop_assert_eq!(got, expect);
    }
}

/// Pins the documented stacking contract of [`FaultPlan::age`]: entries
/// resolve to *physical blocks*, so co-resident names (and repeated
/// names) sum their cycles on every shared block instead of taking the
/// maximum or segregating per name.
#[test]
fn age_entries_stack_cycles_on_shared_blocks() {
    use fc_nand::geometry::BlockAddr;
    use fc_ssd::topology::DieId;

    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let mut rng = StdRng::seed_from_u64(0xA6E5);
    // One stripe each, same group: "a" and "b" share one physical block.
    let a = BitVec::random(256, &mut rng);
    let b = BitVec::random(256, &mut rng);
    dev.fc_write("a", &a, StoreHints::and_group("g")).unwrap();
    dev.fc_write("b", &b, StoreHints::and_group("g")).unwrap();

    let config = SsdConfig::tiny_test();
    let pec_map = |dev: &mut FlashCosmosDevice| -> Vec<u32> {
        let mut out = Vec::new();
        for die in 0..config.total_dies() {
            let chip = dev.ssd_mut().chip(DieId::from_flat(die, &config));
            for plane in 0..config.planes_per_die {
                for block in 0..config.blocks_per_plane {
                    out.push(chip.block_pec(BlockAddr::new(plane as u32, block as u32)).unwrap());
                }
            }
        }
        out
    };

    let before = pec_map(&mut dev);
    let report =
        dev.inject_faults(&FaultPlan::new().age("a", 500).age("b", 700).age("a", 300)).unwrap();
    assert_eq!(report.touched_operands, vec![0, 1]);
    let after = pec_map(&mut dev);

    let deltas: Vec<u32> =
        before.iter().zip(&after).map(|(b, a)| a - b).filter(|&d| d != 0).collect();
    assert_eq!(
        deltas,
        vec![500 + 700 + 300],
        "co-resident age entries must stack additively on the one shared block"
    );
    // The stored data itself is untouched by pure wear conditioning.
    let (got, _) = dev.fc_read(&Expr::var(0)).unwrap();
    assert_eq!(got, a);
}
