//! The maintenance layer end to end: hot-operand regrouping converging a
//! scattered layout to single-sense units inside drain's slack budget,
//! wear-aware placement, cost-aware cache admission beating FIFO under
//! Zipf skew, and the generation-mismatch retirement contract.

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use fc_workloads::skew::CoQueryWorkload;
use flash_cosmos::{
    CostAwareAdmission, Expr, FifoAdmission, FlashCosmosDevice, MaintenanceConfig, QueryBatch,
    Severity, StoreHints, WearAwarePlacement,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn device() -> FlashCosmosDevice {
    FlashCosmosDevice::new(SsdConfig::tiny_test())
}

/// The `fc_audit` device pass stays error-free after every interleaving
/// step (warn-level coverage findings are allowed in mixed scenarios).
fn assert_audit_clean(dev: &FlashCosmosDevice) -> Result<(), TestCaseError> {
    let errors: Vec<_> =
        dev.audit().into_iter().filter(|f| f.severity == Severity::Error).collect();
    prop_assert!(errors.is_empty(), "device audit found errors: {errors:?}");
    Ok(())
}

/// Writes `n` page-sized operands, each scattered into its own singleton
/// group, and returns ids + data.
fn scattered_operands(
    dev: &mut FlashCosmosDevice,
    n: usize,
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<BitVec>) {
    let bits = dev.config().page_bits();
    let mut ids = Vec::new();
    let mut data = Vec::new();
    for i in 0..n {
        let v = BitVec::random(bits, rng);
        ids.push(
            dev.fc_write(&format!("op{i}"), &v, StoreHints::and_group(&format!("solo{i}")))
                .unwrap()
                .id,
        );
        data.push(v);
    }
    (ids, data)
}

/// ISSUE acceptance: on a skewed co-query workload, maintenance migrates
/// the hot set during `drain()`'s idle-die slack — without exceeding the
/// critical-path budget — and the warm-path modeled senses for the hot
/// query drop ≥ 2× versus the scattered layout.
#[test]
fn regrouping_converges_within_the_drain_slack_budget() {
    let w = CoQueryWorkload::scattered(SsdConfig::tiny_test(), 12, 6, 4, 1.1, 0xC0).unwrap();
    let hot = w.expr(0);
    let expected = w.expected(0);
    let mut batch = QueryBatch::new();
    batch.push(hot.clone());

    // Cold, scattered: one sense per operand-block.
    let cold = w.dev.submit(&batch).unwrap();
    assert_eq!(cold.results[0], expected);
    assert_eq!(cold.stats.senses, 4, "scattered layout senses every block");

    // Heat the set past the co-fuse threshold, then plan.
    w.dev.submit(&batch).unwrap();
    let queued = w.dev.schedule_maintenance();
    assert_eq!(queued, 4, "one migration job per hot-set operand");
    assert_eq!(w.dev.session().pending_maintenance(), 4);

    // The jobs ride the next drain, filling idle-die slack.
    let ticket = w.dev.submit_async(&batch).unwrap();
    let drained = w.dev.drain().unwrap();
    let m = drained.maintenance;
    assert_eq!(m.jobs_executed, 4, "all jobs fit the default slack floor");
    assert_eq!(m.jobs_deferred, 0);
    assert_eq!(m.jobs_retired, 0);
    assert_eq!(m.pages_moved, 4);
    assert!(m.fill_time_us > 0.0);
    assert!(
        m.critical_path_us <= m.budget_us + 1e-9,
        "fill-in must respect the budget: {} vs {}",
        m.critical_path_us,
        m.budget_us
    );
    let results = ticket.wait(&w.dev).unwrap();
    assert_eq!(results.results[0], expected, "drained query still bit-exact");

    // Warm path: the first post-migration submit cannot be served by the
    // cache (generations moved), so its stats are the regrouped cost.
    let warm = w.dev.submit(&batch).unwrap();
    assert_eq!(warm.results[0], expected, "migration preserves data");
    assert_eq!(warm.stats.senses, 1, "gathered set is one intra-block MWS");
    assert!(
        warm.stats.senses * 2 <= cold.stats.senses,
        "≥2× sense drop: warm {} vs cold {}",
        warm.stats.senses,
        cold.stats.senses
    );
    // And the gathered operands now share one placement group.
    let hot_ids = &w.sets[0];
    let g = w.dev.group_index_of(hot_ids[0]);
    assert!(hot_ids.iter().all(|&id| w.dev.group_index_of(id) == g));
}

/// A starved budget defers jobs instead of blowing the critical path;
/// a later pass (or an unbudgeted `run_maintenance`) finishes the queue.
#[test]
fn jobs_that_miss_the_budget_defer_to_the_next_pass() {
    let mut rng = StdRng::seed_from_u64(0xB4D);
    let mut dev = device();
    let (ids, _) = scattered_operands(&mut dev, 4, &mut rng);
    let mut batch = QueryBatch::new();
    batch.push(Expr::and_vars(ids.iter().copied()));
    dev.submit(&batch).unwrap();
    dev.submit(&batch).unwrap();
    // A budget too small for even one page move (tR + tESP ≈ 425 µs).
    dev.set_maintenance_config(MaintenanceConfig {
        slack_factor: 1.0,
        slack_floor_us: 100.0,
        ..MaintenanceConfig::default()
    });
    assert_eq!(dev.schedule_maintenance(), 4);
    dev.submit_async(&batch).unwrap();
    let drained = dev.drain().unwrap();
    assert_eq!(drained.maintenance.jobs_executed, 0, "nothing fits 100 µs");
    assert_eq!(drained.maintenance.jobs_deferred, 4);
    assert_eq!(dev.session().pending_maintenance(), 4);
    // An idle drain with a restored budget finishes the queue.
    dev.set_maintenance_config(MaintenanceConfig::default());
    let drained = dev.drain().unwrap();
    assert_eq!(drained.batches, 0, "idle drain: maintenance only");
    assert_eq!(drained.maintenance.jobs_executed, 4);
    assert!(drained.maintenance.critical_path_us <= drained.maintenance.budget_us);
    assert_eq!(dev.session().pending_maintenance(), 0);
    let after = dev.submit(&batch).unwrap();
    assert_eq!(after.stats.senses, 1);
}

/// ISSUE satellite: a regroup job whose source operand was overwritten
/// between planning and execution is retired (generation mismatch), not
/// applied — and the retirement re-arms the set for replanning.
#[test]
fn overwritten_operand_retires_its_job_instead_of_migrating() {
    let mut rng = StdRng::seed_from_u64(0x0F);
    let mut dev = device();
    let (ids, mut data) = scattered_operands(&mut dev, 3, &mut rng);
    let mut batch = QueryBatch::new();
    batch.push(Expr::and_vars(ids.iter().copied()));
    dev.submit(&batch).unwrap();
    dev.submit(&batch).unwrap();
    assert_eq!(dev.schedule_maintenance(), 3);

    // Overwrite op1 *after* planning, *before* execution.
    let replacement = BitVec::random(dev.config().page_bits(), &mut rng);
    dev.fc_overwrite("op1", &replacement).unwrap();
    data[1] = replacement;

    let stats = dev.run_maintenance().unwrap();
    assert_eq!(stats.jobs_retired, 1, "the overwritten operand's job must drop");
    assert_eq!(stats.jobs_executed, 2, "its siblings still gather");
    let retired: Vec<_> = dev.session().retired_jobs().collect();
    assert_eq!(retired.len(), 1);
    assert_eq!(retired[0].operand, ids[1]);
    assert!(retired[0].found_generation > retired[0].expected_generation);
    assert_eq!(dev.session().jobs_retired_total(), 1);
    // The un-migrated operand stayed in its original group...
    assert_ne!(dev.group_index_of(ids[1]), dev.group_index_of(ids[0]));
    // ...and the query stays bit-exact on the overwritten data.
    let out = dev.submit(&batch).unwrap();
    assert_eq!(out.results[0], data[0].and(&data[1]).and(&data[2]));

    // The retirement re-armed the set: a later pass finishes the gather
    // (the replanned set now includes the overwritten operand's new
    // generation) and converges to a single sense.
    dev.submit(&batch).unwrap();
    let second = dev.run_maintenance().unwrap();
    assert!(second.jobs_executed >= 1, "re-armed set gathers the straggler");
    let converged = dev.submit(&batch).unwrap();
    assert_eq!(converged.results[0], data[0].and(&data[1]).and(&data[2]));
    assert_eq!(converged.stats.senses, 1, "fully gathered after the second pass");
}

/// The retired-job log is bounded by `retired_log_capacity` while the
/// total counter keeps counting.
#[test]
fn retired_job_log_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0x10);
    let mut dev = device();
    dev.set_maintenance_config(MaintenanceConfig {
        retired_log_capacity: 2,
        ..MaintenanceConfig::default()
    });
    let (ids, _) = scattered_operands(&mut dev, 4, &mut rng);
    let mut batch = QueryBatch::new();
    batch.push(Expr::and_vars(ids.iter().copied()));
    dev.submit(&batch).unwrap();
    dev.submit(&batch).unwrap();
    assert_eq!(dev.schedule_maintenance(), 4);
    // Invalidate every job before execution.
    let bits = dev.config().page_bits();
    for i in 0..4 {
        let v = BitVec::random(bits, &mut rng);
        dev.fc_overwrite(&format!("op{i}"), &v).unwrap();
    }
    let stats = dev.run_maintenance().unwrap();
    assert_eq!(stats.jobs_retired, 4);
    assert_eq!(dev.session().jobs_retired_total(), 4, "the counter sees all retirements");
    assert_eq!(dev.session().retired_jobs().count(), 2, "the log keeps only the newest 2");
    let names: Vec<String> = dev.session().retired_jobs().map(|r| r.name.clone()).collect();
    assert_eq!(names, ["op2", "op3"], "oldest entries dropped first");
}

/// ISSUE acceptance: at equal capacity, the cost-aware admission policy
/// beats FIFO on a Zipf-skewed resubmit stream (strictly higher hit
/// rate), with FIFO still selectable through the policy trait.
#[test]
fn cost_aware_cache_beats_fifo_under_zipf_skew() {
    const SETS: usize = 32;
    const CAPACITY: usize = 8;
    const STREAM: usize = 400;

    let run = |fifo: bool| -> (f64, Vec<BitVec>) {
        let w =
            CoQueryWorkload::scattered(SsdConfig::tiny_test(), 16, SETS, 2, 1.1, 0x21F).unwrap();
        w.dev.set_result_cache_capacity(CAPACITY);
        if fifo {
            w.dev.set_cache_admission(Box::new(FifoAdmission));
        } else {
            w.dev.set_cache_admission(Box::new(CostAwareAdmission));
        }
        // Identical Zipf rank stream for both policies.
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let mut results = Vec::new();
        for _ in 0..STREAM {
            let (batch, ranks) = w.zipf_batch(1, &mut rng);
            let out = w.dev.submit(&batch).unwrap();
            assert_eq!(out.results[0], w.expected(ranks[0]), "cached replay stays exact");
            results.push(out.results[0].clone());
        }
        let stats = w.dev.session().cache_stats();
        assert_eq!(stats.capacity, CAPACITY);
        ((stats.hits as f64) / (stats.hits + stats.misses) as f64, results)
    };

    let (fifo_rate, fifo_results) = run(true);
    let (cost_rate, cost_results) = run(false);
    assert_eq!(fifo_results, cost_results, "policy choice never changes results");
    assert!(
        cost_rate > fifo_rate,
        "cost-aware must beat FIFO at equal capacity: {cost_rate:.3} vs {fifo_rate:.3}"
    );
    assert!(
        cost_rate >= fifo_rate + 0.1,
        "the win should be substantial: {cost_rate:.3} vs {fifo_rate:.3}"
    );
}

/// FIFO stays selectable and behaves as documented: strict insertion
/// order, hits notwithstanding.
#[test]
fn fifo_policy_ignores_heat_when_selected() {
    let mut rng = StdRng::seed_from_u64(0x11);
    let mut dev = device();
    dev.set_cache_admission(Box::new(FifoAdmission));
    dev.set_result_cache_capacity(2);
    let (ids, _) = scattered_operands(&mut dev, 3, &mut rng);
    dev.fc_read(&Expr::var(ids[0])).unwrap();
    dev.fc_read(&Expr::var(ids[1])).unwrap();
    // Heat entry 0 hard; FIFO still evicts it first.
    for _ in 0..5 {
        let (_, s) = dev.fc_read(&Expr::var(ids[0])).unwrap();
        assert_eq!(s.senses, 0);
    }
    dev.fc_read(&Expr::var(ids[2])).unwrap(); // evicts ids[0] (oldest)
    let (_, s) = dev.fc_read(&Expr::var(ids[0])).unwrap();
    assert!(s.senses > 0, "FIFO evicted the hot-but-oldest entry");

    // The cost-aware policy under the same sequence protects the hot
    // entry instead.
    let mut dev = device();
    dev.set_result_cache_capacity(2);
    let mut rng = StdRng::seed_from_u64(0x11);
    let (ids, _) = scattered_operands(&mut dev, 3, &mut rng);
    dev.fc_read(&Expr::var(ids[0])).unwrap();
    dev.fc_read(&Expr::var(ids[1])).unwrap();
    for _ in 0..5 {
        dev.fc_read(&Expr::var(ids[0])).unwrap();
    }
    dev.fc_read(&Expr::var(ids[2])).unwrap(); // evicts cold ids[1]
    let (_, s) = dev.fc_read(&Expr::var(ids[0])).unwrap();
    assert_eq!(s.senses, 0, "cost-aware kept the hot entry");
    assert!(dev.session().cache_stats().rejections <= 1);
}

/// Wear-aware placement steers fresh groups — and the regrouping
/// planner's target die — away from cycled planes.
#[test]
fn wear_aware_placement_and_regroup_target_avoid_worn_dies() {
    let mut rng = StdRng::seed_from_u64(0x12);
    let mut dev = device();
    let cfg = SsdConfig::tiny_test();
    // Age every block on dies 0..3 heavily; die 3 stays fresh.
    for die in 0..3 {
        for plane in 0..cfg.planes_per_die as u32 {
            for block in 0..cfg.blocks_per_plane as u32 {
                let d = fc_ssd::topology::DieId::from_flat(die, &cfg);
                dev.ssd_mut()
                    .chip_mut(d)
                    .cycle_block(fc_nand::geometry::BlockAddr::new(plane, block), 5_000)
                    .unwrap();
            }
        }
    }
    let wear = dev.plane_wear();
    assert!(wear[0] > 0 && wear[6] == 0 && wear[7] == 0, "wear map reflects cycling: {wear:?}");

    dev.set_placement_policy(Box::new(WearAwarePlacement::new()));
    let bits = dev.config().page_bits();
    for g in 0..4 {
        let v = BitVec::random(bits, &mut rng);
        let h =
            dev.fc_write(&format!("w{g}"), &v, StoreHints::and_group(&format!("g{g}"))).unwrap();
        let dies = dev.operand_dies(h.id).unwrap();
        assert!(
            dies.iter().all(|d| d.flat(&cfg) == 3),
            "wear-aware placement must pick the fresh die, got {dies:?}"
        );
    }

    // The regrouping planner picks the same fresh die as migration target.
    let (ids, _) = scattered_operands(&mut dev, 3, &mut rng);
    let mut batch = QueryBatch::new();
    batch.push(Expr::and_vars(ids.iter().copied()));
    dev.submit(&batch).unwrap();
    dev.submit(&batch).unwrap();
    assert!(dev.schedule_maintenance() >= 1);
    dev.run_maintenance().unwrap();
    for &id in &ids {
        let dies = dev.operand_dies(id).unwrap();
        assert!(dies.iter().all(|d| d.flat(&cfg) == 3), "gather target is the least-worn die");
    }
}

/// A stale async batch recompiled at drain must not re-feed the
/// affinity tracker: one submission is one observation, so a single
/// queued query never crosses the default co-fuse threshold just
/// because an overwrite forced its recompilation.
#[test]
fn drain_time_recompile_does_not_double_count_affinity() {
    let mut rng = StdRng::seed_from_u64(0x2C);
    let mut dev = device();
    let (ids, _) = scattered_operands(&mut dev, 3, &mut rng);
    let mut batch = QueryBatch::new();
    batch.push(Expr::and_vars(ids.iter().copied()));
    let ticket = dev.submit_async(&batch).unwrap();
    // Overwrite a member: the queued compilation goes stale and drain
    // recompiles it.
    let v = BitVec::random(dev.config().page_bits(), &mut rng);
    dev.fc_overwrite("op0", &v).unwrap();
    dev.drain().unwrap();
    ticket.wait(&dev).unwrap();
    let entry = dev.session().affinity().entry(&ids).unwrap();
    assert_eq!(entry.fused, 1, "one submission = one observation, recompile or not");
    assert_eq!(dev.schedule_maintenance(), 0, "a once-queried set is not hot");
}

/// The per-pass job cap applies at set granularity: a second hot set
/// that would overshoot the cap waits for the next pass (and a set is
/// never split).
#[test]
fn job_cap_defers_whole_sets_to_the_next_pass() {
    let mut rng = StdRng::seed_from_u64(0x2D);
    let mut dev = device();
    dev.set_maintenance_config(MaintenanceConfig {
        max_jobs_per_pass: 4,
        ..MaintenanceConfig::default()
    });
    let (ids, _) = scattered_operands(&mut dev, 6, &mut rng);
    let mut batch = QueryBatch::new();
    batch.push(Expr::and_vars(ids[..3].iter().copied()));
    batch.push(Expr::and_vars(ids[3..].iter().copied()));
    dev.submit(&batch).unwrap();
    dev.submit(&batch).unwrap();
    // Two hot 3-operand sets against a cap of 4: exactly one set plans
    // per pass — a set is never split, and the second set (which would
    // overshoot the cap) waits for the next pass.
    assert_eq!(dev.schedule_maintenance(), 3, "second set would overshoot the cap");
    assert_eq!(dev.session().pending_maintenance(), 3);
    assert_eq!(dev.schedule_maintenance(), 3, "next pass picks up the deferred set");
    assert_eq!(dev.session().pending_maintenance(), 6);
    dev.run_maintenance().unwrap();
    let warm = dev.submit(&batch).unwrap();
    assert_eq!(warm.stats.senses, 2, "both sets gathered in the end");
}

/// Two disjoint hot sets planned in one pass gather onto *different*
/// dies — the target choice accounts for jobs already queued, so the
/// pass does not pile every gather group onto one snapshot's least-worn
/// die and recreate the single-die serialization PR 3 removed.
#[test]
fn distinct_hot_sets_spread_their_gather_targets_across_dies() {
    let mut rng = StdRng::seed_from_u64(0x32);
    let mut dev = device();
    let cfg = SsdConfig::tiny_test();
    let (ids, _) = scattered_operands(&mut dev, 4, &mut rng);
    let mut batch = QueryBatch::new();
    batch.push(Expr::and_vars(ids[..2].iter().copied()));
    batch.push(Expr::and_vars(ids[2..].iter().copied()));
    dev.submit(&batch).unwrap();
    dev.submit(&batch).unwrap();
    assert_eq!(dev.schedule_maintenance(), 4, "both sets plan in one pass");
    dev.run_maintenance().unwrap();
    let die_a = dev.operand_dies(ids[0]).unwrap()[0].flat(&cfg);
    let die_b = dev.operand_dies(ids[2]).unwrap()[0].flat(&cfg);
    assert_eq!(dev.operand_dies(ids[1]).unwrap()[0].flat(&cfg), die_a);
    assert_eq!(dev.operand_dies(ids[3]).unwrap()[0].flat(&cfg), die_b);
    assert_ne!(die_a, die_b, "disjoint gather groups must not share one die");
    let warm = dev.submit(&batch).unwrap();
    assert_eq!(warm.stats.senses, 2, "each set one sense");
    assert_eq!(warm.stats.dies_used, 2, "the sets sense on different dies concurrently");
}

/// An oversized job (more pages than any drain budget can swallow) is
/// skipped over, not a head-of-line blocker: unrelated jobs behind it
/// still execute, and the big job waits for a foreground pass.
#[test]
fn an_oversized_job_defers_without_wedging_the_queue() {
    let mut rng = StdRng::seed_from_u64(0x31);
    let mut dev = device();
    let bits = dev.config().page_bits();
    // One huge operand pair (16 stripes → 16 × tESP ≈ 6.4 ms on the
    // target die, over the 5 ms floor) plus a small scattered pair.
    let big: Vec<BitVec> = (0..2).map(|_| BitVec::random(bits * 16, &mut rng)).collect();
    for (i, v) in big.iter().enumerate() {
        dev.fc_write(&format!("big{i}"), v, StoreHints::and_group(&format!("bigsolo{i}"))).unwrap();
    }
    let (small_ids, _) = scattered_operands(&mut dev, 2, &mut rng);
    let mut heat = QueryBatch::new();
    heat.push(Expr::and_vars([0usize, 1]));
    heat.push(Expr::and_vars(small_ids.iter().copied()));
    dev.submit(&heat).unwrap();
    dev.submit(&heat).unwrap();
    assert_eq!(dev.schedule_maintenance(), 4, "both sets plan (big first: hotter ids order)");
    // Drain under the default budget: the big set's jobs cannot fit, the
    // small set's jobs behind them still must.
    let drained = dev.drain().unwrap();
    assert!(drained.maintenance.jobs_executed >= 2, "small jobs passed the blocked big ones");
    assert!(drained.maintenance.jobs_deferred >= 1, "big jobs wait, still queued");
    assert!(drained.maintenance.critical_path_us <= drained.maintenance.budget_us + 1e-9);
    let mut small_batch = QueryBatch::new();
    small_batch.push(Expr::and_vars(small_ids.iter().copied()));
    assert_eq!(dev.submit(&small_batch).unwrap().stats.senses, 1, "small set gathered");
    // The foreground pass (no budget) finishes the big set.
    let fg = dev.run_maintenance().unwrap();
    assert!(fg.jobs_executed >= 1);
    assert_eq!(dev.session().pending_maintenance(), 0);
    let mut big_batch = QueryBatch::new();
    big_batch.push(Expr::and_vars([0usize, 1]));
    let out = dev.submit(&big_batch).unwrap();
    assert_eq!(out.results[0], big[0].and(&big[1]));
    assert_eq!(out.stats.senses, 16, "big set gathered: one sense per stripe");
}

/// A set that re-scatters — an overlapping hot set migrated one of its
/// members away — becomes plannable again (the planner tracks actual
/// placement, not a once-planned ledger).
#[test]
fn a_regathered_member_stolen_by_an_overlapping_set_is_regathered_again() {
    let mut rng = StdRng::seed_from_u64(0x2F);
    let mut dev = device();
    let (ids, data) = scattered_operands(&mut dev, 3, &mut rng);
    let s1 = Expr::and_vars([ids[0], ids[1]]);
    let s2 = Expr::and_vars([ids[1], ids[2]]);
    // Submits twice (co-fuse heat) and returns the *first* submit's
    // senses — migrations bump generations, so the first post-migration
    // submit is never cache-served and reports the layout's true cost.
    let heat = |dev: &mut FlashCosmosDevice, e: &Expr| {
        let mut b = QueryBatch::new();
        b.push(e.clone());
        let first = dev.submit(&b).unwrap().stats.senses;
        dev.submit(&b).unwrap();
        first
    };
    // Gather S1 = {0, 1}.
    heat(&mut dev, &s1);
    dev.run_maintenance().unwrap();
    assert_eq!(heat(&mut dev, &s1), 1, "S1 gathered");
    let s1_group = dev.group_index_of(ids[0]);
    // Gather S2 = {1, 2}: steals operand 1 from S1's block.
    heat(&mut dev, &s2);
    let stats = dev.run_maintenance().unwrap();
    assert!(stats.jobs_executed >= 1);
    assert_ne!(dev.group_index_of(ids[1]), s1_group, "operand 1 moved out of S1's group");
    // S1 is scattered again; re-observing it must replan and regather.
    let scattered_again = heat(&mut dev, &s1);
    assert!(scattered_again > 1, "S1 re-scattered after the steal");
    let stats = dev.run_maintenance().unwrap();
    assert!(stats.jobs_executed >= 1, "re-scattered set must be plannable again");
    let mut b = QueryBatch::new();
    b.push(s1);
    let warm = dev.submit(&b).unwrap();
    assert_eq!(warm.results[0], data[0].and(&data[1]));
    assert_eq!(warm.stats.senses, 1, "S1 regathered to a single sense");
}

/// A replan after a partial pass (one job retired) targets the die the
/// gather group actually sits on — not whatever die is least worn at
/// replan time — so the modeled fill-in cost lands on the die that
/// really executes the program.
#[test]
fn replanned_stragglers_target_the_existing_gather_die() {
    let mut rng = StdRng::seed_from_u64(0x30);
    let cfg = SsdConfig::tiny_test();
    let mut dev = device();
    let (ids, _) = scattered_operands(&mut dev, 3, &mut rng);
    let mut batch = QueryBatch::new();
    batch.push(Expr::and_vars(ids.iter().copied()));
    dev.submit(&batch).unwrap();
    dev.submit(&batch).unwrap();
    assert_eq!(dev.schedule_maintenance(), 3);
    // Retire op2's job, so the first pass gathers only op0/op1.
    let v = BitVec::random(dev.config().page_bits(), &mut rng);
    dev.fc_overwrite("op2", &v).unwrap();
    let first = dev.run_maintenance().unwrap();
    assert_eq!((first.jobs_executed, first.jobs_retired), (2, 1));
    let gather_die = dev.operand_dies(ids[0]).unwrap()[0];
    assert_eq!(dev.operand_dies(ids[1]).unwrap()[0], gather_die);
    // Make every *other* die more attractive by wear: age the gather die
    // heavily, so a naive replan would pick a different target.
    for plane in 0..cfg.planes_per_die as u32 {
        for block in 0..cfg.blocks_per_plane as u32 {
            dev.ssd_mut()
                .chip_mut(gather_die)
                .cycle_block(fc_nand::geometry::BlockAddr::new(plane, block), 9_000)
                .unwrap();
        }
    }
    // Re-observe the set (still scattered: op2 sits outside) and replan.
    dev.submit(&batch).unwrap();
    dev.submit(&batch).unwrap();
    assert!(dev.schedule_maintenance() >= 1, "straggler replans");
    let second = dev.run_maintenance().unwrap();
    assert!(second.jobs_executed >= 1);
    assert_eq!(
        dev.operand_dies(ids[2]).unwrap()[0],
        gather_die,
        "straggler must join the group's actual die, worn or not"
    );
    let warm = dev.submit(&batch).unwrap();
    assert_eq!(warm.stats.senses, 1, "fully gathered despite the wear shift");
}

/// Cost-aware admission adapts to a working-set shift: refused inserts
/// age the weakest resident, so the new population wears the stale-hot
/// entries out instead of being locked out forever.
#[test]
fn cost_aware_cache_adapts_after_a_working_set_shift() {
    let mut rng = StdRng::seed_from_u64(0x2E);
    let mut dev = device();
    dev.set_result_cache_capacity(2);
    let (ids, _) = scattered_operands(&mut dev, 6, &mut rng);
    // Phase 1: two entries become hot (several hits each).
    for _ in 0..4 {
        dev.fc_read(&Expr::var(ids[0])).unwrap();
        dev.fc_read(&Expr::var(ids[1])).unwrap();
    }
    // Phase 2: the workload shifts to a new pair, re-queried repeatedly.
    for _ in 0..12 {
        dev.fc_read(&Expr::var(ids[2])).unwrap();
        dev.fc_read(&Expr::var(ids[3])).unwrap();
    }
    let (_, s2) = dev.fc_read(&Expr::var(ids[2])).unwrap();
    let (_, s3) = dev.fc_read(&Expr::var(ids[3])).unwrap();
    assert_eq!(s2.senses + s3.senses, 0, "the new working set eventually resides");
    assert!(dev.session().cache_stats().rejections > 0, "the shift was resisted, then won");
}

/// Operations the interleaving proptest can apply.
#[derive(Debug, Clone, Copy)]
enum Op {
    Submit,
    SubmitAsync,
    Maintain,
    Overwrite(usize),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ISSUE satellite: interleaving `submit` / `submit_async` /
    /// `run_maintenance` / `fc_overwrite` never changes any query result
    /// — every result matches a cold-cache, no-maintenance reference
    /// device and ground-truth evaluation, so background migrations are
    /// invisible to queries and invalidated cache entries are never
    /// served.
    #[test]
    fn background_maintenance_never_changes_results(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut maint = device();
        let cold = device();
        cold.set_result_cache_capacity(0);

        let bits = maint.config().page_bits();
        let mut truth: Vec<BitVec> = Vec::new();
        for i in 0..5usize {
            let v = BitVec::random(bits, &mut rng);
            let hints = StoreHints::and_group(&format!("solo{i}"));
            maint.fc_write(&format!("op{i}"), &v, hints.clone()).unwrap();
            cold.fc_write(&format!("op{i}"), &v, hints).unwrap();
            truth.push(v);
        }
        let ids: Vec<usize> = (0..5).collect();
        // Aggressive maintenance so migrations actually interleave.
        maint.set_maintenance_config(MaintenanceConfig {
            min_cofuse: 1,
            scatter_ratio: 1.0,
            ..MaintenanceConfig::default()
        });

        let random_batch = |rng: &mut StdRng| -> QueryBatch {
            (0..rng.gen_range(1usize..=3))
                .map(|_| {
                    let k = rng.gen_range(2usize..=3);
                    let start = rng.gen_range(0..=ids.len() - k);
                    let slice = ids[start..start + k].iter().copied();
                    match rng.gen_range(0..3) {
                        0 => Expr::and_vars(slice),
                        1 => Expr::or_vars(slice),
                        _ => Expr::xor(Expr::var(ids[start]), Expr::var(ids[start + 1])),
                    }
                })
                .collect()
        };

        let mut in_flight: Vec<(flash_cosmos::Ticket, QueryBatch)> = Vec::new();
        for _ in 0..12 {
            let op = match rng.gen_range(0..6) {
                0 | 1 => Op::Submit,
                2 => Op::SubmitAsync,
                3 => Op::Maintain,
                _ => Op::Overwrite(rng.gen_range(0..5)),
            };
            match op {
                Op::Submit => {
                    let batch = random_batch(&mut rng);
                    let a = maint.submit(&batch).map_err(|e| TestCaseError::fail(e.to_string()))?;
                    let b = cold.submit(&batch).map_err(|e| TestCaseError::fail(e.to_string()))?;
                    prop_assert_eq!(&a.results, &b.results,
                        "maintained device diverged from the reference");
                    for (qi, q) in batch.queries().iter().enumerate() {
                        let lookup = |i: usize| truth[i].clone();
                        prop_assert_eq!(&a.results[qi], &q.eval(&lookup),
                            "query {} diverged from ground truth", qi);
                    }
                }
                Op::SubmitAsync => {
                    let batch = random_batch(&mut rng);
                    let ticket = maint.submit_async(&batch)
                        .map_err(|e| TestCaseError::fail(e.to_string()))?;
                    in_flight.push((ticket, batch));
                }
                Op::Maintain => {
                    // Plans against current heat and migrates immediately —
                    // possibly while async batches are in flight (they must
                    // recompile at drain).
                    maint.run_maintenance().map_err(|e| TestCaseError::fail(e.to_string()))?;
                }
                Op::Overwrite(i) => {
                    let v = BitVec::random(bits, &mut rng);
                    maint.fc_overwrite(&format!("op{i}"), &v)
                        .map_err(|e| TestCaseError::fail(e.to_string()))?;
                    cold.fc_overwrite(&format!("op{i}"), &v)
                        .map_err(|e| TestCaseError::fail(e.to_string()))?;
                    truth[i] = v;
                }
            }
            assert_audit_clean(&maint)?;
        }
        maint.drain().map_err(|e| TestCaseError::fail(e.to_string()))?;
        assert_audit_clean(&maint)?;
        for (ticket, batch) in in_flight.drain(..) {
            let got = maint.wait(ticket).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let reference = cold.submit(&batch).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&got.results, &reference.results,
                "async batch diverged from the reference");
            for (qi, q) in batch.queries().iter().enumerate() {
                let lookup = |i: usize| truth[i].clone();
                prop_assert_eq!(&got.results[qi], &q.eval(&lookup),
                    "async query {} diverged from ground truth", qi);
            }
        }
    }
}
