//! End-to-end integration: full workload instances flow through the
//! Flash-Cosmos device (FTL placement → batched planner → chip MWS →
//! result assembly) and match host ground truth, on both FC and ParaBit
//! paths. Flash-Cosmos runs go through the `submit` query-session API
//! (one jointly planned batch per instance); ParaBit stays serial.

use fc_ssd::SsdConfig;
use fc_workloads::{bmi, ims, kcs};
use flash_cosmos::FlashCosmosDevice;

#[test]
fn bmi_instance_end_to_end() {
    let instance = bmi::mini(12, 1024, 0xE2E1);
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    instance.load(&mut dev).unwrap();
    let fc = instance.run_flash_cosmos(&mut dev).unwrap();
    let pb = instance.run_parabit(&mut dev).unwrap();
    // 12 daily vectors over 8-WL blocks: FC needs ceil(12/8)=2 MWS per
    // stripe; PB needs 12 senses per stripe.
    assert_eq!(pb / fc, 6, "FC {fc} vs PB {pb}");
}

#[test]
fn ims_instance_end_to_end() {
    let instance = ims::mini(2, 24, 16, 0xE2E2);
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    instance.load(&mut dev).unwrap();
    let fc = instance.run_flash_cosmos(&mut dev).unwrap();
    let pb = instance.run_parabit(&mut dev).unwrap();
    assert_eq!(pb, 3 * fc, "3 operands → 3× the ParaBit senses");
}

#[test]
fn kcs_instance_end_to_end() {
    let instance = kcs::mini(64, 4, 3, 0xE2E3);
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    instance.load(&mut dev).unwrap();
    let fc = instance.run_flash_cosmos(&mut dev).unwrap();
    let pb = instance.run_parabit(&mut dev).unwrap();
    // Per stripe per clique: FC fuses AND(k)+OR into one sense; PB needs
    // k+1 senses.
    assert_eq!(pb, 5 * fc, "k=4 plus clique vector → 5× senses for PB");
}

#[test]
fn kcs_batch_stats_match_serial_plan() {
    // The three clique queries are all distinct, so the joint plan
    // matches the serial plan sense for sense — BatchStats must say so.
    let instance = kcs::mini(64, 4, 3, 0xE2E5);
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    // In-batch dedup is under test here, so the cross-batch result cache
    // (which would answer the second submit without sensing) is disabled.
    dev.set_result_cache_capacity(0);
    instance.load(&mut dev).unwrap();
    let stats = instance.run_batch(&mut dev).unwrap();
    assert_eq!(stats.queries, 3);
    assert_eq!(stats.senses, stats.serial_senses, "distinct queries share nothing");
    assert_eq!(stats.deduped_queries, 0);
    assert!(stats.critical_path_us <= stats.chip_time_us);
    // A duplicated query list, on the other hand, halves the senses.
    let mut batch = instance.batch();
    batch.extend(instance.queries.iter().map(|q| q.expr.clone()));
    let out = dev.submit(&batch).unwrap();
    assert_eq!(out.stats.deduped_queries, 3);
    assert_eq!(out.stats.senses, stats.senses, "duplicates ride the original passes");
    assert_eq!(out.stats.serial_senses, 2 * stats.serial_senses);
    for (qi, q) in instance.queries.iter().enumerate() {
        assert_eq!(out.results[qi], q.expected);
        assert_eq!(out.results[qi + 3], q.expected);
    }
}

#[test]
fn results_survive_worst_case_aging_with_error_injection() {
    // The paper's end-to-end reliability claim on the full stack: noisy
    // chips at worst-case stress, ESP-stored operands → exact results.
    let instance = bmi::mini(8, 512, 0xE2E4);
    let mut dev = FlashCosmosDevice::new_noisy(SsdConfig::tiny_test());
    instance.load(&mut dev).unwrap();
    dev.ssd_mut().set_retention_months(12.0);
    instance.run_flash_cosmos(&mut dev).unwrap();
}

#[test]
fn many_workloads_share_one_device() {
    // Different workloads co-reside on one SSD without interfering.
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let a = bmi::mini(4, 256, 1);
    let b = ims::mini(1, 8, 8, 2);
    a.load(&mut dev).unwrap();
    // IMS operand names don't clash with BMI's, but ids continue.
    let base = dev.operand("day3").unwrap().id + 1;
    for (i, op) in b.operands.iter().enumerate() {
        let h = dev.fc_write(&op.name, &op.data, op.hints.clone()).unwrap();
        assert_eq!(h.id, base + i);
    }
    a.run_flash_cosmos(&mut dev).unwrap();
}
