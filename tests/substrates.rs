//! Substrate-level property tests: BCH ECC, the randomizer, the
//! bit-vector kernel and the DES primitives — invariants that everything
//! above depends on.

use fc_bits::BitVec;
use fc_nand::geometry::WlAddr;
use fc_nand::randomizer::Randomizer;
use fc_ssd::ecc::{BchCode, DecodeOutcome};
use fc_ssd::sim::{EventQueue, Resource};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BCH corrects any pattern of up to t errors, anywhere.
    #[test]
    fn bch_corrects_any_t_errors(
        payload_seed in any::<u64>(),
        positions in prop::collection::btree_set(0usize..63, 0..=3),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let code = BchCode::new(6, 3);
        let mut rng = StdRng::seed_from_u64(payload_seed);
        let payload = BitVec::random(code.k(), &mut rng);
        let mut cw = code.encode(&payload);
        for &p in &positions {
            cw.flip(p);
        }
        match code.decode(&cw) {
            DecodeOutcome::Corrected { data, errors } => {
                prop_assert_eq!(data, payload);
                prop_assert_eq!(errors, positions.len());
            }
            DecodeOutcome::Uncorrectable => {
                return Err(TestCaseError::fail("≤t errors must always decode"));
            }
        }
    }

    /// Codewords are closed under XOR (linearity of the code).
    #[test]
    fn bch_is_linear(a_seed in any::<u64>(), b_seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let code = BchCode::new(5, 2);
        let mut ra = StdRng::seed_from_u64(a_seed);
        let mut rb = StdRng::seed_from_u64(b_seed);
        let pa = BitVec::random(code.k(), &mut ra);
        let pb = BitVec::random(code.k(), &mut rb);
        let sum_cw = code.encode(&pa).xor(&code.encode(&pb));
        match code.decode(&sum_cw) {
            DecodeOutcome::Corrected { data, errors } => {
                prop_assert_eq!(errors, 0, "XOR of codewords is a codeword");
                prop_assert_eq!(data, pa.xor(&pb));
            }
            DecodeOutcome::Uncorrectable => {
                return Err(TestCaseError::fail("linearity violated"));
            }
        }
    }

    /// Randomization is an involution and preserves Hamming distance
    /// (i.e. bit errors survive descrambling — why ECC still works after
    /// the scrambler, §2.2).
    #[test]
    fn randomizer_involution_and_error_transparency(
        seed in any::<u64>(),
        plane in 0u32..2,
        block in 0u32..64,
        wl in 0u32..48,
        flips in 0usize..32,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let r = Randomizer::new(seed ^ 0x5EED);
        let addr = WlAddr::new(plane, block, wl);
        let data = BitVec::random(1024, &mut rng);
        let scrambled = r.randomize(addr, &data);
        prop_assert_eq!(&r.derandomize(addr, &scrambled), &data);
        let mut corrupted = scrambled.clone();
        corrupted.flip_random_bits(flips, &mut rng);
        let descrambled = r.derandomize(addr, &corrupted);
        prop_assert_eq!(descrambled.hamming_distance(&data), flips);
    }

    /// Bulk ops distribute over slicing: slice(a AND b) == slice(a) AND
    /// slice(b) — the property the striped device layout depends on.
    #[test]
    fn bitvec_ops_commute_with_slicing(
        seed in any::<u64>(),
        len in 64usize..512,
        cut in 1usize..64,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BitVec::random(len, &mut rng);
        let b = BitVec::random(len, &mut rng);
        let start = cut.min(len - 1);
        let n = (len - start).min(100);
        prop_assert_eq!(
            a.and(&b).slice(start, n),
            a.slice(start, n).and(&b.slice(start, n))
        );
        prop_assert_eq!(
            a.or(&b).slice(start, n),
            a.slice(start, n).or(&b.slice(start, n))
        );
    }

    /// Resources never overlap reservations and never travel back in
    /// time.
    #[test]
    fn resource_reservations_are_monotone(
        requests in prop::collection::vec((0u64..1000, 1u64..100), 1..32),
    ) {
        let mut r = Resource::new();
        let mut last_end = 0u64;
        let mut total = 0u64;
        for (ready, dur) in requests {
            let (start, end) = r.reserve(ready, dur);
            prop_assert!(start >= ready);
            prop_assert!(start >= last_end, "FIFO: no overlap");
            prop_assert_eq!(end - start, dur);
            last_end = end;
            total += dur;
        }
        prop_assert_eq!(r.busy_time(), total);
    }

    /// The event queue is a stable priority queue.
    #[test]
    fn event_queue_is_stable_and_ordered(
        events in prop::collection::vec(0u64..50, 1..64),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in events.iter().enumerate() {
            q.push(t, i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), events.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time ordered");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO for ties");
            }
        }
    }
}
