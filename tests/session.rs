//! The async session layer end to end: ticketed submission overlapping
//! batches across dies, and the generation-stamped cross-batch result
//! cache staying bit-identical to a cold-cache device under interleaved
//! writes, overwrites and migrations.

use std::time::Instant;

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use flash_cosmos::{Expr, FcError, FlashCosmosDevice, QueryBatch, Severity, StoreHints};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn device() -> FlashCosmosDevice {
    FlashCosmosDevice::new(SsdConfig::tiny_test())
}

/// The `fc_audit` device pass stays error-free after every interleaving
/// step (warn-level coverage findings are allowed in mixed scenarios).
fn assert_audit_clean(dev: &FlashCosmosDevice) -> Result<(), TestCaseError> {
    let errors: Vec<_> =
        dev.audit().into_iter().filter(|f| f.severity == Severity::Error).collect();
    prop_assert!(errors.is_empty(), "device audit found errors: {errors:?}");
    Ok(())
}

/// Stores `n` random page-sized vectors in one AND group (optionally die
/// pinned), returning ids and data.
fn store_group(
    dev: &mut FlashCosmosDevice,
    group: &str,
    n: usize,
    die: Option<usize>,
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<BitVec>) {
    let bits = dev.config().page_bits();
    let mut ids = Vec::new();
    let mut data = Vec::new();
    for i in 0..n {
        let mut hints = StoreHints::and_group(group);
        if let Some(d) = die {
            hints = hints.with_die(d);
        }
        let v = BitVec::random(bits, rng);
        ids.push(dev.fc_write(&format!("{group}-{i}"), &v, hints).unwrap().id);
        data.push(v);
    }
    (ids, data)
}

/// The repeat-heavy 16-query mix the resubmit bench uses.
fn sixteen_queries(ids: &[usize]) -> QueryBatch {
    (0..16)
        .map(|q| match q % 4 {
            0 => Expr::and_vars(ids.iter().copied()),
            1 => Expr::and_vars(ids.iter().rev().copied()),
            2 => Expr::and_vars(ids[..4].iter().copied()),
            _ => Expr::and_vars(ids[q % 5..].iter().copied()),
        })
        .collect()
}

/// ISSUE acceptance: re-submitting a 16-query batch with a warm cache is
/// ≥5× cheaper than the cold submit in modeled senses and wall time, and
/// bit-exact versus a cold-cache device.
#[test]
fn warm_resubmit_is_five_times_cheaper_and_bit_exact() {
    let mut rng = StdRng::seed_from_u64(0x5E55);
    let mut warm_dev = device();
    // 16 Ki-bit vectors (64 stripes on the tiny geometry): the cold
    // submit's chip-simulation cost dwarfs the warm path's fixed
    // compile/replay overhead, so the ≥5× wall-time bar holds with a
    // wide margin even on noisy CI runners.
    let vectors: Vec<BitVec> = (0..8).map(|_| BitVec::random(16_384, &mut rng)).collect();
    let ids: Vec<usize> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| {
            warm_dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("g")).unwrap().id
        })
        .collect();
    let mut cold_dev = device();
    cold_dev.set_result_cache_capacity(0);
    for (i, v) in vectors.iter().enumerate() {
        cold_dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("g")).unwrap();
    }
    let batch = sixteen_queries(&ids);

    let cold = warm_dev.submit(&batch).unwrap();
    assert!(cold.stats.senses > 0);
    assert_eq!(cold.stats.cached_units, 0, "first submit is all fresh work");

    // Modeled cost: the warm resubmit replays every unit from the cache.
    let warm = warm_dev.submit(&batch).unwrap();
    assert_eq!(warm.stats.senses, 0, "fully warm: no sensing at all");
    assert_eq!(warm.stats.chip_time_us, 0.0);
    assert!(warm.stats.cached_units > 0);
    assert_eq!(warm.stats.cached_senses, cold.stats.senses);
    assert!(
        warm.stats.senses * 5 <= cold.stats.senses,
        "≥5× in modeled senses: warm {} vs cold {}",
        warm.stats.senses,
        cold.stats.senses
    );
    // serial_senses still models the cold serial cost, so senses_saved
    // reports the full amortization.
    assert_eq!(warm.stats.serial_senses, cold.stats.serial_senses);

    // Bit-exactness: warm results == cold-submit results == a device that
    // never caches.
    let reference = cold_dev.submit(&batch).unwrap();
    assert_eq!(warm.results, cold.results);
    assert_eq!(warm.results, reference.results);

    // Wall time: median of repeated warm submits ≥5× under the median of
    // repeated cold-cache submits of the same batch.
    let median = |dev: &mut FlashCosmosDevice| {
        let mut outs: Vec<BitVec> = (0..batch.len()).map(|_| BitVec::zeros(0)).collect();
        let mut samples: Vec<f64> = (0..9)
            .map(|_| {
                let t = Instant::now();
                dev.submit_into(&batch, &mut outs).unwrap();
                t.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let warm_time = median(&mut warm_dev);
    let cold_time = median(&mut cold_dev);
    assert!(
        warm_time * 5.0 <= cold_time,
        "≥5× in wall time: warm {:.1} µs vs cold {:.1} µs",
        warm_time * 1e6,
        cold_time * 1e6
    );
}

/// ISSUE acceptance: two async batches whose work lands on different dies
/// drain with a combined critical path strictly below two serial submits.
#[test]
fn overlapped_async_batches_beat_serial_submits() {
    let mut rng = StdRng::seed_from_u64(0xA51C);
    let mut dev = device();
    // Batch A's groups pinned to dies 0/1, batch B's to dies 2/3: the
    // batches' busy dies are disjoint, so they should fully overlap.
    let mut batch_a = QueryBatch::new();
    let mut batch_b = QueryBatch::new();
    let mut expected_a = Vec::new();
    let mut expected_b = Vec::new();
    for g in 0..4 {
        let (ids, data) = store_group(&mut dev, &format!("a{g}"), 2, Some(g % 2), &mut rng);
        batch_a.push(Expr::and_vars(ids.iter().copied()));
        expected_a.push(data[0].and(&data[1]));
        let (ids, data) = store_group(&mut dev, &format!("b{g}"), 2, Some(2 + g % 2), &mut rng);
        batch_b.push(Expr::and_vars(ids.iter().copied()));
        expected_b.push(data[0].and(&data[1]));
    }

    let ta = dev.submit_async(&batch_a).unwrap();
    let tb = dev.submit_async(&batch_b).unwrap();
    assert_eq!(dev.session().in_flight(), 2);
    let drained = dev.drain().unwrap();
    assert_eq!(drained.batches, 2);
    assert!(drained.senses > 0);
    assert!(
        drained.combined_critical_path_us < drained.serial_critical_path_us,
        "disjoint-die batches must overlap: combined {} vs serial {}",
        drained.combined_critical_path_us,
        drained.serial_critical_path_us
    );
    assert!(drained.overlap_saved_us() > 0.0);
    assert_eq!(drained.dies_used, 4);

    // The serial reference on a fresh device reports the same per-batch
    // critical paths the drain summed.
    let mut serial_dev = device();
    let mut rng = StdRng::seed_from_u64(0xA51C);
    for g in 0..4 {
        store_group(&mut serial_dev, &format!("a{g}"), 2, Some(g % 2), &mut rng);
        store_group(&mut serial_dev, &format!("b{g}"), 2, Some(2 + g % 2), &mut rng);
    }
    let sa = serial_dev.submit(&batch_a).unwrap();
    let sb = serial_dev.submit(&batch_b).unwrap();
    let serial_sum = sa.stats.critical_path_us + sb.stats.critical_path_us;
    assert!((drained.serial_critical_path_us - serial_sum).abs() < 1e-6);
    assert!(drained.combined_critical_path_us < serial_sum);

    // And the overlapped results are bit-exact.
    let ra = ta.wait(&dev).unwrap();
    let rb = tb.wait(&dev).unwrap();
    assert_eq!(ra.results, expected_a);
    assert_eq!(rb.results, expected_b);
    assert_eq!(ra.results, sa.results);
    assert_eq!(rb.results, sb.results);
}

/// An overwrite between `submit_async` and `drain` must not let the
/// queued (already compiled) programs sense stale wordlines: the drain
/// recompiles and observes drain-time data.
#[test]
fn async_batches_observe_drain_time_data() {
    let mut rng = StdRng::seed_from_u64(0xD8A1);
    let mut dev = device();
    let (ids, data) = store_group(&mut dev, "g", 2, None, &mut rng);
    let mut batch = QueryBatch::new();
    batch.push(Expr::and_vars(ids.iter().copied()));

    let ticket = dev.submit_async(&batch).unwrap();
    let replacement = BitVec::random(dev.config().page_bits(), &mut rng);
    dev.fc_overwrite("g-0", &replacement).unwrap();
    let results = ticket.wait(&dev).unwrap();
    assert_eq!(
        results.results[0],
        replacement.and(&data[1]),
        "drained queries observe the overwrite, not the stale compile"
    );

    // Same, via the cache: the pre-overwrite result was cached, but its
    // generation-stamped key can never serve the post-overwrite query.
    let after = dev.submit(&batch).unwrap();
    assert_eq!(after.results[0], replacement.and(&data[1]));
}

/// Overwrite and migration invalidation on the synchronous path, plus
/// handle/geometry stability across `fc_overwrite`.
#[test]
fn overwrite_and_migration_invalidate_cached_results() {
    let mut rng = StdRng::seed_from_u64(0x0F11);
    let mut dev = device();
    let (ids, data) = store_group(&mut dev, "g", 3, None, &mut rng);
    let expr = Expr::and_vars(ids.iter().copied());
    let (first, s) = dev.fc_read(&expr).unwrap();
    assert!(s.senses > 0);
    assert_eq!(first, data[0].and(&data[1]).and(&data[2]));

    // Overwrite: same handle, new data, cache miss by construction.
    let replacement = BitVec::random(dev.config().page_bits(), &mut rng);
    let h = dev.fc_overwrite("g-1", &replacement).unwrap();
    assert_eq!(h.id, ids[1], "overwrite keeps the handle");
    let (second, s) = dev.fc_read(&expr).unwrap();
    assert!(s.senses > 0, "generation bump forces re-execution");
    assert_eq!(second, data[0].and(&replacement).and(&data[2]));

    // Migration: data unchanged but placement moved — conservatively
    // invalidated, still bit-exact afterwards.
    let (warm, s) = dev.fc_read(&expr).unwrap();
    assert_eq!(s.senses, 0, "warm again before the migration");
    dev.migrate_operand("g-2", StoreHints::and_group("elsewhere")).unwrap();
    let (third, s) = dev.fc_read(&expr).unwrap();
    assert!(s.senses > 0, "migration bump forces re-execution");
    assert_eq!(third, warm, "migration preserves data");

    // Error paths: unknown names and geometry changes are rejected.
    assert!(matches!(
        dev.fc_overwrite("nonexistent", &replacement).unwrap_err(),
        FcError::UnknownName(_)
    ));
    assert!(matches!(
        dev.fc_overwrite("g-0", &BitVec::zeros(7)).unwrap_err(),
        FcError::SizeMismatch
    ));
}

/// Operations a random interleaving can apply to both devices.
#[derive(Debug, Clone, Copy)]
enum Op {
    Submit,
    SubmitAsync,
    Overwrite(usize),
    Migrate(usize),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ISSUE acceptance (cache soundness): interleaving `submit_async` /
    /// `submit` with `fc_overwrite` overwrites and `migrate_operand`
    /// moves keeps every result bit-identical to a cold-cache device
    /// executing the same sequence, and to ground-truth evaluation over
    /// the current data, at every step.
    #[test]
    fn cached_results_match_cold_cache_device_under_interleaved_writes(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cached = device();
        let mut cold = device();
        cold.set_result_cache_capacity(0);

        // 5 operands in singleton groups → maximal die scatter.
        let bits = cached.config().page_bits();
        let mut truth: Vec<BitVec> = Vec::new();
        for i in 0..5usize {
            let v = BitVec::random(bits, &mut rng);
            let hints = StoreHints::and_group(&format!("solo{i}"));
            cached.fc_write(&format!("op{i}"), &v, hints.clone()).unwrap();
            cold.fc_write(&format!("op{i}"), &v, hints).unwrap();
            truth.push(v);
        }
        let ids: Vec<usize> = (0..5).collect();

        let random_batch = |rng: &mut StdRng| -> QueryBatch {
            (0..rng.gen_range(1usize..=3))
                .map(|_| {
                    let k = rng.gen_range(2usize..=3);
                    let start = rng.gen_range(0..=ids.len() - k);
                    let slice = ids[start..start + k].iter().copied();
                    match rng.gen_range(0..3) {
                        0 => Expr::and_vars(slice),
                        1 => Expr::or_vars(slice),
                        _ => Expr::xor(Expr::var(ids[start]), Expr::var(ids[start + 1])),
                    }
                })
                .collect()
        };

        // Async batches queue on the cached device; the cold reference
        // submits them at drain time (drained queries observe drain-time
        // data by contract).
        let mut in_flight: Vec<(flash_cosmos::Ticket, QueryBatch)> = Vec::new();
        let drain_and_compare = |cached: &mut FlashCosmosDevice,
                                     cold: &mut FlashCosmosDevice,
                                     in_flight: &mut Vec<(flash_cosmos::Ticket, QueryBatch)>,
                                     truth: &[BitVec]|
         -> Result<(), TestCaseError> {
            cached.drain().map_err(|e| TestCaseError::fail(e.to_string()))?;
            for (ticket, batch) in in_flight.drain(..) {
                let got = cached.wait(ticket).map_err(|e| TestCaseError::fail(e.to_string()))?;
                let reference = cold.submit(&batch)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert_eq!(&got.results, &reference.results,
                    "async batch diverged from the cold-cache device");
                for (qi, q) in batch.queries().iter().enumerate() {
                    let lookup = |i: usize| truth[i].clone();
                    prop_assert_eq!(&got.results[qi], &q.eval(&lookup),
                        "async query {} diverged from ground truth", qi);
                }
            }
            Ok(())
        };

        for _ in 0..10 {
            let op = match rng.gen_range(0..5) {
                0 | 1 => Op::Submit,
                2 => Op::SubmitAsync,
                3 => Op::Overwrite(rng.gen_range(0..5)),
                _ => Op::Migrate(rng.gen_range(0..5)),
            };
            match op {
                Op::Submit => {
                    let batch = random_batch(&mut rng);
                    let a = cached.submit(&batch).map_err(|e| TestCaseError::fail(e.to_string()))?;
                    let b = cold.submit(&batch).map_err(|e| TestCaseError::fail(e.to_string()))?;
                    prop_assert_eq!(&a.results, &b.results,
                        "cached submit diverged from the cold-cache device");
                    for (qi, q) in batch.queries().iter().enumerate() {
                        let lookup = |i: usize| truth[i].clone();
                        prop_assert_eq!(&a.results[qi], &q.eval(&lookup),
                            "query {} diverged from ground truth", qi);
                    }
                }
                Op::SubmitAsync => {
                    let batch = random_batch(&mut rng);
                    let ticket = cached.submit_async(&batch)
                        .map_err(|e| TestCaseError::fail(e.to_string()))?;
                    in_flight.push((ticket, batch));
                }
                Op::Overwrite(i) => {
                    let v = BitVec::random(bits, &mut rng);
                    cached.fc_overwrite(&format!("op{i}"), &v)
                        .map_err(|e| TestCaseError::fail(e.to_string()))?;
                    cold.fc_overwrite(&format!("op{i}"), &v)
                        .map_err(|e| TestCaseError::fail(e.to_string()))?;
                    truth[i] = v;
                }
                Op::Migrate(i) => {
                    let dest = StoreHints::and_group(&format!("gather{}", rng.gen_range(0..2)));
                    cached.migrate_operand(&format!("op{i}"), dest.clone())
                        .map_err(|e| TestCaseError::fail(e.to_string()))?;
                    cold.migrate_operand(&format!("op{i}"), dest)
                        .map_err(|e| TestCaseError::fail(e.to_string()))?;
                }
            }
            assert_audit_clean(&cached)?;
        }
        drain_and_compare(&mut cached, &mut cold, &mut in_flight, &truth)?;
        assert_audit_clean(&cached)?;
    }
}
