//! The `fc_audit` static analyzer end to end: healthy plans and devices
//! are finding-free, every lint code fires on its matching seeded
//! corruption (the mutation harness), and the ruleset modes route
//! findings correctly (deny panics, warn prints, off skips).

use fc_bits::BitVec;
use fc_nand::ispp::ProgramScheme;
use fc_ssd::SsdConfig;
use flash_cosmos::audit::{DeviceMutation, PlanMutation};
use flash_cosmos::{
    AuditConfig, AuditMode, Expr, FlashCosmosDevice, LintCode, QueryBatch, Severity, StoreHints,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn device() -> FlashCosmosDevice {
    FlashCosmosDevice::new(SsdConfig::tiny_test())
}

/// Stores `n` random page-sized vectors in one AND group.
fn store_group(
    dev: &mut FlashCosmosDevice,
    group: &str,
    n: usize,
    die: Option<usize>,
    rng: &mut StdRng,
) -> Vec<usize> {
    let bits = dev.config().page_bits();
    (0..n)
        .map(|i| {
            let mut hints = StoreHints::and_group(group);
            if let Some(d) = die {
                hints = hints.with_die(d);
            }
            let v = BitVec::random(bits, rng);
            dev.fc_write(&format!("{group}-{i}"), &v, hints).unwrap().id
        })
        .collect()
}

/// Compiles a healthy probe, asserts the plan lint is silent, applies
/// the mutation, and asserts `code` is among the fired findings.
fn assert_plan_mutation_fires(
    dev: &mut FlashCosmosDevice,
    batch: &QueryBatch,
    mutation: PlanMutation,
    code: LintCode,
) {
    let mut probe = dev.compile_probe(batch).unwrap();
    let healthy = dev.lint_probe(&probe);
    assert!(healthy.is_empty(), "healthy plan must lint clean, got {healthy:?}");
    assert!(dev.corrupt_probe(&mut probe, mutation), "{mutation:?} found nothing to corrupt");
    let findings = dev.lint_probe(&probe);
    assert!(
        findings.iter().any(|f| f.code == code),
        "{mutation:?} must fire {code}, got {findings:?}"
    );
}

/// Asserts a clean device audit, applies the mutation, and asserts
/// `code` is among the fired findings.
fn assert_device_mutation_fires(
    dev: &mut FlashCosmosDevice,
    mutation: DeviceMutation,
    code: LintCode,
) {
    let healthy = dev.audit();
    assert!(healthy.is_empty(), "healthy device must audit clean, got {healthy:?}");
    assert!(dev.corrupt_for_audit(mutation), "{mutation:?} found nothing to corrupt");
    let findings = dev.audit();
    assert!(
        findings.iter().any(|f| f.code == code),
        "{mutation:?} must fire {code}, got {findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Pass 1 — seeded plan corruptions, one per code.
// ---------------------------------------------------------------------------

#[test]
fn fc001_fires_on_forged_wordline() {
    let mut rng = StdRng::seed_from_u64(0xA001);
    let mut dev = device();
    let ids = store_group(&mut dev, "g", 3, None, &mut rng);
    let batch: QueryBatch = [Expr::and_vars(ids)].into_iter().collect();
    assert_plan_mutation_fires(&mut dev, &batch, PlanMutation::ForgeWordline, LintCode::Fc001);
}

#[test]
fn fc002_fires_on_dropped_merge() {
    let mut rng = StdRng::seed_from_u64(0xA002);
    let mut dev = device();
    let a = store_group(&mut dev, "a", 2, Some(0), &mut rng);
    let b = store_group(&mut dev, "b", 2, Some(1), &mut rng);
    // A query spanning two pinned dies forces the crossdie split + merge.
    let batch: QueryBatch = [Expr::and_vars(a.into_iter().chain(b))].into_iter().collect();
    assert_plan_mutation_fires(&mut dev, &batch, PlanMutation::DropMerge, LintCode::Fc002);
}

#[test]
fn fc003_fires_on_skewed_threshold_k() {
    let mut rng = StdRng::seed_from_u64(0xA003);
    let mut dev = device();
    let ids = store_group(&mut dev, "t", 5, None, &mut rng);
    // A co-resident threshold lowers to one chip-side ThresholdMws.
    let batch: QueryBatch = [Expr::threshold_vars(3, ids)].into_iter().collect();
    assert_plan_mutation_fires(&mut dev, &batch, PlanMutation::SkewThresholdK, LintCode::Fc003);
}

#[test]
fn fc004_fires_on_ml_unit_retagged_as_execute() {
    let mut rng = StdRng::seed_from_u64(0xA004);
    let mut dev = device();
    let bits = dev.config().page_bits();
    let mlc: Vec<BitVec> = (0..2).map(|_| BitVec::random(bits, &mut rng)).collect();
    let handles = dev
        .fc_write_ml(
            &["m0", "m1"],
            &mlc.iter().collect::<Vec<_>>(),
            StoreHints::and_group("ml").with_scheme(ProgramScheme::Mlc),
        )
        .unwrap();
    let batch: QueryBatch = [Expr::and_vars(handles.iter().map(|h| h.id))].into_iter().collect();
    assert_plan_mutation_fires(&mut dev, &batch, PlanMutation::RetagMlAsExecute, LintCode::Fc004);
}

#[test]
fn fc005_fires_on_skewed_unit_generation() {
    let mut rng = StdRng::seed_from_u64(0xA005);
    let mut dev = device();
    let ids = store_group(&mut dev, "g", 3, None, &mut rng);
    let batch: QueryBatch = [Expr::and_vars(ids)].into_iter().collect();
    assert_plan_mutation_fires(&mut dev, &batch, PlanMutation::SkewUnitGeneration, LintCode::Fc005);
}

#[test]
fn fc006_fires_on_misrouted_leaf_die() {
    let mut rng = StdRng::seed_from_u64(0xA006);
    let mut dev = device();
    let ids = store_group(&mut dev, "g", 3, None, &mut rng);
    let batch: QueryBatch = [Expr::and_vars(ids)].into_iter().collect();
    assert_plan_mutation_fires(&mut dev, &batch, PlanMutation::MisrouteLeafDie, LintCode::Fc006);
}

#[test]
fn fc007_fires_on_mispriced_unit() {
    let mut rng = StdRng::seed_from_u64(0xA007);
    let mut dev = device();
    let ids = store_group(&mut dev, "g", 3, None, &mut rng);
    let batch: QueryBatch = [Expr::and_vars(ids)].into_iter().collect();
    assert_plan_mutation_fires(&mut dev, &batch, PlanMutation::MispriceUnit, LintCode::Fc007);
}

// ---------------------------------------------------------------------------
// Pass 2 — seeded device corruptions, one per code.
// ---------------------------------------------------------------------------

#[test]
fn fc101_fires_on_undeclared_lpn_alias() {
    let mut rng = StdRng::seed_from_u64(0xA101);
    let mut dev = device();
    store_group(&mut dev, "g", 2, None, &mut rng);
    assert_device_mutation_fires(&mut dev, DeviceMutation::AliasLpn, LintCode::Fc101);
}

#[test]
fn fc102_fires_on_double_stripe_membership() {
    let mut rng = StdRng::seed_from_u64(0xA102);
    let mut dev = device();
    dev.enable_parity();
    store_group(&mut dev, "g", 2, None, &mut rng);
    assert!(dev.stripe_count() >= 1);
    assert_device_mutation_fires(&mut dev, DeviceMutation::DoubleStripeMember, LintCode::Fc102);
}

#[test]
fn fc103_fires_on_dropped_parity_member() {
    let mut rng = StdRng::seed_from_u64(0xA103);
    let mut dev = device();
    dev.enable_parity();
    // A two-page vector in an unpinned group spans two dies, so its
    // pages form one two-member stripe; dropping a member leaves a raw
    // FC page uncovered.
    let bits = 2 * dev.config().page_bits();
    let v = BitVec::random(bits, &mut rng);
    dev.fc_write("wide", &v, StoreHints::and_group("g")).unwrap();
    assert_device_mutation_fires(&mut dev, DeviceMutation::DropParityMember, LintCode::Fc103);
    // The coverage gap is a warning, not an error: the state is
    // degraded-but-honest, never unsound.
    assert!(dev.audit().iter().all(|f| f.severity == Severity::Warning));
}

#[test]
fn fc103_fires_naturally_on_pages_written_before_parity() {
    let mut rng = StdRng::seed_from_u64(0xA113);
    let mut dev = device();
    // Pages written before enable_parity() stay uncovered — the audit
    // surfaces exactly that, with no seeded mutation needed.
    store_group(&mut dev, "early", 2, None, &mut rng);
    assert!(dev.audit().is_empty(), "no parity, no coverage obligation");
    dev.enable_parity();
    let findings = dev.audit();
    assert!(findings.iter().any(|f| f.code == LintCode::Fc103), "got {findings:?}");
}

#[test]
fn fc104_fires_on_ml_operands_under_parity() {
    let mut rng = StdRng::seed_from_u64(0xA104);
    let mut dev = device();
    dev.enable_parity();
    assert!(dev.audit().is_empty());
    let bits = dev.config().page_bits();
    let mlc: Vec<BitVec> = (0..2).map(|_| BitVec::random(bits, &mut rng)).collect();
    dev.fc_write_ml(
        &["m0", "m1"],
        &mlc.iter().collect::<Vec<_>>(),
        StoreHints::and_group("ml").with_scheme(ProgramScheme::Mlc),
    )
    .unwrap();
    // The documented fc_write_ml protection gap: parity is on, ML pages
    // are outside it. Warn-level — the contract says so.
    let findings = dev.audit();
    let f = findings.iter().find(|f| f.code == LintCode::Fc104).expect("FC104 must fire");
    assert_eq!(f.severity, Severity::Warning);
}

#[test]
fn fc105_fires_on_future_cache_generation() {
    let mut rng = StdRng::seed_from_u64(0xA105);
    let mut dev = device();
    store_group(&mut dev, "g", 2, None, &mut rng);
    assert_device_mutation_fires(&mut dev, DeviceMutation::SkewCacheGeneration, LintCode::Fc105);
}

#[test]
fn fc106_fires_on_dead_maintenance_job() {
    let mut rng = StdRng::seed_from_u64(0xA106);
    let mut dev = device();
    store_group(&mut dev, "g", 2, None, &mut rng);
    assert_device_mutation_fires(&mut dev, DeviceMutation::DeadJob, LintCode::Fc106);
}

#[test]
fn fc106_fires_on_never_allocated_scrub_target() {
    let mut rng = StdRng::seed_from_u64(0xA116);
    let mut dev = device();
    store_group(&mut dev, "g", 2, None, &mut rng);
    assert_device_mutation_fires(&mut dev, DeviceMutation::UnmappedScrub, LintCode::Fc106);
}

#[test]
fn fc107_fires_on_corrupted_operand_plane_cache() {
    let mut rng = StdRng::seed_from_u64(0xA107);
    let mut dev = device();
    store_group(&mut dev, "g", 2, None, &mut rng);
    assert_device_mutation_fires(&mut dev, DeviceMutation::SwapOperandPlane, LintCode::Fc107);
}

#[test]
fn fc108_fires_on_cross_channel_shard_entry() {
    let mut rng = StdRng::seed_from_u64(0xA108);
    let mut dev = device();
    store_group(&mut dev, "g", 2, None, &mut rng);
    assert_device_mutation_fires(&mut dev, DeviceMutation::CrossChannelShardEntry, LintCode::Fc108);
}

// ---------------------------------------------------------------------------
// Healthy state stays silent across representative shapes.
// ---------------------------------------------------------------------------

#[test]
fn healthy_plans_lint_clean_across_shapes() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let mut dev = device();
    dev.enable_parity();
    let a = store_group(&mut dev, "a", 4, Some(0), &mut rng);
    let b = store_group(&mut dev, "b", 3, Some(1), &mut rng);
    let t = store_group(&mut dev, "t", 5, None, &mut rng);
    let shapes: Vec<Expr> = vec![
        Expr::and_vars(a.clone()),
        Expr::or_vars(b.clone()),
        Expr::threshold_vars(3, t.clone()),
        Expr::and_vars(a.iter().chain(&b).copied()),
        Expr::not(Expr::or_vars(t.clone())),
        Expr::or(vec![Expr::and_vars(a.clone()), Expr::and_vars(b.clone())]),
        Expr::majority_vars(t),
    ];
    let batch: QueryBatch = shapes.into_iter().collect();
    let probe = dev.compile_probe(&batch).unwrap();
    let findings = dev.lint_probe(&probe);
    assert!(findings.is_empty(), "healthy plans must lint clean, got {findings:?}");
    // And the full device stays clean too (parity was on before writes).
    let findings = dev.audit();
    assert!(findings.is_empty(), "healthy device must audit clean, got {findings:?}");
}

#[test]
fn healthy_device_audits_clean_after_maintenance_and_scrub() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut dev = device();
    dev.enable_parity();
    let ids = store_group(&mut dev, "g", 6, None, &mut rng);
    let batch: QueryBatch = [Expr::and_vars(ids.clone()), Expr::or_vars(ids)].into_iter().collect();
    dev.submit(&batch).unwrap();
    dev.run_scrub().unwrap();
    dev.drain().unwrap(); // enforce_device runs here in debug builds too
    let findings = dev.audit();
    assert!(findings.is_empty(), "got {findings:?}");
}

// ---------------------------------------------------------------------------
// Ruleset modes: deny panics, warn and off do not.
// ---------------------------------------------------------------------------

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "fc_audit")]
fn deny_mode_panics_on_corrupted_device_at_drain() {
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let mut dev = device();
    let ids = store_group(&mut dev, "g", 2, None, &mut rng);
    assert!(dev.corrupt_for_audit(DeviceMutation::AliasLpn));
    // Queue real work: an empty drain returns early without mutating
    // anything, so the device pass only arms on the full path.
    let batch: QueryBatch = [Expr::and_vars(ids)].into_iter().collect();
    let _ticket = dev.submit_async(&batch).unwrap();
    dev.drain().unwrap(); // debug-build enforcement hook fires FC101
}

#[test]
fn warn_override_downgrades_a_denied_code() {
    let mut rng = StdRng::seed_from_u64(0xD043);
    let mut dev = device();
    dev.set_audit_config(AuditConfig::deny().with_override(LintCode::Fc101, AuditMode::Warn));
    store_group(&mut dev, "g", 2, None, &mut rng);
    assert!(dev.corrupt_for_audit(DeviceMutation::AliasLpn));
    dev.drain().unwrap(); // FC101 only prints now
                          // The finding itself is still reported by the explicit pass.
    assert!(dev.audit().iter().any(|f| f.code == LintCode::Fc101));
}

#[test]
fn off_mode_disarms_the_hooks_entirely() {
    let mut rng = StdRng::seed_from_u64(0x0FF);
    let mut dev = device();
    dev.set_audit_config(AuditConfig::off());
    // The corrupted record is a bystander: the queried group comes later.
    store_group(&mut dev, "bystander", 1, None, &mut rng);
    let ids = store_group(&mut dev, "g", 2, None, &mut rng);
    assert!(dev.corrupt_for_audit(DeviceMutation::SwapOperandPlane));
    let batch: QueryBatch = [Expr::or_vars(ids)].into_iter().collect();
    let ticket = dev.submit_async(&batch).unwrap();
    dev.drain().unwrap(); // the armed hook would have denied FC107 here
    dev.wait(ticket).unwrap();
    // Explicit audits still see everything; only enforcement is off.
    assert!(dev.audit().iter().any(|f| f.code == LintCode::Fc107));
}

// ---------------------------------------------------------------------------
// Diagnostics surface.
// ---------------------------------------------------------------------------

#[test]
fn findings_are_typed_ordered_and_displayable() {
    let mut rng = StdRng::seed_from_u64(0xD15B);
    let mut dev = device();
    store_group(&mut dev, "g", 2, None, &mut rng);
    assert!(dev.corrupt_for_audit(DeviceMutation::UnmappedScrub));
    assert!(dev.corrupt_for_audit(DeviceMutation::SwapOperandPlane));
    let findings = dev.audit();
    // Sorted by code: FC106 before FC107, deterministically.
    let codes: Vec<LintCode> = findings.iter().map(|f| f.code).collect();
    let mut sorted = codes.clone();
    sorted.sort();
    assert_eq!(codes, sorted, "findings come back ordered");
    assert!(codes.contains(&LintCode::Fc106) && codes.contains(&LintCode::Fc107));
    for f in &findings {
        let line = f.to_string();
        assert!(line.starts_with(f.code.as_str()), "display leads with the code: {line}");
        assert!(!f.hint.is_empty(), "every finding carries a fix hint");
    }
    assert_eq!(LintCode::ALL.len(), 15);
}
