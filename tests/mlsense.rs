//! The mlsense subsystem end to end: in-flash Threshold/Majority
//! answers bit-exact against [`Expr::eval`] ground truth with operands
//! spread across SLC, MLC, and TLC encodings, under random thresholds,
//! shuffled batch orders, and `fc_overwrite` interleaving on the
//! single-bit operands.
//!
//! Replay: every property here derives all randomness from its proptest
//! seed, so a failure reported as `PROPTEST_SEED=<seed>` reproduces with
//! `PROPTEST_SEED=<seed> cargo test -p flash-cosmos --test mlsense`.
//! [`pinned_seed_replays_bit_identically`] pins one seed permanently as
//! the regression anchor for that replay path.

use fc_bits::BitVec;
use fc_nand::ispp::ProgramScheme;
use fc_ssd::SsdConfig;
use flash_cosmos::{Expr, FlashCosmosDevice, QueryBatch, Severity, StoreHints};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BITS: usize = 300; // two 256-bit stripes per operand

/// The `fc_audit` device pass stays error-free after every step of the
/// scenario (warn-level coverage findings are allowed in mixed ones).
fn assert_audit_clean(dev: &FlashCosmosDevice) -> Result<(), TestCaseError> {
    let errors: Vec<_> =
        dev.audit().into_iter().filter(|f| f.severity == Severity::Error).collect();
    prop_assert!(errors.is_empty(), "device audit found errors: {errors:?}");
    Ok(())
}

/// Deterministic Fisher–Yates driven by the scenario RNG.
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = (rng.gen::<u64>() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// One full scenario: `n_slc` single-bit operands plus an MLC pair and a
/// TLC triple, queried by a shuffled batch of threshold/majority/AND
/// forms at threshold `k`, then re-queried after `fc_overwrite` rewrites
/// a single-bit operand. Both rounds must match `Expr::eval` bit-exact.
fn threshold_scenario(seed: u64, n_slc: usize, k_sel: usize) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());

    // SLC singles: one co-located group, plain fc_write.
    let mut vectors: Vec<BitVec> = Vec::new();
    let mut ids: Vec<usize> = Vec::new();
    for i in 0..n_slc {
        let v = BitVec::random(BITS, &mut rng);
        let h = dev.fc_write(&format!("s{i}"), &v, StoreHints::and_group("slc")).unwrap();
        prop_assert_eq!(h.id, vectors.len());
        vectors.push(v);
        ids.push(h.id);
    }
    // An MLC pair and a TLC triple: multi-bit cells, controller-decoded.
    let mlc: Vec<BitVec> = (0..2).map(|_| BitVec::random(BITS, &mut rng)).collect();
    let handles = dev
        .fc_write_ml(
            &["m0", "m1"],
            &mlc.iter().collect::<Vec<_>>(),
            StoreHints::and_group("mlc").with_scheme(ProgramScheme::Mlc),
        )
        .unwrap();
    for (h, v) in handles.iter().zip(&mlc) {
        prop_assert_eq!(h.id, vectors.len());
        vectors.push(v.clone());
        ids.push(h.id);
    }
    let tlc: Vec<BitVec> = (0..3).map(|_| BitVec::random(BITS, &mut rng)).collect();
    let handles = dev
        .fc_write_ml(
            &["t0", "t1", "t2"],
            &tlc.iter().collect::<Vec<_>>(),
            StoreHints::and_group("tlc").with_scheme(ProgramScheme::Tlc),
        )
        .unwrap();
    for (h, v) in handles.iter().zip(&tlc) {
        prop_assert_eq!(h.id, vectors.len());
        vectors.push(v.clone());
        ids.push(h.id);
    }

    let n = ids.len();
    let k = 1 + k_sel % n;

    // The batch: a random threshold over everything, a majority over an
    // odd-size shuffled subset (always containing ML operands), per-
    // operand round trips across all three encodings, and a pure-SLC AND
    // (the planner path) — submitted in shuffled order.
    let mut shuffled = ids.clone();
    shuffle(&mut shuffled, &mut rng);
    let odd = n - (1 - n % 2); // largest odd subset size
    let mut queries: Vec<Expr> = vec![
        Expr::threshold_vars(k, shuffled.iter().copied()),
        Expr::majority_vars(shuffled.iter().copied().take(odd)),
        Expr::var(ids[n_slc]),     // MLC page round trip
        Expr::var(ids[n_slc + 2]), // TLC page round trip
        Expr::not(Expr::var(ids[n - 1])),
    ];
    if n_slc >= 2 {
        queries.push(Expr::and_vars(ids[..n_slc].iter().copied()));
    }
    shuffle(&mut queries, &mut rng);

    for round in 0..2 {
        let mut batch = QueryBatch::new();
        for q in &queries {
            batch.push(q.clone());
        }
        let got = dev.submit(&batch).unwrap();
        let lookup = |i: usize| vectors[i].clone();
        for (qi, q) in queries.iter().enumerate() {
            prop_assert_eq!(
                &got.results[qi],
                &q.eval(&lookup),
                "round {} diverged on {}",
                round,
                q
            );
        }
        // Interleave: rewrite one single-bit operand in place, then the
        // same shuffled batch must track the *new* ground truth (the
        // generation-stamped cache may not serve the stale round).
        if round == 0 {
            let victim = (rng.gen::<u64>() % n_slc as u64) as usize;
            let fresh = BitVec::random(BITS, &mut rng);
            dev.fc_overwrite(&format!("s{victim}"), &fresh).unwrap();
            vectors[victim] = fresh;
        }
        assert_audit_clean(&dev)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// In-flash Threshold/Majority match ground truth bit-exactly over
    /// mixed SLC/MLC/TLC operand sets, for random K and shuffled batch
    /// orders, across an fc_overwrite of a single-bit operand.
    #[test]
    fn in_flash_threshold_matches_ground_truth_across_encodings(
        seed in any::<u64>(),
        n_slc in 1usize..5,
        k_sel in 0usize..64,
    ) {
        threshold_scenario(seed, n_slc, k_sel)?;
    }
}

/// The pinned replay anchor: the exact scenario a hypothetical
/// `PROPTEST_SEED=0x4D4C_5345_4E53_4531` failure would re-run. Keeping
/// it as a plain test guarantees the replay path stays green (and
/// deterministic) even when the property above rotates its seeds.
#[test]
fn pinned_seed_replays_bit_identically() {
    const PINNED: u64 = 0x4D4C_5345_4E53_4531; // "MLSENSE1"
    threshold_scenario(PINNED, 3, 5).unwrap();
    threshold_scenario(PINNED, 3, 5).unwrap(); // bit-identical re-run
}

/// Threshold grounding across every k for a fixed mixed-encoding set:
/// k = 1 is OR, k = n is AND, interior k's count programmed operands —
/// all three regimes answered through the same controller decode.
#[test]
fn every_k_matches_on_a_mixed_encoding_set() {
    let mut rng = StdRng::seed_from_u64(0x7157);
    let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let mut vectors: Vec<BitVec> = Vec::new();
    for i in 0..2 {
        let v = BitVec::random(BITS, &mut rng);
        dev.fc_write(&format!("s{i}"), &v, StoreHints::and_group("slc")).unwrap();
        vectors.push(v);
    }
    let pages: Vec<BitVec> = (0..3).map(|_| BitVec::random(BITS, &mut rng)).collect();
    dev.fc_write_ml(
        &["t0", "t1", "t2"],
        &pages.iter().collect::<Vec<_>>(),
        StoreHints::and_group("tlc"),
    )
    .unwrap();
    vectors.extend(pages);
    let n = vectors.len();
    let lookup = |i: usize| vectors[i].clone();
    for k in 1..=n {
        let expr = Expr::threshold_vars(k, 0..n);
        let (got, _) = dev.fc_read(&expr).unwrap();
        assert_eq!(got, expr.eval(&lookup), "k={k}");
    }
}
