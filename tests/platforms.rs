//! Platform-model integration: Fig. 7 timelines, Fig. 17/18 orderings and
//! headline ratios, §8.3 write bandwidths — the quantitative claims the
//! reproduction must preserve in *shape*.

use fc_workloads::{bmi, ims, kcs};
use flash_cosmos::engines::{Engines, Platform};
use flash_cosmos::timeline::{Approach, Fig7Scenario};

fn get(v: &[(Platform, f64)], p: Platform) -> f64 {
    v.iter().find(|(q, _)| *q == p).map(|(_, x)| *x).unwrap()
}

#[test]
fn fig7_execution_times_within_tolerance() {
    let s = Fig7Scenario::default();
    let osp = s.run(Approach::Osp).unwrap().makespan_us;
    let isp = s.run(Approach::Isp).unwrap().makespan_us;
    let ifp = s.run(Approach::Ifp).unwrap().makespan_us;
    // Paper: 471 / 431 / 335 µs.
    assert!((osp - 471.0).abs() / 471.0 < 0.07, "OSP {osp}");
    assert!((isp - 431.0).abs() / 431.0 < 0.07, "ISP {isp}");
    assert!((ifp - 335.0).abs() / 335.0 < 0.07, "IFP {ifp}");
}

#[test]
fn average_speedups_match_headline_shape() {
    // §8.1: FC = 32× over OSP, 25× over ISP, 3.5× over PB on average
    // across all workloads and inputs. Geometric means over our sweeps
    // must land in the same regime.
    let engines = Engines::paper();
    let mut shapes = Vec::new();
    shapes.extend([1u32, 3, 6, 12, 24, 36].iter().map(|&m| bmi::paper_shape(m)));
    shapes.extend([10_000u64, 50_000, 100_000, 200_000].iter().map(|&i| ims::paper_shape(i)));
    shapes.extend([8u32, 16, 24, 32, 48, 64].iter().map(|&k| kcs::paper_shape(k)));

    let mut fc_over_osp = 1.0f64;
    let mut fc_over_pb = 1.0f64;
    let mut fc_over_isp = 1.0f64;
    for shape in &shapes {
        let s = engines.speedups_over_osp(shape);
        let fc = get(&s, Platform::FlashCosmos);
        fc_over_osp *= fc;
        fc_over_pb *= fc / get(&s, Platform::ParaBit);
        fc_over_isp *= fc / get(&s, Platform::Isp);
    }
    let n = shapes.len() as f64;
    let (g_osp, g_pb, g_isp) =
        (fc_over_osp.powf(1.0 / n), fc_over_pb.powf(1.0 / n), fc_over_isp.powf(1.0 / n));
    // Paper-headline regime (arithmetic-vs-geometric means and substrate
    // differences leave a factor ~2 band).
    assert!(g_osp > 8.0 && g_osp < 80.0, "FC over OSP geomean {g_osp} (paper avg 32)");
    assert!(g_pb > 1.5 && g_pb < 8.0, "FC over PB geomean {g_pb} (paper avg 3.5)");
    assert!(g_isp > 6.0 && g_isp < 70.0, "FC over ISP geomean {g_isp} (paper avg 25)");
}

#[test]
fn bmi_benefits_grow_with_operand_count() {
    // §8.1 observation four: FC's benefits grow with the operand count,
    // while PB's do not.
    let engines = Engines::paper();
    let mut last_fc = 0.0;
    for m in [1u32, 6, 12, 24, 36] {
        let s = engines.speedups_over_osp(&bmi::paper_shape(m));
        let fc = get(&s, Platform::FlashCosmos);
        assert!(fc > last_fc, "FC speedup must grow with m (m={m}: {fc})");
        last_fc = fc;
    }
}

#[test]
fn kcs_parabit_flattens_fc_scales() {
    // §8.1: "the performance of PB does not improve as the number of
    // operands increases (e.g., for k>16 in KCS)".
    let engines = Engines::paper();
    let pb16 = get(&engines.speedups_over_osp(&kcs::paper_shape(16)), Platform::ParaBit);
    let pb64 = get(&engines.speedups_over_osp(&kcs::paper_shape(64)), Platform::ParaBit);
    let fc16 = get(&engines.speedups_over_osp(&kcs::paper_shape(16)), Platform::FlashCosmos);
    let fc64 = get(&engines.speedups_over_osp(&kcs::paper_shape(64)), Platform::FlashCosmos);
    assert!(pb64 < pb16 * 1.3, "PB flat: k16 {pb16} vs k64 {pb64}");
    assert!(fc64 > fc16 * 1.5, "FC scales: k16 {fc16} vs k64 {fc64}");
}

#[test]
fn bmi_energy_max_exceeds_perf_max() {
    // §8.2: energy gains exceed performance gains (95× vs 32× average;
    // 1839× vs 198× at the BMI m=36 maximum).
    let engines = Engines::paper();
    let shape = bmi::paper_shape(36);
    let perf = get(&engines.speedups_over_osp(&shape), Platform::FlashCosmos);
    let energy = get(&engines.energy_gains_over_osp(&shape), Platform::FlashCosmos);
    assert!(energy > perf, "m=36: energy {energy} vs perf {perf}");
    assert!(energy > 200.0, "m=36 energy gain {energy} (paper 1839)");
}

#[test]
fn ims_fc_and_pb_tie() {
    // §8.1 observation six.
    let engines = Engines::paper();
    for i in [10_000u64, 200_000] {
        let s = engines.speedups_over_osp(&ims::paper_shape(i));
        let fc = get(&s, Platform::FlashCosmos);
        let pb = get(&s, Platform::ParaBit);
        assert!((fc / pb - 1.0).abs() < 0.3, "I={i}: FC {fc} vs PB {pb}");
    }
}

#[test]
fn write_bandwidth_ordering() {
    use fc_ssd::pipeline::sequential_write_gbps;
    let c = fc_ssd::SsdConfig::paper_table1();
    let slc = sequential_write_gbps(&c, c.tprog_slc_us, 1);
    let esp = sequential_write_gbps(&c, c.tesp_us, 1);
    let mlc = sequential_write_gbps(&c, c.tprog_mlc_us, 2);
    let tlc = sequential_write_gbps(&c, c.tprog_tlc_us, 3);
    // §8.3: ESP does not degrade write performance vs MLC/TLC.
    assert!(esp > mlc && mlc > tlc && esp < slc);
}
