//! Characterization integration: the Fig. 8/11–14 harnesses hit their
//! paper anchors, and the physics-mode chip agrees with the closed-form
//! RBER model within an order of magnitude (the cross-check promised in
//! DESIGN.md).

use fc_bits::BitVec;
use fc_nand::chip::NandChip;
use fc_nand::command::{Command, IscmFlags, MwsTarget};
use fc_nand::config::ChipConfig;
use fc_nand::geometry::BlockAddr;
use fc_nand::ispp::ProgramScheme;
use fc_nand::rber::RberModel;
use fc_nand::stress::StressState;
use flash_cosmos::reliability;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fig8_grid_is_monotone_in_stress() {
    let points = reliability::fig8_sweep();
    // For every (scheme, randomized, retention), RBER grows with PEC.
    for scheme_rand in [(true,), (false,)] {
        let _ = scheme_rand;
    }
    for p in &points {
        for q in &points {
            if p.scheme == q.scheme
                && p.randomized == q.randomized
                && p.retention_months == q.retention_months
                && p.pec < q.pec
            {
                assert!(p.rber < q.rber, "PEC monotonicity violated");
            }
        }
    }
}

#[test]
fn fig11_grades_are_ordered_and_decay() {
    let points = reliability::fig11_sweep();
    for step in 0..=8 {
        let ratio = 1.0 + 0.1 * step as f64;
        let at = |g: fc_nand::rber::BlockGrade| {
            points
                .iter()
                .find(|p| (p.tesp_ratio - ratio).abs() < 1e-9 && p.grade == g)
                .unwrap()
                .rber
        };
        use fc_nand::rber::BlockGrade::*;
        assert!(at(Worst) > at(Median) && at(Median) > at(Best), "ratio {ratio}");
    }
    // One decade of improvement at +60% (the §5.2 median-block claim).
    let median_at = |r: f64| {
        points
            .iter()
            .find(|p| {
                (p.tesp_ratio - r).abs() < 1e-9 && p.grade == fc_nand::rber::BlockGrade::Median
            })
            .unwrap()
            .rber
    };
    let decade = median_at(1.0) / median_at(1.6);
    assert!((decade - 10.0).abs() < 1.0, "decade ratio {decade}");
}

/// Physics mode (ISPP + stress + V_REF comparison) must land within an
/// order of magnitude of the calibrated closed-form model at the
/// worst-case corner — the two are independent implementations.
#[test]
fn physics_mode_crosschecks_closed_form() {
    let mut cfg = ChipConfig::tiny_physics();
    cfg.geometry.page_bytes = 8192; // 65536 cells per wordline
    let mut chip = NandChip::new(cfg);
    chip.set_retention_months(12.0);
    let blk = BlockAddr::new(0, 0);
    chip.cycle_block(blk, 10_000).unwrap();
    let bits = chip.config().geometry.page_bits();
    let mut rng = StdRng::seed_from_u64(0xF15);
    let mut errors = 0usize;
    let mut total = 0usize;
    for wl in 0..4 {
        let data = BitVec::random(bits, &mut rng);
        chip.execute(Command::Program {
            addr: blk.wordline(wl),
            data: data.clone(),
            scheme: ProgramScheme::Slc,
            randomize: false,
        })
        .unwrap();
        let out = chip.execute(Command::Read { addr: blk.wordline(wl), inverse: false }).unwrap();
        errors += out.page().unwrap().hamming_distance(&data);
        total += bits;
    }
    let physics_rber = errors as f64 / total as f64;
    let model_rber = RberModel::paper().rber(ProgramScheme::Slc, false, StressState::worst_case());
    assert!(physics_rber > 0.0, "physics mode must show errors at worst case");
    let ratio = physics_rber / model_rber;
    assert!(
        (0.1..10.0).contains(&ratio),
        "physics {physics_rber} vs model {model_rber} (ratio {ratio})"
    );
}

/// Physics-mode MWS: multi-wordline sensing on ESP-programmed cells is
/// exact even at worst-case stress — the mechanism-level version of the
/// §5.2 claim, from V_TH first principles.
#[test]
fn physics_mode_mws_with_esp_is_exact() {
    let mut cfg = ChipConfig::tiny_physics();
    cfg.geometry.page_bytes = 2048;
    let mut chip = NandChip::new(cfg);
    chip.set_retention_months(12.0);
    let blk = BlockAddr::new(0, 1);
    chip.cycle_block(blk, 10_000).unwrap();
    let bits = chip.config().geometry.page_bits();
    let mut rng = StdRng::seed_from_u64(0xE59);
    let pages: Vec<BitVec> = (0..8)
        .map(|wl| {
            let data = BitVec::random(bits, &mut rng);
            chip.execute(Command::esp_program(blk.wordline(wl), data.clone())).unwrap();
            data
        })
        .collect();
    let out = chip
        .execute(Command::Mws {
            flags: IscmFlags::single_read(),
            targets: vec![MwsTarget::all_wls(blk, 8)],
        })
        .unwrap();
    let expect = pages.iter().skip(1).fold(pages[0].clone(), |a, p| a.and(p));
    assert_eq!(
        out.page().unwrap().hamming_distance(&expect),
        0,
        "physics-mode ESP MWS must be error-free"
    );
}

/// The worst-case §5.2 stress pattern (max string resistance) senses
/// correctly in physics mode.
#[test]
fn max_string_resistance_pattern_senses_correctly() {
    let mut cfg = ChipConfig::tiny_physics();
    cfg.geometry.page_bytes = 1024;
    let mut chip = NandChip::new(cfg);
    let blk = BlockAddr::new(0, 2);
    let bits = chip.config().geometry.page_bits();
    let mut rng = StdRng::seed_from_u64(0x3514);
    let targets = [1u32, 4, 6];
    let pages = fc_bits::max_string_resistance(8, bits, &[1, 4, 6], &mut rng);
    for (wl, page) in pages.iter().enumerate() {
        chip.execute(Command::esp_program(blk.wordline(wl as u32), page.clone())).unwrap();
    }
    let out = chip
        .execute(Command::Mws {
            flags: IscmFlags::single_read(),
            targets: vec![MwsTarget::new(blk, &targets)],
        })
        .unwrap();
    let expect = pages[1].and(&pages[4]).and(&pages[6]);
    assert_eq!(out.page().unwrap(), &expect);
}
