//! Per-component energy metering (§7 "Energy Modeling", Fig. 18).
//!
//! The paper combines Intel RAPL measurements (host CPU), a DDR4 energy
//! model (DRAM), Samsung 980 Pro power values (SSD) and its own
//! real-device NAND measurements. This module provides the accounting
//! structure plus the per-bit transfer constants; NAND op energies come
//! from [`fc_nand::power`] and host energies from `fc-host`.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Energy-consuming components of the end-to-end system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Component {
    /// NAND array sensing (reads and MWS).
    NandSense,
    /// NAND programming.
    NandProgram,
    /// NAND erase.
    NandErase,
    /// Flash-channel transfers (die ↔ controller).
    Channel,
    /// SSD controller (ECC, randomizer, firmware).
    Controller,
    /// In-storage accelerator (ISP platform only).
    IspAccelerator,
    /// External link (SSD ↔ host, PCIe).
    External,
    /// Host DRAM traffic.
    HostDram,
    /// Host CPU computation.
    HostCpu,
}

impl Component {
    /// All components, in display order.
    pub const ALL: [Component; 9] = [
        Component::NandSense,
        Component::NandProgram,
        Component::NandErase,
        Component::Channel,
        Component::Controller,
        Component::IspAccelerator,
        Component::External,
        Component::HostDram,
        Component::HostCpu,
    ];
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::NandSense => "nand-sense",
            Component::NandProgram => "nand-program",
            Component::NandErase => "nand-erase",
            Component::Channel => "channel",
            Component::Controller => "controller",
            Component::IspAccelerator => "isp-accelerator",
            Component::External => "external",
            Component::HostDram => "host-dram",
            Component::HostCpu => "host-cpu",
        };
        f.write_str(s)
    }
}

/// Transfer/processing energy constants. Representative figures for the
/// modelled technology generation; the paper reports only aggregate
/// energies, so these anchor the absolute scale (documented in
/// EXPERIMENTS.md).
pub mod constants {
    /// Flash-channel (ONFI bus) energy, pJ per bit.
    pub const CHANNEL_PJ_PER_BIT: f64 = 2.0;
    /// SSD-controller processing energy, pJ per bit moved through it.
    pub const CONTROLLER_PJ_PER_BIT: f64 = 1.0;
    /// External PCIe link energy, pJ per bit.
    pub const EXTERNAL_PJ_PER_BIT: f64 = 10.0;
    /// ISP hardware accelerator: 93 pJ per 64-byte operation (Table 1).
    pub const ISP_PJ_PER_64B: f64 = 93.0;
}

/// Accumulates energy per component, in microjoules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    uj: BTreeMap<Component, f64>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `uj` microjoules to `component`.
    pub fn add(&mut self, component: Component, uj: f64) {
        *self.uj.entry(component).or_insert(0.0) += uj;
    }

    /// Adds channel-transfer energy for `bytes` bytes.
    pub fn add_channel_bytes(&mut self, bytes: u64) {
        self.add(Component::Channel, bytes as f64 * 8.0 * constants::CHANNEL_PJ_PER_BIT * 1e-6);
        self.add(
            Component::Controller,
            bytes as f64 * 8.0 * constants::CONTROLLER_PJ_PER_BIT * 1e-6,
        );
    }

    /// Adds external-link energy for `bytes` bytes.
    pub fn add_external_bytes(&mut self, bytes: u64) {
        self.add(Component::External, bytes as f64 * 8.0 * constants::EXTERNAL_PJ_PER_BIT * 1e-6);
    }

    /// Adds ISP-accelerator energy for processing `bytes` bytes (Table 1:
    /// 93 pJ per 64 B operation).
    pub fn add_isp_bytes(&mut self, bytes: u64) {
        let ops = bytes as f64 / 64.0;
        self.add(Component::IspAccelerator, ops * constants::ISP_PJ_PER_64B * 1e-6);
    }

    /// Energy of one component, µJ.
    pub fn component_uj(&self, component: Component) -> f64 {
        self.uj.get(&component).copied().unwrap_or(0.0)
    }

    /// Total energy, µJ.
    pub fn total_uj(&self) -> f64 {
        self.uj.values().sum()
    }

    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.total_uj() * 1e-6
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (c, v) in &other.uj {
            self.add(*c, *v);
        }
    }

    /// Per-component breakdown, µJ, in display order (zero entries
    /// omitted).
    pub fn breakdown(&self) -> Vec<(Component, f64)> {
        Component::ALL
            .iter()
            .filter_map(|c| {
                let v = self.component_uj(*c);
                (v > 0.0).then_some((*c, v))
            })
            .collect()
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} J", self.total_j())?;
        let parts: Vec<String> =
            self.breakdown().iter().map(|(c, v)| format!("{c}: {v:.1} µJ")).collect();
        if !parts.is_empty() {
            write!(f, " ({})", parts.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_totals() {
        let mut m = EnergyMeter::new();
        m.add(Component::NandSense, 2.0);
        m.add(Component::NandSense, 3.0);
        m.add(Component::HostCpu, 5.0);
        assert_eq!(m.component_uj(Component::NandSense), 5.0);
        assert_eq!(m.total_uj(), 10.0);
        assert!((m.total_j() - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn transfer_helpers_use_constants() {
        let mut m = EnergyMeter::new();
        // 1 MB over the channel: 8e6 bits × 2 pJ = 16 µJ (+ 8 µJ controller).
        m.add_channel_bytes(1_000_000);
        assert!((m.component_uj(Component::Channel) - 16.0).abs() < 1e-9);
        assert!((m.component_uj(Component::Controller) - 8.0).abs() < 1e-9);
        // 1 MB external: 80 µJ.
        m.add_external_bytes(1_000_000);
        assert!((m.component_uj(Component::External) - 80.0).abs() < 1e-9);
        // 64 B through the ISP accelerator: 93 pJ.
        m.add_isp_bytes(64);
        assert!((m.component_uj(Component::IspAccelerator) - 93e-6).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_components() {
        let mut a = EnergyMeter::new();
        a.add(Component::External, 1.0);
        let mut b = EnergyMeter::new();
        b.add(Component::External, 2.0);
        b.add(Component::HostDram, 4.0);
        a.merge(&b);
        assert_eq!(a.component_uj(Component::External), 3.0);
        assert_eq!(a.component_uj(Component::HostDram), 4.0);
    }

    #[test]
    fn breakdown_omits_zero_components() {
        let mut m = EnergyMeter::new();
        m.add(Component::HostCpu, 1.0);
        let b = m.breakdown();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].0, Component::HostCpu);
        assert_eq!(Component::HostCpu.to_string(), "host-cpu");
    }
}
