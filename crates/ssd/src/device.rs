//! A functional SSD: NAND chips + FTL + ECC + randomization behind a
//! logical-page API.
//!
//! Two storage paths, matching §6.3:
//!
//! * **Conventional** — data is ECC-encoded, randomized and SLC-programmed.
//!   Reliable for storage, but *incompatible* with in-flash computation
//!   (§3.2) — the integration tests demonstrate both properties.
//! * **Flash-Cosmos** — raw data (optionally inverted, §6.1) is
//!   ESP-programmed into placement groups so intra-block MWS can combine
//!   operands in one sensing operation.
//!
//! With ECC enabled a logical page carries fewer payload bits than the
//! physical page (the parity lives in what real drives call the spare
//! area): see [`SsdDevice::logical_page_bits`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard};

use fc_bits::BitVec;
use fc_nand::chip::NandChip;
use fc_nand::command::Command;
use fc_nand::config::{ChipConfig, Fidelity};
use fc_nand::error::NandError;
use fc_nand::geometry::{CellMode, WlAddr};
use fc_nand::ispp::ProgramScheme;
use fc_nand::mlsense;

use crate::config::SsdConfig;
use crate::ecc::{EccConfig, EccScratch, PageCodec, PageDecode};
use crate::energy::EnergyMeter;
use crate::ftl::{Ftl, FtlError, PageMeta, PlacementHint};
use crate::topology::{DieId, Ppa};

/// Device-level errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum DeviceError {
    /// Propagated chip error.
    Nand(NandError),
    /// Propagated FTL error.
    Ftl(FtlError),
    /// ECC decoding failed (uncorrectable errors).
    Uncorrectable {
        /// Logical page that failed.
        lpn: u64,
    },
    /// Payload length does not match [`SsdDevice::logical_page_bits`].
    PayloadSize {
        /// Bits supplied.
        got: usize,
        /// Bits required.
        expected: usize,
    },
    /// The logical page is not mapped.
    NotMapped(u64),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Nand(e) => write!(f, "nand: {e}"),
            DeviceError::Ftl(e) => write!(f, "ftl: {e}"),
            DeviceError::Uncorrectable { lpn } => {
                write!(f, "uncorrectable ECC failure on logical page {lpn}")
            }
            DeviceError::PayloadSize { got, expected } => {
                write!(f, "payload of {got} bits, expected {expected}")
            }
            DeviceError::NotMapped(lpn) => write!(f, "logical page {lpn} is not mapped"),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Nand(e) => Some(e),
            DeviceError::Ftl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NandError> for DeviceError {
    fn from(e: NandError) -> Self {
        DeviceError::Nand(e)
    }
}

impl From<FtlError> for DeviceError {
    fn from(e: FtlError) -> Self {
        DeviceError::Ftl(e)
    }
}

/// How to store a logical page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteOptions {
    /// Placement policy.
    pub placement: PlacementHint,
    /// Page metadata (scheme / randomization / inversion / ECC).
    pub meta: PageMeta,
}

impl WriteOptions {
    /// The conventional storage path: striped, SLC, randomized, ECC.
    pub fn conventional() -> Self {
        Self { placement: PlacementHint::Striped, meta: PageMeta::conventional() }
    }

    /// The Flash-Cosmos computation path: grouped, ESP, raw bits. `plane`
    /// pins the group's block to a flat plane (`None` = least-loaded).
    pub fn flash_cosmos(group: crate::ftl::GroupKey, plane: Option<usize>, inverted: bool) -> Self {
        Self {
            placement: PlacementHint::Grouped { group, plane },
            meta: PageMeta::flash_cosmos(inverted),
        }
    }
}

/// Read-path health counters: how hard the device is working to return
/// correct data. Snapshot via [`SsdDevice::health`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadHealth {
    /// Logical page reads served.
    pub reads: u64,
    /// Bits the ECC decoder corrected (nominal and retry reads).
    pub bits_corrected: u64,
    /// Re-senses issued at shifted Vref levels after a nominal-level
    /// decode failure.
    pub retry_reads: u64,
    /// Reads that failed at the nominal level but decoded at some retry
    /// level.
    pub retry_recoveries: u64,
    /// Reads that stayed uncorrectable after the whole retry ladder.
    pub uncorrectable: u64,
}

/// Atomic counterparts of [`ReadHealth`]: the read path bumps these
/// under a shared reference, so concurrent drains never serialize on a
/// statistics lock.
#[derive(Debug, Default)]
struct HealthCounters {
    reads: AtomicU64,
    bits_corrected: AtomicU64,
    retry_reads: AtomicU64,
    retry_recoveries: AtomicU64,
    uncorrectable: AtomicU64,
}

impl HealthCounters {
    fn snapshot(&self) -> ReadHealth {
        ReadHealth {
            reads: self.reads.load(Ordering::Relaxed),
            bits_corrected: self.bits_corrected.load(Ordering::Relaxed),
            retry_reads: self.retry_reads.load(Ordering::Relaxed),
            retry_recoveries: self.retry_recoveries.load(Ordering::Relaxed),
            uncorrectable: self.uncorrectable.load(Ordering::Relaxed),
        }
    }
}

/// Reusable controller I/O buffers (ECC codec scratch plus the staging
/// prefix handed to the decoder). One page encode/decode runs per I/O
/// job, so the buffers persist across jobs instead of reallocating;
/// they sit behind one mutex because only ECC-protected (conventional)
/// pages touch them — the raw Flash-Cosmos hot path never takes it.
#[derive(Debug, Default)]
struct IoScratch {
    ecc: EccScratch,
    stored: BitVec,
}

/// Recovers the guard from a poisoned mutex: every critical section in
/// this module is a short, self-contained update, so a panicking thread
/// (e.g. an `fc_audit` Deny panic on the core layer above) cannot leave
/// these structures half-written.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-only view of one die's chip, held under its per-die lock.
/// Mutable access routes through [`SsdDevice::chip_exec`] (the
/// execution engine) or [`SsdDevice::chip_mut`] (fault injection) so
/// `fc-xtask lint-mutators` can police every raw mutation path.
pub struct ChipRef<'a>(MutexGuard<'a, NandChip>);

impl std::ops::Deref for ChipRef<'_> {
    type Target = NandChip;

    fn deref(&self) -> &NandChip {
        &self.0
    }
}

/// The functional SSD.
///
/// Interior-mutable: every I/O entry point takes `&self` so N threads
/// can drive independent dies concurrently. Lock map — per-die chip
/// mutexes (the parallelism grain), one FTL shard per channel, each
/// behind its own `RwLock` (translation reads dominate; allocation/trim
/// take the write side, and batches on disjoint channels no longer
/// serialize on one map lock), controller scratch and the energy meter
/// behind leaf mutexes, and read-health counters as atomics. Lock
/// order: FTL shards are only ever taken **one at a time** (lookups
/// probe sequentially, cross-channel migration drops the source guard
/// before taking the destination), then chip, then {scratch, energy};
/// no code path acquires an FTL shard while holding a chip guard.
///
/// Shard residency follows *placement*: a mapping lives in the shard of
/// the channel its physical page occupies (audit code FC108 checks the
/// lockstep). Grouped allocations route by their explicit plane's
/// channel (or a stable hash of the group key, so every member of a
/// group reaches the same block cursor); striped allocations hash by
/// lpn. Lookups probe the lpn's home shard first, then the rest —
/// cross-channel migration is the only way a mapping strays from home.
pub struct SsdDevice {
    config: SsdConfig,
    chips: Vec<Mutex<NandChip>>,
    ftl_shards: Vec<RwLock<Ftl>>,
    codec: PageCodec,
    energy: Mutex<EnergyMeter>,
    scratch: Mutex<IoScratch>,
    /// Maximum shifted-Vref re-senses after a nominal decode failure.
    read_retry_budget: usize,
    health: HealthCounters,
}

impl std::fmt::Debug for SsdDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdDevice")
            .field("config", &self.config)
            .field("mapped_pages", &self.mapped_pages())
            .finish_non_exhaustive()
    }
}

impl SsdDevice {
    /// Builds a device with functional-fidelity chips (no error
    /// injection).
    pub fn new(config: SsdConfig) -> Self {
        Self::with_fidelity(config, Fidelity::Functional { inject_errors: false })
    }

    /// Builds a device with error-injecting chips (reliability studies).
    pub fn new_noisy(config: SsdConfig) -> Self {
        Self::with_fidelity(config, Fidelity::Functional { inject_errors: true })
    }

    /// Builds a device with physics-fidelity chips: per-cell threshold
    /// voltages with retention/wear/disturb shifts, so aged pages
    /// genuinely fail at the nominal sense level and recover at shifted
    /// ones (the regime the read-retry ladder is for).
    pub fn new_physics(config: SsdConfig) -> Self {
        Self::with_fidelity(config, Fidelity::Physics)
    }

    fn with_fidelity(config: SsdConfig, fidelity: Fidelity) -> Self {
        let chips = (0..config.total_dies())
            .map(|i| {
                let chip_config = ChipConfig {
                    geometry: config.chip_geometry(),
                    fidelity,
                    max_inter_blocks: config.max_inter_blocks,
                    ..ChipConfig::paper()
                }
                .with_seed(0xD1E0 + i as u64);
                Mutex::new(NandChip::new(chip_config))
            })
            .collect();
        let ftl_shards = (0..config.channels.max(1))
            .map(|c| RwLock::new(Ftl::for_channel(&config, c)))
            .collect();
        Self {
            config,
            chips,
            ftl_shards,
            codec: PageCodec::new(EccConfig::small()),
            energy: Mutex::new(EnergyMeter::new()),
            scratch: Mutex::new(IoScratch::default()),
            read_retry_budget: 6,
            health: HealthCounters::default(),
        }
    }

    /// Read-path health counters since construction.
    pub fn health(&self) -> ReadHealth {
        self.health.snapshot()
    }

    /// The maximum number of shifted-Vref retry senses per failed read.
    pub fn read_retry_budget(&self) -> usize {
        self.read_retry_budget
    }

    /// Reconfigures the retry budget (0 disables tier-1 recovery).
    pub fn set_read_retry_budget(&mut self, budget: usize) {
        self.read_retry_budget = budget;
    }

    /// Swaps the page ECC code. Changes
    /// [`logical_page_bits`](Self::logical_page_bits), so it must happen
    /// before the first ECC-protected write — pages already stored under
    /// the old code will no longer decode.
    pub fn set_ecc(&mut self, config: EccConfig) {
        self.codec = PageCodec::new(config);
    }

    /// The SSD configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Number of FTL shards (one per channel).
    pub fn ftl_shard_count(&self) -> usize {
        self.ftl_shards.len()
    }

    /// One channel's FTL shard (read access for placement inspection).
    /// Translation lookups under it run concurrently across threads. Do
    /// not hold it across a call that allocates or trims, and never hold
    /// two shard guards at once.
    pub fn ftl_shard(&self, channel: usize) -> RwLockReadGuard<'_, Ftl> {
        self.ftl_shards[channel].read().unwrap_or_else(PoisonError::into_inner)
    }

    /// One shard's write guard — allocation, trim and remap go through
    /// here, one shard at a time.
    fn ftl_shard_mut(&self, channel: usize) -> std::sync::RwLockWriteGuard<'_, Ftl> {
        self.ftl_shards[channel].write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable FTL-shard access for the `flash_cosmos::audit` mutation
    /// harness **only**: it deliberately bypasses the epoch-bump
    /// discipline of the core device's `ssd_mut()` chokepoint so seeded
    /// corruptions land without structurally invalidating the state under
    /// test. Never use it to mutate a live device — `fc-xtask
    /// lint-mutators` flags any reference outside the audit allowlist.
    #[doc(hidden)]
    pub fn ftl_mut_for_audit(&mut self, channel: usize) -> &mut Ftl {
        self.ftl_shards[channel].get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// The shard a *new* allocation for `lpn` under `placement` belongs
    /// to. Grouped placement with an explicit plane routes by that
    /// plane's channel (placement decides residency — the FC108
    /// lockstep); grouped placement without affinity routes by a stable
    /// hash of the group key, so every member of a group reaches the
    /// same shard's block cursor; striped data hashes by lpn.
    fn route(&self, lpn: u64, placement: &PlacementHint) -> usize {
        match placement {
            PlacementHint::Grouped { plane: Some(p), .. } => self.config.channel_of_plane(*p),
            PlacementHint::Grouped { group, plane: None } => self.group_home(*group),
            PlacementHint::Striped => (lpn % self.ftl_shards.len() as u64) as usize,
        }
    }

    /// Stable shard choice for a group with no plane affinity.
    fn group_home(&self, g: crate::ftl::GroupKey) -> usize {
        let mut h = g.group.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= g.slot.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= g.overflow.wrapping_mul(0x94D0_49BB_1331_11EB);
        (h % self.ftl_shards.len() as u64) as usize
    }

    /// Finds the shard holding `lpn`'s mapping: probes the home shard
    /// (`lpn % channels`) first, then the rest — guards are taken one at
    /// a time, never nested.
    fn probe(&self, lpn: u64) -> Option<(usize, Ppa, PageMeta)> {
        let n = self.ftl_shards.len();
        let home = (lpn % n as u64) as usize;
        for i in 0..n {
            let s = (home + i) % n;
            let guard = self.ftl_shard(s);
            if let Some(ppa) = guard.translate(lpn) {
                let meta = guard.meta(lpn).expect("mapped pages always carry metadata");
                return Some((s, ppa, meta));
            }
        }
        None
    }

    /// A logical page's physical address and metadata, if mapped.
    pub fn lookup(&self, lpn: u64) -> Option<(Ppa, PageMeta)> {
        self.probe(lpn).map(|(_, ppa, meta)| (ppa, meta))
    }

    /// A logical page's physical address, if mapped.
    pub fn translate(&self, lpn: u64) -> Option<Ppa> {
        self.probe(lpn).map(|(_, ppa, _)| ppa)
    }

    /// A logical page's metadata, if mapped.
    pub fn page_meta(&self, lpn: u64) -> Option<PageMeta> {
        self.probe(lpn).map(|(_, _, meta)| meta)
    }

    /// Mapped logical pages across every shard.
    pub fn mapped_pages(&self) -> usize {
        (0..self.ftl_shards.len()).map(|s| self.ftl_shard(s).mapped_pages()).sum()
    }

    /// A point-in-time copy of every mapping (shard by shard — the walk
    /// that scrubbing, grown-defect discovery, and the `fc_audit`
    /// residency pass run over; not a hot path).
    pub fn mapped_snapshot(&self) -> Vec<(u64, Ppa, PageMeta)> {
        let mut out = Vec::with_capacity(self.mapped_pages());
        for s in 0..self.ftl_shards.len() {
            out.extend(self.ftl_shard(s).iter_mapped());
        }
        out
    }

    /// Blocks already allocated per flat plane, across every shard in
    /// global plane order — the block pressure the core layer consults
    /// to spread placement groups across dies.
    pub fn plane_pressures(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.config.total_planes());
        for s in 0..self.ftl_shards.len() {
            out.extend_from_slice(self.ftl_shard(s).plane_pressures());
        }
        out
    }

    /// The global flat plane the next striped allocation for `lpn` would
    /// land on (the round-robin cursor of `lpn`'s home shard).
    pub fn next_striped_plane_for(&self, lpn: u64) -> usize {
        let home = (lpn % self.ftl_shards.len() as u64) as usize;
        self.ftl_shard(home).next_striped_plane()
    }

    /// The global flat plane a grouped allocation with this key and
    /// affinity would land on, without allocating (routed to the shard
    /// the allocation itself would reach).
    pub fn group_plane(&self, group: crate::ftl::GroupKey, plane: Option<usize>) -> usize {
        let shard = match plane {
            Some(p) => self.config.channel_of_plane(p),
            None => self.group_home(group),
        };
        self.ftl_shard(shard).group_plane(group, plane)
    }

    /// The ECC correction margin as a fraction: `t / n` of the current
    /// page code — the raw bit-error rate at which a codeword's error
    /// budget is exhausted *in expectation*. Scrub policies compare a
    /// block's modeled RBER against a fraction of this margin.
    pub fn ecc_correction_margin(&self) -> f64 {
        self.codec.code().t() as f64 / self.codec.code().n() as f64
    }

    /// Payload bits per logical page, given whether ECC is in use. With
    /// ECC, parity shares the physical page, shrinking the payload to a
    /// whole number of codewords.
    pub fn logical_page_bits(&self, ecc: bool) -> usize {
        let page_bits = self.config.page_bits();
        if !ecc {
            return page_bits;
        }
        let n = self.codec.code().n();
        let k = self.codec.code().k();
        (page_bits / n) * k
    }

    /// Chip of one die (read-only view under the die's lock).
    pub fn chip(&self, die: DieId) -> ChipRef<'_> {
        ChipRef(lock(&self.chips[die.flat(&self.config)]))
    }

    /// Exclusive chip guard of one die — the Flash-Cosmos execution
    /// engine drives MWS programs through this. A lock-guarded mutation
    /// chokepoint: `fc-xtask lint-mutators` flags references outside
    /// the engine and the suites.
    pub fn chip_exec(&self, die: DieId) -> MutexGuard<'_, NandChip> {
        lock(&self.chips[die.flat(&self.config)])
    }

    /// Mutable chip of one die (fault injection and seeded corruption;
    /// requires exclusive device access, so no lock is taken).
    pub fn chip_mut(&mut self, die: DieId) -> &mut NandChip {
        let flat = die.flat(&self.config);
        self.chips[flat].get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Sets the equivalent retention age on every chip.
    pub fn set_retention_months(&mut self, months: f64) {
        for c in &mut self.chips {
            c.get_mut().unwrap_or_else(PoisonError::into_inner).set_retention_months(months);
        }
    }

    /// Aggregated NAND energy across chips plus device-level transfers,
    /// µJ.
    pub fn energy_uj(&self) -> f64 {
        lock(&self.energy).total_uj()
            + self.chips.iter().map(|c| lock(c).stats().energy_uj).sum::<f64>()
    }

    /// Writes a logical page.
    ///
    /// # Errors
    ///
    /// Fails on payload-size mismatch, FTL exhaustion, or chip errors.
    pub fn write(
        &self,
        lpn: u64,
        payload: &BitVec,
        opts: WriteOptions,
    ) -> Result<Ppa, DeviceError> {
        let expected = self.logical_page_bits(opts.meta.ecc);
        if payload.len() != expected {
            return Err(DeviceError::PayloadSize { got: payload.len(), expected });
        }
        let stored = self.build_stored(payload, opts.meta);
        let shard = self.route(lpn, &opts.placement);
        let ppa = self.ftl_shard_mut(shard).allocate(lpn, opts.placement, opts.meta)?;
        let addr = wl_addr(ppa);
        let die = ppa.plane.die;
        self.chip_exec(die).execute(Command::Program {
            addr,
            data: stored,
            scheme: opts.meta.scheme,
            randomize: opts.meta.randomized,
        })?;
        lock(&self.energy).add_channel_bytes(self.config.page_bytes as u64);
        Ok(ppa)
    }

    /// Writes the 2–3 logical pages of one multi-level (`mlsense`)
    /// wordline in a single program: `payloads[b]` becomes logical page
    /// `b` of the cell's Gray code, mapped at `lpns[b]`. All pages share
    /// the physical wordline — `lpns[1..]` alias `lpns[0]`'s mapping with
    /// distinct [`PageMeta::ml_page`]. ML pages are raw (no ECC, no
    /// randomization): they exist for in-flash computation density, and
    /// the physics-fidelity decode deliberately carries the real
    /// multi-level raw bit-error rate.
    ///
    /// # Errors
    ///
    /// Rejects single-bit schemes and page-count/size mismatches
    /// ([`NandError::InvalidMlsense`] / [`DeviceError::PayloadSize`]);
    /// otherwise fails like [`write`](Self::write).
    pub fn write_ml(
        &self,
        lpns: &[u64],
        payloads: &[BitVec],
        placement: PlacementHint,
        scheme: ProgramScheme,
        inverted: bool,
    ) -> Result<Ppa, DeviceError> {
        let bits = scheme.cell_mode().bits_per_cell() as usize;
        if bits < 2 || lpns.len() != bits || payloads.len() != bits {
            return Err(DeviceError::Nand(NandError::InvalidMlsense(format!(
                "multi-level write needs a multi-bit scheme with exactly bits-per-cell \
                 pages (scheme {scheme:?}, {} lpns, {} payloads)",
                lpns.len(),
                payloads.len()
            ))));
        }
        let expected = self.logical_page_bits(false);
        for p in payloads {
            if p.len() != expected {
                return Err(DeviceError::PayloadSize { got: p.len(), expected });
            }
        }
        let stored: Vec<BitVec> =
            payloads.iter().map(|p| if inverted { p.not() } else { p.clone() }).collect();
        let ppa = {
            // All aliases of one wordline live in the base lpn's shard.
            let mut ftl = self.ftl_shard_mut(self.route(lpns[0], &placement));
            let ppa =
                ftl.allocate(lpns[0], placement, PageMeta::multi_level(scheme, 0, inverted))?;
            for (b, &lpn) in lpns.iter().enumerate().skip(1) {
                ftl.alias(lpn, lpns[0], PageMeta::multi_level(scheme, b as u8, inverted))?;
            }
            ppa
        };
        let addr = wl_addr(ppa);
        let die = ppa.plane.die;
        self.chip_exec(die).execute(Command::ProgramMl { addr, pages: stored, scheme })?;
        lock(&self.energy).add_channel_bytes(bits as u64 * self.config.page_bytes as u64);
        Ok(ppa)
    }

    /// Reads one logical page of a multi-level wordline: one conduction
    /// sense per Gray-code transition of that page (the real MLC/TLC
    /// page-read cost), XOR-combined back into the logical page. ML pages
    /// carry no ECC, so there is no retry ladder — single-bit storage owns
    /// the reliability machinery.
    fn read_ml(
        &self,
        chip: &mut NandChip,
        addr: WlAddr,
        meta: PageMeta,
        mode: CellMode,
    ) -> Result<BitVec, DeviceError> {
        let page = meta.ml_page as usize;
        let mut senses = Vec::new();
        for t in mlsense::transition_levels(mode, page) {
            let raw = chip
                .execute(Command::ReadLevel { addr, level: t })?
                .into_page()
                .expect("a level read produces a page");
            senses.push(raw);
        }
        lock(&self.energy).add_channel_bytes(self.config.page_bytes as u64);
        let decoded = mlsense::page_from_senses(&senses, mode, page);
        Ok(if meta.inverted { decoded.not() } else { decoded })
    }

    /// Reads a logical page back, undoing randomization, ECC and
    /// inversion as recorded in its metadata.
    ///
    /// When the nominal-level sense fails to decode, the device walks a
    /// **read-retry ladder**: it re-senses at shifted Vref offsets picked
    /// from the block's stress state (retention pulls programmed cells
    /// down, disturb pushes erased cells up — `fc_nand::sense::retry_ladder`
    /// ranks the compensating offsets), up to
    /// [`read_retry_budget`](Self::read_retry_budget) attempts.
    ///
    /// # Errors
    ///
    /// Fails on unmapped pages, chip errors, or ECC failures that stay
    /// uncorrectable after the whole retry ladder.
    pub fn read(&self, lpn: u64) -> Result<BitVec, DeviceError> {
        let (ppa, meta) = self.lookup(lpn).ok_or(DeviceError::NotMapped(lpn))?;
        let addr = wl_addr(ppa);
        self.health.reads.fetch_add(1, Ordering::Relaxed);
        let mode = meta.scheme.cell_mode();
        // One chip guard for the whole read, retry ladder included: the
        // stress state sampled for the ladder stays consistent with the
        // senses it ranks.
        let mut chip = self.chip_exec(ppa.plane.die);
        if mode.bits_per_cell() > 1 {
            return self.read_ml(&mut chip, addr, meta, mode);
        }
        let raw = chip
            .execute(Command::Read { addr, inverse: false })?
            .into_page()
            .expect("read produces a page");
        lock(&self.energy).add_channel_bytes(self.config.page_bytes as u64);
        if let Some(decoded) = self.decode_stored(&chip, addr, meta, raw) {
            return Ok(if meta.inverted { decoded.not() } else { decoded });
        }
        // Tier-1 recovery: shifted-Vref re-senses ranked by the block's
        // modeled stress.
        let block = addr.block();
        let stress = fc_nand::stress::StressState {
            pec: chip.block_pec(block)?,
            retention_months: chip.retention_months(),
            reads_since_program: chip.block_reads_since_program(block)?,
        };
        let ladder = fc_nand::sense::retry_ladder(
            meta.scheme,
            stress,
            &chip.config().stress_model,
            self.read_retry_budget,
        );
        for offset in ladder {
            self.health.retry_reads.fetch_add(1, Ordering::Relaxed);
            let raw = chip.read_shifted(addr, offset)?.into_page().expect("read produces a page");
            lock(&self.energy).add_channel_bytes(self.config.page_bytes as u64);
            if let Some(decoded) = self.decode_stored(&chip, addr, meta, raw) {
                self.health.retry_recoveries.fetch_add(1, Ordering::Relaxed);
                return Ok(if meta.inverted { decoded.not() } else { decoded });
            }
        }
        self.health.uncorrectable.fetch_add(1, Ordering::Relaxed);
        Err(DeviceError::Uncorrectable { lpn })
    }

    /// Descrambles and (when ECC-protected) decodes one raw sensed page.
    /// `None` means the codeword was uncorrectable at this sense level.
    fn decode_stored(
        &self,
        chip: &NandChip,
        addr: WlAddr,
        meta: PageMeta,
        raw: BitVec,
    ) -> Option<BitVec> {
        let descrambled =
            if meta.randomized { chip.randomizer().derandomize(addr, &raw) } else { raw };
        if !meta.ecc {
            return Some(descrambled);
        }
        let payload_bits = self.logical_page_bits(true);
        let n = self.codec.code().n();
        let words = payload_bits / self.codec.code().k();
        let mut scratch = lock(&self.scratch);
        let IoScratch { ecc, stored } = &mut *scratch;
        descrambled.slice_into(0, words * n, stored);
        match self.codec.decode_page_with(stored, payload_bits, ecc) {
            PageDecode::Corrected { data, corrected } => {
                self.health.bits_corrected.fetch_add(corrected as u64, Ordering::Relaxed);
                Some(data)
            }
            PageDecode::Uncorrectable => None,
        }
    }

    /// The physical wordline address of a logical page, if mapped.
    pub fn locate(&self, lpn: u64) -> Option<(DieId, WlAddr)> {
        self.translate(lpn).map(|ppa| (ppa.plane.die, wl_addr(ppa)))
    }

    /// Unmaps a logical page (trim): out-of-place overwrites retire the
    /// superseded page's mapping. The physical wordline keeps its stale
    /// bits until a (future) garbage collector erases the block — exactly
    /// like a real drive. Returns the freed physical address, if any.
    pub fn trim(&self, lpn: u64) -> Option<Ppa> {
        let (shard, _, _) = self.probe(lpn)?;
        self.ftl_shard_mut(shard).trim(lpn)
    }

    /// Assembles the raw stored page for a logical payload: optional
    /// inversion (§6.1), optional ECC, padding to the physical page size.
    /// (The returned page is owned by the chip afterwards; only the
    /// intermediate codec buffers are reused.)
    fn build_stored(&self, payload: &BitVec, meta: PageMeta) -> BitVec {
        let logical = if meta.inverted { payload.not() } else { payload.clone() };
        if meta.ecc {
            let mut scratch = lock(&self.scratch);
            let IoScratch { ecc, stored } = &mut *scratch;
            self.codec.encode_page_into(&logical, stored, ecc);
            let mut page = BitVec::zeros(self.config.page_bits());
            page.copy_from(0, stored);
            page
        } else {
            logical
        }
    }

    /// Migrates a logical page to a new placement (the §10 background
    /// gathering primitive: "leverage an efficient inter-chip data
    /// migration technique to gather the target operands into the same
    /// block").
    ///
    /// Uses the chip's **copyback** (§2.1 footnote 3 — no off-chip
    /// transfer) when the source and destination share a die and the
    /// storage metadata is unchanged; otherwise falls back to a full
    /// read-rewrite through the controller. Returns whether copyback was
    /// used.
    ///
    /// # Errors
    ///
    /// Fails on unmapped pages, placement exhaustion, or chip errors.
    pub fn migrate(
        &self,
        lpn: u64,
        placement: PlacementHint,
        meta: PageMeta,
    ) -> Result<bool, DeviceError> {
        let (old_shard, old_ppa, old_meta) = self.probe(lpn).ok_or(DeviceError::NotMapped(lpn))?;
        if old_meta.scheme.cell_mode().bits_per_cell() > 1
            || meta.scheme.cell_mode().bits_per_cell() > 1
        {
            // A multi-level wordline backs several aliased logical pages;
            // moving one alias would strand the others (and a single-page
            // rewrite cannot reconstruct the cell levels). Rewrite the
            // whole operand group instead.
            return Err(DeviceError::Nand(NandError::InvalidMlsense(
                "multi-level pages cannot migrate; rewrite the operand group".to_string(),
            )));
        }
        let compatible = old_meta == meta;
        // Copyback is die-internal, so predict the destination die before
        // remapping: cross-die moves (and metadata changes) must read the
        // logical payload first — reading after remap would chase the new
        // address.
        let target_shard = self.route(lpn, &placement);
        let target_plane = match placement {
            PlacementHint::Grouped { group, plane } => self.group_plane(group, plane),
            PlacementHint::Striped => self.ftl_shard(target_shard).next_striped_plane(),
        };
        let same_die = crate::topology::PlaneId::from_flat(target_plane, &self.config).die
            == old_ppa.plane.die;
        // Randomized pages can never copyback: the scrambler keystream is
        // address-dependent, so raw bits moved to a new wordline would
        // descramble with the wrong keystream on read.
        let use_copyback = compatible && same_die && !meta.randomized;
        let payload = if use_copyback { None } else { Some(self.read(lpn)?) };
        let (old, new) = if target_shard == old_shard {
            self.ftl_shard_mut(target_shard).remap(lpn, placement, meta)?
        } else {
            // Cross-channel move: allocate in the destination shard first
            // (the old mapping survives an allocation failure), then
            // retire the source entry — guards taken one at a time.
            let new = self.ftl_shard_mut(target_shard).allocate(lpn, placement, meta)?;
            let old = self
                .ftl_shard_mut(old_shard)
                .trim(lpn)
                .expect("probed mapping is still present under exclusive migration");
            (old, new)
        };
        let old_addr = wl_addr(old);
        let new_addr = wl_addr(new);
        if use_copyback {
            debug_assert_eq!(old.plane.die, new.plane.die, "peeked die must match allocation");
            self.chip_exec(old.plane.die)
                .execute(Command::Copyback { from: old_addr, to: new_addr })?;
            return Ok(true);
        }
        let stored = self.build_stored(payload.as_ref().expect("read above"), meta);
        self.chip_exec(new.plane.die).execute(Command::Program {
            addr: new_addr,
            data: stored,
            scheme: meta.scheme,
            randomize: meta.randomized,
        })?;
        lock(&self.energy).add_channel_bytes(2 * self.config.page_bytes as u64);
        Ok(false)
    }
}

/// Converts a physical page address into the owning chip's wordline
/// address.
pub fn wl_addr(ppa: Ppa) -> WlAddr {
    WlAddr::new(ppa.plane.plane, ppa.block, ppa.wl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device() -> SsdDevice {
        SsdDevice::new(SsdConfig::tiny_test())
    }

    fn payload(dev: &SsdDevice, ecc: bool, seed: u64) -> BitVec {
        let mut rng = StdRng::seed_from_u64(seed);
        BitVec::random(dev.logical_page_bits(ecc), &mut rng)
    }

    #[test]
    fn conventional_roundtrip() {
        let dev = device();
        let data = payload(&dev, true, 1);
        dev.write(10, &data, WriteOptions::conventional()).unwrap();
        assert_eq!(dev.read(10).unwrap(), data);
    }

    #[test]
    fn flash_cosmos_roundtrip_with_inversion() {
        let dev = device();
        let data = payload(&dev, false, 2);
        dev.write(
            20,
            &data,
            WriteOptions::flash_cosmos(crate::ftl::GroupKey::new(0, 0), None, true),
        )
        .unwrap();
        // Stored raw bits are the inverse; logical read restores.
        let (die, addr) = dev.locate(20).unwrap();
        assert_eq!(dev.chip(die).page_raw(addr).unwrap(), &data.not());
        assert_eq!(dev.read(20).unwrap(), data);
    }

    #[test]
    fn ecc_shrinks_logical_page() {
        let dev = device();
        // tiny page = 256 bits; (63,45) code → 4 codewords → 180 bits.
        assert_eq!(dev.logical_page_bits(false), 256);
        assert_eq!(dev.logical_page_bits(true), 180);
    }

    #[test]
    fn conventional_survives_injected_errors() {
        let mut dev = SsdDevice::new_noisy(SsdConfig::tiny_test());
        dev.set_retention_months(12.0);
        let data = payload(&dev, true, 3);
        dev.write(1, &data, WriteOptions::conventional()).unwrap();
        // Age the block heavily — SLC RBER at this stress is ~1e-3, well
        // within t=3 per 63-bit codeword virtually always.
        let (die, addr) = dev.locate(1).unwrap();
        dev.chip_mut(die).cycle_block(addr.block(), 10_000).unwrap();
        for _ in 0..20 {
            assert_eq!(dev.read(1).unwrap(), data, "ECC must absorb injected errors");
        }
    }

    /// The stress point the retry tests run at: heavy enough that the
    /// nominal sense level fails decode on a meaningful fraction of
    /// reads, paired with the deep `durable` code so those failures are
    /// *detected* (≥ 8 errors in a 63-bit codeword) rather than
    /// miscorrected.
    fn aged_physics_device(seed: u64) -> (SsdDevice, BitVec) {
        let mut dev = SsdDevice::new_physics(SsdConfig::tiny_test());
        dev.set_ecc(crate::ecc::EccConfig::durable());
        let data = payload(&dev, true, seed);
        dev.write(5, &data, WriteOptions::conventional()).unwrap();
        let (die, addr) = dev.locate(5).unwrap();
        dev.chip_mut(die).cycle_block(addr.block(), 15_000).unwrap();
        dev.set_retention_months(48.0);
        (dev, data)
    }

    #[test]
    fn retry_ladder_recovers_aged_physics_reads() {
        // Physics fidelity at heavy stress: retention drags programmed
        // cells toward the nominal Vref, so some reads fail the nominal
        // decode. The shifted-Vref ladder must recover every one of them.
        let (dev, data) = aged_physics_device(7);
        for _ in 0..200 {
            assert_eq!(dev.read(5).unwrap(), data, "ladder must keep reads bit-exact");
        }
        let h = dev.health();
        assert_eq!(h.reads, 200);
        assert!(h.retry_reads > 0, "this stress level must trip nominal decodes");
        assert!(h.retry_recoveries > 0, "retries must actually recover");
        assert_eq!(h.uncorrectable, 0);
        assert!(h.bits_corrected > 0, "ECC corrects residual errors at the retry level");
    }

    #[test]
    fn zero_retry_budget_surfaces_uncorrectable() {
        let (mut dev, data) = aged_physics_device(8);
        dev.set_read_retry_budget(0);
        let mut failures = 0;
        for _ in 0..200 {
            match dev.read(5) {
                Ok(got) => assert_eq!(got, data),
                Err(DeviceError::Uncorrectable { lpn: 5 }) => failures += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(failures > 0, "without retries this stress must surface failures");
        assert_eq!(dev.health().uncorrectable as usize, failures);
        assert_eq!(dev.health().retry_reads, 0);
    }

    #[test]
    fn payload_size_is_validated() {
        let dev = device();
        let err = dev.write(1, &BitVec::zeros(7), WriteOptions::conventional()).unwrap_err();
        assert!(matches!(err, DeviceError::PayloadSize { got: 7, expected: 180 }));
    }

    #[test]
    fn unmapped_read_fails() {
        let dev = device();
        assert!(matches!(dev.read(99).unwrap_err(), DeviceError::NotMapped(99)));
    }

    #[test]
    fn grouped_writes_share_a_block() {
        let dev = device();
        for i in 0..4 {
            let data = payload(&dev, false, 10 + i);
            dev.write(
                i,
                &data,
                WriteOptions::flash_cosmos(crate::ftl::GroupKey::new(7, 0), None, false),
            )
            .unwrap();
        }
        let locs: Vec<_> = (0..4).map(|i| dev.locate(i).unwrap()).collect();
        assert!(locs.iter().all(|(d, a)| *d == locs[0].0 && a.block == locs[0].1.block));
        let wls: Vec<u32> = locs.iter().map(|(_, a)| a.wl).collect();
        assert_eq!(wls, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mlc_roundtrip_reads_each_logical_page() {
        let dev = device();
        let pages: Vec<BitVec> = (0..2).map(|i| payload(&dev, false, 70 + i)).collect();
        dev.write_ml(&[40, 41], &pages, PlacementHint::Striped, ProgramScheme::Mlc, false).unwrap();
        // Both logical pages live on one physical wordline.
        assert_eq!(dev.locate(40).unwrap(), dev.locate(41).unwrap());
        assert_eq!(dev.read(40).unwrap(), pages[0]);
        assert_eq!(dev.read(41).unwrap(), pages[1]);
    }

    #[test]
    fn tlc_roundtrip_with_inversion() {
        let dev = device();
        let pages: Vec<BitVec> = (0..3).map(|i| payload(&dev, false, 80 + i)).collect();
        dev.write_ml(&[50, 51, 52], &pages, PlacementHint::Striped, ProgramScheme::Tlc, true)
            .unwrap();
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(dev.read(50 + i as u64).unwrap(), *p, "TLC page {i} must round-trip");
        }
    }

    #[test]
    fn ml_write_validates_scheme_and_page_count() {
        let dev = device();
        let pages: Vec<BitVec> = (0..2).map(|i| payload(&dev, false, 90 + i)).collect();
        // Single-bit schemes have no aliased pages.
        let err = dev
            .write_ml(&[1, 2], &pages, PlacementHint::Striped, ProgramScheme::Slc, false)
            .unwrap_err();
        assert!(matches!(err, DeviceError::Nand(NandError::InvalidMlsense(_))));
        // Page count must match bits-per-cell.
        let err = dev
            .write_ml(&[1, 2], &pages, PlacementHint::Striped, ProgramScheme::Tlc, false)
            .unwrap_err();
        assert!(matches!(err, DeviceError::Nand(NandError::InvalidMlsense(_))));
    }

    #[test]
    fn ml_pages_cannot_migrate() {
        let dev = device();
        let pages: Vec<BitVec> = (0..2).map(|i| payload(&dev, false, 95 + i)).collect();
        dev.write_ml(&[60, 61], &pages, PlacementHint::Striped, ProgramScheme::Mlc, false).unwrap();
        let err = dev
            .migrate(
                61,
                PlacementHint::Striped,
                PageMeta::multi_level(ProgramScheme::Mlc, 1, false),
            )
            .unwrap_err();
        assert!(matches!(err, DeviceError::Nand(NandError::InvalidMlsense(_))));
    }

    #[test]
    fn striped_migration_uses_copyback_on_the_same_die() {
        let dev = device();
        // Striped raw pages (no randomization — address-dependent
        // keystreams forbid copyback for scrambled data).
        let raw =
            WriteOptions { placement: PlacementHint::Striped, meta: PageMeta::flash_cosmos(false) };
        let data: Vec<BitVec> = (0..8).map(|i| payload(&dev, false, 50 + i)).collect();
        for (i, d) in data.iter().enumerate() {
            dev.write(i as u64, d, raw).unwrap();
        }
        // lpn 0 sits on plane 0 and the stripe cursor has wrapped back to
        // plane 0: a compatible striped migration stays on the die →
        // copyback.
        assert!(dev.migrate(0, PlacementHint::Striped, PageMeta::flash_cosmos(false)).unwrap());
        assert_eq!(dev.read(0).unwrap(), data[0]);
        // lpn 4 sits on plane 4 (die 2) but the cursor now points at
        // plane 1 (die 0): cross-die → controller rewrite.
        assert!(!dev.migrate(4, PlacementHint::Striped, PageMeta::flash_cosmos(false)).unwrap());
        assert_eq!(dev.read(4).unwrap(), data[4]);
        // Conventional (randomized) pages always rewrite, even die-local:
        // the raw bits only descramble at their original address.
        let conv = payload(&dev, true, 60);
        dev.write(100, &conv, WriteOptions::conventional()).unwrap();
        assert!(!dev.migrate(100, PlacementHint::Striped, PageMeta::conventional()).unwrap());
        assert_eq!(dev.read(100).unwrap(), conv, "randomized rewrite must re-scramble");
    }

    #[test]
    fn energy_accumulates() {
        let dev = device();
        let before = dev.energy_uj();
        let data = payload(&dev, true, 4);
        dev.write(1, &data, WriteOptions::conventional()).unwrap();
        dev.read(1).unwrap();
        assert!(dev.energy_uj() > before);
    }
}
