//! RAIN-style cross-die XOR parity stripes (tier-2 recovery).
//!
//! Commercial SSDs back their per-page ECC with an outer redundancy
//! layer — Micron's RAIN, Sandisk/Toshiba die-failure protection — that
//! XORs a stripe of data pages into one parity page stored on a die
//! *disjoint* from every member. When a page stays uncorrectable after
//! the read-retry ladder (or a grown defect takes out a whole block or
//! die), the lost page is rebuilt as the XOR of its surviving stripe
//! peers and the parity page.
//!
//! This module is the mechanism only: stripe membership bookkeeping
//! ([`StripeMap`]) and the XOR algebra ([`xor_fold`], [`rebuild_member`]).
//! Policy — when stripes are created, where the parity page is placed,
//! when a rebuild fires — lives in the `flash_cosmos` core crate, which
//! owns placement and the result-cache invalidation rules.
//!
//! Parity is computed over **logical payloads**, not raw stored bits:
//! members of one stripe may be stored inverted or not (§6.1), and the
//! logical domain is the one in which XOR commutes with every storage
//! transform the device applies.

use std::collections::HashMap;

use fc_bits::BitVec;

/// One parity stripe: the member (data) pages and the parity page that
/// covers them.
///
/// The device audit's `FC102`/`FC103` (see `LINTS.md` at the repo
/// root) hold stripes to single membership, die-disjoint placement
/// while healthy dies suffice, and full coverage of FC data pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityStripe {
    /// Logical pages protected by this stripe.
    pub members: Vec<u64>,
    /// Logical page holding the XOR of all members.
    pub parity_lpn: u64,
}

/// Stripe membership index: stripe id → stripe, plus reverse maps from
/// member and parity pages back to their stripe.
#[derive(Debug, Clone, Default)]
pub struct StripeMap {
    stripes: HashMap<u64, ParityStripe>,
    by_member: HashMap<u64, u64>,
    by_parity: HashMap<u64, u64>,
}

impl StripeMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stripes tracked.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Whether no stripes are tracked.
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// Registers (or replaces) a stripe. Member and parity pages of a
    /// replaced stripe are unindexed first, so re-registering after an
    /// overwrite never leaves stale reverse entries.
    ///
    /// # Panics
    ///
    /// Panics when `members` is empty or contains `parity_lpn` — a stripe
    /// whose parity covers itself cannot be rebuilt.
    pub fn insert(&mut self, stripe_id: u64, members: Vec<u64>, parity_lpn: u64) {
        assert!(!members.is_empty(), "a stripe must protect at least one page");
        assert!(!members.contains(&parity_lpn), "parity page cannot be its own member");
        self.remove(stripe_id);
        for &m in &members {
            self.by_member.insert(m, stripe_id);
        }
        self.by_parity.insert(parity_lpn, stripe_id);
        self.stripes.insert(stripe_id, ParityStripe { members, parity_lpn });
    }

    /// Drops a stripe and its reverse indices. Returns the stripe, if it
    /// existed.
    pub fn remove(&mut self, stripe_id: u64) -> Option<ParityStripe> {
        let stripe = self.stripes.remove(&stripe_id)?;
        for m in &stripe.members {
            self.by_member.remove(m);
        }
        self.by_parity.remove(&stripe.parity_lpn);
        Some(stripe)
    }

    /// The stripe with this id.
    pub fn stripe(&self, stripe_id: u64) -> Option<&ParityStripe> {
        self.stripes.get(&stripe_id)
    }

    /// The stripe protecting this data page.
    pub fn stripe_of_member(&self, lpn: u64) -> Option<(u64, &ParityStripe)> {
        let id = *self.by_member.get(&lpn)?;
        Some((id, &self.stripes[&id]))
    }

    /// The stripe whose parity page this is.
    pub fn stripe_of_parity(&self, lpn: u64) -> Option<(u64, &ParityStripe)> {
        let id = *self.by_parity.get(&lpn)?;
        Some((id, &self.stripes[&id]))
    }

    /// Iterates over `(stripe_id, stripe)` in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &ParityStripe)> {
        self.stripes.iter().map(|(&id, s)| (id, s))
    }
}

/// XOR-folds logical pages into a parity page.
///
/// # Panics
///
/// Panics when `pages` is empty or lengths differ.
pub fn xor_fold<'a, I>(pages: I) -> BitVec
where
    I: IntoIterator<Item = &'a BitVec>,
{
    let mut it = pages.into_iter();
    let first = it.next().expect("parity needs at least one page");
    it.fold(first.clone(), |acc, p| acc.xor(p))
}

/// Rebuilds one lost member from its surviving peers and the parity
/// page: `lost = parity ⊕ (⊕ peers)`. The caller passes the peers
/// (every member *except* the lost one) and the parity payload.
pub fn rebuild_member<'a, I>(peers: I, parity: &BitVec) -> BitVec
where
    I: IntoIterator<Item = &'a BitVec>,
{
    peers.into_iter().fold(parity.clone(), |acc, p| acc.xor(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pages(n: usize, bits: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| BitVec::random(bits, &mut rng)).collect()
    }

    #[test]
    fn xor_rebuild_recovers_any_member() {
        let data = pages(5, 256, 0xA11);
        let parity = xor_fold(&data);
        for lost in 0..data.len() {
            let peers: Vec<&BitVec> =
                data.iter().enumerate().filter(|&(i, _)| i != lost).map(|(_, p)| p).collect();
            assert_eq!(rebuild_member(peers, &parity), data[lost], "member {lost}");
        }
    }

    #[test]
    fn single_member_stripe_parity_is_a_mirror() {
        let data = pages(1, 64, 0xB0);
        let parity = xor_fold(&data);
        assert_eq!(parity, data[0]);
        assert_eq!(rebuild_member(std::iter::empty(), &parity), data[0]);
    }

    #[test]
    fn stripe_map_indexes_members_and_parity() {
        let mut map = StripeMap::new();
        map.insert(7, vec![10, 11, 12], 99);
        assert_eq!(map.len(), 1);
        let (id, s) = map.stripe_of_member(11).unwrap();
        assert_eq!((id, s.parity_lpn), (7, 99));
        let (id, _) = map.stripe_of_parity(99).unwrap();
        assert_eq!(id, 7);
        assert!(map.stripe_of_member(99).is_none(), "parity is not a member");
        // Replacing the stripe drops the old reverse entries.
        map.insert(7, vec![20, 21], 98);
        assert!(map.stripe_of_member(10).is_none());
        assert!(map.stripe_of_parity(99).is_none());
        assert_eq!(map.stripe_of_member(20).unwrap().0, 7);
        // Removal clears everything.
        let s = map.remove(7).unwrap();
        assert_eq!(s.members, vec![20, 21]);
        assert!(map.is_empty());
        assert!(map.stripe_of_member(20).is_none());
    }

    #[test]
    #[should_panic(expected = "parity page cannot be its own member")]
    fn self_covering_parity_is_rejected() {
        StripeMap::new().insert(0, vec![1, 2], 2);
    }
}
