//! Discrete-event simulation kernel.
//!
//! Two primitives cover everything the SSD model needs:
//!
//! * [`EventQueue`] — a time-ordered queue with stable FIFO ordering for
//!   simultaneous events.
//! * [`Resource`] — a serially reusable resource (a die, a channel bus,
//!   the external link) with FIFO reservation semantics: a request placed
//!   at time `t` begins at `max(t, next_free)`.
//!
//! Simulated time is in **nanoseconds** (`u64`), which keeps microsecond
//! NAND latencies and gigabyte-per-second bus transfers exactly
//! representable without floating-point drift in long runs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// Converts microseconds (the paper's native unit) to [`SimTime`].
pub fn us(us: f64) -> SimTime {
    (us * 1_000.0).round() as SimTime
}

/// Converts [`SimTime`] back to microseconds.
pub fn to_us(t: SimTime) -> f64 {
    t as f64 / 1_000.0
}

/// Duration of transferring `bytes` over a link of `gb_per_s` (10⁹ B/s),
/// in nanoseconds.
pub fn transfer_ns(bytes: u64, gb_per_s: f64) -> SimTime {
    assert!(gb_per_s > 0.0, "bandwidth must be positive");
    (bytes as f64 / gb_per_s).round() as SimTime
}

/// A time-ordered event queue. Events with equal timestamps pop in
/// insertion order (stable), which keeps simulations deterministic.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        self.heap.push(Reverse(Entry { time, seq: self.seq, payload }));
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A serially reusable resource with FIFO reservations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Resource {
    next_free: SimTime,
    busy: SimTime,
}

impl Resource {
    /// Creates a resource that is free from time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `duration`, starting no earlier than
    /// `ready`. Returns the `(start, end)` of the granted slot.
    pub fn reserve(&mut self, ready: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let start = ready.max(self.next_free);
        let end = start + duration;
        self.next_free = end;
        self.busy += duration;
        (start, end)
    }

    /// The earliest time a new reservation could begin.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total reserved (busy) time.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Utilization over the window `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.busy as f64 / horizon as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(us(22.5), 22_500);
        assert!((to_us(25_000) - 25.0).abs() < 1e-12);
        // 32 KiB over 1.2 GB/s ≈ 27.3 µs (Fig. 7's tDMA).
        let t = transfer_ns(32 * 1024, 1.2);
        assert!((to_us(t) - 27.3).abs() < 0.1, "{}", to_us(t));
        // 32 KiB over 8 GB/s ≈ 4.1 µs (Fig. 7's tEXT).
        let t = transfer_ns(32 * 1024, 8.0);
        assert!((to_us(t) - 4.1).abs() < 0.1, "{}", to_us(t));
    }

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((10, "a1")));
        assert_eq!(q.pop(), Some((10, "a2")), "FIFO for simultaneous events");
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn resource_serializes_requests() {
        let mut r = Resource::new();
        let (s1, e1) = r.reserve(0, 100);
        assert_eq!((s1, e1), (0, 100));
        // A request arriving while busy waits.
        let (s2, e2) = r.reserve(50, 100);
        assert_eq!((s2, e2), (100, 200));
        // A request arriving after the resource is free starts immediately.
        let (s3, e3) = r.reserve(500, 10);
        assert_eq!((s3, e3), (500, 510));
        assert_eq!(r.busy_time(), 210);
        assert!((r.utilization(510) - 210.0 / 510.0).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_utilization_is_zero() {
        let r = Resource::new();
        assert_eq!(r.utilization(0), 0.0);
    }
}
