//! The in-storage-processing (ISP) baseline accelerator (§7).
//!
//! "ISP leverages an in-storage hardware accelerator that consists of
//! simple bitwise logic and 256-KiB SRAM buffer in order to perform bulk
//! bitwise operations inside the SSD and sends only the final results to
//! the host." Energy: 93 pJ per 64-byte operation (Table 1).
//!
//! The accelerator streams operand chunks from the channels and
//! accumulates a running AND/OR/XOR per buffer slot. Its SRAM bounds how
//! much result state can be resident at once; the platform model uses
//! that bound to size result batches.

use fc_bits::BitVec;
use serde::{Deserialize, Serialize};

use crate::energy::EnergyMeter;

/// SRAM buffer size of the accelerator, bytes (§7: 256 KiB).
pub const SRAM_BYTES: usize = 256 * 1024;

/// Accumulation operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccOp {
    /// Running bitwise AND.
    And,
    /// Running bitwise OR.
    Or,
    /// Running bitwise XOR.
    Xor,
}

/// Errors from the accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IspError {
    /// The requested buffer does not fit in SRAM.
    BufferTooLarge {
        /// Requested size in bytes.
        requested: usize,
    },
    /// Chunk size does not match the open buffer.
    SizeMismatch {
        /// Supplied chunk bits.
        got: usize,
        /// Open buffer bits.
        expected: usize,
    },
    /// No buffer is open.
    NoBuffer,
}

impl std::fmt::Display for IspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IspError::BufferTooLarge { requested } => {
                write!(f, "buffer of {requested} bytes exceeds the {SRAM_BYTES}-byte SRAM")
            }
            IspError::SizeMismatch { got, expected } => {
                write!(f, "chunk of {got} bits does not match the {expected}-bit buffer")
            }
            IspError::NoBuffer => write!(f, "no accumulation buffer is open"),
        }
    }
}

impl std::error::Error for IspError {}

/// One per-channel accelerator instance.
#[derive(Debug, Clone, Default)]
pub struct IspAccelerator {
    buffer: Option<(BitVec, AccOp, bool)>,
    bytes_processed: u64,
}

impl IspAccelerator {
    /// Creates an idle accelerator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes streamed through the bitwise logic (for energy
    /// accounting).
    pub fn bytes_processed(&self) -> u64 {
        self.bytes_processed
    }

    /// Opens an accumulation buffer of `bits` bits for `op`.
    ///
    /// # Errors
    ///
    /// Fails if the buffer exceeds the SRAM capacity.
    pub fn open(&mut self, bits: usize, op: AccOp) -> Result<(), IspError> {
        let bytes = bits.div_ceil(8);
        if bytes > SRAM_BYTES {
            return Err(IspError::BufferTooLarge { requested: bytes });
        }
        let init = match op {
            AccOp::And => BitVec::ones(bits),
            AccOp::Or | AccOp::Xor => BitVec::zeros(bits),
        };
        self.buffer = Some((init, op, false));
        Ok(())
    }

    /// Streams one operand chunk into the open buffer.
    ///
    /// # Errors
    ///
    /// Fails if no buffer is open or sizes mismatch.
    pub fn accumulate(&mut self, chunk: &BitVec) -> Result<(), IspError> {
        let (buf, op, touched) = self.buffer.as_mut().ok_or(IspError::NoBuffer)?;
        if chunk.len() != buf.len() {
            return Err(IspError::SizeMismatch { got: chunk.len(), expected: buf.len() });
        }
        match op {
            AccOp::And => buf.and_assign(chunk),
            AccOp::Or => buf.or_assign(chunk),
            AccOp::Xor => buf.xor_assign(chunk),
        }
        *touched = true;
        self.bytes_processed += chunk.len().div_ceil(8) as u64;
        Ok(())
    }

    /// Closes the buffer and returns the accumulated result.
    ///
    /// # Errors
    ///
    /// Fails if no buffer is open.
    pub fn finish(&mut self) -> Result<BitVec, IspError> {
        let (buf, _, _) = self.buffer.take().ok_or(IspError::NoBuffer)?;
        Ok(buf)
    }

    /// Charges this accelerator's processing energy to `meter` and resets
    /// the byte counter.
    pub fn charge_energy(&mut self, meter: &mut EnergyMeter) {
        meter.add_isp_bytes(self.bytes_processed);
        self.bytes_processed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::Component;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chunks(n: usize, bits: usize) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(5);
        (0..n).map(|_| BitVec::random(bits, &mut rng)).collect()
    }

    #[test]
    fn and_accumulation() {
        let mut acc = IspAccelerator::new();
        let cs = chunks(4, 512);
        acc.open(512, AccOp::And).unwrap();
        for c in &cs {
            acc.accumulate(c).unwrap();
        }
        let expect = cs.iter().skip(1).fold(cs[0].clone(), |a, c| a.and(c));
        assert_eq!(acc.finish().unwrap(), expect);
    }

    #[test]
    fn or_and_xor_accumulation() {
        let cs = chunks(3, 256);
        let mut acc = IspAccelerator::new();
        acc.open(256, AccOp::Or).unwrap();
        for c in &cs {
            acc.accumulate(c).unwrap();
        }
        assert_eq!(acc.finish().unwrap(), cs[0].or(&cs[1]).or(&cs[2]));
        acc.open(256, AccOp::Xor).unwrap();
        for c in &cs {
            acc.accumulate(c).unwrap();
        }
        assert_eq!(acc.finish().unwrap(), cs[0].xor(&cs[1]).xor(&cs[2]));
    }

    #[test]
    fn sram_capacity_is_enforced() {
        let mut acc = IspAccelerator::new();
        assert!(acc.open(SRAM_BYTES * 8, AccOp::And).is_ok());
        let err = acc.open(SRAM_BYTES * 8 + 8, AccOp::And).unwrap_err();
        assert_eq!(err, IspError::BufferTooLarge { requested: SRAM_BYTES + 1 });
    }

    #[test]
    fn misuse_errors() {
        let mut acc = IspAccelerator::new();
        assert_eq!(acc.accumulate(&BitVec::zeros(8)).unwrap_err(), IspError::NoBuffer);
        assert_eq!(acc.finish().unwrap_err(), IspError::NoBuffer);
        acc.open(16, AccOp::And).unwrap();
        assert_eq!(
            acc.accumulate(&BitVec::zeros(8)).unwrap_err(),
            IspError::SizeMismatch { got: 8, expected: 16 }
        );
    }

    #[test]
    fn energy_accounting_93pj_per_64b() {
        let mut acc = IspAccelerator::new();
        acc.open(64 * 8, AccOp::And).unwrap();
        acc.accumulate(&BitVec::ones(64 * 8)).unwrap();
        assert_eq!(acc.bytes_processed(), 64);
        let mut meter = EnergyMeter::new();
        acc.charge_energy(&mut meter);
        let uj = meter.component_uj(Component::IspAccelerator);
        assert!((uj - 93e-6).abs() < 1e-12, "93 pJ = {uj} µJ");
        assert_eq!(acc.bytes_processed(), 0, "counter resets after charging");
    }
}
