//! # fc-ssd — SSD-scale simulator
//!
//! The MQSim-equivalent substrate of the Flash-Cosmos reproduction
//! (§7: "We model SSD performance using MQSim ... We extend MQSim to
//! faithfully model the performance of ISP, ParaBit, and Flash-Cosmos").
//!
//! Layers:
//!
//! * [`sim`] — a small discrete-event kernel: simulated time, an event
//!   queue, and FIFO resources (dies, channel buses, the external link).
//! * [`config`] — SSD organizations: Table 1, the Fig. 7 example, and a
//!   tiny functional-test preset.
//! * [`topology`] — channel/die/plane addressing and page striping.
//! * [`ecc`] — a real BCH encoder/decoder over GF(2^m) standing in for the
//!   LDPC engines of commercial SSDs (§2.2). It exists so the reproduction
//!   can *demonstrate* why in-flash bitwise ops cannot run over
//!   ECC-encoded data.
//! * [`ftl`] — page-mapped flash translation layer with the placement
//!   metadata Flash-Cosmos needs (program scheme, inverse-stored flag).
//! * [`isp`] — the in-storage-processing accelerator baseline (per-channel
//!   bitwise logic + 256 KiB SRAM, 93 pJ / 64 B op; Table 1).
//! * [`energy`] — per-component energy metering.
//! * [`pipeline`] — the execution-pipeline model that turns per-die job
//!   lists into end-to-end makespan + energy (regenerates Fig. 7 and
//!   drives Figs. 17/18).
//! * [`device`] — a functional SSD: NAND chips + FTL + ECC + randomizer
//!   behind a logical-page API, with a shifted-Vref read-retry ladder on
//!   ECC failure.
//! * [`parity`] — RAIN-style cross-die XOR parity stripes: the outer
//!   redundancy layer that rebuilds pages the retry ladder cannot save.

pub mod config;
pub mod device;
pub mod ecc;
pub mod energy;
pub mod ftl;
pub mod isp;
pub mod parity;
pub mod pipeline;
pub mod sim;
pub mod topology;

pub use config::SsdConfig;
pub use device::SsdDevice;
pub use energy::{Component, EnergyMeter};
pub use pipeline::{ExecutionReport, PipelineModel, SenseJob};
