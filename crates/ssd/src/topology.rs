//! SSD topology: channel/die/plane addressing and page striping (Fig. 7a).

use serde::{Deserialize, Serialize};

use crate::config::SsdConfig;

/// Identifies one die in the SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DieId {
    /// Channel index.
    pub channel: u32,
    /// Die index within the channel.
    pub die: u32,
}

impl DieId {
    /// Creates a die id.
    pub fn new(channel: u32, die: u32) -> Self {
        Self { channel, die }
    }

    /// Flat index across the SSD (channel-major).
    pub fn flat(&self, config: &SsdConfig) -> usize {
        self.channel as usize * config.dies_per_channel + self.die as usize
    }

    /// Inverse of [`Self::flat`].
    pub fn from_flat(index: usize, config: &SsdConfig) -> Self {
        Self {
            channel: (index / config.dies_per_channel) as u32,
            die: (index % config.dies_per_channel) as u32,
        }
    }
}

impl std::fmt::Display for DieId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CH{}/D{}", self.channel, self.die)
    }
}

/// Identifies one plane in the SSD (the unit of sensing concurrency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlaneId {
    /// The die holding the plane.
    pub die: DieId,
    /// Plane index within the die.
    pub plane: u32,
}

impl PlaneId {
    /// Creates a plane id.
    pub fn new(die: DieId, plane: u32) -> Self {
        Self { die, plane }
    }

    /// Flat index across the SSD.
    pub fn flat(&self, config: &SsdConfig) -> usize {
        self.die.flat(config) * config.planes_per_die + self.plane as usize
    }

    /// Inverse of [`Self::flat`].
    pub fn from_flat(index: usize, config: &SsdConfig) -> Self {
        Self {
            die: DieId::from_flat(index / config.planes_per_die, config),
            plane: (index % config.planes_per_die) as u32,
        }
    }
}

/// A full physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ppa {
    /// The plane.
    pub plane: PlaneId,
    /// Sub-block within the plane.
    pub block: u32,
    /// Wordline within the sub-block.
    pub wl: u32,
}

/// Round-robin striping of a logical bit-vector across all planes
/// (Fig. 7a: "each bit-vector is distributed across all the 64 planes").
///
/// Page `i` of a vector lands on plane `i % planes`, at that plane's
/// stripe-slot `i / planes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Striping {
    planes: usize,
}

impl Striping {
    /// Striping over all planes of `config`.
    pub fn new(config: &SsdConfig) -> Self {
        Self { planes: config.total_planes() }
    }

    /// Plane that holds page index `i` of a striped vector.
    pub fn plane_of(&self, page_index: u64) -> usize {
        (page_index % self.planes as u64) as usize
    }

    /// Per-plane slot of page index `i`.
    pub fn slot_of(&self, page_index: u64) -> u64 {
        page_index / self.planes as u64
    }

    /// Pages of an `n_pages` vector that land on `plane` (their indices).
    pub fn pages_on_plane(&self, n_pages: u64, plane: usize) -> u64 {
        let full = n_pages / self.planes as u64;
        let rem = n_pages % self.planes as u64;
        full + u64::from((plane as u64) < rem)
    }

    /// Maximum pages any plane holds for an `n_pages` vector — the
    /// per-plane depth that sizes sensing work in the platform models.
    pub fn max_pages_per_plane(&self, n_pages: u64) -> u64 {
        n_pages.div_ceil(self.planes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_roundtrip() {
        let c = SsdConfig::paper_table1();
        for idx in [0usize, 1, 7, 8, 63] {
            assert_eq!(DieId::from_flat(idx, &c).flat(&c), idx);
        }
        for idx in [0usize, 1, 127] {
            assert_eq!(PlaneId::from_flat(idx, &c).flat(&c), idx);
        }
        assert_eq!(DieId::from_flat(9, &c), DieId::new(1, 1));
        assert_eq!(DieId::new(1, 1).to_string(), "CH1/D1");
    }

    #[test]
    fn striping_is_balanced() {
        let c = SsdConfig::paper_table1();
        let s = Striping::new(&c);
        // A 100 MB vector = 6400 pages over 128 planes → 50 each.
        let pages = 6400u64;
        for p in 0..c.total_planes() {
            assert_eq!(s.pages_on_plane(pages, p), 50);
        }
        assert_eq!(s.max_pages_per_plane(pages), 50);
        // Uneven case.
        assert_eq!(s.pages_on_plane(129, 0), 2);
        assert_eq!(s.pages_on_plane(129, 1), 1);
        assert_eq!(s.max_pages_per_plane(129), 2);
    }

    #[test]
    fn plane_and_slot_cover_all_pages() {
        let c = SsdConfig::tiny_test();
        let s = Striping::new(&c);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert((s.plane_of(i), s.slot_of(i)));
        }
        assert_eq!(seen.len(), 64, "striping must not collide");
    }
}
