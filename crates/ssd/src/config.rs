//! SSD organization and timing configuration (Table 1 and Fig. 7a).

use fc_nand::calib::timing;
use serde::{Deserialize, Serialize};

/// SSD organization, bandwidths and NAND timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Independent flash channels.
    pub channels: usize,
    /// Dies sharing each channel (time-interleaved).
    pub dies_per_channel: usize,
    /// Planes per die (can sense concurrently; share the die's command
    /// path but multi-plane reads proceed in lockstep).
    pub planes_per_die: usize,
    /// Sub-blocks per plane.
    pub blocks_per_plane: usize,
    /// Wordlines per sub-block (NAND string length).
    pub wls_per_block: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Channel I/O rate, GB/s (decimal) per channel.
    pub channel_gbps: f64,
    /// External (host) I/O bandwidth, GB/s.
    pub external_gbps: f64,
    /// SLC page-read latency, µs.
    pub tr_us: f64,
    /// Fixed MWS latency budget, µs (covers ≤ `max_inter_blocks` blocks
    /// and full-string intra-block sensing).
    pub tmws_us: f64,
    /// SLC program latency, µs.
    pub tprog_slc_us: f64,
    /// MLC program latency, µs.
    pub tprog_mlc_us: f64,
    /// TLC program latency, µs.
    pub tprog_tlc_us: f64,
    /// ESP program latency, µs.
    pub tesp_us: f64,
    /// Power cap on simultaneously activated blocks for inter-block MWS.
    pub max_inter_blocks: usize,
}

impl SsdConfig {
    /// The evaluated SSD of Table 1: 2 TB, 8 channels × 8 dies × 2 planes,
    /// 2048 physical blocks/plane (×4 sub-blocks), 48-WL strings, 16 KiB
    /// pages, 1.2 GB/s channels, 8 GB/s external I/O (4-lane PCIe Gen4).
    pub fn paper_table1() -> Self {
        Self {
            channels: 8,
            dies_per_channel: 8,
            planes_per_die: 2,
            blocks_per_plane: 2048 * 4,
            wls_per_block: 48,
            page_bytes: 16 * 1024,
            channel_gbps: 1.2,
            external_gbps: 8.0,
            tr_us: timing::T_R_SLC_US,
            tmws_us: timing::T_MWS_US,
            tprog_slc_us: timing::T_PROG_SLC_US,
            tprog_mlc_us: timing::T_PROG_MLC_US,
            tprog_tlc_us: timing::T_PROG_TLC_US,
            tesp_us: timing::T_ESP_US,
            max_inter_blocks: timing::MAX_INTER_BLOCKS,
        }
    }

    /// The illustrative SSD of Fig. 7a: 8 channels × 4 dies × 2 planes,
    /// `tR = 60 µs`, used for the OSP/ISP/IFP timeline comparison.
    pub fn fig7_example() -> Self {
        Self {
            channels: 8,
            dies_per_channel: 4,
            planes_per_die: 2,
            blocks_per_plane: 2048,
            wls_per_block: 48,
            page_bytes: 16 * 1024,
            channel_gbps: 1.2,
            external_gbps: 8.0,
            tr_us: 60.0,
            tmws_us: 60.0 * timing::T_MWS_US / timing::T_R_SLC_US,
            tprog_slc_us: timing::T_PROG_SLC_US,
            tprog_mlc_us: timing::T_PROG_MLC_US,
            tprog_tlc_us: timing::T_PROG_TLC_US,
            tesp_us: timing::T_ESP_US,
            max_inter_blocks: timing::MAX_INTER_BLOCKS,
        }
    }

    /// A miniature SSD for functional tests: 2 channels × 2 dies × 2
    /// planes with 32-byte pages and 8-WL strings.
    pub fn tiny_test() -> Self {
        Self {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 16,
            wls_per_block: 8,
            page_bytes: 32,
            channel_gbps: 1.2,
            external_gbps: 8.0,
            tr_us: timing::T_R_SLC_US,
            tmws_us: timing::T_MWS_US,
            tprog_slc_us: timing::T_PROG_SLC_US,
            tprog_mlc_us: timing::T_PROG_MLC_US,
            tprog_tlc_us: timing::T_PROG_TLC_US,
            tesp_us: timing::T_ESP_US,
            max_inter_blocks: timing::MAX_INTER_BLOCKS,
        }
    }

    /// Total dies.
    pub fn total_dies(&self) -> usize {
        self.channels * self.dies_per_channel
    }

    /// Total planes (the unit of sensing concurrency).
    pub fn total_planes(&self) -> usize {
        self.total_dies() * self.planes_per_die
    }

    /// Bits per page.
    pub fn page_bits(&self) -> usize {
        self.page_bytes * 8
    }

    /// Raw capacity in bytes at `bits_per_cell` (Table 1's "2 TB" is the
    /// TLC capacity).
    pub fn capacity_bytes(&self, bits_per_cell: u32) -> u64 {
        self.total_planes() as u64
            * self.blocks_per_plane as u64
            * self.wls_per_block as u64
            * self.page_bytes as u64
            * bits_per_cell as u64
    }

    /// Time to move one die's multi-plane read output (all planes' pages)
    /// over its channel, µs — Fig. 7's `tDMA`.
    pub fn tdma_us(&self) -> f64 {
        let bytes = (self.page_bytes * self.planes_per_die) as u64;
        bytes as f64 / (self.channel_gbps * 1e9) * 1e6
    }

    /// Time to move one page over its channel, µs (per-plane slice of
    /// [`SsdConfig::tdma_us`]) — the bus cost of a single `ReadOut`.
    pub fn page_transfer_us(&self) -> f64 {
        self.page_bytes as f64 / (self.channel_gbps * 1e9) * 1e6
    }

    /// Planes sharing each channel.
    pub fn planes_per_channel(&self) -> usize {
        self.dies_per_channel * self.planes_per_die
    }

    /// The channel serving a flat plane index.
    pub fn channel_of_plane(&self, flat_plane: usize) -> usize {
        (flat_plane / self.planes_per_channel().max(1)).min(self.channels.saturating_sub(1))
    }

    /// The channel serving a flat die index.
    pub fn channel_of_die(&self, flat_die: usize) -> usize {
        (flat_die / self.dies_per_channel.max(1)).min(self.channels.saturating_sub(1))
    }

    /// Time to move one die's multi-plane output over the external link,
    /// µs — Fig. 7's `tEXT`.
    pub fn text_us(&self) -> f64 {
        let bytes = (self.page_bytes * self.planes_per_die) as u64;
        bytes as f64 / (self.external_gbps * 1e9) * 1e6
    }

    /// Aggregate internal bandwidth (all channels), GB/s — Fig. 7a's
    /// "Internal BW: 9.6 (1.2×8) GB/s".
    pub fn internal_gbps_total(&self) -> f64 {
        self.channel_gbps * self.channels as f64
    }

    /// The geometry for each die's NAND chip model.
    pub fn chip_geometry(&self) -> fc_nand::geometry::ChipGeometry {
        fc_nand::geometry::ChipGeometry {
            planes: self.planes_per_die as u32,
            blocks_per_plane: self.blocks_per_plane as u32,
            wls_per_block: self.wls_per_block as u32,
            page_bytes: self.page_bytes as u32,
            subblocks_per_physical_block: 4,
        }
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::paper_table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capacity_is_2tb_in_tlc_mode() {
        let c = SsdConfig::paper_table1();
        let tb = c.capacity_bytes(3) as f64 / 1e12;
        assert!((2.0..2.6).contains(&tb), "capacity {tb} TB");
        assert_eq!(c.total_planes(), 128);
        assert!((c.internal_gbps_total() - 9.6).abs() < 1e-9);
    }

    #[test]
    fn fig7_transfer_latencies() {
        let c = SsdConfig::fig7_example();
        assert!((c.tdma_us() - 27.3).abs() < 0.1, "tDMA {}", c.tdma_us());
        assert!((c.text_us() - 4.1).abs() < 0.1, "tEXT {}", c.text_us());
        assert_eq!(c.total_planes(), 64);
        assert_eq!(c.tr_us, 60.0);
    }

    #[test]
    fn tiny_preset_is_small() {
        let c = SsdConfig::tiny_test();
        assert!(c.capacity_bytes(1) < 1_000_000);
        assert_eq!(c.chip_geometry().page_bits(), 256);
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(SsdConfig::default(), SsdConfig::paper_table1());
    }
}
