//! Execution-pipeline model: turns per-die job lists into end-to-end
//! makespan and energy (the engine behind Figs. 7, 17 and 18).
//!
//! The model captures the three-stage pipeline of §3.1:
//!
//! 1. **Sensing** — each die executes its sense jobs back-to-back (the
//!    cache latch lets the next sense overlap the previous transfer).
//! 2. **Internal I/O** — a die's output chunk moves over its channel; the
//!    channel is a FIFO resource shared by the channel's dies.
//! 3. **External I/O** — chunks bound for the host move over the shared
//!    external link (FIFO), in data-ready order.
//!
//! Host-side consumption (bitwise combine for OSP, bit-count for BMI, …)
//! streams concurrently with external transfers and adds a tail if the
//! host is slower than the link.
//!
//! Each platform (OSP / ISP / ParaBit / Flash-Cosmos) is expressed purely
//! as a different job list — see `flash_cosmos::engines` — so the timing
//! model itself stays platform-agnostic, exactly like the paper's extended
//! MQSim.

use serde::{Deserialize, Serialize};

use crate::config::SsdConfig;
use crate::energy::{Component, EnergyMeter};
use crate::sim::{self, Resource, SimTime};

/// One die-level operation: a sense followed by optional internal and
/// external transfers of its output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseJob {
    /// Sense latency, µs (`tR` for a regular read, `tMWS` for MWS, 0 for
    /// pure transfer jobs).
    pub latency_us: f64,
    /// Bytes to move die → controller after the sense (0 = stays in the
    /// latches / no output).
    pub dma_bytes: u64,
    /// Bytes to move controller → host once the DMA lands (0 = consumed
    /// inside the SSD).
    pub ext_bytes: u64,
    /// Chip power during the sense, normalized to a regular read
    /// (Fig. 14 scale) — drives NAND energy accounting.
    pub norm_power: f64,
}

impl SenseJob {
    /// A regular page read whose output goes all the way to the host.
    pub fn read_to_host(config: &SsdConfig) -> Self {
        let bytes = (config.page_bytes * config.planes_per_die) as u64;
        Self { latency_us: config.tr_us, dma_bytes: bytes, ext_bytes: bytes, norm_power: 1.0 }
    }

    /// A regular page read consumed inside the SSD (ISP operand fetch).
    pub fn read_to_controller(config: &SsdConfig) -> Self {
        let bytes = (config.page_bytes * config.planes_per_die) as u64;
        Self { latency_us: config.tr_us, dma_bytes: bytes, ext_bytes: 0, norm_power: 1.0 }
    }

    /// A sense whose result stays in the latches (ParaBit accumulation
    /// step / non-final MWS).
    pub fn sense_only(latency_us: f64, norm_power: f64) -> Self {
        Self { latency_us, dma_bytes: 0, ext_bytes: 0, norm_power }
    }
}

/// Host-side work fed by the external stream.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HostWork {
    /// Bytes the host CPU must process.
    pub cpu_bytes: u64,
    /// Host CPU streaming throughput over those bytes, GB/s.
    pub cpu_gbps: f64,
    /// Host CPU energy, pJ per byte processed.
    pub cpu_pj_per_byte: f64,
    /// Bytes moved through host DRAM (typically 2× the stream: write on
    /// arrival + read for processing).
    pub dram_bytes: u64,
    /// DRAM energy, pJ per byte.
    pub dram_pj_per_byte: f64,
}

impl HostWork {
    /// Folds another host workload into this one, for batched pipeline
    /// runs that execute several workloads' job lists back to back.
    ///
    /// Byte counts add; the merged throughput preserves total CPU time
    /// (byte-weighted harmonic combination), and the merged energy rate
    /// preserves total energy (byte-weighted average), so a merged run
    /// models the same host work as running the parts separately.
    pub fn merge(&mut self, other: &HostWork) {
        let total = self.cpu_bytes + other.cpu_bytes;
        if total > 0 {
            let time = |w: &HostWork| {
                if w.cpu_gbps > 0.0 {
                    w.cpu_bytes as f64 / w.cpu_gbps
                } else {
                    0.0
                }
            };
            let total_time = time(self) + time(other);
            self.cpu_gbps = if total_time > 0.0 { total as f64 / total_time } else { 0.0 };
            self.cpu_pj_per_byte = (self.cpu_bytes as f64 * self.cpu_pj_per_byte
                + other.cpu_bytes as f64 * other.cpu_pj_per_byte)
                / total as f64;
        }
        self.cpu_bytes = total;
        let dram_total = self.dram_bytes + other.dram_bytes;
        if dram_total > 0 {
            self.dram_pj_per_byte = (self.dram_bytes as f64 * self.dram_pj_per_byte
                + other.dram_bytes as f64 * other.dram_pj_per_byte)
                / dram_total as f64;
        }
        self.dram_bytes = dram_total;
    }
}

/// Appends one run's per-die job lists onto an accumulated batch, so a
/// single pipeline run executes many workloads back to back. Runs with
/// different die counts compose (missing dies simply contribute no jobs).
pub fn append_die_jobs(batch: &mut Vec<Vec<SenseJob>>, jobs: Vec<Vec<SenseJob>>) {
    if batch.len() < jobs.len() {
        batch.resize(jobs.len(), Vec::new());
    }
    for (acc, die_jobs) in batch.iter_mut().zip(jobs) {
        acc.extend(die_jobs);
    }
}

/// Per-die occupancy of queued sense work: how much latency each die has
/// accumulated in its work queue.
///
/// The async submission path (`flash_cosmos::session`) compiles each
/// batch into per-die command queues; this tracker models their timeline.
/// Dies execute their queues independently and concurrently, so the
/// completion time of everything queued is the **busiest** die
/// ([`DieQueues::busiest_us`]), not the sum — two batches whose busy dies
/// differ overlap on the idle ones, and [`overlap_report`] quantifies the
/// win versus executing the batches back to back.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DieQueues {
    busy_us: Vec<f64>,
    /// Per-channel bus occupancy, µs: output transfers queued via
    /// [`DieQueues::push_transfer`]. Senses/programs occupy only the die;
    /// transfers occupy only the channel, so the two lanes overlap and
    /// the modeled completion time is [`DieQueues::critical_path_us`] —
    /// max(busiest die, busiest channel).
    chan_us: Vec<f64>,
    /// Dies sharing each channel bus (flat die `d` transfers over channel
    /// `d / dies_per_channel`). `0` means unconfigured: each die gets its
    /// own lane, so legacy die-only trackers model no bus contention.
    dies_per_channel: usize,
    /// Total fill-in (background/maintenance) latency accepted via
    /// [`DieQueues::try_fill`], µs. Included in `busy_us` as well — this
    /// is the attribution split, not extra time.
    filled_us: f64,
}

impl DieQueues {
    /// An empty tracker for `dies` dies (it also grows on demand).
    pub fn new(dies: usize) -> Self {
        Self { busy_us: vec![0.0; dies], chan_us: Vec::new(), dies_per_channel: 0, filled_us: 0.0 }
    }

    /// An empty tracker with the channel topology of `config`: transfers
    /// pushed for die `d` occupy channel `d / dies_per_channel`.
    pub fn for_config(config: &SsdConfig) -> Self {
        Self {
            busy_us: vec![0.0; config.total_dies()],
            chan_us: vec![0.0; config.channels],
            dies_per_channel: config.dies_per_channel,
            filled_us: 0.0,
        }
    }

    /// Queues `latency_us` of work on a die (flat index).
    pub fn push(&mut self, die: usize, latency_us: f64) {
        if die >= self.busy_us.len() {
            self.busy_us.resize(die + 1, 0.0);
        }
        self.busy_us[die] += latency_us;
    }

    /// Queues `latency_us` of output transfer on the channel bus serving
    /// `die` (flat index). The die itself stays free — the cache latch
    /// lets the next sense overlap the outgoing transfer (§3.1).
    pub fn push_transfer(&mut self, die: usize, latency_us: f64) {
        let ch = die / self.dies_per_channel.max(1);
        if ch >= self.chan_us.len() {
            self.chan_us.resize(ch + 1, 0.0);
        }
        self.chan_us[ch] += latency_us;
    }

    /// Folds another tracker's queues into this one (per-die sums) — the
    /// combined occupancy of several batches draining together.
    pub fn merge(&mut self, other: &DieQueues) {
        if self.busy_us.len() < other.busy_us.len() {
            self.busy_us.resize(other.busy_us.len(), 0.0);
        }
        for (acc, &b) in self.busy_us.iter_mut().zip(&other.busy_us) {
            *acc += b;
        }
        if self.chan_us.len() < other.chan_us.len() {
            self.chan_us.resize(other.chan_us.len(), 0.0);
        }
        for (acc, &b) in self.chan_us.iter_mut().zip(&other.chan_us) {
            *acc += b;
        }
        if self.dies_per_channel == 0 {
            self.dies_per_channel = other.dies_per_channel;
        }
        self.filled_us += other.filled_us;
    }

    /// Idle time left on a die before its queue reaches `budget_us` —
    /// the slack a background task can fill without pushing the drain's
    /// critical path past the budget.
    pub fn slack_us(&self, die: usize, budget_us: f64) -> f64 {
        (budget_us - self.busy_us.get(die).copied().unwrap_or(0.0)).max(0.0)
    }

    /// Attempts to schedule fill-in work — `(die, latency_us)` pieces that
    /// must all run — into the queues' idle slack. All-or-nothing: the
    /// work is accepted (and queued) only when **every** touched die stays
    /// at or below `budget_us` afterwards, so accepted fill-in can never
    /// extend the critical path beyond the budget. Returns whether the
    /// work was accepted.
    pub fn try_fill(&mut self, work: &[(usize, f64)], budget_us: f64) -> bool {
        // Aggregate per-die first: two pieces on one die must jointly fit.
        let mut needed: Vec<(usize, f64)> = Vec::with_capacity(work.len());
        for &(die, us) in work {
            match needed.iter_mut().find(|(d, _)| *d == die) {
                Some((_, acc)) => *acc += us,
                None => needed.push((die, us)),
            }
        }
        if needed.iter().any(|&(die, us)| us > self.slack_us(die, budget_us)) {
            return false;
        }
        for &(die, us) in &needed {
            self.push(die, us);
            self.filled_us += us;
        }
        true
    }

    /// Total fill-in latency accepted by [`DieQueues::try_fill`], µs.
    pub fn filled_us(&self) -> f64 {
        self.filled_us
    }

    /// The busiest die's total queued latency, µs — the modeled critical
    /// path of draining every die queue concurrently (die lanes only; see
    /// [`DieQueues::critical_path_us`] for the channel-aware path).
    pub fn busiest_us(&self) -> f64 {
        self.busy_us.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// The busiest channel bus's total transfer time, µs.
    pub fn busiest_channel_us(&self) -> f64 {
        self.chan_us.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// The modeled completion time of draining everything queued: dies
    /// sense concurrently while channels stream concurrently, so the
    /// critical path is max(busiest die, busiest channel).
    pub fn critical_path_us(&self) -> f64 {
        self.busiest_us().max(self.busiest_channel_us())
    }

    /// Whether the channel bus (not die sensing) bounds the critical path.
    pub fn channel_bound(&self) -> bool {
        self.busiest_channel_us() > self.busiest_us()
    }

    /// Total queued latency across all dies, µs (the serial-equivalent
    /// chip time).
    pub fn total_us(&self) -> f64 {
        self.busy_us.iter().sum()
    }

    /// Number of dies with non-empty queues.
    pub fn dies_busy(&self) -> usize {
        self.busy_us.iter().filter(|&&b| b > 0.0).count()
    }

    /// Number of channels with non-empty transfer lanes.
    pub fn channels_busy(&self) -> usize {
        self.chan_us.iter().filter(|&&b| b > 0.0).count()
    }

    /// Per-die occupancy, µs, indexed by flat die id.
    pub fn occupancy_us(&self) -> &[f64] {
        &self.busy_us
    }

    /// Per-channel bus occupancy, µs, indexed by channel id.
    pub fn channel_occupancy_us(&self) -> &[f64] {
        &self.chan_us
    }

    /// Empties every queue.
    pub fn clear(&mut self) {
        self.busy_us.iter_mut().for_each(|b| *b = 0.0);
        self.chan_us.iter_mut().for_each(|b| *b = 0.0);
        self.filled_us = 0.0;
    }
}

/// Concurrent die-occupancy tracker: [`DieQueues`] split per die, one
/// mutex shard per die, so N threads executing batches on *different*
/// dies account their queue time without contending on one lock.
///
/// Each shard guards only its own die's accumulated busy time; there is
/// no cross-shard invariant, so shards are locked one at a time and the
/// lock order is trivially acyclic. [`SharedDieQueues::snapshot`]
/// reassembles a plain [`DieQueues`] by visiting shards in die order —
/// the result is a *consistent-enough* occupancy picture for reporting
/// (concurrent pushes may land before or after the snapshot visits
/// their die, exactly like a relaxed counter read).
#[derive(Debug)]
pub struct SharedDieQueues {
    shards: Vec<std::sync::Mutex<DieShard>>,
}

#[derive(Debug, Default)]
struct DieShard {
    busy_us: f64,
}

impl SharedDieQueues {
    /// An empty tracker with one shard per die.
    pub fn new(dies: usize) -> Self {
        Self { shards: (0..dies).map(|_| std::sync::Mutex::new(DieShard::default())).collect() }
    }

    fn shard(&self, die: usize) -> std::sync::MutexGuard<'_, DieShard> {
        self.shards[die.min(self.shards.len().saturating_sub(1))]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Queues `latency_us` of work on a die (flat index). Out-of-range
    /// dies fold into the last shard rather than growing — the shard
    /// count is fixed at construction so no resize lock is needed.
    pub fn push(&self, die: usize, latency_us: f64) {
        if self.shards.is_empty() {
            return;
        }
        self.shard(die).busy_us += latency_us;
    }

    /// Folds a per-batch [`DieQueues`] into the shared shards, one die
    /// at a time (no global lock): the per-die occupancy accumulated by
    /// one drain joins the device-lifetime totals. Fill-in attribution
    /// stays per-drain (in drain-stats reporting); the shared tracker
    /// keeps raw busy time only.
    pub fn merge(&self, other: &DieQueues) {
        if self.shards.is_empty() {
            return;
        }
        for (die, &us) in other.occupancy_us().iter().enumerate() {
            if us > 0.0 {
                self.shard(die).busy_us += us;
            }
        }
    }

    /// Reassembles a plain [`DieQueues`] from the shards for reporting.
    pub fn snapshot(&self) -> DieQueues {
        let mut out = DieQueues::new(self.shards.len());
        for (die, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            out.push(die, guard.busy_us);
        }
        out
    }

    /// Empties every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner).busy_us = 0.0;
        }
    }
}

/// How much die-level overlap saves when several batches drain together
/// instead of executing back to back.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverlapReport {
    /// Critical path of the combined queues — max(busiest die, busiest
    /// channel) of the element-wise sum, µs.
    pub combined_critical_us: f64,
    /// Sum of each batch's standalone critical path (max of busiest die
    /// and busiest channel per batch), µs — what serial submission would
    /// cost.
    pub serial_critical_us: f64,
}

impl OverlapReport {
    /// Critical-path time saved by overlapping, µs (≥ 0).
    pub fn saved_us(&self) -> f64 {
        (self.serial_critical_us - self.combined_critical_us).max(0.0)
    }
}

/// Computes the overlap of several batches' die queues: batches interleave
/// on idle dies, so the combined critical path is the busiest die of the
/// summed occupancy — at most (and usually below) the sum of per-batch
/// critical paths.
pub fn overlap_report(batches: &[DieQueues]) -> OverlapReport {
    let mut combined = DieQueues::default();
    let mut serial = 0.0;
    for b in batches {
        combined.merge(b);
        serial += b.critical_path_us();
    }
    OverlapReport { combined_critical_us: combined.critical_path_us(), serial_critical_us: serial }
}

/// A per-die trace entry (used to print Fig. 7-style timelines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Flat die index.
    pub die: usize,
    /// Pipeline stage.
    pub stage: Stage,
    /// Job index on the die.
    pub job: usize,
    /// Start, µs.
    pub start_us: f64,
    /// End, µs.
    pub end_us: f64,
}

/// Pipeline stage of a trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// NAND array sensing.
    Sense,
    /// Channel DMA (die → controller).
    Dma,
    /// External transfer (controller → host).
    Ext,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Sense => write!(f, "sense"),
            Stage::Dma => write!(f, "dma"),
            Stage::Ext => write!(f, "ext"),
        }
    }
}

/// Result of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// End-to-end execution time, µs.
    pub makespan_us: f64,
    /// Per-component energy.
    pub energy: EnergyMeter,
    /// Latest sensing completion across dies, µs.
    pub sense_end_us: f64,
    /// Latest channel-DMA completion, µs.
    pub dma_end_us: f64,
    /// Latest external-transfer completion, µs.
    pub ext_end_us: f64,
    /// Host-compute completion, µs.
    pub host_end_us: f64,
    /// Longest per-die total sensing time, µs.
    pub sense_busy_us: f64,
    /// Busiest channel's total DMA time, µs.
    pub dma_busy_us: f64,
    /// External link total busy time, µs.
    pub ext_busy_us: f64,
    /// Per-die traces (only when tracing was requested).
    pub trace: Vec<TraceEvent>,
}

impl ExecutionReport {
    /// Which stage bounds the execution (the paper's "Bottleneck" labels
    /// in Fig. 7): the stage with the largest total busy time. Host
    /// compute rides the external stream and is attributed to Ext.
    pub fn bottleneck(&self) -> Stage {
        let ext = self.ext_busy_us.max(self.host_end_us - self.ext_end_us + self.ext_busy_us);
        if self.sense_busy_us >= self.dma_busy_us && self.sense_busy_us >= ext {
            Stage::Sense
        } else if self.dma_busy_us >= ext {
            Stage::Dma
        } else {
            Stage::Ext
        }
    }

    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total_j()
    }
}

/// Reusable buffers for repeated pipeline runs.
///
/// A run's request staging lists and channel-resource array are sized by
/// the job count and channel count; the evaluation harnesses execute the
/// same model thousands of times (figure sweeps, ablations), so carrying
/// this scratch across runs removes those per-run allocations. Contents
/// are unspecified between runs.
#[derive(Debug, Default)]
pub struct PipelineScratch {
    dma_requests: Vec<(SimTime, usize, usize, SenseJob)>,
    ext_requests: Vec<(SimTime, usize, usize, u64)>,
    channels: Vec<Resource>,
}

impl PipelineScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The platform-agnostic pipeline model.
#[derive(Debug, Clone)]
pub struct PipelineModel {
    config: SsdConfig,
}

impl PipelineModel {
    /// Creates a model for an SSD configuration.
    pub fn new(config: SsdConfig) -> Self {
        Self { config }
    }

    /// The SSD configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Runs the pipeline for `die_jobs` (indexed by flat die id; shorter
    /// vectors leave the remaining dies idle) and `host` work.
    pub fn run(&self, die_jobs: &[Vec<SenseJob>], host: HostWork) -> ExecutionReport {
        self.run_inner(die_jobs, host, false, &mut PipelineScratch::new())
    }

    /// Like [`Self::run`] but reuses `scratch` across runs, so sweeps that
    /// evaluate the model repeatedly stage their requests without per-run
    /// allocation.
    pub fn run_with_scratch(
        &self,
        die_jobs: &[Vec<SenseJob>],
        host: HostWork,
        scratch: &mut PipelineScratch,
    ) -> ExecutionReport {
        self.run_inner(die_jobs, host, false, scratch)
    }

    /// Like [`Self::run`] but also records per-die traces (for timeline
    /// rendering; costs memory proportional to the job count).
    pub fn run_traced(&self, die_jobs: &[Vec<SenseJob>], host: HostWork) -> ExecutionReport {
        self.run_inner(die_jobs, host, true, &mut PipelineScratch::new())
    }

    fn run_inner(
        &self,
        die_jobs: &[Vec<SenseJob>],
        host: HostWork,
        traced: bool,
        scratch: &mut PipelineScratch,
    ) -> ExecutionReport {
        let cfg = &self.config;
        assert!(
            die_jobs.len() <= cfg.total_dies(),
            "job list names {} dies but the SSD has {}",
            die_jobs.len(),
            cfg.total_dies()
        );
        let mut energy = EnergyMeter::new();
        let mut trace = Vec::new();

        // Stage 1: senses run back-to-back per die.
        // (sense_end, die, job index, job) for every job, in die order.
        let dma_requests = &mut scratch.dma_requests;
        dma_requests.clear();
        let mut sense_end_max: SimTime = 0;
        let mut sense_busy_max: SimTime = 0;
        for (die, jobs) in die_jobs.iter().enumerate() {
            let mut t: SimTime = 0;
            for (j, job) in jobs.iter().enumerate() {
                let dur = sim::us(job.latency_us);
                let start = t;
                t += dur;
                if traced && dur > 0 {
                    trace.push(TraceEvent {
                        die,
                        stage: Stage::Sense,
                        job: j,
                        start_us: sim::to_us(start),
                        end_us: sim::to_us(t),
                    });
                }
                if job.latency_us > 0.0 {
                    // Multi-plane op: every plane's array is active.
                    let planes = cfg.planes_per_die as f64;
                    energy.add(
                        Component::NandSense,
                        planes * fc_nand::power::energy_uj(job.norm_power, job.latency_us),
                    );
                }
                if job.dma_bytes > 0 || job.ext_bytes > 0 {
                    dma_requests.push((t, die, j, *job));
                }
            }
            sense_end_max = sense_end_max.max(t);
            sense_busy_max = sense_busy_max.max(t);
        }

        // Stage 2: channel FIFO arbitration in data-ready order.
        let channels = &mut scratch.channels;
        channels.clear();
        channels.resize(cfg.channels, Resource::new());
        let ext_requests = &mut scratch.ext_requests;
        ext_requests.clear();
        let mut dma_end_max: SimTime = 0;
        dma_requests.sort_by_key(|&(ready, die, j, _)| (ready, die, j));
        for &mut (ready, die, j, job) in dma_requests {
            let mut data_at_controller = ready;
            if job.dma_bytes > 0 {
                let ch = die / cfg.dies_per_channel;
                let dur = sim::transfer_ns(job.dma_bytes, cfg.channel_gbps);
                let (start, end) = channels[ch].reserve(ready, dur);
                energy.add_channel_bytes(job.dma_bytes);
                dma_end_max = dma_end_max.max(end);
                data_at_controller = end;
                if traced {
                    trace.push(TraceEvent {
                        die,
                        stage: Stage::Dma,
                        job: j,
                        start_us: sim::to_us(start),
                        end_us: sim::to_us(end),
                    });
                }
            }
            if job.ext_bytes > 0 {
                ext_requests.push((data_at_controller, die, j, job.ext_bytes));
            }
        }

        // Stage 3: external link, FIFO in data-ready order.
        let mut ext = Resource::new();
        let mut ext_end_max: SimTime = 0;
        let mut first_ext_end: Option<SimTime> = None;
        ext_requests.sort_by_key(|&(ready, die, j, _)| (ready, die, j));
        for &mut (ready, die, j, bytes) in ext_requests {
            let dur = sim::transfer_ns(bytes, cfg.external_gbps);
            let (start, end) = ext.reserve(ready, dur);
            energy.add_external_bytes(bytes);
            ext_end_max = ext_end_max.max(end);
            first_ext_end.get_or_insert(end);
            if traced {
                trace.push(TraceEvent {
                    die,
                    stage: Stage::Ext,
                    job: j,
                    start_us: sim::to_us(start),
                    end_us: sim::to_us(end),
                });
            }
        }

        // Host consumption: streams behind the external link; the tail
        // beyond the last arrival is what the CPU still has to chew.
        let mut host_end: SimTime = 0;
        if host.cpu_bytes > 0 && host.cpu_gbps > 0.0 {
            let cpu_dur = sim::transfer_ns(host.cpu_bytes, host.cpu_gbps);
            let start = first_ext_end.unwrap_or(0);
            host_end = (start + cpu_dur).max(ext_end_max);
            energy.add(Component::HostCpu, host.cpu_bytes as f64 * host.cpu_pj_per_byte * 1e-6);
        }
        if host.dram_bytes > 0 {
            energy.add(Component::HostDram, host.dram_bytes as f64 * host.dram_pj_per_byte * 1e-6);
        }

        let makespan = sense_end_max.max(dma_end_max).max(ext_end_max).max(host_end);
        let dma_busy_max = channels.iter().map(Resource::busy_time).max().unwrap_or(0);
        ExecutionReport {
            makespan_us: sim::to_us(makespan),
            energy,
            sense_end_us: sim::to_us(sense_end_max),
            dma_end_us: sim::to_us(dma_end_max),
            ext_end_us: sim::to_us(ext_end_max),
            host_end_us: sim::to_us(host_end),
            sense_busy_us: sim::to_us(sense_busy_max),
            dma_busy_us: sim::to_us(dma_busy_max),
            ext_busy_us: sim::to_us(ext.busy_time()),
            trace,
        }
    }
}

/// Sequential-write bandwidth of the whole SSD for a program latency
/// (§8.3). Steady state per channel: all its dies program concurrently,
/// but each die's multi-plane data-in must cross the shared channel, so
/// one round takes `max(tprog, dies × tDMA)` and commits one multi-plane
/// page set per die.
///
/// The paper reports 6.4 / 4.7 / 3.87 / 2.82 GB/s for SLC / ESP / MLC /
/// TLC; this model reproduces the ordering and the ESP-vs-MLC/TLC ratios
/// (the paper's absolute SLC figure implies extra per-op overheads it
/// does not itemize — see EXPERIMENTS.md).
pub fn sequential_write_gbps(config: &SsdConfig, tprog_us: f64, _bits_per_cell: u32) -> f64 {
    let chunk = (config.page_bytes * config.planes_per_die) as f64;
    let datain_us = chunk / (config.channel_gbps * 1e9) * 1e6;
    let round_us = tprog_us.max(datain_us * config.dies_per_channel as f64);
    let per_channel = chunk * config.dies_per_channel as f64 / (round_us * 1e-6);
    per_channel * config.channels as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_work_merge_preserves_time_and_energy() {
        let mut a = HostWork {
            cpu_bytes: 1000,
            cpu_gbps: 10.0,
            cpu_pj_per_byte: 2.0,
            dram_bytes: 500,
            dram_pj_per_byte: 4.0,
        };
        let b = HostWork {
            cpu_bytes: 3000,
            cpu_gbps: 30.0,
            cpu_pj_per_byte: 6.0,
            dram_bytes: 1500,
            dram_pj_per_byte: 8.0,
        };
        let time_a = a.cpu_bytes as f64 / a.cpu_gbps;
        let time_b = b.cpu_bytes as f64 / b.cpu_gbps;
        let energy =
            a.cpu_bytes as f64 * a.cpu_pj_per_byte + b.cpu_bytes as f64 * b.cpu_pj_per_byte;
        let dram_energy =
            a.dram_bytes as f64 * a.dram_pj_per_byte + b.dram_bytes as f64 * b.dram_pj_per_byte;
        a.merge(&b);
        assert_eq!(a.cpu_bytes, 4000);
        assert!((a.cpu_bytes as f64 / a.cpu_gbps - (time_a + time_b)).abs() < 1e-9);
        assert!((a.cpu_bytes as f64 * a.cpu_pj_per_byte - energy).abs() < 1e-9);
        assert!((a.dram_bytes as f64 * a.dram_pj_per_byte - dram_energy).abs() < 1e-9);
        // Merging empty work is a no-op.
        let before = a;
        a.merge(&HostWork::default());
        assert_eq!(a, before);
    }

    #[test]
    fn die_queues_track_occupancy_and_overlap() {
        let mut a = DieQueues::new(4);
        a.push(0, 30.0);
        a.push(1, 10.0);
        assert_eq!(a.busiest_us(), 30.0);
        assert_eq!(a.total_us(), 40.0);
        assert_eq!(a.dies_busy(), 2);
        // A second batch busy on the dies the first left idle.
        let mut b = DieQueues::new(4);
        b.push(2, 25.0);
        b.push(3, 5.0);
        let report = overlap_report(&[a.clone(), b.clone()]);
        assert_eq!(report.serial_critical_us, 55.0, "30 + 25 back to back");
        assert_eq!(report.combined_critical_us, 30.0, "disjoint dies fully overlap");
        assert_eq!(report.saved_us(), 25.0);
        // Same-die contention degrades gracefully to the serial sum.
        let report = overlap_report(&[a.clone(), a.clone()]);
        assert_eq!(report.combined_critical_us, 60.0);
        assert_eq!(report.serial_critical_us, 60.0);
        assert_eq!(report.saved_us(), 0.0);
        // merge grows to the wider tracker; clear empties.
        let mut short = DieQueues::new(1);
        short.push(0, 1.0);
        short.merge(&b);
        assert_eq!(short.occupancy_us().len(), 4);
        assert_eq!(short.total_us(), 31.0);
        short.clear();
        assert_eq!(short.total_us(), 0.0);
        // push past the allocated width grows on demand.
        let mut grow = DieQueues::default();
        grow.push(5, 2.0);
        assert_eq!(grow.occupancy_us().len(), 6);
        assert_eq!(grow.busiest_us(), 2.0);
    }

    #[test]
    fn channel_lane_tracks_bus_contention() {
        let cfg = SsdConfig::tiny_test(); // 2 channels × 2 dies
        let mut q = DieQueues::for_config(&cfg);
        // Senses occupy dies only; the channel lane stays empty.
        q.push(0, 25.0);
        q.push(2, 25.0);
        assert_eq!(q.busiest_us(), 25.0);
        assert_eq!(q.busiest_channel_us(), 0.0);
        assert_eq!(q.critical_path_us(), 25.0);
        assert!(!q.channel_bound());
        // Dies 0 and 1 share channel 0: their transfers serialize on the
        // bus while the dies themselves stay free.
        q.push_transfer(0, 20.0);
        q.push_transfer(1, 20.0);
        q.push_transfer(2, 20.0); // channel 1, no contention
        assert_eq!(q.busiest_us(), 25.0, "transfers do not occupy dies");
        assert_eq!(q.busiest_channel_us(), 40.0);
        assert_eq!(q.channel_occupancy_us(), &[40.0, 20.0]);
        assert_eq!(q.channels_busy(), 2);
        assert_eq!(q.critical_path_us(), 40.0, "channel bus bounds the drain");
        assert!(q.channel_bound());
        // merge folds channel lanes; overlap_report sees bus contention.
        let mut other = DieQueues::for_config(&cfg);
        other.push_transfer(3, 15.0); // channel 1
        let report = overlap_report(&[q.clone(), other.clone()]);
        assert_eq!(report.serial_critical_us, 55.0, "40 + 15 back to back");
        assert_eq!(report.combined_critical_us, 40.0, "disjoint channels overlap");
        q.merge(&other);
        assert_eq!(q.channel_occupancy_us(), &[40.0, 35.0]);
        // Legacy trackers (no channel topology) give each die its own
        // lane, modeling no bus contention.
        let mut legacy = DieQueues::new(4);
        legacy.push_transfer(0, 10.0);
        legacy.push_transfer(1, 10.0);
        assert_eq!(legacy.busiest_channel_us(), 10.0);
        q.clear();
        assert_eq!(q.busiest_channel_us(), 0.0);
        assert_eq!(q.channels_busy(), 0);
    }

    #[test]
    fn fill_in_work_respects_the_budget() {
        let mut q = DieQueues::new(4);
        q.push(0, 80.0);
        q.push(1, 20.0);
        // Slack against a 100 µs budget: 20 on die 0, 80 on die 1, full
        // budget on the idle dies.
        assert_eq!(q.slack_us(0, 100.0), 20.0);
        assert_eq!(q.slack_us(1, 100.0), 80.0);
        assert_eq!(q.slack_us(3, 100.0), 100.0);
        assert_eq!(q.slack_us(9, 100.0), 100.0, "out-of-range dies are idle");
        // A two-die job that fits goes in; the occupancy reflects it.
        assert!(q.try_fill(&[(1, 30.0), (2, 50.0)], 100.0));
        assert_eq!(q.occupancy_us()[1], 50.0);
        assert_eq!(q.occupancy_us()[2], 50.0);
        assert_eq!(q.filled_us(), 80.0);
        // All-or-nothing: one overfull die rejects the whole job, and the
        // fitting piece must not have been applied.
        assert!(!q.try_fill(&[(3, 10.0), (0, 30.0)], 100.0));
        assert_eq!(q.occupancy_us()[3], 0.0, "rejected job left no residue");
        assert_eq!(q.filled_us(), 80.0);
        // Two pieces on one die must jointly fit, not just individually.
        assert!(!q.try_fill(&[(3, 60.0), (3, 60.0)], 100.0));
        assert!(q.try_fill(&[(3, 60.0), (3, 40.0)], 100.0));
        assert_eq!(q.busiest_us(), 100.0, "fill-in never exceeds the budget");
        // merge carries the fill-in attribution along.
        let mut other = DieQueues::new(4);
        other.try_fill(&[(0, 5.0)], 100.0);
        q.merge(&other);
        assert_eq!(q.filled_us(), 185.0);
        q.clear();
        assert_eq!(q.filled_us(), 0.0);
    }

    #[test]
    fn append_die_jobs_concatenates_per_die() {
        let job = SenseJob::sense_only(1.0, 1.0);
        let mut batch: Vec<Vec<SenseJob>> = vec![vec![job; 2], vec![job; 1]];
        append_die_jobs(&mut batch, vec![vec![job; 1], vec![job; 3], vec![job; 2]]);
        assert_eq!(batch.len(), 3, "batch widens to the larger die count");
        assert_eq!(batch[0].len(), 3);
        assert_eq!(batch[1].len(), 4);
        assert_eq!(batch[2].len(), 2);
    }

    /// Builds the Fig. 7 job lists: 3 operands × 1 MiB striped over all
    /// planes → one 32 KiB multi-plane read per die per operand.
    fn fig7_jobs(kind: &str) -> (SsdConfig, Vec<Vec<SenseJob>>) {
        let cfg = SsdConfig::fig7_example();
        let dies = cfg.total_dies();
        let chunk = (cfg.page_bytes * cfg.planes_per_die) as u64;
        let jobs: Vec<Vec<SenseJob>> = (0..dies)
            .map(|_| match kind {
                "osp" => vec![SenseJob::read_to_host(&cfg); 3],
                "isp" => {
                    // Operands stay inside the SSD; the accelerator emits
                    // the result chunk after the last operand arrives.
                    let mut v = vec![SenseJob::read_to_controller(&cfg); 2];
                    v.push(SenseJob {
                        latency_us: cfg.tr_us,
                        dma_bytes: chunk,
                        ext_bytes: chunk,
                        norm_power: 1.0,
                    });
                    v
                }
                "ifp" => {
                    // ParaBit: three serial senses accumulate in the latch;
                    // only the result moves.
                    let mut v = vec![SenseJob::sense_only(cfg.tr_us, 1.0); 2];
                    v.push(SenseJob {
                        latency_us: cfg.tr_us,
                        dma_bytes: chunk,
                        ext_bytes: chunk,
                        norm_power: 1.0,
                    });
                    v
                }
                _ => unreachable!(),
            })
            .collect();
        (cfg, jobs)
    }

    #[test]
    fn fig7_osp_timeline() {
        let (cfg, jobs) = fig7_jobs("osp");
        let r = PipelineModel::new(cfg).run(&jobs, HostWork::default());
        // Paper: 471 µs, external-I/O bound.
        assert!(
            (r.makespan_us - 471.0).abs() < 30.0,
            "OSP makespan {} µs (paper: 471)",
            r.makespan_us
        );
        assert_eq!(r.bottleneck(), Stage::Ext);
    }

    #[test]
    fn fig7_isp_timeline() {
        let (cfg, jobs) = fig7_jobs("isp");
        let r = PipelineModel::new(cfg).run(&jobs, HostWork::default());
        // Paper: 431 µs, internal-I/O bound.
        assert!(
            (r.makespan_us - 431.0).abs() < 30.0,
            "ISP makespan {} µs (paper: 431)",
            r.makespan_us
        );
        assert_eq!(r.bottleneck(), Stage::Dma);
    }

    #[test]
    fn fig7_ifp_timeline() {
        let (cfg, jobs) = fig7_jobs("ifp");
        let r = PipelineModel::new(cfg).run(&jobs, HostWork::default());
        // Paper: 335 µs, sensing bound.
        assert!(
            (r.makespan_us - 335.0).abs() < 30.0,
            "IFP makespan {} µs (paper: 335)",
            r.makespan_us
        );
        // Sensing dominates per the paper's narrative; with only a result
        // DMA+ext tail the bottleneck label sits at Sense or the short
        // Ext tail depending on rounding — accept either but require the
        // ordering IFP < ISP < OSP.
        let (c2, j2) = fig7_jobs("isp");
        let isp = PipelineModel::new(c2).run(&j2, HostWork::default());
        let (c3, j3) = fig7_jobs("osp");
        let osp = PipelineModel::new(c3).run(&j3, HostWork::default());
        assert!(r.makespan_us < isp.makespan_us && isp.makespan_us < osp.makespan_us);
    }

    #[test]
    fn tracing_produces_ordered_events() {
        let (cfg, jobs) = fig7_jobs("osp");
        let r = PipelineModel::new(cfg).run_traced(&jobs, HostWork::default());
        assert!(!r.trace.is_empty());
        for e in &r.trace {
            assert!(e.end_us > e.start_us);
        }
        // Channel DMAs never overlap within one channel.
        let cfg = SsdConfig::fig7_example();
        for ch in 0..cfg.channels {
            let mut dmas: Vec<_> = r
                .trace
                .iter()
                .filter(|e| e.stage == Stage::Dma && e.die / cfg.dies_per_channel == ch)
                .collect();
            dmas.sort_by(|a, b| a.start_us.partial_cmp(&b.start_us).unwrap());
            for w in dmas.windows(2) {
                assert!(w[1].start_us >= w[0].end_us - 1e-9, "overlap on channel {ch}");
            }
        }
    }

    #[test]
    fn host_tail_extends_makespan() {
        let cfg = SsdConfig::fig7_example();
        let jobs = vec![vec![SenseJob::read_to_host(&cfg)]; 4];
        let fast_host = PipelineModel::new(cfg.clone()).run(
            &jobs,
            HostWork {
                cpu_bytes: 1 << 20,
                cpu_gbps: 100.0,
                cpu_pj_per_byte: 1.0,
                ..Default::default()
            },
        );
        let slow_host = PipelineModel::new(cfg).run(
            &jobs,
            HostWork {
                cpu_bytes: 1 << 20,
                cpu_gbps: 0.05,
                cpu_pj_per_byte: 1.0,
                ..Default::default()
            },
        );
        assert!(slow_host.makespan_us > fast_host.makespan_us * 5.0);
        assert!(slow_host.host_end_us > slow_host.ext_end_us);
    }

    #[test]
    fn energy_components_accumulate() {
        let (cfg, jobs) = fig7_jobs("osp");
        let r = PipelineModel::new(cfg).run(&jobs, HostWork::default());
        assert!(r.energy.component_uj(Component::NandSense) > 0.0);
        assert!(r.energy.component_uj(Component::Channel) > 0.0);
        assert!(r.energy.component_uj(Component::External) > 0.0);
        assert!(r.energy_j() > 0.0);
    }

    #[test]
    fn sec83_write_bandwidths() {
        // §8.3: SLC 6.4, ESP 4.7, MLC 3.87, TLC 2.82 GB/s.
        let cfg = SsdConfig::paper_table1();
        let slc = sequential_write_gbps(&cfg, cfg.tprog_slc_us, 1);
        let esp = sequential_write_gbps(&cfg, cfg.tesp_us, 1);
        let mlc = sequential_write_gbps(&cfg, cfg.tprog_mlc_us, 2);
        let tlc = sequential_write_gbps(&cfg, cfg.tprog_tlc_us, 3);
        // The §8.3 ordering claim: ESP between SLC and MLC, TLC slowest.
        assert!(esp < slc && esp > mlc && mlc > tlc, "{slc}/{esp}/{mlc}/{tlc}");
        // Shape checks against the paper's 6.4/4.7/3.87/2.82 GB/s: the
        // ESP-vs-MLC and ESP-vs-TLC ratios hold within ~15%.
        assert!(((esp / mlc) - 4.7 / 3.87).abs() < 0.2, "ESP/MLC {}", esp / mlc);
        assert!(((esp / tlc) - 4.7 / 2.82).abs() < 0.3, "ESP/TLC {}", esp / tlc);
        // Absolute values land in the right regime (GB/s, single digits).
        assert!((4.0..11.0).contains(&slc), "SLC {slc}");
        assert!((3.5..6.5).contains(&esp), "ESP {esp}");
        assert!((3.0..5.0).contains(&mlc), "MLC {mlc}");
        assert!((2.2..3.6).contains(&tlc), "TLC {tlc}");
    }

    #[test]
    #[should_panic(expected = "job list names")]
    fn too_many_dies_panics() {
        let cfg = SsdConfig::tiny_test();
        let jobs = vec![Vec::new(); cfg.total_dies() + 1];
        PipelineModel::new(cfg).run(&jobs, HostWork::default());
    }
}
