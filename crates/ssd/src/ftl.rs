//! A page-mapped flash translation layer with Flash-Cosmos placement
//! metadata (§6.3).
//!
//! Beyond the usual logical-to-physical page map, the FTL records per page:
//! the programming scheme (regular vs ESP — "the SSD firmware maintains
//! additional metadata necessary for Flash-Cosmos, such as each page's
//! programming mode"), whether the data was randomized, and whether the
//! *inverse* of the logical data was stored (the §6.1 trick that turns
//! intra-block MWS into a bitwise OR via De Morgan).
//!
//! Two allocation policies:
//! * [`PlacementHint::Striped`] — round-robin across planes (normal data,
//!   maximizes read parallelism).
//! * [`PlacementHint::Grouped`] — all pages of a group go to the *same
//!   block* of a given plane, consecutive wordlines (operands that will be
//!   combined by intra-block MWS; "the application decides which operands
//!   to be stored in the same block to minimize the number of MWS
//!   operations", §6.3). The caller picks the plane explicitly (the
//!   device layer spreads placement groups across dies); with no explicit
//!   affinity the FTL falls back to the least-loaded plane, tracked via
//!   per-plane block pressure, so allocation never piles onto plane 0.

use std::collections::HashMap;

use fc_nand::ispp::ProgramScheme;
use serde::{Deserialize, Serialize};

use crate::config::SsdConfig;
use crate::topology::{PlaneId, Ppa};

/// Per-page metadata the firmware keeps for Flash-Cosmos.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageMeta {
    /// Programming scheme used.
    pub scheme: ProgramScheme,
    /// Whether the stored bits were randomized.
    pub randomized: bool,
    /// Whether the stored bits are the inverse of the logical data.
    pub inverted: bool,
    /// Whether the stored bits are ECC-encoded.
    pub ecc: bool,
    /// Which logical page of a multi-level cell this mapping reads
    /// (`mlsense`): 0 = LSB (also the only page of single-bit storage),
    /// 1 = CSB/MSB, 2 = TLC MSB. Several logical pages of one MLC/TLC
    /// wordline alias the same physical address with distinct `ml_page`.
    #[serde(default)]
    pub ml_page: u8,
}

impl PageMeta {
    /// Metadata for the conventional storage path: regular SLC,
    /// randomized, ECC-protected, not inverted.
    pub fn conventional() -> Self {
        Self {
            scheme: ProgramScheme::Slc,
            randomized: true,
            inverted: false,
            ecc: true,
            ml_page: 0,
        }
    }

    /// Metadata for the Flash-Cosmos computation path: ESP, raw bits
    /// (no randomization, no ECC).
    pub fn flash_cosmos(inverted: bool) -> Self {
        Self {
            scheme: ProgramScheme::esp_default(),
            randomized: false,
            inverted,
            ecc: false,
            ml_page: 0,
        }
    }

    /// Metadata for one logical page of a multi-level (`mlsense`) cell:
    /// raw bits, no randomization or ECC, read as page `ml_page` of the
    /// wordline's Gray code.
    pub fn multi_level(scheme: ProgramScheme, ml_page: u8, inverted: bool) -> Self {
        Self { scheme, randomized: false, inverted, ecc: false, ml_page }
    }
}

/// Identity of one co-residency group: the pages that must share a block
/// so intra-block MWS can combine them in one sense.
///
/// A structured key rather than bit-packing: the earlier encoding
/// (`(group << 32) | (overflow << 24) | slot`) silently merged unrelated
/// groups once `overflow` exceeded 8 bits and — worse — erased the
/// `group` bits under the FTL's `group % planes` plane choice, so every
/// group landed on the plane of its stripe slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupKey {
    /// Application-level placement-group index.
    pub group: u64,
    /// Stripe slot within the group's operand vectors.
    pub slot: u64,
    /// Overflow block ordinal (a group whose wordlines exhaust one block
    /// continues in a fresh block with the next overflow id).
    pub overflow: u64,
}

impl GroupKey {
    /// A key with no overflow (the common, first-block case).
    pub fn new(group: u64, slot: u64) -> Self {
        Self { group, slot, overflow: 0 }
    }
}

impl std::fmt::Display for GroupKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}/s{}/o{}", self.group, self.slot, self.overflow)
    }
}

/// Where the FTL should place a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementHint {
    /// Round-robin striping across all planes.
    Striped,
    /// Co-locate with other pages of `group` in one block of one plane.
    /// Pages of a group occupy consecutive wordlines, so any subset can be
    /// combined with a single intra-block MWS.
    Grouped {
        /// Group identity (e.g. one operand set of one plane-stripe).
        group: GroupKey,
        /// Flat plane the group's block should live on. `None` lets the
        /// FTL pick the least-loaded plane; callers that schedule work
        /// across dies (the Flash-Cosmos device) pass an explicit plane.
        plane: Option<usize>,
    },
}

/// Errors from FTL allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtlError {
    /// The logical page already has a mapping (overwrite requires a trim
    /// in this simplified FTL).
    AlreadyMapped(u64),
    /// No free wordline is available in the required placement domain.
    OutOfSpace,
    /// A grouped allocation exceeded one block's wordline count (callers
    /// must split operand sets across groups; §6.1 covers combining them).
    GroupFull {
        /// The group that overflowed.
        group: GroupKey,
        /// Block capacity in wordlines.
        capacity: usize,
    },
    /// A grouped allocation named a plane the SSD does not have.
    PlaneOutOfRange {
        /// The requested flat plane index.
        plane: usize,
        /// Planes in the SSD.
        planes: usize,
    },
    /// The logical page has no mapping (migration of unwritten pages).
    NotMapped(u64),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::AlreadyMapped(lpn) => write!(f, "logical page {lpn} is already mapped"),
            FtlError::OutOfSpace => write!(f, "no free wordlines left in the placement domain"),
            FtlError::GroupFull { group, capacity } => {
                write!(f, "group {group} exceeds one block ({capacity} wordlines)")
            }
            FtlError::PlaneOutOfRange { plane, planes } => {
                write!(f, "plane affinity {plane} out of range (SSD has {planes} planes)")
            }
            FtlError::NotMapped(lpn) => write!(f, "logical page {lpn} is not mapped"),
        }
    }
}

impl std::error::Error for FtlError {}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct GroupCursor {
    plane: usize,
    block: u32,
    next_wl: u32,
}

/// The page-mapped FTL.
///
/// An FTL instance owns a contiguous *plane domain*: the whole SSD for
/// [`Ftl::new`], or one channel's planes for [`Ftl::for_channel`] (the
/// per-channel shards the device layer serializes independently). All
/// plane indices crossing the API are global flat indices; allocation
/// never leaves the domain, which is exactly the shard↔channel lockstep
/// audit code FC108 verifies.
#[derive(Debug, Clone)]
pub struct Ftl {
    /// Planes in this FTL's domain.
    planes: usize,
    /// Global flat index of the domain's first plane (0 for a whole-SSD
    /// FTL; `channel × planes_per_channel` for a channel shard).
    plane_lo: usize,
    wls_per_block: u32,
    blocks_per_plane: u32,
    /// One entry per mapped logical page: its physical address and
    /// metadata live together, so translation+metadata reads and the
    /// full-device walks ([`Ftl::iter_mapped`]) cost one lookup, not two.
    map: HashMap<u64, (Ppa, PageMeta)>,
    /// Next free block per domain plane (blocks are allocated whole).
    next_block: Vec<u32>,
    /// Striped-allocation cursor: (plane, open block, next wordline).
    stripe_cursor: usize,
    stripe_open: Vec<Option<(u32, u32)>>,
    groups: HashMap<GroupKey, GroupCursor>,
    config: SsdConfig,
}

impl Ftl {
    /// Creates an empty FTL over every plane of the SSD.
    pub fn new(config: &SsdConfig) -> Self {
        Self::with_domain(config, 0, config.total_planes())
    }

    /// Creates an empty FTL shard over one channel's planes.
    pub fn for_channel(config: &SsdConfig, channel: usize) -> Self {
        let per = config.planes_per_channel();
        Self::with_domain(config, channel * per, per)
    }

    fn with_domain(config: &SsdConfig, plane_lo: usize, planes: usize) -> Self {
        Self {
            planes,
            plane_lo,
            wls_per_block: config.wls_per_block as u32,
            blocks_per_plane: config.blocks_per_plane as u32,
            map: HashMap::new(),
            next_block: vec![0; planes],
            stripe_cursor: 0,
            stripe_open: vec![None; planes],
            groups: HashMap::new(),
            config: config.clone(),
        }
    }

    /// The domain's first global flat plane index.
    pub fn domain_start(&self) -> usize {
        self.plane_lo
    }

    /// Whether a global flat plane index falls in this FTL's domain.
    pub fn owns_plane(&self, flat_plane: usize) -> bool {
        (self.plane_lo..self.plane_lo + self.planes).contains(&flat_plane)
    }

    /// Number of mapped logical pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Looks up a logical page's physical address.
    pub fn translate(&self, lpn: u64) -> Option<Ppa> {
        self.map.get(&lpn).map(|&(ppa, _)| ppa)
    }

    /// Looks up a logical page's metadata.
    pub fn meta(&self, lpn: u64) -> Option<PageMeta> {
        self.map.get(&lpn).map(|&(_, meta)| meta)
    }

    /// Iterates over every mapped logical page with its physical address
    /// and metadata, in no particular order — the walk that scrubbing,
    /// grown-defect discovery, and the `fc_audit` residency pass run over.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (u64, Ppa, PageMeta)> + '_ {
        self.map.iter().map(|(&lpn, &(ppa, meta))| (lpn, ppa, meta))
    }

    /// Unmaps a logical page (trim). Returns the freed physical address.
    pub fn trim(&mut self, lpn: u64) -> Option<Ppa> {
        self.map.remove(&lpn).map(|(ppa, _)| ppa)
    }

    /// Allocates a physical page for `lpn` and records its metadata.
    ///
    /// # Errors
    ///
    /// See [`FtlError`].
    pub fn allocate(
        &mut self,
        lpn: u64,
        hint: PlacementHint,
        meta: PageMeta,
    ) -> Result<Ppa, FtlError> {
        if self.map.contains_key(&lpn) {
            return Err(FtlError::AlreadyMapped(lpn));
        }
        let ppa = match hint {
            PlacementHint::Striped => self.allocate_striped()?,
            PlacementHint::Grouped { group, plane } => self.allocate_grouped(group, plane)?,
        };
        self.map.insert(lpn, (ppa, meta));
        Ok(ppa)
    }

    /// `plane` is domain-local here (0-based within the shard).
    fn take_block(&mut self, plane: usize) -> Result<u32, FtlError> {
        let b = self.next_block[plane];
        if b >= self.blocks_per_plane {
            return Err(FtlError::OutOfSpace);
        }
        self.next_block[plane] = b + 1;
        Ok(b)
    }

    fn allocate_striped(&mut self) -> Result<Ppa, FtlError> {
        let plane = self.stripe_cursor;
        self.stripe_cursor = (self.stripe_cursor + 1) % self.planes;
        let (block, wl) = match self.stripe_open[plane] {
            Some((b, w)) if w < self.wls_per_block => (b, w),
            _ => (self.take_block(plane)?, 0),
        };
        self.stripe_open[plane] =
            if wl + 1 < self.wls_per_block { Some((block, wl + 1)) } else { None };
        Ok(Ppa { plane: PlaneId::from_flat(self.plane_lo + plane, &self.config), block, wl })
    }

    /// Maps `lpn` onto the physical page that already backs `to`
    /// (`mlsense` aliasing: the 2–3 logical pages of one MLC/TLC wordline
    /// share a physical address and differ only in [`PageMeta::ml_page`]).
    ///
    /// # Errors
    ///
    /// [`FtlError::AlreadyMapped`] if `lpn` is taken,
    /// [`FtlError::NotMapped`] if `to` has no mapping.
    pub fn alias(&mut self, lpn: u64, to: u64, meta: PageMeta) -> Result<Ppa, FtlError> {
        if self.map.contains_key(&lpn) {
            return Err(FtlError::AlreadyMapped(lpn));
        }
        let ppa = self.map.get(&to).map(|&(p, _)| p).ok_or(FtlError::NotMapped(to))?;
        self.map.insert(lpn, (ppa, meta));
        Ok(ppa)
    }

    /// Re-places an already-mapped logical page under a new hint and
    /// metadata (the §10 background-migration primitive). Returns the old
    /// and new physical addresses; on allocation failure the original
    /// mapping is left untouched.
    ///
    /// # Errors
    ///
    /// Fails if `lpn` is unmapped or the new placement domain is full.
    pub fn remap(
        &mut self,
        lpn: u64,
        hint: PlacementHint,
        meta: PageMeta,
    ) -> Result<(Ppa, Ppa), FtlError> {
        let old = self.map.get(&lpn).map(|&(p, _)| p).ok_or(FtlError::NotMapped(lpn))?;
        let new = match hint {
            PlacementHint::Striped => self.allocate_striped()?,
            PlacementHint::Grouped { group, plane } => self.allocate_grouped(group, plane)?,
        };
        self.map.insert(lpn, (new, meta));
        Ok((old, new))
    }

    /// Blocks already allocated per domain plane (index 0 is the domain's
    /// first plane, [`Ftl::domain_start`]) — the block pressure the
    /// device layer consults to spread placement groups across dies.
    pub fn plane_pressures(&self) -> &[u32] {
        &self.next_block
    }

    /// The domain plane with the fewest allocated blocks (lowest index on
    /// ties), as a global flat index — the default placement for grouped
    /// allocations without an explicit plane affinity.
    pub fn least_loaded_plane(&self) -> usize {
        self.plane_lo
            + self
                .next_block
                .iter()
                .enumerate()
                .min_by_key(|&(plane, &pressure)| (pressure, plane))
                .map(|(plane, _)| plane)
                .expect("an SSD has at least one plane")
    }

    /// The global flat plane the next striped allocation would land on,
    /// without allocating (the round-robin cursor's position).
    pub fn next_striped_plane(&self) -> usize {
        self.plane_lo + self.stripe_cursor
    }

    /// The flat plane a grouped allocation with this key and affinity
    /// would land on, without allocating — existing groups answer from
    /// their cursor, fresh groups from the affinity (or the least-loaded
    /// default). Lets the device decide copyback-vs-rewrite before it
    /// commits the remap.
    pub fn group_plane(&self, group: GroupKey, plane: Option<usize>) -> usize {
        match self.groups.get(&group) {
            Some(c) => c.plane,
            None => plane.unwrap_or_else(|| self.least_loaded_plane()),
        }
    }

    /// Group cursors store global flat planes; `take_block` wants
    /// domain-local ones.
    fn allocate_grouped(&mut self, group: GroupKey, plane: Option<usize>) -> Result<Ppa, FtlError> {
        let cursor = match self.groups.get(&group).copied() {
            Some(c) => c,
            None => {
                if let Some(p) = plane {
                    if !self.owns_plane(p) {
                        return Err(FtlError::PlaneOutOfRange {
                            plane: p,
                            planes: self.plane_lo + self.planes,
                        });
                    }
                }
                let plane = plane.unwrap_or_else(|| self.least_loaded_plane());
                let block = self.take_block(plane - self.plane_lo)?;
                GroupCursor { plane, block, next_wl: 0 }
            }
        };
        if cursor.next_wl >= self.wls_per_block {
            return Err(FtlError::GroupFull { group, capacity: self.wls_per_block as usize });
        }
        let ppa = Ppa {
            plane: PlaneId::from_flat(cursor.plane, &self.config),
            block: cursor.block,
            wl: cursor.next_wl,
        };
        self.groups.insert(group, GroupCursor { next_wl: cursor.next_wl + 1, ..cursor });
        Ok(ppa)
    }

    /// Force-inserts a mapping, bypassing allocation — the `fc_audit`
    /// mutation harness's hook for planting a mapping in the *wrong*
    /// channel shard so FC108 has something to catch. Never call this
    /// outside the audit harness.
    #[doc(hidden)]
    pub fn adopt_for_audit(&mut self, lpn: u64, ppa: Ppa, meta: PageMeta) {
        self.map.insert(lpn, (ppa, meta));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl() -> Ftl {
        Ftl::new(&SsdConfig::tiny_test())
    }

    #[test]
    fn striped_allocation_rotates_planes() {
        let mut f = ftl();
        let planes: Vec<usize> = (0..8)
            .map(|i| {
                f.allocate(i, PlacementHint::Striped, PageMeta::conventional())
                    .unwrap()
                    .plane
                    .flat(&SsdConfig::tiny_test())
            })
            .collect();
        // tiny: 2 ch × 2 dies × 2 planes = 8 planes — all distinct.
        let distinct: std::collections::HashSet<_> = planes.iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    fn grouped(group: GroupKey, plane: Option<usize>) -> PlacementHint {
        PlacementHint::Grouped { group, plane }
    }

    #[test]
    fn channel_shard_allocates_only_its_domain() {
        let cfg = SsdConfig::tiny_test(); // 2 channels × 4 planes each
        let mut shard = Ftl::for_channel(&cfg, 1);
        assert_eq!(shard.domain_start(), 4);
        assert!(!shard.owns_plane(3) && shard.owns_plane(4) && !shard.owns_plane(8));
        // Striped allocations rotate the shard's planes (4..8) only.
        for i in 0..8u64 {
            let ppa = shard.allocate(i, PlacementHint::Striped, PageMeta::conventional()).unwrap();
            let flat = ppa.plane.flat(&cfg);
            assert_eq!(flat, 4 + (i as usize % 4), "stays in channel 1's domain");
            assert_eq!(ppa.plane.die.channel, 1);
        }
        assert_eq!(shard.next_striped_plane(), 4);
        assert_eq!(shard.least_loaded_plane(), 4);
        assert_eq!(shard.plane_pressures().len(), 4, "pressures are domain-local");
        // Grouped affinity outside the domain is rejected; inside works.
        let err = shard
            .allocate(100, grouped(GroupKey::new(9, 0), Some(0)), PageMeta::flash_cosmos(false))
            .unwrap_err();
        assert!(matches!(err, FtlError::PlaneOutOfRange { plane: 0, .. }));
        let ppa = shard
            .allocate(100, grouped(GroupKey::new(9, 0), Some(5)), PageMeta::flash_cosmos(false))
            .unwrap();
        assert_eq!(ppa.plane.flat(&cfg), 5);
        assert_eq!(shard.group_plane(GroupKey::new(9, 0), None), 5);
        // Default (least-loaded) grouped placement also stays in-domain.
        let ppa = shard
            .allocate(101, grouped(GroupKey::new(10, 0), None), PageMeta::flash_cosmos(false))
            .unwrap();
        assert!(shard.owns_plane(ppa.plane.flat(&cfg)));
    }

    #[test]
    fn grouped_allocation_shares_one_block() {
        let mut f = ftl();
        let ppas: Vec<Ppa> = (0..8)
            .map(|i| {
                f.allocate(
                    100 + i,
                    grouped(GroupKey::new(42, 0), None),
                    PageMeta::flash_cosmos(false),
                )
                .unwrap()
            })
            .collect();
        let first = ppas[0];
        for (i, p) in ppas.iter().enumerate() {
            assert_eq!(p.plane, first.plane);
            assert_eq!(p.block, first.block);
            assert_eq!(p.wl, i as u32, "consecutive wordlines");
        }
    }

    #[test]
    fn group_overflow_is_reported() {
        let mut f = ftl();
        let key = GroupKey::new(1, 0);
        for i in 0..8 {
            f.allocate(i, grouped(key, None), PageMeta::flash_cosmos(false)).unwrap();
        }
        let err = f.allocate(99, grouped(key, None), PageMeta::flash_cosmos(false)).unwrap_err();
        assert_eq!(err, FtlError::GroupFull { group: key, capacity: 8 });
    }

    #[test]
    fn distinct_groups_get_distinct_blocks() {
        let mut f = ftl();
        let a = f
            .allocate(1, grouped(GroupKey::new(8, 0), Some(3)), PageMeta::flash_cosmos(false))
            .unwrap();
        let b = f
            .allocate(2, grouped(GroupKey::new(16, 0), Some(3)), PageMeta::flash_cosmos(true))
            .unwrap();
        // Same plane affinity, but the groups still get distinct blocks.
        assert_eq!(a.plane, b.plane);
        assert_eq!(a.plane.flat(&SsdConfig::tiny_test()), 3);
        assert_ne!(a.block, b.block);
        assert!(f.meta(2).unwrap().inverted);
    }

    #[test]
    fn plane_affinity_is_honored_and_validated() {
        let mut f = ftl();
        for plane in [7usize, 0, 5] {
            let ppa = f
                .allocate(
                    plane as u64,
                    grouped(GroupKey::new(plane as u64, 0), Some(plane)),
                    PageMeta::flash_cosmos(false),
                )
                .unwrap();
            assert_eq!(ppa.plane.flat(&SsdConfig::tiny_test()), plane);
        }
        let err = f
            .allocate(99, grouped(GroupKey::new(99, 0), Some(8)), PageMeta::flash_cosmos(false))
            .unwrap_err();
        assert_eq!(err, FtlError::PlaneOutOfRange { plane: 8, planes: 8 });
    }

    #[test]
    fn default_affinity_spreads_by_block_pressure() {
        // With no explicit plane, each new group lands on the least-loaded
        // plane — 8 groups cover all 8 planes instead of piling onto one.
        let mut f = ftl();
        let planes: std::collections::HashSet<usize> = (0..8u64)
            .map(|g| {
                f.allocate(g, grouped(GroupKey::new(g, 0), None), PageMeta::flash_cosmos(false))
                    .unwrap()
                    .plane
                    .flat(&SsdConfig::tiny_test())
            })
            .collect();
        assert_eq!(planes.len(), 8, "least-loaded default must spread groups");
        assert!(f.plane_pressures().iter().all(|&p| p == 1));
    }

    #[test]
    fn structured_keys_do_not_collide_across_overflow() {
        // Regression for the packed-u64 encoding: after 256 block
        // overflows, `(g << 32) | (ovf << 24) | slot` bled the overflow
        // id into the group bits, so (g=0, ovf=256) collided with
        // (g=1, ovf=0) — two unrelated groups silently merged into one
        // block. The struct key keeps them distinct.
        let mut f = ftl();
        let a = GroupKey { group: 0, slot: 0, overflow: 256 };
        let b = GroupKey { group: 1, slot: 0, overflow: 0 };
        let pa = f.allocate(1, grouped(a, Some(0)), PageMeta::flash_cosmos(false)).unwrap();
        let pb = f.allocate(2, grouped(b, Some(0)), PageMeta::flash_cosmos(false)).unwrap();
        assert_ne!(pa.block, pb.block, "colliding packed keys silently merged groups");
        // And the old encoding really did collide:
        let packed = |g: u64, ovf: u64, slot: u64| (g << 32) | (ovf << 24) | slot;
        assert_eq!(packed(0, 256, 0), packed(1, 0, 0));
    }

    #[test]
    fn aliases_share_the_physical_page_with_distinct_ml_pages() {
        let mut f = ftl();
        let base = f
            .allocate(
                10,
                grouped(GroupKey::new(5, 0), None),
                PageMeta::multi_level(ProgramScheme::esp_default(), 0, false),
            )
            .unwrap();
        let lsb_alias =
            f.alias(11, 10, PageMeta::multi_level(ProgramScheme::esp_default(), 1, false)).unwrap();
        assert_eq!(base, lsb_alias, "aliases resolve to the same physical page");
        assert_eq!(f.meta(10).unwrap().ml_page, 0);
        assert_eq!(f.meta(11).unwrap().ml_page, 1);
        assert_eq!(f.alias(11, 10, PageMeta::conventional()), Err(FtlError::AlreadyMapped(11)));
        assert_eq!(f.alias(12, 99, PageMeta::conventional()), Err(FtlError::NotMapped(99)));
        // Trimming the alias leaves the base mapping intact.
        assert_eq!(f.trim(11), Some(base));
        assert_eq!(f.translate(10), Some(base));
    }

    #[test]
    fn double_mapping_rejected_translate_and_trim_work() {
        let mut f = ftl();
        let ppa = f.allocate(7, PlacementHint::Striped, PageMeta::conventional()).unwrap();
        assert_eq!(f.translate(7), Some(ppa));
        assert_eq!(f.mapped_pages(), 1);
        assert_eq!(
            f.allocate(7, PlacementHint::Striped, PageMeta::conventional()),
            Err(FtlError::AlreadyMapped(7))
        );
        assert_eq!(f.trim(7), Some(ppa));
        assert_eq!(f.translate(7), None);
        assert_eq!(f.meta(7), None);
    }

    #[test]
    fn metadata_is_recorded() {
        let mut f = ftl();
        f.allocate(1, PlacementHint::Striped, PageMeta::conventional()).unwrap();
        f.allocate(2, grouped(GroupKey::new(0, 0), None), PageMeta::flash_cosmos(true)).unwrap();
        let conv = f.meta(1).unwrap();
        assert!(conv.randomized && conv.ecc && !conv.inverted);
        assert_eq!(conv.scheme, ProgramScheme::Slc);
        let fc = f.meta(2).unwrap();
        assert!(!fc.randomized && !fc.ecc && fc.inverted);
        assert!(matches!(fc.scheme, ProgramScheme::Esp { .. }));
    }

    #[test]
    fn exhaustion_reports_out_of_space() {
        let cfg = SsdConfig::tiny_test();
        let mut f = Ftl::new(&cfg);
        // Fill plane 0 completely with pinned groups (16 blocks × 8 WLs).
        let mut lpn = 0;
        for g in 0..16u64 {
            for _ in 0..8 {
                f.allocate(
                    lpn,
                    grouped(GroupKey::new(g, 0), Some(0)),
                    PageMeta::flash_cosmos(false),
                )
                .unwrap();
                lpn += 1;
            }
        }
        let err = f
            .allocate(lpn, grouped(GroupKey::new(128, 0), Some(0)), PageMeta::flash_cosmos(false))
            .unwrap_err();
        assert_eq!(err, FtlError::OutOfSpace);
    }
}
