//! Error-correcting codes (§2.2).
//!
//! Modern SSDs wrap every codeword of stored data in ECC; the paper's
//! reliability argument hinges on the fact that in-flash AND/OR operates
//! on *encoded* data, which breaks decoding. This module provides a real,
//! working **BCH** codec over GF(2^m) — encoder (systematic, LFSR
//! division by the generator polynomial) and decoder (syndromes →
//! Berlekamp–Massey → Chien search) — plus a page-level codec that splits
//! pages into codewords.
//!
//! BCH stands in for the LDPC engines of commercial drives: both are
//! linear block codes with a correction budget per codeword, and both fail
//! in exactly the way §3.2 describes when bitwise operations are applied
//! to encoded data.

mod bch;
mod gf;

pub use bch::{BchCode, DecodeOutcome};
pub use gf::GfTables;

use fc_bits::BitVec;
use serde::{Deserialize, Serialize};

/// Page-level ECC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccConfig {
    /// Galois-field exponent: codewords live in GF(2^m), length 2^m − 1.
    pub m: u32,
    /// Correction capability per codeword, bits.
    pub t: u32,
}

impl EccConfig {
    /// A small code for tests: GF(2^6), n = 63, t = 3.
    pub fn small() -> Self {
        Self { m: 6, t: 3 }
    }

    /// A production-like code: GF(2^10), n = 1023, t = 8.
    pub fn production() -> Self {
        Self { m: 10, t: 8 }
    }

    /// A deep-correction small code: GF(2^6), n = 63, t = 7. Trades rate
    /// for margin: decode failures need ≥ 8 errors in one 63-bit
    /// codeword, and a miscorrection additionally needs that pattern to
    /// land within distance 7 of a *different* codeword — so the
    /// detected-failure regime (what read-retry recovers) and the silent
    /// miscorrection regime are far apart, unlike `t = 3` where they
    /// overlap. The storage tier for data that must survive heavy aging.
    pub fn durable() -> Self {
        Self { m: 6, t: 7 }
    }
}

/// Splits pages into BCH codewords and back.
///
/// Layout: each codeword carries `k_data` payload bits; the page is split
/// into `ceil(page_bits / k_data)` codewords, each stored as `n` bits
/// (payload ‖ parity). The stored size is therefore larger than the page —
/// real drives keep the parity in the page's spare area.
#[derive(Debug, Clone)]
pub struct PageCodec {
    code: BchCode,
}

/// Result of decoding a stored page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageDecode {
    /// All codewords decoded; total corrected bit errors attached.
    Corrected {
        /// The recovered page data.
        data: BitVec,
        /// Total bit errors corrected across all codewords.
        corrected: usize,
    },
    /// At least one codeword exceeded the correction budget.
    Uncorrectable,
}

/// Reusable buffers for page-level encode/decode.
///
/// The SSD device performs one page encode per write job and one page
/// decode per read job; carrying this scratch across jobs removes the
/// per-codeword allocations (payload slices, codeword buffers, the LFSR
/// register) from that steady state. Contents are unspecified between
/// calls.
#[derive(Debug, Default)]
pub struct EccScratch {
    payload: BitVec,
    codeword: BitVec,
    reg: Vec<u64>,
}

impl EccScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageCodec {
    /// Builds a codec.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unsupported (see [`BchCode::new`]).
    pub fn new(config: EccConfig) -> Self {
        Self { code: BchCode::new(config.m, config.t) }
    }

    /// The underlying BCH code.
    pub fn code(&self) -> &BchCode {
        &self.code
    }

    /// Stored bits required for a page of `page_bits` payload bits.
    pub fn stored_bits(&self, page_bits: usize) -> usize {
        let k = self.code.k();
        page_bits.div_ceil(k) * self.code.n()
    }

    /// Encodes a page into its stored representation (codewords
    /// concatenated; the last codeword is zero-padded).
    pub fn encode_page(&self, page: &BitVec) -> BitVec {
        let mut out = BitVec::default();
        self.encode_page_into(page, &mut out, &mut EccScratch::new());
        out
    }

    /// Like [`PageCodec::encode_page`] but writes into `out` and reuses
    /// `scratch` across calls, so repeated page encodes allocate nothing.
    pub fn encode_page_into(&self, page: &BitVec, out: &mut BitVec, scratch: &mut EccScratch) {
        let k = self.code.k();
        let n = self.code.n();
        let words = page.len().div_ceil(k);
        out.reset(words * n, false);
        for w in 0..words {
            let start = w * k;
            let len = k.min(page.len() - start);
            page.slice_into(start, len, &mut scratch.payload);
            if len < k {
                scratch.payload.resize(k, false); // zero-pad the tail codeword
            }
            self.code.encode_into(&scratch.payload, &mut scratch.codeword, &mut scratch.reg);
            out.copy_from(w * n, &scratch.codeword);
        }
    }

    /// Decodes a stored page back to `page_bits` payload bits, correcting
    /// up to `t` errors per codeword.
    pub fn decode_page(&self, stored: &BitVec, page_bits: usize) -> PageDecode {
        self.decode_page_with(stored, page_bits, &mut EccScratch::new())
    }

    /// Like [`PageCodec::decode_page`] but reuses `scratch` for the
    /// per-codeword buffers. The recovered page itself is freshly
    /// allocated (it is returned to the caller).
    pub fn decode_page_with(
        &self,
        stored: &BitVec,
        page_bits: usize,
        scratch: &mut EccScratch,
    ) -> PageDecode {
        let k = self.code.k();
        let n = self.code.n();
        let words = page_bits.div_ceil(k);
        assert_eq!(stored.len(), words * n, "stored page has wrong size");
        let mut data = BitVec::zeros(page_bits);
        let mut corrected = 0;
        for w in 0..words {
            stored.slice_into(w * n, n, &mut scratch.codeword);
            match self.code.decode(&scratch.codeword) {
                DecodeOutcome::Corrected { data: payload, errors } => {
                    corrected += errors;
                    let start = w * k;
                    let len = k.min(page_bits - start);
                    payload.slice_into(0, len, &mut scratch.payload);
                    data.copy_from(start, &scratch.payload);
                }
                DecodeOutcome::Uncorrectable => return PageDecode::Uncorrectable,
            }
        }
        PageDecode::Corrected { data, corrected }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn page_roundtrip_clean() {
        let codec = PageCodec::new(EccConfig::small());
        let mut rng = StdRng::seed_from_u64(1);
        let page = BitVec::random(256, &mut rng);
        let stored = codec.encode_page(&page);
        assert_eq!(stored.len(), codec.stored_bits(256));
        match codec.decode_page(&stored, 256) {
            PageDecode::Corrected { data, corrected } => {
                assert_eq!(data, page);
                assert_eq!(corrected, 0);
            }
            PageDecode::Uncorrectable => panic!("clean page must decode"),
        }
    }

    #[test]
    fn page_roundtrip_with_correctable_errors() {
        let codec = PageCodec::new(EccConfig::small());
        let mut rng = StdRng::seed_from_u64(2);
        let page = BitVec::random(300, &mut rng);
        let mut stored = codec.encode_page(&page);
        // Flip up to t errors in each codeword.
        let n = codec.code().n();
        let t = codec.code().t() as usize;
        let words = stored.len() / n;
        let mut total = 0;
        for w in 0..words {
            let flips = rng.gen_range(1..=t);
            let mut positions = std::collections::HashSet::new();
            while positions.len() < flips {
                positions.insert(rng.gen_range(0..n));
            }
            for p in positions {
                stored.flip(w * n + p);
                total += 1;
            }
        }
        match codec.decode_page(&stored, 300) {
            PageDecode::Corrected { data, corrected } => {
                assert_eq!(data, page);
                assert_eq!(corrected, total);
            }
            PageDecode::Uncorrectable => panic!("within-budget errors must decode"),
        }
    }

    #[test]
    fn too_many_errors_are_flagged() {
        let codec = PageCodec::new(EccConfig::small());
        let mut rng = StdRng::seed_from_u64(3);
        let page = BitVec::random(63, &mut rng);
        let mut stored = codec.encode_page(&page);
        // Flip far more than t = 3 errors in the single codeword.
        stored.flip_random_bits(20, &mut rng);
        match codec.decode_page(&stored, 63) {
            PageDecode::Uncorrectable => {}
            PageDecode::Corrected { data, .. } => {
                // Miscorrection is possible but must not silently return
                // the original data by luck.
                assert_ne!(data, page, "20 errors cannot decode to the true page");
            }
        }
    }

    /// The §3.2 incompatibility: AND of two *encoded* pages is not the
    /// encoding of the AND — decoding the combined word fails or yields
    /// the wrong payload.
    #[test]
    fn bitwise_and_breaks_ecc() {
        let codec = PageCodec::new(EccConfig::small());
        let mut rng = StdRng::seed_from_u64(4);
        let a = BitVec::random(256, &mut rng);
        let b = BitVec::random(256, &mut rng);
        let ea = codec.encode_page(&a);
        let eb = codec.encode_page(&b);
        let combined = ea.and(&eb);
        match codec.decode_page(&combined, 256) {
            PageDecode::Uncorrectable => {} // expected most of the time
            PageDecode::Corrected { data, .. } => {
                assert_ne!(data, a.and(&b), "in-flash AND over ECC data must corrupt results");
            }
        }
    }

    #[test]
    fn production_config_has_sensible_rate() {
        let codec = PageCodec::new(EccConfig::production());
        let n = codec.code().n();
        let k = codec.code().k();
        assert_eq!(n, 1023);
        assert!(k > 900, "t=8 over GF(2^10) keeps ~92% rate, got k={k}");
    }
}
