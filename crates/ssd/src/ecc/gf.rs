//! Arithmetic over GF(2^m) via exponent/logarithm tables.

use serde::{Deserialize, Serialize};

/// Primitive polynomials (feedback masks, excluding the x^m term) for
/// GF(2^m), m = 3..=14. Standard choices from coding-theory tables.
const PRIMITIVE_POLYS: [(u32, u32); 12] = [
    (3, 0b011),                         // x^3 + x + 1
    (4, 0b0011),                        // x^4 + x + 1
    (5, 0b0_0101),                      // x^5 + x^2 + 1
    (6, 0b00_0011),                     // x^6 + x + 1
    (7, 0b000_1001),                    // x^7 + x^3 + 1
    (8, 0b0001_1101),                   // x^8 + x^4 + x^3 + x^2 + 1
    (9, 0b0_0001_0001),                 // x^9 + x^4 + 1
    (10, 0b00_0000_1001),               // x^10 + x^3 + 1
    (11, 0b000_0000_0101),              // x^11 + x^2 + 1
    (12, 0b1000_0101_0011_u32),         // x^12 + x^6 + x^4 + x + 1
    (13, 0b1_1011u32),                  // x^13 + x^4 + x^3 + x + 1
    (14, 0b10_1000_0100_0011_u32 >> 1), // x^14 + x^10 + x^6 + x + 1
];

/// Exp/log tables for one field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GfTables {
    m: u32,
    n: usize,
    exp: Vec<u32>,
    log: Vec<u32>,
}

impl GfTables {
    /// Builds the tables for GF(2^m).
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `3..=14`.
    pub fn new(m: u32) -> Self {
        let poly = PRIMITIVE_POLYS
            .iter()
            .find(|(mm, _)| *mm == m)
            .unwrap_or_else(|| panic!("unsupported field exponent m={m} (need 3..=14)"))
            .1;
        let n = (1usize << m) - 1;
        let mut exp = vec![0u32; 2 * n];
        let mut log = vec![0u32; n + 1];
        let mut x = 1u32;
        for (i, e) in exp.iter_mut().enumerate().take(n) {
            *e = x;
            log[x as usize] = i as u32;
            x <<= 1;
            if x > n as u32 {
                x = (x & n as u32) ^ poly;
            }
        }
        for i in n..2 * n {
            exp[i] = exp[i - n];
        }
        Self { m, n, exp, log }
    }

    /// The field exponent m.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Multiplicative group order `n = 2^m − 1`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `α^i` for any `i` (reduced mod n).
    pub fn alpha_pow(&self, i: usize) -> u32 {
        self.exp[i % self.n]
    }

    /// Discrete log of a non-zero element.
    ///
    /// # Panics
    ///
    /// Panics on zero (zero has no logarithm).
    pub fn log(&self, x: u32) -> u32 {
        assert!(x != 0, "log of zero");
        self.log[x as usize]
    }

    /// Field multiplication.
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[(self.log[a as usize] + self.log[b as usize]) as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn inv(&self, a: u32) -> u32 {
        assert!(a != 0, "inverse of zero");
        self.exp[self.n - self.log[a as usize] as usize]
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    pub fn div(&self, a: u32, b: u32) -> u32 {
        if a == 0 {
            return 0;
        }
        self.mul(a, self.inv(b))
    }

    /// `a^p` by exponent arithmetic.
    pub fn pow(&self, a: u32, p: usize) -> u32 {
        if a == 0 {
            return if p == 0 { 1 } else { 0 };
        }
        self.exp[(self.log[a as usize] as usize * p) % self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_gf16() {
        let gf = GfTables::new(4);
        let n = gf.n() as u32;
        // Every non-zero element has an inverse; mul is commutative.
        for a in 1..=n {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a={a}");
            for b in 1..=n {
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
            }
        }
        // Zero annihilates.
        assert_eq!(gf.mul(0, 7), 0);
        assert_eq!(gf.div(0, 5), 0);
    }

    #[test]
    fn alpha_generates_the_whole_group() {
        for m in 3..=10 {
            let gf = GfTables::new(m);
            let mut seen = std::collections::HashSet::new();
            for i in 0..gf.n() {
                seen.insert(gf.alpha_pow(i));
            }
            assert_eq!(seen.len(), gf.n(), "α must be primitive for m={m}");
            assert!(!seen.contains(&0));
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = GfTables::new(6);
        for a in [1u32, 2, 5, 33, 62] {
            let mut acc = 1u32;
            for p in 0..10 {
                assert_eq!(gf.pow(a, p), acc, "a={a} p={p}");
                acc = gf.mul(acc, a);
            }
        }
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 3), 0);
    }

    #[test]
    fn log_exp_roundtrip() {
        let gf = GfTables::new(8);
        for x in 1..=gf.n() as u32 {
            assert_eq!(gf.alpha_pow(gf.log(x) as usize), x);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported field exponent")]
    fn unsupported_m_panics() {
        GfTables::new(2);
    }
}
