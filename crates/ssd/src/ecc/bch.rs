//! Binary primitive BCH codes: systematic encoder and algebraic decoder.
//!
//! A `t`-error-correcting BCH code over GF(2^m) has length `n = 2^m − 1`
//! and generator polynomial `g(x) = lcm(m_1(x), m_3(x), …, m_{2t−1}(x))`
//! where `m_i` is the minimal polynomial of `α^i`. Decoding: compute the
//! 2t syndromes, run Berlekamp–Massey to find the error-locator polynomial
//! `σ(x)`, and Chien-search its roots to locate the error positions.

use fc_bits::BitVec;

use super::gf::GfTables;

/// A binary BCH code.
#[derive(Debug, Clone)]
pub struct BchCode {
    gf: GfTables,
    t: u32,
    n: usize,
    k: usize,
    /// Generator polynomial coefficients, degree ascending (bit i = coeff
    /// of x^i); degree = n − k.
    generator: BitVec,
    /// Generator's low `n − k` coefficients bit-packed into words (the
    /// x^{n−k} term is implicit) — the word-parallel encoder's feedback
    /// mask.
    gen_words: Vec<u64>,
    /// Leap-8 table: entry `v` is the remainder contribution of the top
    /// 8 register bits (value `v`) after 8 LFSR steps, `parity_words()`
    /// words each. Empty when the parity is narrower than 8 bits (the
    /// encoder falls back to bit-serial steps).
    leap8: Vec<u64>,
}

/// Outcome of decoding one codeword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Decoded successfully; `data` holds the k payload bits.
    Corrected {
        /// Recovered payload.
        data: BitVec,
        /// Number of bit errors corrected.
        errors: usize,
    },
    /// More than `t` errors — decoding failed (detected).
    Uncorrectable,
}

impl BchCode {
    /// Constructs the `t`-error-correcting BCH code over GF(2^m).
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `3..=14`, `t` is zero, or the code would
    /// have no payload bits (`t` too large for the field).
    pub fn new(m: u32, t: u32) -> Self {
        assert!(t > 0, "correction capability must be positive");
        let gf = GfTables::new(m);
        let n = gf.n();
        let generator = compute_generator(&gf, t);
        let deg = generator.len() - 1;
        assert!(deg < n, "t={t} leaves no payload bits for m={m}");
        let k = n - deg;
        let words = deg.div_ceil(64).max(1);
        let mut gen_words = vec![0u64; words];
        for (j, &g) in generator.iter().take(deg).enumerate() {
            if g {
                gen_words[j / 64] |= 1 << (j % 64);
            }
        }
        let leap8 = build_leap8(&gen_words, deg);
        Self { gf, t, n, k, generator: BitVec::from_bools(&generator), gen_words, leap8 }
    }

    /// Codeword length `n = 2^m − 1`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Payload bits per codeword.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Correction capability in bits.
    pub fn t(&self) -> u32 {
        self.t
    }

    /// Parity bits per codeword (`n − k`).
    pub fn parity_bits(&self) -> usize {
        self.n - self.k
    }

    /// Words in the bit-packed LFSR register (`⌈(n−k)/64⌉`).
    fn parity_words(&self) -> usize {
        self.parity_bits().div_ceil(64).max(1)
    }

    /// Mask clearing the top register word's bits above `parity − 1`.
    fn top_mask(&self) -> u64 {
        match self.parity_bits() % 64 {
            0 => u64::MAX,
            rem => (1u64 << rem) - 1,
        }
    }

    /// Systematically encodes `k` payload bits into an `n`-bit codeword:
    /// `codeword = [payload ‖ remainder(payload · x^{n−k} mod g)]`.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len() != k`.
    pub fn encode(&self, payload: &BitVec) -> BitVec {
        let mut cw = BitVec::zeros(self.n);
        let mut reg = Vec::new();
        self.encode_into(payload, &mut cw, &mut reg);
        cw
    }

    /// Like [`BchCode::encode`] but writes the codeword into `cw` and uses
    /// `reg` as the bit-packed LFSR register, reusing both allocations —
    /// the page-codec encode loop calls this once per codeword.
    ///
    /// Word-parallel: the remainder register is packed into `u64` words
    /// and the payload is absorbed 8 bits per round through the
    /// precomputed leap-8 table (the LFSR analogue of
    /// `fc_nand::randomizer`'s 64-step leap — 8 serial feedback steps are
    /// one table XOR because the division register is linear in its top
    /// bits). This replaced a `Vec<bool>` bit-serial loop that took ~73 µs
    /// per (1023, 943) codeword; [`BchCode::encode_into_serial`] keeps
    /// that loop as the bit-exact reference oracle.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len() != k`.
    pub fn encode_into(&self, payload: &BitVec, cw: &mut BitVec, reg: &mut Vec<u64>) {
        assert_eq!(payload.len(), self.k, "payload must be exactly k bits");
        let parity = self.parity_bits();
        let words = self.parity_words();
        let mask = self.top_mask();
        reg.clear();
        reg.resize(words, 0);
        if self.leap8.is_empty() {
            // Parity narrower than one table index: bit-serial steps on
            // the packed register (still word-wide feedback XORs).
            for i in (0..self.k).rev() {
                lfsr_step(reg, &self.gen_words, parity, mask, payload.get(i));
            }
        } else {
            // Head: bits above the last whole byte, fed serially so the
            // remaining payload is byte-aligned in the backing words.
            let head = self.k % 8;
            for i in ((self.k - head)..self.k).rev() {
                lfsr_step(reg, &self.gen_words, parity, mask, payload.get(i));
            }
            // Body: absorb 8 payload bits per leap. Payload bit `8j + b`
            // maps to bit `b` of the fed byte (the highest-index bit is
            // fed first = the register's top), which is exactly the j-th
            // aligned byte of the payload's backing words.
            let pw = payload.words();
            let top_off = parity - 8;
            let (ti, tb) = (top_off / 64, top_off % 64);
            for j in (0..self.k / 8).rev() {
                let bit0 = 8 * j;
                let fed = (pw[bit0 / 64] >> (bit0 % 64)) & 0xFF;
                let mut top = reg[ti] >> tb;
                if tb > 56 && ti + 1 < words {
                    top |= reg[ti + 1] << (64 - tb);
                }
                let idx = ((top ^ fed) & 0xFF) as usize;
                for w in (1..words).rev() {
                    reg[w] = (reg[w] << 8) | (reg[w - 1] >> 56);
                }
                reg[0] <<= 8;
                reg[words - 1] &= mask;
                for (r, &e) in reg.iter_mut().zip(&self.leap8[idx * words..]) {
                    *r ^= e;
                }
            }
        }
        cw.reset(self.n, false);
        for j in 0..parity {
            if (reg[j / 64] >> (j % 64)) & 1 == 1 {
                cw.set(j, true);
            }
        }
        cw.copy_from(parity, payload);
    }

    /// The original bit-serial encoder, kept as the bit-exact reference
    /// oracle for the word-parallel [`BchCode::encode_into`] (and for
    /// benchmark baselines). `reg` is the boolean LFSR register, reused
    /// across calls.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len() != k`.
    pub fn encode_into_serial(&self, payload: &BitVec, cw: &mut BitVec, reg: &mut Vec<bool>) {
        assert_eq!(payload.len(), self.k, "payload must be exactly k bits");
        let parity = self.parity_bits();
        // LFSR division: shift payload through, XOR generator on feedback.
        reg.clear();
        reg.resize(parity, false);
        for i in (0..self.k).rev() {
            let feedback = payload.get(i) ^ reg[parity - 1];
            for j in (1..parity).rev() {
                reg[j] = reg[j - 1] ^ (feedback && self.generator.get(j));
            }
            reg[0] = feedback && self.generator.get(0);
        }
        cw.reset(self.n, false);
        for (j, &r) in reg.iter().enumerate() {
            cw.set(j, r);
        }
        cw.copy_from(parity, payload);
    }

    /// Decodes an `n`-bit received word.
    ///
    /// # Panics
    ///
    /// Panics if `received.len() != n`.
    pub fn decode(&self, received: &BitVec) -> DecodeOutcome {
        assert_eq!(received.len(), self.n, "received word must be exactly n bits");
        let syndromes = self.syndromes(received);
        if syndromes.iter().all(|&s| s == 0) {
            return DecodeOutcome::Corrected { data: self.extract_payload(received), errors: 0 };
        }
        let sigma = self.berlekamp_massey(&syndromes);
        let nu = sigma.len() - 1;
        if nu > self.t as usize {
            return DecodeOutcome::Uncorrectable;
        }
        let positions = self.chien_search(&sigma);
        if positions.len() != nu {
            return DecodeOutcome::Uncorrectable;
        }
        let mut corrected = received.clone();
        for &p in &positions {
            corrected.flip(p);
        }
        // Re-check: the corrected word must be a codeword.
        if self.syndromes(&corrected).iter().any(|&s| s != 0) {
            return DecodeOutcome::Uncorrectable;
        }
        DecodeOutcome::Corrected { data: self.extract_payload(&corrected), errors: positions.len() }
    }

    fn extract_payload(&self, cw: &BitVec) -> BitVec {
        cw.slice(self.parity_bits(), self.k)
    }

    /// Syndromes `S_i = r(α^i)` for `i = 1..=2t`.
    fn syndromes(&self, r: &BitVec) -> Vec<u32> {
        (1..=2 * self.t as usize)
            .map(|i| {
                let mut s = 0u32;
                for pos in r.iter_ones() {
                    s ^= self.gf.alpha_pow(i * pos);
                }
                s
            })
            .collect()
    }

    /// Berlekamp–Massey over GF(2^m): returns the error-locator polynomial
    /// σ(x) as coefficients, degree ascending, σ(0) = 1.
    fn berlekamp_massey(&self, s: &[u32]) -> Vec<u32> {
        let gf = &self.gf;
        let mut sigma = vec![1u32];
        let mut b = vec![1u32];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut bb = 1u32;
        for n in 0..s.len() {
            // Discrepancy d = S_n + Σ σ_i · S_{n−i}.
            let mut d = s[n];
            for i in 1..=l {
                if i < sigma.len() && sigma[i] != 0 {
                    d ^= gf.mul(sigma[i], s[n - i]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n {
                let t_poly = sigma.clone();
                let coef = gf.div(d, bb);
                sigma = poly_sub_scaled(gf, &sigma, &b, coef, m);
                l = n + 1 - l;
                b = t_poly;
                bb = d;
                m = 1;
            } else {
                let coef = gf.div(d, bb);
                sigma = poly_sub_scaled(gf, &sigma, &b, coef, m);
                m += 1;
            }
        }
        // Trim trailing zeros.
        while sigma.len() > 1 && *sigma.last().unwrap() == 0 {
            sigma.pop();
        }
        sigma
    }

    /// Chien search: positions `p` where `σ(α^{−p}) = 0`.
    fn chien_search(&self, sigma: &[u32]) -> Vec<usize> {
        let gf = &self.gf;
        let mut out = Vec::new();
        for p in 0..self.n {
            // Evaluate σ at α^{-p} = α^{n-p}.
            let x = gf.alpha_pow(self.n - p % self.n);
            let mut acc = 0u32;
            for (i, &c) in sigma.iter().enumerate() {
                if c != 0 {
                    acc ^= gf.mul(c, gf.pow(x, i));
                }
            }
            if acc == 0 {
                out.push(p);
            }
        }
        out
    }
}

/// One LFSR division step on the bit-packed register: shift the payload
/// bit in from the bottom, XOR the generator on feedback from the top.
#[inline]
fn lfsr_step(reg: &mut [u64], gen: &[u64], parity: usize, mask: u64, bit: bool) {
    let top = (parity - 1) / 64;
    let feedback = bit ^ ((reg[top] >> ((parity - 1) % 64)) & 1 == 1);
    for w in (1..reg.len()).rev() {
        reg[w] = (reg[w] << 1) | (reg[w - 1] >> 63);
    }
    reg[0] <<= 1;
    reg[top] &= mask;
    if feedback {
        for (r, &g) in reg.iter_mut().zip(gen) {
            *r ^= g;
        }
    }
}

/// Precomputes the leap-8 table: entry `v` is the register after running
/// 8 LFSR steps from a register holding `v` in its top 8 bits (zeros
/// elsewhere, zero payload bits). By linearity of the division register,
/// 8 real steps then decompose into "shift the register up 8" plus one
/// table XOR indexed by `top 8 register bits ⊕ 8 payload bits` — the same
/// precomputed-linear-map trick as the randomizer's 64-step LFSR leap.
/// Returns an empty table when `parity < 8` (no 8-bit top to index by).
fn build_leap8(gen_words: &[u64], parity: usize) -> Vec<u64> {
    if parity < 8 {
        return Vec::new();
    }
    let words = parity.div_ceil(64);
    let mask = match parity % 64 {
        0 => u64::MAX,
        rem => (1u64 << rem) - 1,
    };
    let mut table = vec![0u64; 256 * words];
    let mut reg = vec![0u64; words];
    for v in 0..256u64 {
        reg.iter_mut().for_each(|w| *w = 0);
        for b in 0..8 {
            if (v >> b) & 1 == 1 {
                let pos = parity - 8 + b;
                reg[pos / 64] |= 1 << (pos % 64);
            }
        }
        for _ in 0..8 {
            lfsr_step(&mut reg, gen_words, parity, mask, false);
        }
        table[v as usize * words..(v as usize + 1) * words].copy_from_slice(&reg);
    }
    table
}

/// `sigma − coef · x^m · b` over GF(2^m) (subtraction is XOR).
fn poly_sub_scaled(gf: &GfTables, sigma: &[u32], b: &[u32], coef: u32, m: usize) -> Vec<u32> {
    let mut out = sigma.to_vec();
    let needed = b.len() + m;
    if out.len() < needed {
        out.resize(needed, 0);
    }
    for (i, &bi) in b.iter().enumerate() {
        if bi != 0 {
            out[i + m] ^= gf.mul(coef, bi);
        }
    }
    out
}

/// Generator polynomial as a bool vec (degree ascending):
/// `g(x) = lcm` of the minimal polynomials of `α, α^2, …, α^{2t}`.
fn compute_generator(gf: &GfTables, t: u32) -> Vec<bool> {
    let n = gf.n();
    // Collect the union of cyclotomic cosets of 1..=2t.
    let mut roots = std::collections::BTreeSet::new();
    for i in 1..=2 * t as usize {
        let mut j = i % n;
        loop {
            if !roots.insert(j) {
                break;
            }
            j = (j * 2) % n;
        }
    }
    // g(x) = Π (x − α^j) over all roots j, built coefficient-wise in GF.
    let mut g = vec![1u32];
    for j in roots {
        let root = gf.alpha_pow(j);
        let mut next = vec![0u32; g.len() + 1];
        for (i, &c) in g.iter().enumerate() {
            if c != 0 {
                next[i + 1] ^= c; // x · c
                next[i] ^= gf.mul(c, root); // root · c
            }
        }
        g = next;
    }
    // All coefficients must be 0/1 for a binary BCH generator.
    g.iter()
        .map(|&c| {
            debug_assert!(c <= 1, "generator coefficient {c} not binary");
            c == 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn classic_bch_15_7_2() {
        // The (15, 7) double-error-correcting BCH code: g(x) has degree 8.
        let code = BchCode::new(4, 2);
        assert_eq!(code.n(), 15);
        assert_eq!(code.k(), 7);
        assert_eq!(code.parity_bits(), 8);
    }

    #[test]
    fn classic_bch_15_5_3() {
        let code = BchCode::new(4, 3);
        assert_eq!(code.n(), 15);
        assert_eq!(code.k(), 5);
    }

    #[test]
    fn encode_is_systematic() {
        let code = BchCode::new(4, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let payload = BitVec::random(code.k(), &mut rng);
        let cw = code.encode(&payload);
        for i in 0..code.k() {
            assert_eq!(cw.get(code.parity_bits() + i), payload.get(i));
        }
    }

    #[test]
    fn clean_codeword_decodes_with_zero_errors() {
        let code = BchCode::new(6, 3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let payload = BitVec::random(code.k(), &mut rng);
            let cw = code.encode(&payload);
            match code.decode(&cw) {
                DecodeOutcome::Corrected { data, errors } => {
                    assert_eq!(data, payload);
                    assert_eq!(errors, 0);
                }
                DecodeOutcome::Uncorrectable => panic!("clean codeword failed"),
            }
        }
    }

    #[test]
    fn corrects_up_to_t_errors_everywhere() {
        for (m, t) in [(4u32, 2u32), (5, 2), (6, 3), (8, 4)] {
            let code = BchCode::new(m, t);
            let mut rng = StdRng::seed_from_u64(100 + m as u64 * 10 + t as u64);
            for trial in 0..15 {
                let payload = BitVec::random(code.k(), &mut rng);
                let cw = code.encode(&payload);
                let e = rng.gen_range(1..=t as usize);
                let mut corrupted = cw.clone();
                corrupted.flip_random_bits(e, &mut rng);
                match code.decode(&corrupted) {
                    DecodeOutcome::Corrected { data, errors } => {
                        assert_eq!(data, payload, "m={m} t={t} trial={trial}");
                        assert_eq!(errors, e);
                    }
                    DecodeOutcome::Uncorrectable => {
                        panic!("m={m} t={t}: {e} ≤ t errors must decode")
                    }
                }
            }
        }
    }

    #[test]
    fn more_than_t_errors_mostly_detected_never_silently_right() {
        let code = BchCode::new(6, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut detected = 0;
        for _ in 0..50 {
            let payload = BitVec::random(code.k(), &mut rng);
            let cw = code.encode(&payload);
            let mut corrupted = cw.clone();
            corrupted.flip_random_bits(8, &mut rng); // t = 3, inject 8
            match code.decode(&corrupted) {
                DecodeOutcome::Uncorrectable => detected += 1,
                DecodeOutcome::Corrected { data, .. } => {
                    assert_ne!(data, payload, "8 errors cannot decode to the truth");
                }
            }
        }
        assert!(detected > 25, "most overloads should be detected ({detected}/50)");
    }

    #[test]
    #[should_panic(expected = "payload must be exactly k bits")]
    fn wrong_payload_size_panics() {
        let code = BchCode::new(4, 2);
        code.encode(&BitVec::zeros(3));
    }

    /// The word-parallel leap-8 encoder is bit-exact against the retained
    /// bit-serial reference, across parities narrower than a byte (m=3:
    /// no table, pure packed-register fallback), narrower than a word,
    /// and spanning two words (production m=10, t=8 → 80 parity bits).
    #[test]
    fn word_parallel_encode_matches_bit_serial_oracle() {
        for (m, t) in [(3u32, 1u32), (4, 2), (4, 3), (5, 2), (6, 3), (8, 4), (10, 8)] {
            let code = BchCode::new(m, t);
            let mut rng = StdRng::seed_from_u64(0xB0_0C + m as u64 * 100 + t as u64);
            let mut fast = BitVec::zeros(code.n());
            let mut slow = BitVec::zeros(code.n());
            let mut reg_fast = Vec::new();
            let mut reg_slow = Vec::new();
            for trial in 0..25 {
                let payload = BitVec::random(code.k(), &mut rng);
                code.encode_into(&payload, &mut fast, &mut reg_fast);
                code.encode_into_serial(&payload, &mut slow, &mut reg_slow);
                assert_eq!(fast, slow, "m={m} t={t} trial={trial}");
            }
            // Degenerate payloads exercise the all-zero / all-one feedback
            // paths.
            for payload in [BitVec::zeros(code.k()), BitVec::ones(code.k())] {
                code.encode_into(&payload, &mut fast, &mut reg_fast);
                code.encode_into_serial(&payload, &mut slow, &mut reg_slow);
                assert_eq!(fast, slow, "m={m} t={t} degenerate payload");
            }
        }
    }
}
