//! Bitmap Index (BMI, §7): daily login-activity vectors; the query ANDs
//! the past `m` months of days and counts the surviving users.

use fc_bits::BitVec;
use flash_cosmos::batch::{BatchStats, QueryBatch};
use flash_cosmos::device::{FcError, StoreHints};
use flash_cosmos::expr::Expr;
use flash_cosmos::WorkloadShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FunctionalInstance, Query, StoredOperand};

/// Users tracked by the paper's database (§7: 800 million).
pub const PAPER_USERS: u64 = 800_000_000;

/// Days covered by `m` months (§7 sweeps m = 1..36; 36 months = 1095
/// days, matching the paper's "30 to 1,095 operands").
pub fn days_for_months(months: u32) -> u32 {
    (months * 365) / 12
}

/// The Fig. 17a / 18a month sweep as one batch of shapes, for
/// [`flash_cosmos::Engines::evaluate_batch`].
pub fn paper_shapes(months: &[u32]) -> Vec<WorkloadShape> {
    months.iter().map(|&m| paper_shape(m)).collect()
}

/// Paper-scale cost shape for Fig. 17a / 18a.
pub fn paper_shape(months: u32) -> WorkloadShape {
    WorkloadShape {
        name: format!("BMI m={months}"),
        queries: 1,
        and_operands: days_for_months(months) as u64,
        or_operands: 0,
        vector_bytes: PAPER_USERS / 8,
        result_popcount: true,
    }
}

/// A miniature functional BMI instance: `days` daily vectors over `users`
/// users, with a login-probability model that keeps some users active
/// every single day (so the query result is non-trivial).
pub fn mini(days: u32, users: usize, seed: u64) -> FunctionalInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    // Every user logs in with their own daily probability; a slice of
    // power users is active (almost) every day.
    let user_prob: Vec<f64> =
        (0..users).map(|u| if u % 7 == 0 { 0.995 } else { rng.gen_range(0.3..0.9) }).collect();
    let day_vectors: Vec<BitVec> =
        (0..days).map(|_| BitVec::from_fn(users, |u| rng.gen_bool(user_prob[u]))).collect();

    let operands: Vec<StoredOperand> = day_vectors
        .iter()
        .enumerate()
        .map(|(d, v)| StoredOperand {
            name: format!("day{d}"),
            data: v.clone(),
            // All daily vectors are AND-ed → co-locate in one group.
            hints: StoreHints::and_group("bmi-days"),
        })
        .collect();

    let expected = day_vectors.iter().skip(1).fold(day_vectors[0].clone(), |acc, v| acc.and(v));
    let queries = vec![Query {
        label: format!("active every day for {days} days"),
        expr: Expr::and_vars(0..days as usize),
        expected,
    }];
    FunctionalInstance { name: "BMI".to_string(), operands, queries }
}

/// A batch of month-window filters over the same daily vectors: query
/// `m` ANDs the most recent `days_for_months(m)` daily operands (clamped
/// to the stored history). This is the §7 sweep as one submission — and
/// because a bitmap-index front end re-runs the same windows batch after
/// batch, the device's cross-batch result cache answers repeated windows
/// without re-sensing (only windows whose operands were overwritten since
/// re-execute).
///
/// # Panics
///
/// Panics if `day_ids` is empty.
pub fn month_filter_batch(day_ids: &[usize], months: &[u32]) -> flash_cosmos::QueryBatch {
    assert!(!day_ids.is_empty(), "month filters need at least one daily vector");
    months
        .iter()
        .map(|&m| {
            let days = (days_for_months(m).max(1) as usize).min(day_ids.len());
            Expr::and_vars(day_ids[day_ids.len() - days..].iter().copied())
        })
        .collect()
}

/// The query's final step: counting active users in the result vector.
pub fn count_active(result: &BitVec) -> usize {
    result.count_ones()
}

/// Users active on at least `k` of the stored days — the threshold-K
/// relaxation of the all-days AND filter. With the daily vectors
/// co-located in one `and_group`, every interior `k` (`1 < k < n`)
/// lowers to a **single dynamic threshold sense per stripe**; `k = n`
/// is the classic intra-block AND and `k = 1` the OR fallback.
///
/// # Errors
///
/// Propagates device failures ([`flash_cosmos::device::FcError`]).
pub fn active_at_least(
    dev: &mut flash_cosmos::FlashCosmosDevice,
    day_ids: &[usize],
    k: usize,
) -> Result<(u64, flash_cosmos::ReadStats), flash_cosmos::FcError> {
    let (v, stats) = dev.fc_read(&Expr::threshold_vars(k, day_ids.iter().copied()))?;
    Ok((count_active(&v) as u64, stats))
}

/// Exact total activity — the number of (user, day) active pairs —
/// computed entirely in-flash via the threshold staircase identity:
///
/// ```text
/// Σ_u days_active(u) = Σ_{k=1..n} |TH_k(day vectors)|
/// ```
///
/// (each user active on `d` days is counted by exactly the thresholds
/// `k ≤ d`). One threshold query per `k`; the interior ones are one
/// dynamic sense each.
///
/// # Errors
///
/// Propagates device failures ([`flash_cosmos::device::FcError`]).
///
/// # Panics
///
/// Panics if `day_ids` is empty.
pub fn total_activity_in_flash(
    dev: &mut flash_cosmos::FlashCosmosDevice,
    day_ids: &[usize],
) -> Result<(u64, BatchStats), FcError> {
    assert!(!day_ids.is_empty(), "the staircase needs at least one daily vector");
    let batch: QueryBatch =
        (1..=day_ids.len()).map(|k| Expr::threshold_vars(k, day_ids.iter().copied())).collect();
    let out = dev.submit(&batch)?;
    Ok((out.results.iter().map(|r| count_active(r) as u64).sum(), out.stats))
}

/// Approximate total activity: probes the staircase `c_k = |TH_k|` at
/// `probes` evenly spaced thresholds (always including `k = 1` and
/// `k = n`) and integrates the rest by linear interpolation — `c_k` is
/// monotone non-increasing in `k`, so the interpolation error is bounded
/// by the staircase's curvature between probes. Senses scale with
/// `probes`, not `n`.
///
/// # Errors
///
/// Propagates device failures ([`flash_cosmos::device::FcError`]).
///
/// # Panics
///
/// Panics if `probes < 2` or `day_ids.len() < 2`.
pub fn estimate_total_activity(
    dev: &mut flash_cosmos::FlashCosmosDevice,
    day_ids: &[usize],
    probes: usize,
) -> Result<(u64, BatchStats), FcError> {
    let n = day_ids.len();
    assert!(probes >= 2, "interpolation needs at least the two endpoint probes");
    assert!(n >= 2, "estimating over fewer than two days is just counting");
    let mut ks: Vec<usize> = (0..probes).map(|i| 1 + i * (n - 1) / (probes - 1)).collect();
    ks.dedup();
    let batch: QueryBatch =
        ks.iter().map(|&k| Expr::threshold_vars(k, day_ids.iter().copied())).collect();
    let out = dev.submit(&batch)?;
    let counts: Vec<f64> = out.results.iter().map(|r| count_active(r) as f64).collect();
    let mut total = 0.0;
    for w in 0..ks.len() - 1 {
        let (ka, kb) = (ks[w], ks[w + 1]);
        let (ca, cb) = (counts[w], counts[w + 1]);
        let span = (kb - ka) as f64;
        for k in ka..kb {
            let t = (k - ka) as f64 / span;
            total += ca + (cb - ca) * t;
        }
    }
    total += counts[ks.len() - 1]; // the k = n term closes the staircase
    Ok((total.round() as u64, out.stats))
}

/// Probability that the query result is bit-exact when each of `d`
/// operands carries independent bit errors at `rber` — the §7 argument
/// that BMI is error-intolerant ("Assuming a best-case RBER of 8.6×10⁻⁴
/// and m = 36, the probability of a correct output is 0.42").
pub fn correct_output_probability(users: u64, days: u32, rber: f64) -> f64 {
    // A single bit error in any operand position corrupts the output.
    // P(all correct) = (1 - rber)^(users × days) — evaluated in log space
    // because the exponent reaches ~10^12.
    let trials = users as f64 * days as f64;
    (trials * (1.0 - rber).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operand_counts() {
        assert_eq!(days_for_months(1), 30);
        assert_eq!(days_for_months(36), 1095);
        let s = paper_shape(36);
        assert_eq!(s.and_operands, 1095);
        assert_eq!(s.vector_bytes, 100_000_000);
        assert!(s.result_popcount);
    }

    #[test]
    fn mini_instance_is_consistent() {
        let inst = mini(10, 128, 1);
        assert_eq!(inst.operands.len(), 10);
        assert_eq!(inst.queries.len(), 1);
        let q = &inst.queries[0];
        // Ground truth really is the AND of all days.
        let manual =
            inst.operands.iter().skip(1).fold(inst.operands[0].data.clone(), |a, o| a.and(&o.data));
        assert_eq!(q.expected, manual);
        // Power users guarantee a non-empty, non-full result.
        assert!(q.expected.count_ones() > 0);
        assert!(q.expected.count_ones() < 128);
    }

    #[test]
    fn error_intolerance_matches_paper_math() {
        // §7: best-case RBER 8.6e-4... the paper's 0.42 figure follows a
        // per-result-bit model: an output bit is wrong only if an error
        // lands in a *surviving* position — effectively one critical
        // operand per result bit. Reproduce that model here.
        let p_correct = correct_output_probability(1_000, 1, 8.6e-4);
        assert!(p_correct < 0.5, "even 1000 bits × 1 day is unreliable: {p_correct}");
        // The exact paper figure: 0.42 ≈ (1 - 8.6e-4)^1000 — one error-
        // critical bit per user over the final AND tree.
        assert!((correct_output_probability(1_000, 1, 8.6e-4) - 0.42).abs() < 0.02);
    }

    #[test]
    fn count_active_is_popcount() {
        let v = BitVec::from_fn(100, |i| i < 7);
        assert_eq!(count_active(&v), 7);
    }

    #[test]
    fn month_filter_batch_windows_recent_days() {
        let ids: Vec<usize> = (10..70).collect(); // 60 stored days
        let batch = month_filter_batch(&ids, &[1, 2, 36]);
        assert_eq!(batch.len(), 3);
        // m=1 → 30 most recent days; m=2 → 60; m=36 clamps to history.
        assert_eq!(batch.queries()[0], Expr::and_vars(40..70));
        assert_eq!(batch.queries()[1], Expr::and_vars(10..70));
        assert_eq!(batch.queries()[2], Expr::and_vars(10..70));
    }

    #[test]
    fn threshold_staircase_counts_activity_exactly() {
        use fc_ssd::SsdConfig;
        use flash_cosmos::device::FlashCosmosDevice;

        let inst = mini(6, 256, 0xB142);
        let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
        let ids: Vec<usize> = inst
            .operands
            .iter()
            .map(|op| dev.fc_write(&op.name, &op.data, op.hints.clone()).unwrap().id)
            .collect();
        let host_total: u64 = inst.operands.iter().map(|op| op.data.count_ones() as u64).sum();
        let (total, stats) = total_activity_in_flash(&mut dev, &ids).unwrap();
        assert_eq!(total, host_total, "the staircase identity is exact");
        // The interior thresholds (k = 2..5) are one dynamic sense each;
        // only the k = 1 OR fallback senses per operand.
        assert!(stats.senses < 6 + 4 + 1 + 1, "interior thresholds must single-sense");
        // A single interior threshold is one sense (1 stripe here) —
        // clear the result cache so the staircase run doesn't answer it.
        dev.clear_result_cache();
        let (_, one) = active_at_least(&mut dev, &ids, 3).unwrap();
        assert_eq!(one.senses, 1);
    }

    #[test]
    fn estimated_activity_tracks_the_exact_staircase() {
        use fc_ssd::SsdConfig;
        use flash_cosmos::device::FlashCosmosDevice;

        let inst = mini(12, 256, 0xB143);
        let mut dev = FlashCosmosDevice::new(
            // 12 co-located daily vectors need 12 wordlines in a block.
            SsdConfig { wls_per_block: 16, ..SsdConfig::tiny_test() },
        );
        let ids: Vec<usize> = inst
            .operands
            .iter()
            .map(|op| dev.fc_write(&op.name, &op.data, op.hints.clone()).unwrap().id)
            .collect();
        let (exact, exact_stats) = total_activity_in_flash(&mut dev, &ids).unwrap();
        dev.clear_result_cache();
        let (approx, approx_stats) = estimate_total_activity(&mut dev, &ids, 5).unwrap();
        let err = approx.abs_diff(exact) as f64 / exact as f64;
        assert!(err < 0.05, "5-probe estimate off by {:.1}%", err * 100.0);
        assert!(
            approx_stats.senses < exact_stats.senses,
            "probing must sense less than the full staircase ({} vs {})",
            approx_stats.senses,
            exact_stats.senses
        );
    }

    #[test]
    fn repeated_month_sweeps_ride_the_result_cache() {
        use fc_ssd::SsdConfig;
        use flash_cosmos::device::FlashCosmosDevice;

        let inst = mini(8, 256, 0xB141);
        let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
        let ids: Vec<usize> = inst
            .operands
            .iter()
            .map(|op| dev.fc_write(&op.name, &op.data, op.hints.clone()).unwrap().id)
            .collect();
        let batch = month_filter_batch(&ids, &[1, 2, 3]);
        let cold = dev.submit(&batch).unwrap();
        assert!(cold.stats.senses > 0);
        let warm = dev.submit(&batch).unwrap();
        assert_eq!(warm.stats.senses, 0, "the re-run sweep is answered from cache");
        assert_eq!(warm.results, cold.results);
        // A new day's data arrives (overwrite one day): only fresh work.
        let replacement = BitVec::from_fn(256, |i| i % 3 == 0);
        dev.fc_overwrite("day7", &replacement).unwrap();
        let after = dev.submit(&batch).unwrap();
        assert!(after.stats.senses > 0, "touched windows re-sense");
        let manual = |days: std::ops::Range<usize>| {
            days.map(|d| if d == 7 { replacement.clone() } else { inst.operands[d].data.clone() })
                .reduce(|a, v| a.and(&v))
                .unwrap()
        };
        assert_eq!(after.results[0], manual(0..8));
    }
}
