//! Image Segmentation (IMS, §7): YUV color recognition — a pixel belongs
//! to color `C` iff `Y(p,C) & U(p,C) & V(p,C)`, a 3-operand bulk AND.

use fc_bits::BitVec;
use flash_cosmos::device::StoreHints;
use flash_cosmos::expr::Expr;
use flash_cosmos::WorkloadShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FunctionalInstance, Query, StoredOperand};

/// Paper image dimensions (§7: 800×600 pixels, 4 colors).
pub const PAPER_PIXELS: u64 = 800 * 600;

/// Colors per segmentation (§7).
pub const PAPER_COLORS: u64 = 4;

/// The Fig. 17b / 18b image-count sweep as one batch of shapes, for
/// [`flash_cosmos::Engines::evaluate_batch`].
pub fn paper_shapes(images: &[u64]) -> Vec<WorkloadShape> {
    images.iter().map(|&i| paper_shape(i)).collect()
}

/// Paper-scale cost shape for Fig. 17b / 18b (`images` = the paper's
/// `I`, swept 10,000..200,000).
pub fn paper_shape(images: u64) -> WorkloadShape {
    WorkloadShape {
        name: format!("IMS I={}k", images / 1000),
        queries: 1,
        and_operands: 3,
        or_operands: 0,
        vector_bytes: images * PAPER_PIXELS * PAPER_COLORS / 8,
        result_popcount: false,
    }
}

/// A miniature functional IMS instance: `images` synthetic images of
/// `width × height` pixels, 4 colors. The generator synthesizes per-pixel
/// YUV values and derives the three binary masks by thresholding around
/// the color prototypes — the pre-processing of §7's reference \[135\].
pub fn mini(images: usize, width: usize, height: usize, seed: u64) -> FunctionalInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let colors = PAPER_COLORS as usize;
    let bits = images * width * height * colors;
    // Color prototypes in YUV space.
    let prototypes: Vec<[f64; 3]> = (0..colors)
        .map(|c| [0.2 + 0.2 * c as f64, 0.25 * c as f64, 1.0 - 0.25 * c as f64])
        .collect();
    let mut masks = [BitVec::zeros(bits), BitVec::zeros(bits), BitVec::zeros(bits)];
    for img in 0..images {
        for p in 0..width * height {
            let yuv = [rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()];
            for (c, proto) in prototypes.iter().enumerate() {
                let idx = (img * width * height + p) * colors + c;
                for ch in 0..3 {
                    // Generous thresholds so plenty of pixels pass one
                    // channel but fewer pass all three.
                    if (yuv[ch] - proto[ch]).abs() < 0.35 {
                        masks[ch].set(idx, true);
                    }
                }
            }
        }
    }
    let [y, u, v] = masks;
    let expected = y.and(&u).and(&v);
    let operands = vec![
        StoredOperand { name: "Y".to_string(), data: y, hints: StoreHints::and_group("ims-yuv") },
        StoredOperand { name: "U".to_string(), data: u, hints: StoreHints::and_group("ims-yuv") },
        StoredOperand { name: "V".to_string(), data: v, hints: StoreHints::and_group("ims-yuv") },
    ];
    let queries = vec![Query {
        label: format!("segment {images} images ({width}x{height}, 4 colors)"),
        expr: Expr::and_vars(0..3),
        expected,
    }];
    FunctionalInstance { name: "IMS".to_string(), operands, queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_sizes() {
        // I = 200,000 → bit vectors of 48 GB (§8.1: "up to 44 GiB").
        let s = paper_shape(200_000);
        assert_eq!(s.vector_bytes, 48_000_000_000);
        let gib = s.vector_bytes as f64 / (1u64 << 30) as f64;
        assert!((gib - 44.7).abs() < 1.0, "{gib} GiB");
        assert_eq!(s.and_operands, 3);
    }

    #[test]
    fn mini_masks_have_expected_structure() {
        let inst = mini(2, 8, 8, 3);
        assert_eq!(inst.operands.len(), 3);
        let bits = 2 * 8 * 8 * 4;
        for op in &inst.operands {
            assert_eq!(op.data.len(), bits);
            let density = op.data.count_ones() as f64 / bits as f64;
            assert!(density > 0.2 && density < 0.95, "channel density {density}");
        }
        let q = &inst.queries[0];
        // Result is sparser than each individual mask.
        assert!(q.expected.count_ones() <= inst.operands[0].data.count_ones());
        assert_eq!(
            q.expected,
            inst.operands[0].data.and(&inst.operands[1].data).and(&inst.operands[2].data)
        );
    }
}
