//! Hyper-dimensional computing (HDC) — one of the application domains
//! the paper's introduction motivates (refs. [33–36]): classification
//! with long binary hypervectors, built entirely from bulk bitwise
//! operations.
//!
//! * **bind** (feature × value association): XOR of hypervectors;
//! * **bundle** (superposition of a class's examples): position-wise
//!   majority vote;
//! * **similarity** (query vs class prototypes): XNOR then popcount.
//!
//! All three map onto the Flash-Cosmos primitive set: XOR via the latch
//! XOR logic, majority via AND/OR synthesis
//! ([`flash_cosmos::ops::at_least_k_of`]), XNOR via the inverse read, and
//! popcount on the host (like BMI's bit-count step).

use fc_bits::BitVec;
use flash_cosmos::device::StoreHints;
use flash_cosmos::expr::Expr;
use flash_cosmos::{ops, WorkloadShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{FunctionalInstance, Query, StoredOperand};

/// Dimensionality used for paper-scale projections (HDC literature uses
/// ~10,000-bit hypervectors; we scale the stored corpus, not the math).
pub const PAPER_DIMENSIONS: u64 = 10_000;

/// Paper-scale cost shape: bundling `examples` stored hypervectors per
/// class via majority is a multi-operand bulk operation per class.
pub fn paper_shape(classes: u64, examples: u64) -> WorkloadShape {
    WorkloadShape {
        name: format!("HDC {classes}cls×{examples}ex"),
        queries: classes,
        and_operands: examples,
        or_operands: 0,
        vector_bytes: PAPER_DIMENSIONS * 1_000 / 8, // corpus of 1000 records per dim-slice
        result_popcount: true,
    }
}

/// A miniature functional HDC instance: `classes` classes × `examples`
/// noisy example hypervectors of `dims` bits each. Queries bundle each
/// class's examples with a majority vote (threshold `examples/2 + 1`),
/// which the device executes in-flash via AND/OR synthesis.
///
/// # Panics
///
/// Panics if `examples` is even (majority needs an odd vote count) or
/// greater than 7 (the synthesized threshold expression grows as
/// `C(n, k)`).
pub fn mini(classes: usize, examples: usize, dims: usize, seed: u64) -> FunctionalInstance {
    assert!(examples % 2 == 1, "majority bundling needs an odd example count");
    assert!(examples <= 7, "threshold synthesis is practical for ≤7 examples");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut operands = Vec::new();
    let mut queries = Vec::new();
    for class in 0..classes {
        // A class prototype plus per-example bit noise.
        let prototype = BitVec::random(dims, &mut rng);
        let base = operands.len();
        let examples_vec: Vec<BitVec> = (0..examples)
            .map(|e| {
                let mut v = prototype.clone();
                let flips = dims / 10; // 10% noise
                v.flip_random_bits(flips, &mut rng);
                operands.push(StoredOperand {
                    name: format!("class{class}-ex{e}"),
                    data: v.clone(),
                    hints: StoreHints::and_group(&format!("hdc-{class}")),
                });
                v
            })
            .collect();
        // Ground truth: majority vote across examples.
        let threshold = examples / 2 + 1;
        let expected = BitVec::from_fn(dims, |i| {
            examples_vec.iter().filter(|v| v.get(i)).count() >= threshold
        });
        let ids: Vec<usize> = (base..base + examples).collect();
        queries.push(Query {
            label: format!("bundle class {class} ({examples} examples, ≥{threshold})"),
            expr: ops::at_least_k_of(&ids, threshold),
            expected,
        });
    }
    FunctionalInstance { name: "HDC".to_string(), operands, queries }
}

/// Majority-bundles the stored example hypervectors of one class into a
/// prototype with the **dynamic threshold sense**: the examples live on
/// co-located wordlines of one block (store them with a shared
/// [`StoreHints::and_group`]), so the planner lowers
/// [`Expr::majority_vars`] to a single threshold-K multi-wordline sense
/// per stripe instead of the `C(n, ⌈n/2⌉)` AND/OR expansion that caps
/// [`mini`] at 7 examples — bundling 9, 11, or more examples becomes one
/// modeled sense per stripe.
///
/// Returns the bundled prototype and the read statistics.
///
/// # Errors
///
/// Propagates device failures ([`flash_cosmos::FcError`]); in particular
/// the plan falls back to the exact expansion (or fails) when the
/// examples are not co-located in one block.
///
/// # Panics
///
/// Panics if `examples` is even or smaller than 3 (ties have no
/// majority).
pub fn bundle_in_flash(
    dev: &mut flash_cosmos::FlashCosmosDevice,
    examples: &[usize],
) -> Result<(BitVec, flash_cosmos::ReadStats), flash_cosmos::FcError> {
    assert!(
        examples.len() >= 3 && examples.len() % 2 == 1,
        "majority bundling needs an odd example count of at least 3"
    );
    dev.fc_read(&Expr::majority_vars(examples.iter().copied()))
}

/// Host-side similarity: Hamming agreement between a query hypervector
/// and a bundled class prototype (higher = more similar). The in-flash
/// form computes XNOR on-chip and pops the count on the host.
pub fn similarity(query: &BitVec, prototype: &BitVec) -> usize {
    query.len() - query.hamming_distance(prototype)
}

/// Classifies `query` against bundled prototypes, returning the index of
/// the most similar class.
///
/// # Panics
///
/// Panics if `prototypes` is empty.
pub fn classify(query: &BitVec, prototypes: &[BitVec]) -> usize {
    assert!(!prototypes.is_empty(), "need at least one class prototype");
    prototypes
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| similarity(query, p))
        .map(|(i, _)| i)
        .expect("non-empty")
}

/// Binds two hypervectors (feature ⊗ value): XOR.
pub fn bind_expr(a: usize, b: usize) -> Expr {
    Expr::var(a) ^ Expr::var(b)
}

/// One similarity query per stored class prototype (XNOR against the
/// query hypervector), as a batch — classification matches the query
/// against *every* prototype, which is exactly the many-expressions-one
/// -pass shape the batched device API amortizes. Because the prototype
/// terms are generation-stamped, re-classifying the *same* stored query
/// vector replays every term from the cross-batch result cache, while
/// overwriting the query operand (`fc_overwrite`) invalidates exactly
/// those terms and re-senses.
pub fn similarity_batch(query: usize, prototypes: &[usize]) -> flash_cosmos::QueryBatch {
    prototypes.iter().map(|&p| Expr::xnor(Expr::var(query), Expr::var(p))).collect()
}

/// Classifies the stored `query` hypervector against stored class
/// prototypes entirely in-flash: one XNOR batch, host-side popcount
/// argmax (the BMI-style bit-count step). Returns the winning class index
/// and the batch statistics — repeated calls with an unchanged query
/// operand are answered from the result cache without sensing.
///
/// # Errors
///
/// Propagates device failures ([`flash_cosmos::FcError`]).
///
/// # Panics
///
/// Panics if `prototypes` is empty.
pub fn classify_in_flash(
    dev: &mut flash_cosmos::FlashCosmosDevice,
    query: usize,
    prototypes: &[usize],
) -> Result<(usize, flash_cosmos::BatchStats), flash_cosmos::FcError> {
    assert!(!prototypes.is_empty(), "need at least one class prototype");
    let out = dev.submit(&similarity_batch(query, prototypes))?;
    let best = out
        .results
        .iter()
        .enumerate()
        .max_by_key(|(_, agreement)| agreement.count_ones())
        .map(|(i, _)| i)
        .expect("non-empty");
    Ok((best, out.stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundling_recovers_prototypes_under_noise() {
        let inst = mini(3, 5, 512, 0x4DC);
        assert_eq!(inst.operands.len(), 15);
        assert_eq!(inst.queries.len(), 3);
        for q in &inst.queries {
            // Majority of 5 examples with 10% noise each lands close to
            // the prototype: each example pair shares ≥ ~80% of bits.
            let ones = q.expected.count_ones();
            assert!(ones > 100 && ones < 412, "bundle looks degenerate: {ones}");
        }
    }

    #[test]
    fn classification_prefers_own_class() {
        let mut rng = StdRng::seed_from_u64(42);
        let protos: Vec<BitVec> = (0..4).map(|_| BitVec::random(2048, &mut rng)).collect();
        for (c, p) in protos.iter().enumerate() {
            let mut query = p.clone();
            query.flip_random_bits(300, &mut rng); // ~15% noise
            assert_eq!(classify(&query, &protos), c, "class {c}");
        }
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = BitVec::random(1024, &mut rng);
        let b = BitVec::random(1024, &mut rng);
        assert_eq!(similarity(&a, &b), similarity(&b, &a));
        assert_eq!(similarity(&a, &a), 1024);
        let s = similarity(&a, &b);
        assert!((400..=624).contains(&s), "random similarity {s}");
    }

    #[test]
    fn binding_is_invertible() {
        // (a ⊗ b) ⊗ b = a — the HDC unbinding identity, via XOR.
        let mut rng = StdRng::seed_from_u64(9);
        let a = BitVec::random(256, &mut rng);
        let b = BitVec::random(256, &mut rng);
        assert_eq!(a.xor(&b).xor(&b), a);
    }

    #[test]
    #[should_panic(expected = "odd example count")]
    fn even_examples_panic() {
        mini(1, 4, 64, 1);
    }

    #[test]
    fn in_flash_classification_reuses_cached_prototype_terms() {
        use fc_ssd::SsdConfig;
        use flash_cosmos::device::{FlashCosmosDevice, StoreHints};

        let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
        let mut rng = StdRng::seed_from_u64(0x4DC2);
        let dims = 512;
        let protos: Vec<BitVec> = (0..4).map(|_| BitVec::random(dims, &mut rng)).collect();
        let proto_ids: Vec<usize> = protos
            .iter()
            .enumerate()
            .map(|(c, p)| {
                dev.fc_write(&format!("proto{c}"), p, StoreHints::and_group(&format!("p{c}")))
                    .unwrap()
                    .id
            })
            .collect();
        let mut query = protos[2].clone();
        query.flip_random_bits(60, &mut rng);
        let qid = dev.fc_write("query", &query, StoreHints::and_group("q")).unwrap().id;

        let (class, cold) = classify_in_flash(&mut dev, qid, &proto_ids).unwrap();
        assert_eq!(class, 2, "in-flash classification matches host similarity");
        assert_eq!(class, classify(&query, &protos));
        assert!(cold.senses > 0);
        // Same stored query → every XNOR term replays from the cache.
        let (again, warm) = classify_in_flash(&mut dev, qid, &proto_ids).unwrap();
        assert_eq!(again, 2);
        assert_eq!(warm.senses, 0, "re-classification is cache-served");
        assert_eq!(warm.cached_units, 4);
        // A new query hypervector overwrites the operand: the stamped
        // terms invalidate and the classification re-senses.
        let mut query2 = protos[0].clone();
        query2.flip_random_bits(60, &mut rng);
        dev.fc_overwrite("query", &query2).unwrap();
        let (class2, fresh) = classify_in_flash(&mut dev, qid, &proto_ids).unwrap();
        assert_eq!(class2, 0);
        assert!(fresh.senses > 0, "overwritten query cannot ride stale cache entries");
    }

    #[test]
    fn bundling_nine_plus_examples_is_one_sense_per_stripe() {
        use fc_ssd::SsdConfig;
        use flash_cosmos::device::FlashCosmosDevice;

        // 11 examples need 11 co-located wordlines: deepen the blocks
        // beyond the tiny default of 8.
        let config = SsdConfig { wls_per_block: 16, ..SsdConfig::tiny_test() };
        let mut dev = FlashCosmosDevice::new(config);
        let mut rng = StdRng::seed_from_u64(0x4DC3);
        let dims = 700; // 3 stripes of the 256-bit tiny page
        let classes = 3;
        let examples = 11;
        let mut prototypes = Vec::new();
        let mut queries = Vec::new();
        let mut bundled = Vec::new();
        for class in 0..classes {
            let prototype = BitVec::random(dims, &mut rng);
            let mut ids = Vec::new();
            let mut vecs = Vec::new();
            for e in 0..examples {
                let mut v = prototype.clone();
                v.flip_random_bits(dims / 10, &mut rng);
                let h = dev
                    .fc_write(
                        &format!("c{class}e{e}"),
                        &v,
                        StoreHints::and_group(&format!("hdc{class}")),
                    )
                    .unwrap();
                ids.push(h.id);
                vecs.push(v);
            }
            let (bundle, stats) = bundle_in_flash(&mut dev, &ids).unwrap();
            // Bit-exact against the host majority vote.
            let threshold = examples / 2 + 1;
            let expect =
                BitVec::from_fn(dims, |i| vecs.iter().filter(|v| v.get(i)).count() >= threshold);
            assert_eq!(bundle, expect, "class {class} bundle must be bit-exact");
            // One dynamic threshold sense per stripe — not C(11, 6) = 462
            // expansion senses.
            assert_eq!(stats.senses, 3, "class {class}: one sense per stripe");
            let mut query = prototype.clone();
            query.flip_random_bits(dims / 8, &mut rng);
            prototypes.push(prototype);
            queries.push(query);
            bundled.push(bundle);
        }
        // The in-flash bundles classify noisy queries like host bundles.
        for (class, query) in queries.iter().enumerate() {
            assert_eq!(classify(query, &bundled), class, "query {class}");
        }
    }

    #[test]
    fn paper_shape_scales_with_examples() {
        let s = paper_shape(32, 5);
        assert_eq!(s.queries, 32);
        assert_eq!(s.and_operands, 5);
        assert!(s.result_popcount);
    }
}
