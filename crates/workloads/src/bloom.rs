//! Partitioned Bloom-filter membership as an in-flash threshold query.
//!
//! A partitioned Bloom filter hashes every key into one bit per
//! partition (H hash functions → H disjoint bit arrays); membership is
//! "all H probed bits set". Probing bits one key at a time is the
//! classic pointer-chasing lookup — the shape in-flash processing cannot
//! help. What it *can* accelerate is the batched form: for a fixed
//! candidate set (the keys an application repeatedly screens — a
//! working set, a block cache, a routing table), the filter maintains H
//! **host-side indicator vectors**, one bit per candidate:
//!
//! ```text
//! A_i[j] = partition_i[h_i(candidate_j)]
//! ```
//!
//! Insertion updates the affected indicator bits (the host knows which
//! candidates collide into the touched bucket); the vectors live
//! co-located in flash, and screening the *entire* candidate set is one
//! threshold query:
//!
//! * `k = H` — exact Bloom semantics (AND of all probes; false-positive
//!   rate from hash collisions, never false negatives);
//! * `k = H − 1` — erasure-tolerant membership: one partition may be
//!   lost or stale and every true member still passes (at a higher
//!   false-positive rate).
//!
//! Interior `k` lowers to a single dynamic threshold sense per stripe;
//! `k = H` is the classic intra-block AND — either way the whole batch
//! costs senses independent of the candidate count.

use fc_bits::BitVec;
use flash_cosmos::device::{FcError, FlashCosmosDevice, ReadStats, StoreHints};
use flash_cosmos::expr::Expr;

/// A partitioned Bloom filter over a fixed candidate set, maintaining
/// the per-hash indicator vectors the in-flash membership query senses.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    /// Bits per partition (the classic Bloom `m / H`).
    buckets: usize,
    /// Tracked candidate keys, in indicator-bit order.
    candidates: Vec<u64>,
    /// `partitions[i]` — partition `i`'s raw bit array.
    partitions: Vec<BitVec>,
    /// `indicators[i][j] = partitions[i][bucket(i, candidates[j])]`.
    indicators: Vec<BitVec>,
}

/// SplitMix64 — a deterministic hash family: `mix(key, i)` is hash
/// function `i`.
fn mix(key: u64, i: u64) -> u64 {
    let mut z = key ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BloomFilter {
    /// An empty filter with `hashes` partitions of `buckets` bits each,
    /// screening the given candidate keys.
    ///
    /// # Panics
    ///
    /// Panics on zero hashes, zero buckets, or an empty candidate set.
    pub fn new(hashes: usize, buckets: usize, candidates: &[u64]) -> Self {
        assert!(hashes >= 1, "a Bloom filter needs at least one hash");
        assert!(buckets >= 1, "a partition needs at least one bucket");
        assert!(!candidates.is_empty(), "the batched query screens a fixed candidate set");
        Self {
            buckets,
            candidates: candidates.to_vec(),
            partitions: vec![BitVec::zeros(buckets); hashes],
            indicators: vec![BitVec::zeros(candidates.len()); hashes],
        }
    }

    /// Hash functions in the filter.
    pub fn hashes(&self) -> usize {
        self.partitions.len()
    }

    fn bucket(&self, hash: usize, key: u64) -> usize {
        (mix(key, hash as u64) % self.buckets as u64) as usize
    }

    /// Inserts a key: sets one bucket per partition and refreshes the
    /// indicator bit of every candidate colliding into that bucket.
    pub fn insert(&mut self, key: u64) {
        for i in 0..self.partitions.len() {
            let b = self.bucket(i, key);
            if self.partitions[i].get(b) {
                continue; // bucket already set — indicators already true
            }
            self.partitions[i].set(b, true);
            for (j, &c) in self.candidates.iter().enumerate() {
                if self.bucket(i, c) == b {
                    self.indicators[i].set(j, true);
                }
            }
        }
    }

    /// Host-side membership of one key (the reference the in-flash
    /// result is checked against). False positives possible, false
    /// negatives not.
    pub fn contains(&self, key: u64) -> bool {
        (0..self.partitions.len()).all(|i| self.partitions[i].get(self.bucket(i, key)))
    }

    /// The indicator vectors (candidate-indexed), for loading or
    /// inspection.
    pub fn indicators(&self) -> &[BitVec] {
        &self.indicators
    }

    /// Writes the indicator vectors into the device as one co-located
    /// group (`name` prefixes the operand names), returning the operand
    /// ids [`contains_batch`] queries. Call after the inserts — the
    /// vectors are a snapshot ([`flash_cosmos::FlashCosmosDevice::fc_overwrite`]
    /// refreshes one after further inserts).
    ///
    /// # Errors
    ///
    /// Propagates device failures (duplicate names, allocation errors).
    pub fn load(&self, dev: &mut FlashCosmosDevice, name: &str) -> Result<Vec<usize>, FcError> {
        self.indicators
            .iter()
            .enumerate()
            .map(|(i, v)| {
                Ok(dev.fc_write(&format!("{name}-h{i}"), v, StoreHints::and_group(name))?.id)
            })
            .collect()
    }
}

/// The membership query over loaded indicator operands: candidate `j` is
/// (probably) a member iff at least `k` of the H probed bits are set.
/// `k = H` is exact Bloom membership; lower `k` tolerates `H − k` lost
/// or stale partitions.
///
/// # Panics
///
/// Panics if `k` is zero, exceeds the hash count, or `hash_ids` is
/// empty (the [`Expr::threshold`] contract).
pub fn contains_batch_expr(hash_ids: &[usize], k: usize) -> Expr {
    Expr::threshold_vars(k, hash_ids.iter().copied())
}

/// Executes the batched membership screen in-flash: one bit per
/// candidate, `1` = at least `k` of the H probes hit. With the
/// indicators co-located (one [`BloomFilter::load`] group), interior `k`
/// is a single dynamic threshold sense per stripe.
///
/// # Errors
///
/// Propagates device failures ([`FcError`]).
pub fn contains_batch(
    dev: &mut FlashCosmosDevice,
    hash_ids: &[usize],
    k: usize,
) -> Result<(BitVec, ReadStats), FcError> {
    dev.fc_read(&contains_batch_expr(hash_ids, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_ssd::SsdConfig;

    fn loaded_filter(
        hashes: usize,
        inserted: &[u64],
    ) -> (FlashCosmosDevice, BloomFilter, Vec<usize>, Vec<u64>) {
        let candidates: Vec<u64> = (0..300).map(|j| 1000 + j * 7).collect();
        let mut filter = BloomFilter::new(hashes, 1024, &candidates);
        for &key in inserted {
            filter.insert(key);
        }
        let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
        let ids = filter.load(&mut dev, "bloom").unwrap();
        (dev, filter, ids, candidates)
    }

    #[test]
    fn indicator_vectors_mirror_the_partitions() {
        let candidates: Vec<u64> = (0..64).collect();
        let mut f = BloomFilter::new(4, 256, &candidates);
        for k in [3, 17, 40, 63, 900] {
            f.insert(k);
        }
        for (j, &c) in candidates.iter().enumerate() {
            for i in 0..f.hashes() {
                assert_eq!(
                    f.indicators()[i].get(j),
                    f.partitions[i].get(f.bucket(i, c)),
                    "indicator ({i}, {j}) out of sync"
                );
            }
        }
    }

    #[test]
    fn batched_membership_is_one_threshold_sense() {
        // Insert a subset of the candidates plus outside noise.
        let inserted: Vec<u64> = (0..40u64).map(|j| 1000 + j * 21).collect();
        let noise: Vec<u64> = (0..200u64).map(|j| 5_000_000 + j).collect();
        let all: Vec<u64> = inserted.iter().chain(&noise).copied().collect();
        let (mut dev, filter, ids, candidates) = loaded_filter(3, &all);
        let k = filter.hashes(); // exact Bloom semantics
        let (members, stats) = contains_batch(&mut dev, &ids, k).unwrap();
        // Bit-exact against host-side probing: inserted candidates all
        // pass (no false negatives), misses only on hash collisions.
        let mut false_positives = 0;
        for (j, &c) in candidates.iter().enumerate() {
            assert_eq!(members.get(j), filter.contains(c), "candidate {c}");
            if members.get(j) && !inserted.contains(&c) {
                false_positives += 1;
            }
        }
        assert!(inserted.iter().all(|&c| filter.contains(c)), "every inserted candidate must pass");
        assert!(false_positives < 30, "collision rate looks broken: {false_positives}");
        // k = H over a co-located group: one intra-block AND per stripe
        // (2 stripes of 300 candidate bits here).
        assert_eq!(stats.senses, 2);
    }

    #[test]
    fn relaxed_threshold_survives_a_lost_partition() {
        let inserted: Vec<u64> = (0..50u64).map(|j| 1000 + j * 14).collect();
        let (mut dev, filter, ids, candidates) = loaded_filter(4, &inserted);
        // Partition 2's indicator goes stale (all-zero, as after losing
        // the partition array): exact membership now under-reports...
        dev.fc_overwrite("bloom-h2", &BitVec::zeros(candidates.len())).unwrap();
        let (exact, _) = contains_batch(&mut dev, &ids, 4).unwrap();
        let dropped =
            candidates.iter().enumerate().filter(|&(j, &c)| filter.contains(c) && !exact.get(j));
        assert!(dropped.count() > 0, "a zeroed partition must break exact membership");
        // ...while the H−1 threshold keeps every true member, in one
        // dynamic sense per stripe.
        let (relaxed, stats) = contains_batch(&mut dev, &ids, 3).unwrap();
        for (j, &c) in candidates.iter().enumerate() {
            if filter.contains(c) {
                assert!(relaxed.get(j), "member candidate {c} must survive the lost partition");
            }
        }
        assert_eq!(stats.senses, 2, "threshold-(H−1) is one sense per stripe");
    }

    #[test]
    fn no_false_negatives_ever() {
        let inserted: Vec<u64> = (0..100u64).map(|j| 1000 + j * 7).collect(); // all candidates 0..100
        let (mut dev, _filter, ids, _) = loaded_filter(2, &inserted);
        let (members, _) = contains_batch(&mut dev, &ids, 2).unwrap();
        for j in 0..100 {
            assert!(members.get(j as usize), "inserted candidate index {j} reported absent");
        }
    }
}
