//! Skewed re-query workloads: the traffic shapes that exercise the
//! maintenance layer (`flash_cosmos::maintenance`).
//!
//! A production bulk-bitwise front end does not draw its predicates
//! uniformly — a few hot filter combinations dominate (bitmap-index
//! dashboards refresh the same month windows, HDC classifiers re-match
//! the same prototypes). Two generators model that:
//!
//! * [`ZipfSampler`] — a Zipf(θ) rank sampler (inverse-CDF over the
//!   finite harmonic distribution), used to draw *which* query a client
//!   submits next.
//! * [`CoQueryWorkload`] — a device pre-loaded with operands scattered
//!   into singleton placement groups (the adversarial cold layout: every
//!   operand in its own block, spread across dies) plus a population of
//!   co-query sets ranked by popularity. Warm traffic drawn from it
//!   keeps hitting the same hot sets, which is exactly the signal the
//!   affinity tracker and the cost-aware cache policy consume.

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use flash_cosmos::batch::QueryBatch;
use flash_cosmos::device::{FcError, FlashCosmosDevice, StoreHints};
use flash_cosmos::expr::Expr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Finite Zipf(θ) sampler over ranks `0..n`: rank `r` is drawn with
/// probability proportional to `1 / (r + 1)^θ`. θ = 0 is uniform; the
/// classic web-traffic skew sits near θ ≈ 1.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the inverse-CDF table for `n` ranks at skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "skew must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Ranks in the distribution.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A device whose operands were written *scattered* (one singleton
/// placement group each) plus a popularity-ranked population of AND
/// co-query sets over them.
pub struct CoQueryWorkload {
    /// The pre-loaded device.
    pub dev: FlashCosmosDevice,
    /// Ground-truth operand data, by operand id.
    pub data: Vec<BitVec>,
    /// The query population: operand-id sets, most popular first.
    pub sets: Vec<Vec<usize>>,
    zipf: ZipfSampler,
}

impl CoQueryWorkload {
    /// Builds the scattered layout: `operands` page-sized vectors, each
    /// in its own placement group (own block, die-spread), and `sets`
    /// co-query sets of `set_size` distinct operands ranked by Zipf
    /// popularity at skew `theta`.
    ///
    /// # Errors
    ///
    /// Propagates device write failures.
    ///
    /// # Panics
    ///
    /// Panics when `set_size` exceeds `operands` or either is zero.
    pub fn scattered(
        config: SsdConfig,
        operands: usize,
        sets: usize,
        set_size: usize,
        theta: f64,
        seed: u64,
    ) -> Result<Self, FcError> {
        assert!(set_size > 0 && set_size <= operands, "set size must fit the operand pool");
        let mut rng = StdRng::seed_from_u64(seed);
        let dev = FlashCosmosDevice::new(config);
        let bits = dev.config().page_bits();
        let mut data = Vec::with_capacity(operands);
        for i in 0..operands {
            let v = BitVec::random(bits, &mut rng);
            dev.fc_write(&format!("op{i}"), &v, StoreHints::and_group(&format!("solo{i}")))?;
            data.push(v);
        }
        let set_list = (0..sets)
            .map(|_| {
                // Distinct members via partial Fisher–Yates over the pool.
                let mut pool: Vec<usize> = (0..operands).collect();
                (0..set_size)
                    .map(|k| {
                        let j = rng.gen_range(k..pool.len());
                        pool.swap(k, j);
                        pool[k]
                    })
                    .collect()
            })
            .collect();
        Ok(Self { dev, data, sets: set_list, zipf: ZipfSampler::new(sets, theta) })
    }

    /// The AND expression of one query set.
    pub fn expr(&self, rank: usize) -> Expr {
        Expr::and_vars(self.sets[rank].iter().copied())
    }

    /// Ground truth for one query set.
    pub fn expected(&self, rank: usize) -> BitVec {
        let ids = &self.sets[rank];
        ids[1..].iter().fold(self.data[ids[0]].clone(), |acc, &i| acc.and(&self.data[i]))
    }

    /// Draws a batch of `len` queries with Zipf-distributed popularity
    /// (hot sets recur), returning the batch and the drawn ranks.
    pub fn zipf_batch<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> (QueryBatch, Vec<usize>) {
        let ranks: Vec<usize> = (0..len).map(|_| self.zipf.sample(rng)).collect();
        (ranks.iter().map(|&r| self.expr(r)).collect(), ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_skews_towards_low_ranks_and_uniform_is_flat() {
        let mut rng = StdRng::seed_from_u64(1);
        let skewed = ZipfSampler::new(16, 1.1);
        let mut counts = vec![0usize; 16];
        for _ in 0..4000 {
            counts[skewed.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] * 3, "rank 0 dominates: {counts:?}");
        assert!(counts.iter().sum::<usize>() == 4000);
        let uniform = ZipfSampler::new(4, 0.0);
        let mut counts = vec![0usize; 4];
        for _ in 0..4000 {
            counts[uniform.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..=1300).contains(&c), "θ=0 is uniform: {counts:?}");
        }
    }

    #[test]
    fn scattered_workload_answers_exactly_and_costs_one_sense_per_operand() {
        let w = CoQueryWorkload::scattered(SsdConfig::tiny_test(), 8, 4, 3, 1.0, 7).unwrap();
        for rank in 0..w.sets.len() {
            let expr = w.expr(rank);
            let (result, stats) = w.dev.fc_read(&expr).unwrap();
            assert_eq!(result, w.expected(rank), "set {rank}");
            assert_eq!(
                stats.senses,
                w.sets[rank].len() as u64,
                "scattered singleton groups cost one sense per operand"
            );
        }
    }

    #[test]
    fn zipf_batches_draw_from_the_population() {
        let w = CoQueryWorkload::scattered(SsdConfig::tiny_test(), 6, 3, 2, 1.0, 9).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (batch, ranks) = w.zipf_batch(10, &mut rng);
        assert_eq!(batch.len(), 10);
        assert!(ranks.iter().all(|&r| r < 3));
    }
}
