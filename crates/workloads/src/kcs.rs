//! K-Clique Star Listing (KCS, §7): for each k-clique, AND the adjacency
//! vectors of its k member vertices (finding vertices connected to *all*
//! of them), then OR the clique-membership vector to form the star.
//!
//! Flash-Cosmos executes the AND and the OR in a *single* MWS operation
//! when the clique vector lives in a different block than the adjacency
//! vectors (§7) — the functional instance stores them accordingly.

use fc_bits::BitVec;
use flash_cosmos::device::StoreHints;
use flash_cosmos::expr::Expr;
use flash_cosmos::WorkloadShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{FunctionalInstance, Query, StoredOperand};

/// Vertices in the paper's input graph (§7: 32 million).
pub const PAPER_VERTICES: u64 = 32_000_000;

/// Cliques in the paper's input (§7: 1,024).
pub const PAPER_CLIQUES: u64 = 1_024;

/// The full Fig. 17c / 18c sweep as one batch of shapes, for
/// [`flash_cosmos::Engines::evaluate_batch`].
pub fn paper_shapes(ks: &[u32]) -> Vec<WorkloadShape> {
    ks.iter().map(|&k| paper_shape(k)).collect()
}

/// Paper-scale cost shape for Fig. 17c / 18c (`k` swept 8..64).
pub fn paper_shape(k: u32) -> WorkloadShape {
    WorkloadShape {
        name: format!("KCS k={k}"),
        queries: PAPER_CLIQUES,
        and_operands: k as u64,
        or_operands: 1,
        vector_bytes: PAPER_VERTICES / 8,
        result_popcount: false,
    }
}

/// A miniature functional KCS instance: a random graph over `vertices`
/// vertices with `cliques` planted k-cliques. Each clique's query ANDs
/// its members' adjacency vectors and ORs the clique vector.
///
/// # Panics
///
/// Panics if `k × cliques > vertices` (planted cliques are disjoint).
pub fn mini(vertices: usize, k: usize, cliques: usize, seed: u64) -> FunctionalInstance {
    assert!(k * cliques <= vertices, "planted cliques must fit the vertex set");
    let mut rng = StdRng::seed_from_u64(seed);
    // Random background graph.
    let mut adjacency: Vec<BitVec> = (0..vertices).map(|_| BitVec::zeros(vertices)).collect();
    for a in 0..vertices {
        for b in (a + 1)..vertices {
            if rng.gen_bool(0.35) {
                adjacency[a].set(b, true);
                adjacency[b].set(a, true);
            }
        }
    }
    // Plant disjoint k-cliques.
    let mut clique_members: Vec<Vec<usize>> = Vec::new();
    for c in 0..cliques {
        let members: Vec<usize> = (0..k).map(|i| c * k + i).collect();
        for &a in &members {
            for &b in &members {
                if a != b {
                    adjacency[a].set(b, true);
                }
            }
        }
        clique_members.push(members);
    }

    // Operands: one adjacency vector per clique member (grouped per
    // clique for intra-block MWS), plus one clique vector per clique in
    // its own block *on the same plane* (colocation domain) so AND ∥ OR
    // fuse into one inter-block MWS. Distinct cliques get distinct
    // domains, so the device spreads them across dies and a batch of
    // clique queries senses in parallel.
    let mut operands = Vec::new();
    let mut queries = Vec::new();
    for (c, members) in clique_members.iter().enumerate() {
        let base = operands.len();
        let domain = format!("kcs-{c}");
        for (j, &m) in members.iter().enumerate() {
            operands.push(StoredOperand {
                name: format!("clique{c}-adj{j}"),
                data: adjacency[m].clone(),
                hints: StoreHints::and_group(&format!("kcs-adj-{c}")).colocated(&domain),
            });
        }
        let clique_vec = BitVec::from_fn(vertices, |v| members.contains(&v));
        operands.push(StoredOperand {
            name: format!("clique{c}-members"),
            data: clique_vec.clone(),
            hints: StoreHints::and_group(&format!("kcs-clique-{c}")).colocated(&domain),
        });

        // Ground truth: vertices adjacent to every member, plus members.
        let common = members
            .iter()
            .skip(1)
            .fold(adjacency[members[0]].clone(), |acc, &m| acc.and(&adjacency[m]));
        let expected = common.or(&clique_vec);
        queries.push(Query {
            label: format!("star of clique {c} (k={k})"),
            expr: Expr::and_vars(base..base + k) | Expr::var(base + k),
            expected,
        });
    }
    FunctionalInstance { name: "KCS".to_string(), operands, queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_sizes() {
        let s = paper_shape(32);
        assert_eq!(s.queries, 1024);
        assert_eq!(s.and_operands, 32);
        assert_eq!(s.or_operands, 1);
        // Result vectors total 4 GB (§8.1: "the total size of the result
        // bit vectors ... 4 GB in KCS").
        assert_eq!(s.total_result_bytes(), 4_096_000_000);
    }

    #[test]
    fn planted_cliques_are_fully_connected() {
        let inst = mini(40, 4, 2, 7);
        // First clique: vertices 0..4; its adjacency operands must show
        // mutual edges.
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(inst.operands[i].data.get(j), "edge {i}-{j} missing");
                }
            }
        }
    }

    #[test]
    fn star_contains_the_clique_itself() {
        let inst = mini(40, 4, 2, 8);
        for (c, q) in inst.queries.iter().enumerate() {
            for member in c * 4..(c + 1) * 4 {
                assert!(q.expected.get(member), "clique {c} member {member} not in star");
            }
        }
    }

    #[test]
    fn expected_matches_manual_and_or() {
        let inst = mini(32, 3, 2, 9);
        let q = &inst.queries[0];
        let manual = inst.operands[0]
            .data
            .and(&inst.operands[1].data)
            .and(&inst.operands[2].data)
            .or(&inst.operands[3].data);
        assert_eq!(q.expected, manual);
    }

    #[test]
    #[should_panic(expected = "planted cliques must fit")]
    fn oversized_plant_panics() {
        mini(10, 4, 3, 1);
    }
}
