//! # fc-workloads — the paper's evaluation workloads (§7)
//!
//! Three real-world applications that rely on bulk bitwise operations:
//!
//! * [`bmi`] — **Bitmap Index**: "How many users were active every day
//!   for the past m months?" — AND over 30–1095 daily login vectors of
//!   800 M users, then a bit count.
//! * [`ims`] — **Image Segmentation**: YUV color recognition — AND of
//!   three binary masks over `I × 800 × 600 × 4` bits.
//! * [`kcs`] — **K-Clique Star Listing**: per clique, AND of the k member
//!   vertices' adjacency vectors, OR-ed with the clique vector (the
//!   set-centric formulation of SISA).
//!
//! A fourth domain from the paper's introduction — [`hdc`],
//! hyper-dimensional computing — exercises the derived-operation layer
//! (bind/bundle/similarity over binary hypervectors).
//!
//! [`skew`] adds the *traffic shape* the maintenance layer cares about:
//! Zipf-skewed re-query streams over scattered co-query sets, used to
//! demonstrate hot-operand regrouping convergence and cost-aware cache
//! admission (`flash_cosmos::maintenance`).
//!
//! Each workload exposes two granularities:
//!
//! * a **functional instance** (`*::mini`) with real bit vectors small
//!   enough to push through the functional chip model end-to-end — used
//!   by integration tests and examples to validate *correctness*; and
//! * a **paper-scale [`WorkloadShape`]** (`*::paper_shape`) that drives
//!   the analytic platform engines for Figs. 17/18 — the data sets there
//!   (up to ~110 GB) exist only as cost-model parameters, exactly as in
//!   the paper's simulator-based evaluation.

pub mod bloom;
pub mod bmi;
pub mod hdc;
pub mod ims;
pub mod kcs;
pub mod skew;

use fc_bits::BitVec;
use flash_cosmos::batch::{BatchStats, QueryBatch};
use flash_cosmos::device::{FcError, FlashCosmosDevice, StoreHints};
use flash_cosmos::expr::Expr;
pub use flash_cosmos::WorkloadShape;

/// One operand vector to store before running a workload's queries.
#[derive(Debug, Clone)]
pub struct StoredOperand {
    /// Unique operand name.
    pub name: String,
    /// The data.
    pub data: BitVec,
    /// Placement/inversion hints (§6.3 application choices).
    pub hints: StoreHints,
}

/// A query: an expression over operand *names* plus its expected result.
#[derive(Debug, Clone)]
pub struct Query {
    /// Human-readable label.
    pub label: String,
    /// Expression over indices into the workload's operand list.
    pub expr: Expr,
    /// Ground-truth result (computed host-side by the generator).
    pub expected: BitVec,
}

/// A functional workload instance: operands + queries with ground truth.
#[derive(Debug, Clone)]
pub struct FunctionalInstance {
    /// Workload name.
    pub name: String,
    /// Operands, in id order (operand `i` in query expressions refers to
    /// `operands[i]`).
    pub operands: Vec<StoredOperand>,
    /// Queries to execute.
    pub queries: Vec<Query>,
}

impl FunctionalInstance {
    /// Writes every operand into a device. Operand ids as used by the
    /// queries' expressions match the order in `self.operands`.
    ///
    /// # Errors
    ///
    /// Propagates device write errors.
    pub fn load(&self, dev: &mut FlashCosmosDevice) -> Result<(), FcError> {
        for (i, op) in self.operands.iter().enumerate() {
            let handle = dev.fc_write(&op.name, &op.data, op.hints.clone())?;
            assert_eq!(handle.id, i, "operand ids must match list order");
        }
        Ok(())
    }

    /// All queries as one [`QueryBatch`], in query order.
    pub fn batch(&self) -> QueryBatch {
        self.queries.iter().map(|q| q.expr.clone()).collect()
    }

    /// Runs every query through the batched Flash-Cosmos path and checks
    /// each result against ground truth, returning total sensing
    /// operations.
    ///
    /// # Errors
    ///
    /// Propagates device errors; result mismatches panic (they indicate a
    /// simulator bug, not an operational failure).
    pub fn run_flash_cosmos(&self, dev: &mut FlashCosmosDevice) -> Result<u64, FcError> {
        Ok(self.run_batch(dev)?.senses)
    }

    /// Submits the whole workload as one jointly planned batch, checks
    /// every result against ground truth, and returns the full
    /// [`BatchStats`] (senses saved versus serial, per-query cost split).
    ///
    /// # Errors
    ///
    /// Propagates device errors; result mismatches panic.
    pub fn run_batch(&self, dev: &mut FlashCosmosDevice) -> Result<BatchStats, FcError> {
        let out = dev.submit(&self.batch())?;
        for (q, result) in self.queries.iter().zip(&out.results) {
            assert_eq!(result, &q.expected, "{}: {}", self.name, q.label);
        }
        Ok(out.stats)
    }

    /// Same but through the ParaBit baseline.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn run_parabit(&self, dev: &mut FlashCosmosDevice) -> Result<u64, FcError> {
        let mut senses = 0;
        for q in &self.queries {
            let (result, stats) = dev.parabit_read(&q.expr)?;
            assert_eq!(result, q.expected, "{}: {}", self.name, q.label);
            senses += stats.senses;
        }
        Ok(senses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_ssd::SsdConfig;

    #[test]
    fn all_mini_instances_validate_on_both_techniques() {
        for instance in [
            bmi::mini(6, 64, 0xB1),
            ims::mini(2, 16, 12, 0x15),
            kcs::mini(48, 3, 2, 0xC1),
            hdc::mini(2, 3, 256, 0x4D),
        ] {
            let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
            instance.load(&mut dev).unwrap();
            let fc = instance.run_flash_cosmos(&mut dev).unwrap();
            let pb = instance.run_parabit(&mut dev).unwrap();
            assert!(fc <= pb, "{}: FC senses {fc} must not exceed PB {pb}", instance.name);
        }
    }

    #[test]
    fn batch_stats_cover_every_query() {
        let instance = kcs::mini(48, 3, 2, 0xC2);
        let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
        instance.load(&mut dev).unwrap();
        let stats = instance.run_batch(&mut dev).unwrap();
        assert_eq!(stats.queries, instance.queries.len());
        assert_eq!(stats.per_query.len(), instance.queries.len());
        assert!(stats.senses <= stats.serial_senses);
        let attributed: f64 = stats.per_query.iter().map(|q| q.senses).sum();
        assert!((attributed - stats.senses as f64).abs() < 1e-9);
    }
}
