//! `fc-xtask` — repo-level checks that `cargo test` cannot express.
//!
//! The one subcommand today is `lint-mutators`: the core device funnels
//! every structural mutation through a small set of chokepoints —
//! `ssd_mut()` (bumps the epoch and clears the result cache),
//! `chip_mut()` (raw NAND access for fault injection),
//! `ftl_mut_for_audit()` (the `fc_audit` mutation harness's deliberate
//! bypass), and since the concurrency refactor the lock-guarded trio:
//! `chip_exec()` (per-die chip mutex for execute-path programming),
//! `core_write()` (device write lock for maintenance/scrub/durable
//! writes), and `core_mut()` (exclusive `&mut` access for config and
//! fault injection), plus the channel-sharding pair: `adopt_for_audit()`
//! (raw FTL-shard insertion for the FC108 harness) and `shard_mut()`
//! (the cluster router's raw shard escape hatch). A reference to any of
//! them outside the allowlisted
//! modules is how the invariants the analyzer checks (see `LINTS.md`)
//! silently rot, so CI fails on one.
//!
//! Usage: `cargo run -p fc-xtask -- lint-mutators [repo-root]`

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Tokens whose presence marks raw-mutation access. The first three are
/// the original `&mut self` funnels; the last three are the lock-guarded
/// chokepoints the concurrent serving core routes mutation through.
const MUTATOR_TOKENS: [&str; 8] = [
    "ssd_mut(",
    "chip_mut(",
    "ftl_mut_for_audit(",
    "chip_exec(",
    "core_write(",
    "core_mut(",
    "adopt_for_audit(",
    "shard_mut(",
];

/// Files allowed to reference mutator tokens, relative to the repo
/// root. Definition sites, the chokepoint-discipline call sites behind
/// them, the audit mutation harness, and the test/bench suites (which
/// exercise fault injection and seeded corruption by design).
const ALLOWLIST: [&str; 14] = [
    "crates/ssd/src/device.rs",   // defines ssd-level accessors + chip_exec()
    "crates/nand/src/chip.rs",    // defines raw chip access
    "crates/core/src/device.rs",  // defines core_write()/core_mut() + epoch discipline
    "crates/core/src/batch.rs",   // the execution engine drives chips via chip_exec()
    "crates/core/src/session.rs", // drain phase B takes the write lock
    "crates/core/src/maintenance.rs", // wrapper maintenance rides core_write()
    "crates/core/src/recovery.rs", // fault injection rides chip_mut()/core_mut()
    "crates/core/src/reliability.rs", // deterministic fault plans
    "crates/core/src/audit.rs",   // the mutation harness bypass
    "crates/core/src/cluster.rs", // defines shard_mut(), the router escape hatch
    "crates/ssd/src/ftl.rs",      // defines adopt_for_audit()
    "crates/xtask/src/main.rs",   // this linter names the tokens
    "crates/bench/benches/micro.rs", // benches time raw-path costs
    "tests/",                     // suites corrupt state on purpose
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint-mutators") => {
            let root = args.next().map(PathBuf::from).unwrap_or_else(default_root);
            lint_mutators(&root)
        }
        Some(other) => {
            eprintln!("fc-xtask: unknown subcommand {other:?} (try `lint-mutators`)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p fc-xtask -- lint-mutators [repo-root]");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: this crate sits at `<root>/crates/xtask`.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).expect("crates/xtask has a grandparent").to_path_buf()
}

fn lint_mutators(root: &Path) -> ExitCode {
    let mut files = Vec::new();
    for top in ["crates", "tests", "benches", "src"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    if files.is_empty() {
        eprintln!("fc-xtask: no .rs files under {}", root.display());
        return ExitCode::FAILURE;
    }
    let mut violations = Vec::new();
    for file in &files {
        let rel = file.strip_prefix(root).unwrap_or(file);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if ALLOWLIST.iter().any(|a| rel_str == *a || rel_str.starts_with(a)) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(file) else { continue };
        for (ln, line) in text.lines().enumerate() {
            for token in MUTATOR_TOKENS {
                if line.contains(token) {
                    violations.push(format!("{rel_str}:{}: references `{token}…)`", ln + 1));
                }
            }
        }
    }
    if violations.is_empty() {
        println!("fc-xtask lint-mutators: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "fc-xtask lint-mutators: raw mutation access outside the allowlisted modules \
             (route through the device chokepoints, or extend the allowlist with a review):"
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != ".git" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
