//! `cargo bench --bench figures` regenerates every table and figure of
//! the paper's evaluation (the per-figure binaries in `src/bin/` print
//! them individually).

fn main() {
    // Keep the zero-error campaign CI-sized here; the sec52_validation
    // binary accepts a larger budget for paper-scale runs.
    for table in fc_bench::all_figures(2_000_000) {
        table.print();
    }
    for table in fc_bench::all_ablations() {
        table.print();
    }
}
