//! Criterion microbenchmarks for the core data structures and the
//! simulator hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fc_bits::BitVec;
use fc_nand::chip::NandChip;
use fc_nand::command::{Command, IscmFlags, MwsTarget};
use fc_nand::config::ChipConfig;
use fc_nand::geometry::{BlockAddr, ChipGeometry};
use fc_nand::randomizer::Randomizer;
use fc_ssd::ecc::{EccConfig, PageCodec};
use fc_ssd::pipeline::{HostWork, PipelineModel};
use fc_ssd::SsdConfig;
use flash_cosmos::expr::Expr;
use flash_cosmos::planner::{self, PlacementMap, PlannerCaps};
use flash_cosmos::timeline::{Approach, Fig7Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bitvec_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec");
    let bits = 16 * 1024 * 8; // one 16 KiB page
    group.throughput(Throughput::Bytes((bits / 8) as u64));
    let mut rng = StdRng::seed_from_u64(1);
    let a = BitVec::random(bits, &mut rng);
    let b = BitVec::random(bits, &mut rng);
    group.bench_function("and_16kib_page", |bench| {
        let mut acc = a.clone();
        bench.iter(|| acc.and_assign(std::hint::black_box(&b)));
    });
    group.bench_function("popcount_16kib_page", |bench| {
        bench.iter(|| std::hint::black_box(&a).count_ones());
    });
    group.bench_function("hamming_16kib_page", |bench| {
        bench.iter(|| std::hint::black_box(&a).hamming_distance(&b));
    });
    let operands: Vec<BitVec> = (0..8).map(|_| BitVec::random(bits, &mut rng)).collect();
    let refs: Vec<&BitVec> = operands.iter().collect();
    group.bench_function("and_fold8_16kib_page", |bench| {
        let mut acc = BitVec::zeros(bits);
        bench.iter(|| {
            acc.fill(true);
            acc.and_fold_assign(std::hint::black_box(&refs));
        });
    });
    let vth: Vec<f64> = (0..bits).map(|i| if i % 2 == 0 { -2.0 } else { 3.3 }).collect();
    group.bench_function("threshold_pack_16kib_page", |bench| {
        let mut acc = BitVec::ones(bits);
        bench.iter(|| acc.and_le_threshold(std::hint::black_box(&vth), 0.65));
    });
    group.finish();
}

fn chip_geometry() -> ChipGeometry {
    ChipGeometry {
        planes: 1,
        blocks_per_plane: 8,
        wls_per_block: 48,
        page_bytes: 16 * 1024,
        subblocks_per_physical_block: 4,
    }
}

fn mws_sensing(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip");
    group.sample_size(20);
    let mut cfg = ChipConfig::tiny_test();
    cfg.geometry = chip_geometry();
    let mut chip = NandChip::new(cfg);
    let blk = BlockAddr::new(0, 0);
    let mut rng = StdRng::seed_from_u64(2);
    for wl in 0..48 {
        let page = BitVec::random(16 * 1024 * 8, &mut rng);
        chip.execute(Command::esp_program(blk.wordline(wl), page)).unwrap();
    }
    for n in [2u32, 16, 48] {
        group.bench_with_input(BenchmarkId::new("mws_48layer_16kib", n), &n, |bench, &n| {
            let wls: Vec<u32> = (0..n).collect();
            bench.iter(|| {
                chip.execute(Command::Mws {
                    flags: IscmFlags::single_read(),
                    targets: vec![MwsTarget::new(blk, &wls)],
                })
                .unwrap()
            });
        });
    }
    group.finish();
}

fn physics_geometry() -> ChipGeometry {
    ChipGeometry {
        planes: 1,
        blocks_per_plane: 2,
        wls_per_block: 8,
        page_bytes: 4 * 1024,
        subblocks_per_physical_block: 4,
    }
}

/// Physics-mode MWS: every sense stress-shifts per-cell V_TH populations
/// and evaluates string conduction against V_REF — the heaviest sense
/// path in the simulator.
fn mws_physics_sensing(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip");
    group.sample_size(10);
    let mut cfg = ChipConfig::tiny_physics();
    cfg.geometry = physics_geometry();
    let mut chip = NandChip::new(cfg);
    let blk = BlockAddr::new(0, 0);
    let mut rng = StdRng::seed_from_u64(5);
    let bits = chip.config().geometry.page_bits();
    for wl in 0..8 {
        let page = BitVec::random(bits, &mut rng);
        chip.execute(Command::esp_program(blk.wordline(wl), page)).unwrap();
    }
    for n in [2u32, 8] {
        group.bench_with_input(BenchmarkId::new("mws_physics_4kib", n), &n, |bench, &n| {
            let wls: Vec<u32> = (0..n).collect();
            bench.iter(|| {
                chip.execute(Command::Mws {
                    flags: IscmFlags::single_read(),
                    targets: vec![MwsTarget::new(blk, &wls)],
                })
                .unwrap()
            });
        });
    }
    group.finish();
}

/// Functional-mode MWS with RBER error injection on an aged block — the
/// SSD-scale steady-state sense path.
fn mws_error_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip");
    group.sample_size(20);
    let mut cfg = ChipConfig::tiny_noisy();
    cfg.geometry = chip_geometry();
    let mut chip = NandChip::new(cfg);
    let blk = BlockAddr::new(0, 0);
    let mut rng = StdRng::seed_from_u64(6);
    let bits = chip.config().geometry.page_bits();
    for wl in 0..48 {
        let page = BitVec::random(bits, &mut rng);
        // Plain SLC (not ESP) so the RBER model actually injects errors.
        chip.execute(Command::Program {
            addr: blk.wordline(wl),
            data: page,
            scheme: fc_nand::ispp::ProgramScheme::Slc,
            randomize: false,
        })
        .unwrap();
    }
    chip.cycle_block(blk, 10_000).unwrap();
    chip.set_retention_months(12.0);
    for n in [2u32, 16, 48] {
        group.bench_with_input(BenchmarkId::new("mws_inject_16kib", n), &n, |bench, &n| {
            let wls: Vec<u32> = (0..n).collect();
            bench.iter(|| {
                chip.execute(Command::Mws {
                    flags: IscmFlags::single_read(),
                    targets: vec![MwsTarget::new(blk, &wls)],
                })
                .unwrap()
            });
        });
    }
    group.finish();
}

fn planner_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    for operands in [8usize, 48, 192] {
        let mut map = PlacementMap::new();
        for i in 0..operands {
            map.insert(
                i,
                fc_nand::geometry::WlAddr::new(0, (i / 48) as u32, (i % 48) as u32),
                false,
            );
        }
        let expr = Expr::and_vars(0..operands);
        let nnf = expr.to_nnf();
        group.bench_with_input(BenchmarkId::new("compile_and", operands), &operands, |bench, _| {
            bench.iter(|| planner::compile(&nnf, &map, PlannerCaps::default()).unwrap());
        });
    }
    group.finish();
}

fn ecc_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch");
    group.sample_size(20);
    let codec = PageCodec::new(EccConfig::production());
    let k = codec.code().k();
    let mut rng = StdRng::seed_from_u64(3);
    let payload = BitVec::random(k, &mut rng);
    let cw = codec.code().encode(&payload);
    let mut corrupted = cw.clone();
    corrupted.flip_random_bits(8, &mut rng);
    group.bench_function("encode_1023_1015ish", |bench| {
        bench.iter(|| codec.code().encode(std::hint::black_box(&payload)));
    });
    group.bench_function("decode_8_errors", |bench| {
        bench.iter(|| codec.code().decode(std::hint::black_box(&corrupted)));
    });
    group.finish();
}

fn randomizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomizer");
    let bits = 16 * 1024 * 8;
    group.throughput(Throughput::Bytes((bits / 8) as u64));
    let r = Randomizer::new(7);
    let mut rng = StdRng::seed_from_u64(4);
    let page = BitVec::random(bits, &mut rng);
    let addr = fc_nand::geometry::WlAddr::new(0, 0, 0);
    group.bench_function("scramble_16kib_page", |bench| {
        bench.iter(|| r.randomize(addr, std::hint::black_box(&page)));
    });
    group.finish();
}

/// The batched query-session path versus serial `fc_read` calls: 16
/// queries over one placement group, half of them duplicates/reorderings
/// (the repeat-heavy mix a production bitmap-index front end sees).
fn batch_submit(c: &mut Criterion) {
    use flash_cosmos::batch::QueryBatch;
    use flash_cosmos::device::{FlashCosmosDevice, StoreHints};

    let mut group = c.benchmark_group("batch");
    group.sample_size(20);
    let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let mut rng = StdRng::seed_from_u64(5);
    let bits = 4096;
    let ids: Vec<usize> = (0..8)
        .map(|i| {
            let v = BitVec::random(bits, &mut rng);
            dev.fc_write(&format!("op{i}"), &v, StoreHints::and_group("g")).unwrap().id
        })
        .collect();
    let queries: Vec<Expr> = (0..16)
        .map(|q| match q % 4 {
            0 => Expr::and_vars(ids.iter().copied()),
            1 => Expr::and_vars(ids.iter().rev().copied()), // reordered dup
            2 => Expr::and_vars(ids[..4].iter().copied()),
            _ => Expr::and_vars(ids[q % 5..].iter().copied()),
        })
        .collect();
    let batch: QueryBatch = queries.iter().cloned().collect();
    let mut outs: Vec<BitVec> = (0..batch.len()).map(|_| BitVec::zeros(0)).collect();
    group.bench_function("submit_16q_8op_4kib", |bench| {
        bench.iter(|| dev.submit_into(std::hint::black_box(&batch), &mut outs).unwrap());
    });
    group.bench_function("serial_16q_8op_4kib", |bench| {
        bench.iter(|| {
            let mut senses = 0;
            for q in &queries {
                senses += dev.fc_read(std::hint::black_box(q)).unwrap().1.senses;
            }
            senses
        });
    });
    group.finish();
}

/// Die-aware placement: 16 single-stripe queries over 16 independent
/// placement groups spread across the tiny geometry's 4 dies, versus the
/// same workload pinned to die 0 (the pre-fix serialization). Wall time
/// measures the simulator; the modeled device win is the critical path,
/// printed once per run (busiest die vs all-on-die-0).
fn batch_submit_multi_die(c: &mut Criterion) {
    use flash_cosmos::batch::QueryBatch;
    use flash_cosmos::device::{FlashCosmosDevice, StoreHints};

    fn setup(die: Option<usize>) -> (FlashCosmosDevice, QueryBatch) {
        let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
        let mut rng = StdRng::seed_from_u64(7);
        let bits = dev.config().page_bits();
        let mut batch = QueryBatch::new();
        for g in 0..16 {
            let mut hints = StoreHints::and_group(&format!("g{g}"));
            if let Some(d) = die {
                hints = hints.with_die(d);
            }
            let ids: Vec<usize> = (0..2)
                .map(|i| {
                    let v = BitVec::random(bits, &mut rng);
                    dev.fc_write(&format!("g{g}-{i}"), &v, hints.clone()).unwrap().id
                })
                .collect();
            batch.push(Expr::and_vars(ids));
        }
        (dev, batch)
    }

    let mut group = c.benchmark_group("batch");
    group.sample_size(20);
    let (spread_dev, spread_batch) = setup(None);
    let (pinned_dev, pinned_batch) = setup(Some(0));
    let spread = spread_dev.submit(&spread_batch).unwrap().stats;
    let pinned = pinned_dev.submit(&pinned_batch).unwrap().stats;
    println!(
        "batch/submit_16q_multi_die: critical path {:.1} µs on {} dies \
         (die-0-serialized baseline {:.1} µs, {:.1}x)",
        spread.critical_path_us,
        spread.dies_used,
        pinned.critical_path_us,
        pinned.critical_path_us / spread.critical_path_us
    );
    let mut outs: Vec<BitVec> = (0..spread_batch.len()).map(|_| BitVec::zeros(0)).collect();
    group.bench_function("submit_16q_multi_die", |bench| {
        bench.iter(|| {
            spread_dev.submit_into(std::hint::black_box(&spread_batch), &mut outs).unwrap()
        });
    });
    group.bench_function("submit_16q_die0_pinned", |bench| {
        bench.iter(|| {
            pinned_dev.submit_into(std::hint::black_box(&pinned_batch), &mut outs).unwrap()
        });
    });
    group.finish();
}

/// Cross-batch result caching: the same 16-query batch re-submitted with
/// a warm cache versus a cold-cache device. The modeled win (senses) is
/// printed once; the measured win is the wall-time ratio of the two
/// benches (the acceptance bar is ≥5× on both).
fn batch_resubmit_cached(c: &mut Criterion) {
    use flash_cosmos::batch::QueryBatch;
    use flash_cosmos::device::{FlashCosmosDevice, StoreHints};

    fn setup(cached: bool) -> (FlashCosmosDevice, QueryBatch) {
        let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
        if !cached {
            dev.set_result_cache_capacity(0);
        }
        let mut rng = StdRng::seed_from_u64(5);
        let ids: Vec<usize> = (0..8)
            .map(|i| {
                let v = BitVec::random(4096, &mut rng);
                dev.fc_write(&format!("op{i}"), &v, StoreHints::and_group("g")).unwrap().id
            })
            .collect();
        let batch: QueryBatch = (0..16)
            .map(|q| match q % 4 {
                0 => Expr::and_vars(ids.iter().copied()),
                1 => Expr::and_vars(ids.iter().rev().copied()),
                2 => Expr::and_vars(ids[..4].iter().copied()),
                _ => Expr::and_vars(ids[q % 5..].iter().copied()),
            })
            .collect();
        (dev, batch)
    }

    let mut group = c.benchmark_group("batch");
    group.sample_size(20);
    let (warm_dev, batch) = setup(true);
    let (cold_dev, _) = setup(false);
    let cold = cold_dev.submit(&batch).unwrap();
    warm_dev.submit(&batch).unwrap(); // populate the cache
    let warm = warm_dev.submit(&batch).unwrap();
    assert_eq!(warm.results, cold.results, "cache replay must be bit-exact vs cold-cache device");
    println!(
        "batch/resubmit_cached: warm {} senses vs cold {} senses \
         ({} units replayed from cache)",
        warm.stats.senses, cold.stats.senses, warm.stats.cached_units
    );
    let mut outs: Vec<BitVec> = (0..batch.len()).map(|_| BitVec::zeros(0)).collect();
    group.bench_function("resubmit_cached", |bench| {
        bench.iter(|| warm_dev.submit_into(std::hint::black_box(&batch), &mut outs).unwrap());
    });
    group.bench_function("resubmit_cold", |bench| {
        bench.iter(|| cold_dev.submit_into(std::hint::black_box(&batch), &mut outs).unwrap());
    });
    group.finish();
}

/// Async ticketed submission: two batches pinned to disjoint die pairs,
/// queued and drained in one overlapped pass, versus two serial submits.
/// The modeled overlap win is printed once; the benches time the
/// simulator's drain loop.
fn batch_async_overlap(c: &mut Criterion) {
    use flash_cosmos::batch::QueryBatch;
    use flash_cosmos::device::{FlashCosmosDevice, StoreHints};

    fn setup() -> (FlashCosmosDevice, Vec<QueryBatch>) {
        let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
        dev.set_result_cache_capacity(0); // measure execution, not replay
        let mut rng = StdRng::seed_from_u64(9);
        let bits = dev.config().page_bits();
        let mut batches = Vec::new();
        for (b, dies) in [(0usize, [0usize, 1]), (1, [2, 3])] {
            let mut batch = QueryBatch::new();
            for g in 0..4 {
                let hints = StoreHints::and_group(&format!("t{b}g{g}")).with_die(dies[g % 2]);
                let ids: Vec<usize> = (0..2)
                    .map(|i| {
                        let v = BitVec::random(bits, &mut rng);
                        dev.fc_write(&format!("t{b}g{g}-{i}"), &v, hints.clone()).unwrap().id
                    })
                    .collect();
                batch.push(Expr::and_vars(ids));
            }
            batches.push(batch);
        }
        (dev, batches)
    }

    let mut group = c.benchmark_group("batch");
    group.sample_size(20);
    let (dev, batches) = setup();
    let t0 = dev.submit_async(&batches[0]).unwrap();
    let t1 = dev.submit_async(&batches[1]).unwrap();
    let drained = dev.drain().unwrap();
    t0.wait(&dev).unwrap();
    t1.wait(&dev).unwrap();
    println!(
        "batch/submit_async_overlap: combined critical path {:.1} µs vs {:.1} µs \
         for two serial submits ({:.1} µs saved, {} dies)",
        drained.combined_critical_path_us,
        drained.serial_critical_path_us,
        drained.overlap_saved_us(),
        drained.dies_used
    );
    group.bench_function("submit_async_overlap", |bench| {
        bench.iter(|| {
            let t0 = dev.submit_async(std::hint::black_box(&batches[0])).unwrap();
            let t1 = dev.submit_async(std::hint::black_box(&batches[1])).unwrap();
            dev.drain().unwrap();
            (dev.wait(t0).unwrap(), dev.wait(t1).unwrap())
        });
    });
    group.bench_function("submit_serial_pair", |bench| {
        bench.iter(|| {
            (
                dev.submit(std::hint::black_box(&batches[0])).unwrap(),
                dev.submit(std::hint::black_box(&batches[1])).unwrap(),
            )
        });
    });
    group.finish();
}

/// The word-parallel BCH encoder against the retained bit-serial oracle,
/// on the production (1023, 943) t=8 code.
fn ecc_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc");
    group.sample_size(20);
    let codec = PageCodec::new(EccConfig::production());
    let code = codec.code();
    let mut rng = StdRng::seed_from_u64(11);
    let payload = BitVec::random(code.k(), &mut rng);
    let mut cw = BitVec::zeros(code.n());
    group.throughput(Throughput::Bytes((code.k() / 8) as u64));
    group.bench_function("encode_wordwise_1023", |bench| {
        let mut reg: Vec<u64> = Vec::new();
        bench.iter(|| code.encode_into(std::hint::black_box(&payload), &mut cw, &mut reg));
    });
    group.bench_function("encode_bitserial_1023", |bench| {
        let mut reg: Vec<bool> = Vec::new();
        bench.iter(|| code.encode_into_serial(std::hint::black_box(&payload), &mut cw, &mut reg));
    });
    group.finish();
}

/// Maintenance convergence: a skewed co-query workload on the
/// adversarial scattered layout (every operand its own block, die
/// spread). The hot set is queried until the affinity tracker marks it,
/// maintenance regroups it inside a drain's slack budget, and the warm
/// query drops from a cross-plane merge tree to one intra-block MWS.
/// The modeled convergence (senses before/after, budget respected) is
/// printed once; the benches time the warm submit on each layout.
fn maintenance_regroup(c: &mut Criterion) {
    use fc_workloads::skew::CoQueryWorkload;
    use flash_cosmos::batch::QueryBatch;

    let mut group = c.benchmark_group("maintenance");
    group.sample_size(20);

    let setup = || {
        let w = CoQueryWorkload::scattered(SsdConfig::tiny_test(), 16, 8, 4, 1.1, 0xA11).unwrap();
        let mut batch = QueryBatch::new();
        batch.push(w.expr(0));
        let cold = w.dev.submit(&batch).unwrap();
        (w, batch, cold)
    };

    // Scattered device: maintenance never runs.
    let (scattered, batch, cold) = setup();
    // Converged device: heat → plan → drain (migrations fill the slack).
    let (converged, _, _) = setup();
    converged.dev.submit(&batch).unwrap();
    converged.dev.schedule_maintenance();
    converged.dev.submit_async(&batch).unwrap();
    let drained = converged.dev.drain().unwrap();
    let warm = converged.dev.submit(&batch).unwrap();
    assert_eq!(warm.results, cold.results, "regrouping must preserve results");
    assert!(
        warm.stats.senses * 2 <= cold.stats.senses,
        "acceptance: ≥2× sense drop ({} vs {})",
        warm.stats.senses,
        cold.stats.senses
    );
    assert!(drained.maintenance.critical_path_us <= drained.maintenance.budget_us);
    println!(
        "maintenance/regroup_converge: hot-set senses {} scattered -> {} regrouped \
         ({:.1}x); {} migrations filled {:.0} µs of idle-die slack \
         (critical path {:.0} µs within budget {:.0} µs)",
        cold.stats.senses,
        warm.stats.senses,
        cold.stats.senses as f64 / warm.stats.senses as f64,
        drained.maintenance.jobs_executed,
        drained.maintenance.fill_time_us,
        drained.maintenance.critical_path_us,
        drained.maintenance.budget_us,
    );
    let mut outs: Vec<BitVec> = (0..batch.len()).map(|_| BitVec::zeros(0)).collect();
    // Clear both caches each iteration is too heavy; instead disable
    // caching so the benches time the execution paths themselves.
    scattered.dev.set_result_cache_capacity(0);
    converged.dev.set_result_cache_capacity(0);
    group.bench_function("regroup_converge", |bench| {
        bench.iter(|| converged.dev.submit_into(std::hint::black_box(&batch), &mut outs).unwrap());
    });
    group.bench_function("regroup_scattered", |bench| {
        bench.iter(|| scattered.dev.submit_into(std::hint::black_box(&batch), &mut outs).unwrap());
    });
    group.finish();
}

/// Cache admission under Zipf-skewed resubmission at equal capacity:
/// cost-aware retention versus FIFO. The modeled hit rates are printed
/// once (the acceptance bar is cost-aware strictly higher); the benches
/// time the steady-state stream under each policy.
fn cache_policy_zipf(c: &mut Criterion) {
    use fc_workloads::skew::CoQueryWorkload;
    use flash_cosmos::{CostAwareAdmission, FifoAdmission};

    let mut group = c.benchmark_group("cache");
    group.sample_size(10);

    let run = |fifo: bool| {
        let w = CoQueryWorkload::scattered(SsdConfig::tiny_test(), 16, 32, 2, 1.1, 0x21F).unwrap();
        w.dev.set_result_cache_capacity(8);
        if fifo {
            w.dev.set_cache_admission(Box::new(FifoAdmission));
        } else {
            w.dev.set_cache_admission(Box::new(CostAwareAdmission));
        }
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let mut outs = vec![BitVec::zeros(0)];
        for _ in 0..400 {
            let (batch, _) = w.zipf_batch(1, &mut rng);
            w.dev.submit_into(&batch, &mut outs).unwrap();
        }
        let s = w.dev.session().cache_stats();
        (w, s.hits as f64 / (s.hits + s.misses) as f64)
    };
    let (fifo_w, fifo_rate) = run(true);
    let (cost_w, cost_rate) = run(false);
    assert!(cost_rate > fifo_rate, "cost-aware must win: {cost_rate:.3} vs {fifo_rate:.3}");
    println!(
        "cache/zipf_resubmit: hit rate {:.1}% cost-aware vs {:.1}% FIFO \
         (capacity 8, 32 query sets, θ=1.1)",
        cost_rate * 100.0,
        fifo_rate * 100.0
    );
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let mut outs = vec![BitVec::zeros(0)];
    group.bench_function("zipf_cost_aware", |bench| {
        bench.iter(|| {
            let (batch, _) = cost_w.zipf_batch(1, &mut rng);
            cost_w.dev.submit_into(std::hint::black_box(&batch), &mut outs).unwrap()
        });
    });
    group.bench_function("zipf_fifo", |bench| {
        bench.iter(|| {
            let (batch, _) = fifo_w.zipf_batch(1, &mut rng);
            fifo_w.dev.submit_into(std::hint::black_box(&batch), &mut outs).unwrap()
        });
    });
    group.finish();
}

/// The recovery tiers (see `flash_cosmos::recovery`): shifted-Vref
/// ladder reads at the paper's aged corner, a parity rebuild of a stuck
/// block under a 4 KiB operand, and a scrub pass in drain slack. The
/// rebuild and scrub benches rebuild the device per iteration (blocks
/// are never reused, so a fault cannot be injected twice into one
/// device) — their numbers include the setup and are comparative only.
fn recovery_tiers(c: &mut Criterion) {
    use criterion::BatchSize;
    use flash_cosmos::device::{FlashCosmosDevice, StoreHints};
    use flash_cosmos::FaultPlan;

    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);

    // Ladder reads: at 48 months retention on 15k-cycle blocks nearly
    // every nominal read escalates into the retry ladder, so this times
    // the full escalate-and-recover path. Results are deliberately
    // ignored: ladder-exhausted reads cost the same traversal.
    let mut dev = FlashCosmosDevice::new_physics(SsdConfig::tiny_test());
    dev.ssd_mut().set_ecc(EccConfig::durable());
    let mut rng = StdRng::seed_from_u64(0x4E7);
    let data = BitVec::random(2000, &mut rng);
    dev.store_durable("log", &data).unwrap();
    dev.inject_faults(&FaultPlan::new().retention(48.0).age("log", 15_000)).unwrap();
    let pages = data.len().div_ceil(dev.ssd_mut().logical_page_bits(true)) as u64;
    let mut lpn = 0u64;
    group.bench_function("read_retry_ladder", |bench| {
        bench.iter(|| {
            let r = dev.ssd_mut().read(std::hint::black_box(lpn)).ok();
            lpn = (lpn + 1) % pages;
            r
        });
    });

    // 4 KiB of operand data as 8 co-grouped operands (the AND-group
    // layout stacks one wordline per operand per block); the stuck block
    // silently corrupts one page of each, all rebuilt from parity.
    group.bench_function("parity_rebuild_4kib", |bench| {
        bench.iter_batched(
            || {
                let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
                dev.enable_parity();
                let mut rng = StdRng::seed_from_u64(0x9B);
                for i in 0..8 {
                    let data = BitVec::random(512 * 8, &mut rng);
                    dev.fc_write(&format!("op{i}"), &data, StoreHints::and_group("g")).unwrap();
                }
                dev
            },
            |dev| {
                let report = dev.inject_faults(&FaultPlan::new().stuck_block("op0", 0)).unwrap();
                assert_eq!(report.lost_pages, 0, "stuck block within parity budget");
                report.rebuilt_pages
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("scrub_pass_slack", |bench| {
        bench.iter_batched(
            || {
                let mut dev = FlashCosmosDevice::new_physics(SsdConfig::tiny_test());
                dev.ssd_mut().set_ecc(EccConfig::durable());
                let mut rng = StdRng::seed_from_u64(0x5C);
                let data = BitVec::random(1000, &mut rng);
                dev.store_durable("log", &data).unwrap();
                dev.inject_faults(&FaultPlan::new().retention(48.0).age("log", 15_000)).unwrap();
                dev
            },
            |dev| {
                // One drain schedules the aged candidates and refreshes
                // them within the idle-die slack budget.
                let drained = dev.drain().unwrap();
                drained.maintenance.pages_scrubbed
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

/// The word-parallel ISPP pulse kernel against its scalar oracle, on a
/// physics-mode 4 KiB page (half the cells programmed).
fn ispp_program(c: &mut Criterion) {
    use fc_nand::ispp::{self, IsppConfig};

    let mut group = c.benchmark_group("ispp");
    group.sample_size(10);
    let bits = 4 * 1024 * 8;
    let targets: Vec<bool> = (0..bits).map(|i| i % 2 == 0).collect();
    let page = BitVec::from_bools(&targets);
    group.bench_function("esp_4kib_wordwise", |bench| {
        let mut rng = StdRng::seed_from_u64(21);
        bench.iter(|| ispp::program_esp(std::hint::black_box(&targets), 2.0, &mut rng));
    });
    group.bench_function("esp_4kib_serial", |bench| {
        let mut rng = StdRng::seed_from_u64(21);
        bench.iter(|| ispp::program_esp_serial(std::hint::black_box(&targets), 2.0, &mut rng));
    });
    group.bench_function("esp_4kib_packed_page", |bench| {
        let mut rng = StdRng::seed_from_u64(21);
        bench.iter(|| {
            ispp::program_page(
                std::hint::black_box(&page),
                fc_nand::ispp::ProgramScheme::esp_default(),
                &mut rng,
            )
        });
    });
    group.bench_function("slc_4kib_wordwise", |bench| {
        let mut rng = StdRng::seed_from_u64(22);
        bench.iter(|| {
            ispp::program_slc_like(
                std::hint::black_box(&targets),
                IsppConfig::slc_default(),
                &mut rng,
            )
        });
    });
    group.bench_function("slc_4kib_serial", |bench| {
        let mut rng = StdRng::seed_from_u64(22);
        bench.iter(|| {
            ispp::program_slc_like_serial(
                std::hint::black_box(&targets),
                IsppConfig::slc_default(),
                &mut rng,
            )
        });
    });
    group.finish();
}

fn pipeline_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    let scenario = Fig7Scenario::default();
    group.bench_function("fig7_osp_64dies", |bench| {
        let model = PipelineModel::new(SsdConfig::fig7_example());
        let jobs = scenario.jobs(Approach::Osp).expect("default scenario has 3 operands");
        let mut scratch = fc_ssd::pipeline::PipelineScratch::new();
        bench.iter(|| {
            model.run_with_scratch(std::hint::black_box(&jobs), HostWork::default(), &mut scratch)
        });
    });
    group.finish();
}

/// Threshold-K sensing: one dynamic threshold sense per stripe versus
/// the OR-of-C(n,k)-ANDs expansion versus reading every operand back and
/// counting on the host. The modeled sense counts are printed once (the
/// acceptance bar: threshold strictly fewer senses than expansion); the
/// benches measure the simulator wall time of each strategy.
fn mlsense_threshold(c: &mut Criterion) {
    use flash_cosmos::device::{FlashCosmosDevice, StoreHints};

    // 9 co-located single-bit operands, majority threshold (k = 5).
    const N: usize = 9;
    const K: usize = 5;
    let config = SsdConfig { wls_per_block: 16, ..SsdConfig::tiny_test() };
    let bits = 4096;
    let dev = FlashCosmosDevice::new(config);
    dev.set_result_cache_capacity(0);
    let mut rng = StdRng::seed_from_u64(9);
    let ids: Vec<usize> = (0..N)
        .map(|i| {
            let v = BitVec::random(bits, &mut rng);
            dev.fc_write(&format!("op{i}"), &v, StoreHints::and_group("g")).unwrap().id
        })
        .collect();

    // All C(9,5) = 126 AND-combinations, OR'd: the fallback the planner
    // would use on a substrate without dynamic threshold sensing.
    let mut combos: Vec<Expr> = Vec::new();
    let mut pick = [0usize; K];
    fn rec(ids: &[usize], pick: &mut [usize; K], start: usize, depth: usize, out: &mut Vec<Expr>) {
        if depth == K {
            out.push(Expr::and_vars(pick.iter().map(|&i| ids[i])));
            return;
        }
        for i in start..ids.len() {
            pick[depth] = i;
            rec(ids, pick, i + 1, depth + 1, out);
        }
    }
    rec(&ids, &mut pick, 0, 0, &mut combos);
    let threshold = Expr::threshold_vars(K, ids.iter().copied());
    let expansion = Expr::or(combos);

    let direct = dev.fc_read(&threshold).unwrap().1;
    let expanded = dev.fc_read(&expansion).unwrap().1;
    let host: u64 = ids.iter().map(|&id| dev.fc_read(&Expr::var(id)).unwrap().1.senses).sum();
    println!(
        "mlsense/threshold9_k5: {} senses single-sense vs {} expanded vs {} host-popcount reads",
        direct.senses, expanded.senses, host
    );
    assert!(
        direct.senses < expanded.senses,
        "threshold-K must cost strictly fewer senses than its expansion"
    );

    let mut group = c.benchmark_group("mlsense");
    group.sample_size(10);
    group.bench_function("threshold9_k5_single_sense", |bench| {
        bench.iter(|| dev.fc_read(std::hint::black_box(&threshold)).unwrap().1.senses);
    });
    group.bench_function("threshold9_k5_or_expansion", |bench| {
        bench.iter(|| dev.fc_read(std::hint::black_box(&expansion)).unwrap().1.senses);
    });
    group.bench_function("threshold9_k5_host_popcount", |bench| {
        bench.iter(|| {
            let pages: Vec<BitVec> =
                ids.iter().map(|&id| dev.fc_read(&Expr::var(id)).unwrap().0).collect();
            let mut out = BitVec::zeros(bits);
            for b in 0..bits {
                let count = pages.iter().filter(|p| p.get(b)).count();
                out.set(b, count >= K);
            }
            out
        });
    });
    group.finish();
}

/// MLC versus SLC storage for the same 6 operands: MLC packs them into
/// half the wordlines (density) but answers queries through per-page
/// controller decode at 1–2 senses per logical page, while the SLC copy
/// keeps single-sense intra-block MWS (latency). The modeled trade is
/// printed once; the benches time an AND over all 6 on each encoding.
fn mlsense_density(c: &mut Criterion) {
    use flash_cosmos::device::{FlashCosmosDevice, StoreHints};

    const N: usize = 6;
    let bits = 4096;
    let mut rng = StdRng::seed_from_u64(11);
    let vectors: Vec<BitVec> = (0..N).map(|_| BitVec::random(bits, &mut rng)).collect();

    let slc = FlashCosmosDevice::new(SsdConfig::tiny_test());
    slc.set_result_cache_capacity(0);
    let slc_ids: Vec<usize> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| slc.fc_write(&format!("s{i}"), v, StoreHints::and_group("g")).unwrap().id)
        .collect();

    let mlc = FlashCosmosDevice::new(SsdConfig::tiny_test());
    mlc.set_result_cache_capacity(0);
    let mut mlc_ids: Vec<usize> = Vec::new();
    for pair in 0..N / 2 {
        let handles = mlc
            .fc_write_ml(
                &[&format!("m{pair}a"), &format!("m{pair}b")],
                &[&vectors[2 * pair], &vectors[2 * pair + 1]],
                StoreHints::and_group(&format!("p{pair}")),
            )
            .unwrap();
        mlc_ids.extend(handles.iter().map(|h| h.id));
    }

    let slc_query = Expr::and_vars(slc_ids.iter().copied());
    let mlc_query = Expr::and_vars(mlc_ids.iter().copied());
    let slc_stats = slc.fc_read(&slc_query).unwrap().1;
    let mlc_stats = mlc.fc_read(&mlc_query).unwrap().1;
    println!(
        "mlsense/density6: MLC packs {N} operands into {} wordlines per stripe (SLC: {N}) \
         at {} vs {} senses for the AND",
        N / 2,
        mlc_stats.senses,
        slc_stats.senses
    );

    let mut group = c.benchmark_group("mlsense");
    group.sample_size(10);
    group.bench_function("and6_slc", |bench| {
        bench.iter(|| slc.fc_read(std::hint::black_box(&slc_query)).unwrap().1.senses);
    });
    group.bench_function("and6_mlc_packed", |bench| {
        bench.iter(|| mlc.fc_read(std::hint::black_box(&mlc_query)).unwrap().1.senses);
    });
    group.finish();
}

/// ISSUE 8 acceptance: pass-1 plan linting stays under 5% of the batch
/// compile it guards. `audit/compile_16q` times a full 16-query compile
/// (result cache disabled so nothing short-circuits); `plan_lint_16q`
/// times the lint over the same precompiled plan. Benches build in
/// release, so the debug-only enforcement hooks are compiled out of the
/// compile path — the two numbers are independent. The measured ratio
/// is printed once alongside the benches.
fn audit_plan_lint(c: &mut Criterion) {
    use flash_cosmos::batch::QueryBatch;
    use flash_cosmos::device::{FlashCosmosDevice, StoreHints};

    let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    dev.set_result_cache_capacity(0);
    let mut rng = StdRng::seed_from_u64(8);
    let ids: Vec<usize> = (0..8)
        .map(|i| {
            let v = BitVec::random(4096, &mut rng);
            dev.fc_write(&format!("op{i}"), &v, StoreHints::and_group("g")).unwrap().id
        })
        .collect();
    let jds: Vec<usize> = (0..4)
        .map(|i| {
            let v = BitVec::random(4096, &mut rng);
            dev.fc_write(&format!("hp{i}"), &v, StoreHints::and_group("h")).unwrap().id
        })
        .collect();
    // A representative analytics batch: conjunctive and disjunctive
    // filters, negations, majority votes, nested or-of-ands, and
    // cross-group ANDs (which compile to spanning stripes + cross-die
    // merges) — the shapes the planner actually canonicalizes, dedups,
    // and lowers — rather than sixteen flat ANDs over one id-set.
    let batch: QueryBatch = (0..16)
        .map(|q| match q % 8 {
            0 => Expr::and_vars(ids.iter().copied()),
            1 => Expr::or_vars(ids.iter().rev().copied()),
            2 => Expr::threshold_vars(3, ids[..5].iter().copied()),
            3 => Expr::majority_vars(ids[..7].iter().copied()),
            4 => Expr::and_vars(ids[..3].iter().copied().chain(jds[..2].iter().copied())),
            5 => Expr::not(Expr::and_vars(ids[1..6].iter().copied())),
            6 => Expr::or(vec![
                Expr::and_vars(ids[..3].iter().copied()),
                Expr::and_vars(ids[3..6].iter().copied()),
                Expr::and(vec![Expr::var(ids[6]), Expr::not(Expr::var(ids[7]))]),
            ]),
            _ => Expr::and_vars(jds.iter().copied().chain(ids[q % 5..].iter().copied())),
        })
        .collect();
    let probe = dev.compile_probe(&batch).unwrap();
    assert!(dev.lint_probe(&probe).is_empty(), "the bench plan must be healthy");

    // Paired measurement, best of three passes after warmup: the ratio
    // is the acceptance criterion (< 5%), so keep it noise-resistant.
    const ITERS: u32 = 200;
    for _ in 0..20 {
        std::hint::black_box(dev.compile_probe(&batch).unwrap());
        std::hint::black_box(dev.lint_probe(&probe));
    }
    let mut compile_t = std::time::Duration::MAX;
    let mut lint_t = std::time::Duration::MAX;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(dev.compile_probe(&batch).unwrap());
        }
        compile_t = compile_t.min(start.elapsed());
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(dev.lint_probe(&probe));
        }
        lint_t = lint_t.min(start.elapsed());
    }
    println!(
        "audit/plan_lint_16q: lint {:?} vs compile {:?} per {ITERS} iters ({:.2}% overhead)",
        lint_t,
        compile_t,
        100.0 * lint_t.as_secs_f64() / compile_t.as_secs_f64().max(f64::EPSILON)
    );

    let mut group = c.benchmark_group("audit");
    group.sample_size(20);
    group.bench_function("compile_16q", |bench| {
        bench.iter(|| {
            std::hint::black_box(dev.compile_probe(std::hint::black_box(&batch))).unwrap()
        });
    });
    group.bench_function("plan_lint_16q", |bench| {
        bench.iter(|| std::hint::black_box(dev.lint_probe(std::hint::black_box(&probe))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bitvec_ops,
    mws_sensing,
    mws_physics_sensing,
    mws_error_injection,
    planner_compile,
    ecc_codec,
    ecc_encode,
    randomizer,
    batch_submit,
    batch_submit_multi_die,
    batch_resubmit_cached,
    batch_async_overlap,
    maintenance_regroup,
    cache_policy_zipf,
    recovery_tiers,
    ispp_program,
    pipeline_sim,
    mlsense_threshold,
    mlsense_density,
    audit_plan_lint
);
criterion_main!(benches);
