//! Sustained multi-threaded serving throughput: N worker threads drive
//! Zipf-skewed AND co-query traffic (`fc_workloads::skew`) at one shared
//! `Arc<FlashCosmosDevice>` through the bounded async session —
//! `submit_async` with drain-and-retry on `FcError::Overloaded`, then
//! `wait` — and the bench reports queries/second per worker count plus
//! the p50/p99 *modeled* batch latency (per-batch die-parallel critical
//! path, µs) of the exact same traffic.
//!
//! Each worker paces its loop by **emulated device dwell**: after a
//! batch's results return, the worker parks for the batch's modeled
//! critical path before issuing its next request, the way a host thread
//! on a real Flash-Cosmos SSD would spend that wall time waiting on the
//! device. Served wall time is therefore software serving cost plus
//! modeled device time — and scaling across workers measures exactly
//! what the concurrent serving core is for: overlapping many in-flight
//! batches' device dwell (and, on multi-core hosts, the software path
//! too). A serving layer that serialized submit→drain→wait behind one
//! exclusive lock would show no scaling here regardless of core count.
//!
//! The result cache is disabled and maintenance regrouping is
//! effectively off (`min_cofuse = u64::MAX`), so every batch pays the
//! full compile + simulated-sensing cost: the numbers measure the
//! serving core's scaling, not cache recurrence on the hot ranks.

use std::sync::Arc;
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fc_ssd::SsdConfig;
use fc_workloads::skew::CoQueryWorkload;
use flash_cosmos::{FcError, FlashCosmosDevice, QueryBatch};
use rand::rngs::StdRng;
use rand::SeedableRng;

const OPERANDS: usize = 32;
const SETS: usize = 64;
const SET_SIZE: usize = 4;
const THETA: f64 = 1.1;
/// Batches served per epoch, split evenly across the workers.
const BATCHES: usize = 32;
const QUERIES_PER_BATCH: usize = 4;
const SEED: u64 = 0x05EE_D707;

/// The multi-die serving config: the tiny functional geometry widened
/// to 8 channels × 4 dies (32 dies), so scattered operands land on
/// mostly disjoint dies and concurrent batches overlap in the device
/// model. Small pages keep the simulator's software cost per batch well
/// under the modeled device time the workers emulate.
fn serving_config() -> SsdConfig {
    let mut cfg = SsdConfig::tiny_test();
    cfg.channels = 8;
    cfg.dies_per_channel = 4;
    cfg
}

/// The pre-loaded shared device plus each worker's pre-drawn batch
/// sequence (drawn once, outside the timed region, so every epoch and
/// every worker count serves identical traffic per worker slot).
struct Serving {
    dev: Arc<FlashCosmosDevice>,
    per_worker: Vec<Vec<QueryBatch>>,
}

fn setup(workers: usize) -> Serving {
    let wl = CoQueryWorkload::scattered(serving_config(), OPERANDS, SETS, SET_SIZE, THETA, SEED)
        .expect("workload setup");
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xD1E5);
    let share = BATCHES / workers;
    let per_worker = (0..workers)
        .map(|_| (0..share).map(|_| wl.zipf_batch(QUERIES_PER_BATCH, &mut rng).0).collect())
        .collect();

    let mut dev = wl.dev;
    dev.set_result_cache_capacity(0);
    let mut mc = dev.maintenance_config();
    mc.min_cofuse = u64::MAX;
    dev.set_maintenance_config(mc);
    Serving { dev: Arc::new(dev), per_worker }
}

/// Serves one epoch: every worker submits its batch sequence in program
/// order (drain-and-retry on backpressure), waits each ticket, then
/// parks for the batch's modeled critical path (the emulated device
/// dwell). Returns all modeled latencies; wall time is what the harness
/// measures around the call.
fn serve_epoch(serving: &Serving) -> Vec<f64> {
    let lat = Mutex::new(Vec::with_capacity(BATCHES));
    thread::scope(|scope| {
        for batches in &serving.per_worker {
            let dev = Arc::clone(&serving.dev);
            let lat = &lat;
            scope.spawn(move || {
                let mut own = Vec::with_capacity(batches.len());
                for batch in batches {
                    let ticket = loop {
                        match dev.submit_async(batch) {
                            Ok(t) => break t,
                            Err(FcError::Overloaded { .. }) => {
                                dev.drain().expect("drain under load");
                            }
                            Err(e) => panic!("submit_async: {e}"),
                        }
                    };
                    let results = ticket.wait(&dev).expect("wait");
                    assert!(results.failures.is_empty());
                    let dwell_us = results.stats.critical_path_us;
                    own.push(dwell_us);
                    thread::sleep(Duration::from_micros(dwell_us as u64));
                }
                lat.lock().unwrap().extend(own);
            });
        }
    });
    lat.into_inner().unwrap()
}

/// Like [`serve_epoch`], but workers pace against a cumulative dwell
/// *deadline* (`epoch start + Σ dwell so far`) instead of sleeping each
/// batch's dwell separately. A bare `thread::sleep` overshoots by up to
/// a scheduler quantum; per-batch sleeps accumulate that overshoot (~8
/// batches × ~1 ms), which would swamp the smaller dwell points of the
/// channel sweep. Deadline pacing self-corrects — an overshoot eats
/// into the next batch's park — so epoch wall time tracks
/// `max(software cost, modeled dwell)` per worker, the way a host
/// keeping a real device busy would behave.
fn serve_epoch_paced(serving: &Serving) -> Vec<f64> {
    let lat = Mutex::new(Vec::with_capacity(BATCHES));
    thread::scope(|scope| {
        for batches in &serving.per_worker {
            let dev = Arc::clone(&serving.dev);
            let lat = &lat;
            scope.spawn(move || {
                let start = std::time::Instant::now();
                let mut own = Vec::with_capacity(batches.len());
                let mut dwell_total = 0.0f64;
                for batch in batches {
                    let ticket = loop {
                        match dev.submit_async(batch) {
                            Ok(t) => break t,
                            Err(FcError::Overloaded { .. }) => {
                                dev.drain().expect("drain under load");
                            }
                            Err(e) => panic!("submit_async: {e}"),
                        }
                    };
                    let results = ticket.wait(&dev).expect("wait");
                    assert!(results.failures.is_empty());
                    let dwell_us = results.stats.critical_path_us;
                    own.push(dwell_us);
                    dwell_total += dwell_us;
                    let deadline = start + Duration::from_micros(dwell_total as u64);
                    let now = std::time::Instant::now();
                    if deadline > now {
                        thread::sleep(deadline - now);
                    }
                }
                lat.lock().unwrap().extend(own);
            });
        }
    });
    lat.into_inner().unwrap()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// The channel-scaling sweep geometry: a fixed 8-die SSD whose dies are
/// shared by 1, 2, 4 or 8 channels. Die parallelism is constant across
/// the sweep — the only variable is how many channel buses the output
/// transfers share. The bus is deliberately slow (32 B page at 50 KB/s
/// → 640 µs per transfer vs 25 µs per MWS sense split 8 ways): on the
/// 32-byte test pages this reproduces the transfer pressure a real
/// 16 KiB-page geometry sees with 8-way die interleaving per channel,
/// and it keeps the modeled device dwell far above the simulator's
/// software cost per epoch — so wall-clock qps tracks the model and
/// adding channels is what buys throughput.
fn channel_config(channels: usize) -> SsdConfig {
    let mut cfg = SsdConfig::tiny_test();
    cfg.channels = channels;
    cfg.dies_per_channel = 8 / channels;
    cfg.channel_gbps = 0.000_05;
    cfg
}

/// Queries per channel-sweep batch: wide enough that one batch's leaf
/// transfers land on every channel of the widest geometry, so the
/// per-batch critical path — what the workers pace by — shrinks with
/// channel count the way the overlapped drain does.
const SCALING_QUERIES: usize = 16;

/// Sustained batch throughput vs channel count on transfer-heavy
/// traffic. Workers pace by modeled critical path exactly as
/// `zipf_serving` does, so wall-clock qps tracks the device model:
/// near-linear scaling while the channel bus is the bottleneck, then
/// saturation once the busiest die (or the controller merge) takes over
/// — the printed `DrainStats` attribution names the limiting resource
/// at each point of the sweep.
///
/// Batches sweep the co-query working set round-robin (rank `i`, then
/// `i+1`, …, wrapping) rather than drawing from the Zipf sampler: a
/// scaling sweep should measure how the bus divides *evenly spread*
/// transfer load, not how popularity skew concentrates it on hot
/// channels — `zipf_serving` is the skew benchmark.
fn channel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements((BATCHES * SCALING_QUERIES) as u64));
    const WORKERS: usize = 4;
    for channels in [1usize, 2, 4, 8] {
        let wl = CoQueryWorkload::scattered(
            channel_config(channels),
            OPERANDS,
            SETS,
            SET_SIZE,
            THETA,
            SEED,
        )
        .expect("workload setup");
        let share = BATCHES / WORKERS;
        let per_worker: Vec<Vec<QueryBatch>> = (0..WORKERS)
            .map(|w| {
                (0..share)
                    .map(|b| {
                        let base = (w * share + b) * SCALING_QUERIES;
                        (0..SCALING_QUERIES).map(|q| wl.expr((base + q) % SETS)).collect()
                    })
                    .collect()
            })
            .collect();
        let mut dev = wl.dev;
        dev.set_result_cache_capacity(0);
        let mut mc = dev.maintenance_config();
        mc.min_cofuse = u64::MAX;
        dev.set_maintenance_config(mc);
        let serving = Serving { dev: Arc::new(dev), per_worker };

        // Attribution pass: queue one worker's traffic and drain it in
        // one pass, so `DrainStats` reports where the modeled time went
        // (die vs channel vs merge) for this channel count.
        for batch in &serving.per_worker[0] {
            let ticket = loop {
                match serving.dev.submit_async(batch) {
                    Ok(t) => break t,
                    Err(FcError::Overloaded { .. }) => {
                        serving.dev.drain().expect("drain under load");
                    }
                    Err(e) => panic!("submit_async: {e}"),
                }
            };
            std::hint::black_box(ticket);
        }
        let drain = serving.dev.drain().expect("attribution drain");
        let (die_us, chan_us) = (drain.busiest_die_us, drain.busiest_channel_us);
        let (merge_us, crit_us) = (drain.merge_us, drain.combined_critical_path_us);
        let (bottleneck, merge_share) = (drain.bottleneck(), drain.merge_share());
        serving.dev.discard_retired();
        println!(
            "throughput/channel_scaling/{channels}: modeled critical path {crit_us:.1} µs \
             (busiest die {die_us:.1} µs, busiest channel {chan_us:.1} µs, merge {merge_us:.1} µs) \
             — bottleneck {bottleneck:?}, merge share {:.1}%",
            merge_share * 100.0,
        );

        group.bench_with_input(
            BenchmarkId::new("channel_scaling", channels),
            &channels,
            |bench, _| {
                bench.iter(|| std::hint::black_box(serve_epoch_paced(&serving)));
            },
        );
    }
    group.finish();
}

fn zipf_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements((BATCHES * QUERIES_PER_BATCH) as u64));
    for workers in [1usize, 2, 4, 8] {
        let serving = setup(workers);
        // Modeled latency distribution of this worker count's traffic
        // (identical every epoch — the schedule is pinned), printed once
        // so the ROADMAP baselines can quote p50/p99 next to the rate.
        let mut lats = serve_epoch(&serving);
        lats.sort_by(|a, b| a.total_cmp(b));
        println!(
            "throughput/zipf_serving/{workers}: modeled batch latency p50 {:.1} µs, p99 {:.1} µs \
             ({} batches × {} queries)",
            percentile(&lats, 0.50),
            percentile(&lats, 0.99),
            BATCHES,
            QUERIES_PER_BATCH,
        );
        group.bench_with_input(BenchmarkId::new("zipf_serving", workers), &workers, |bench, _| {
            bench.iter(|| std::hint::black_box(serve_epoch(&serving)));
        });
    }
    group.finish();
}

criterion_group!(benches, zipf_serving, channel_scaling);
criterion_main!(benches);
