//! Sustained multi-threaded serving throughput: N worker threads drive
//! Zipf-skewed AND co-query traffic (`fc_workloads::skew`) at one shared
//! `Arc<FlashCosmosDevice>` through the bounded async session —
//! `submit_async` with drain-and-retry on `FcError::Overloaded`, then
//! `wait` — and the bench reports queries/second per worker count plus
//! the p50/p99 *modeled* batch latency (per-batch die-parallel critical
//! path, µs) of the exact same traffic.
//!
//! Each worker paces its loop by **emulated device dwell**: after a
//! batch's results return, the worker parks for the batch's modeled
//! critical path before issuing its next request, the way a host thread
//! on a real Flash-Cosmos SSD would spend that wall time waiting on the
//! device. Served wall time is therefore software serving cost plus
//! modeled device time — and scaling across workers measures exactly
//! what the concurrent serving core is for: overlapping many in-flight
//! batches' device dwell (and, on multi-core hosts, the software path
//! too). A serving layer that serialized submit→drain→wait behind one
//! exclusive lock would show no scaling here regardless of core count.
//!
//! The result cache is disabled and maintenance regrouping is
//! effectively off (`min_cofuse = u64::MAX`), so every batch pays the
//! full compile + simulated-sensing cost: the numbers measure the
//! serving core's scaling, not cache recurrence on the hot ranks.

use std::sync::Arc;
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fc_ssd::SsdConfig;
use fc_workloads::skew::CoQueryWorkload;
use flash_cosmos::{FcError, FlashCosmosDevice, QueryBatch};
use rand::rngs::StdRng;
use rand::SeedableRng;

const OPERANDS: usize = 32;
const SETS: usize = 64;
const SET_SIZE: usize = 4;
const THETA: f64 = 1.1;
/// Batches served per epoch, split evenly across the workers.
const BATCHES: usize = 32;
const QUERIES_PER_BATCH: usize = 4;
const SEED: u64 = 0x05EE_D707;

/// The multi-die serving config: the tiny functional geometry widened
/// to 8 channels × 4 dies (32 dies), so scattered operands land on
/// mostly disjoint dies and concurrent batches overlap in the device
/// model. Small pages keep the simulator's software cost per batch well
/// under the modeled device time the workers emulate.
fn serving_config() -> SsdConfig {
    let mut cfg = SsdConfig::tiny_test();
    cfg.channels = 8;
    cfg.dies_per_channel = 4;
    cfg
}

/// The pre-loaded shared device plus each worker's pre-drawn batch
/// sequence (drawn once, outside the timed region, so every epoch and
/// every worker count serves identical traffic per worker slot).
struct Serving {
    dev: Arc<FlashCosmosDevice>,
    per_worker: Vec<Vec<QueryBatch>>,
}

fn setup(workers: usize) -> Serving {
    let wl = CoQueryWorkload::scattered(serving_config(), OPERANDS, SETS, SET_SIZE, THETA, SEED)
        .expect("workload setup");
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xD1E5);
    let share = BATCHES / workers;
    let per_worker = (0..workers)
        .map(|_| (0..share).map(|_| wl.zipf_batch(QUERIES_PER_BATCH, &mut rng).0).collect())
        .collect();

    let mut dev = wl.dev;
    dev.set_result_cache_capacity(0);
    let mut mc = dev.maintenance_config();
    mc.min_cofuse = u64::MAX;
    dev.set_maintenance_config(mc);
    Serving { dev: Arc::new(dev), per_worker }
}

/// Serves one epoch: every worker submits its batch sequence in program
/// order (drain-and-retry on backpressure), waits each ticket, then
/// parks for the batch's modeled critical path (the emulated device
/// dwell). Returns all modeled latencies; wall time is what the harness
/// measures around the call.
fn serve_epoch(serving: &Serving) -> Vec<f64> {
    let lat = Mutex::new(Vec::with_capacity(BATCHES));
    thread::scope(|scope| {
        for batches in &serving.per_worker {
            let dev = Arc::clone(&serving.dev);
            let lat = &lat;
            scope.spawn(move || {
                let mut own = Vec::with_capacity(batches.len());
                for batch in batches {
                    let ticket = loop {
                        match dev.submit_async(batch) {
                            Ok(t) => break t,
                            Err(FcError::Overloaded { .. }) => {
                                dev.drain().expect("drain under load");
                            }
                            Err(e) => panic!("submit_async: {e}"),
                        }
                    };
                    let results = ticket.wait(&dev).expect("wait");
                    assert!(results.failures.is_empty());
                    let dwell_us = results.stats.critical_path_us;
                    own.push(dwell_us);
                    thread::sleep(Duration::from_micros(dwell_us as u64));
                }
                lat.lock().unwrap().extend(own);
            });
        }
    });
    lat.into_inner().unwrap()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn zipf_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements((BATCHES * QUERIES_PER_BATCH) as u64));
    for workers in [1usize, 2, 4, 8] {
        let serving = setup(workers);
        // Modeled latency distribution of this worker count's traffic
        // (identical every epoch — the schedule is pinned), printed once
        // so the ROADMAP baselines can quote p50/p99 next to the rate.
        let mut lats = serve_epoch(&serving);
        lats.sort_by(|a, b| a.total_cmp(b));
        println!(
            "throughput/zipf_serving/{workers}: modeled batch latency p50 {:.1} µs, p99 {:.1} µs \
             ({} batches × {} queries)",
            percentile(&lats, 0.50),
            percentile(&lats, 0.99),
            BATCHES,
            QUERIES_PER_BATCH,
        );
        group.bench_with_input(BenchmarkId::new("zipf_serving", workers), &workers, |bench, _| {
            bench.iter(|| std::hint::black_box(serve_epoch(&serving)));
        });
    }
    group.finish();
}

criterion_group!(benches, zipf_serving);
criterion_main!(benches);
