//! One harness per table/figure of the paper's evaluation.

use fc_nand::ispp::ProgramScheme;
use fc_nand::rber::BlockGrade;
use fc_ssd::pipeline::sequential_write_gbps;
use fc_ssd::SsdConfig;
use fc_workloads::{bmi, ims, kcs};
use flash_cosmos::engines::{Engines, Platform};
use flash_cosmos::reliability;
use flash_cosmos::timeline::{render_channel_timeline, Approach, Fig7Scenario};

use crate::table::{fnum, Table};

/// Fig. 7: OSP/ISP/IFP execution timelines on the illustrative SSD.
pub fn fig07_timeline() -> Vec<Table> {
    let scenario = Fig7Scenario::default();
    let mut summary = Table::new(
        "Fig. 7 — channel timelines: bulk bitwise OR of three 1 MiB vectors",
        &["approach", "exec time (µs)", "paper (µs)", "bottleneck", "paper bottleneck"],
    );
    let paper = [
        (Approach::Osp, 471.0, "ext"),
        (Approach::Isp, 431.0, "dma"),
        (Approach::Ifp, 335.0, "sense"),
    ];
    let mut timelines = Vec::new();
    for (approach, paper_us, paper_bn) in paper {
        let report = scenario.run(approach).expect("the default Fig. 7 scenario has 3 operands");
        summary.row(vec![
            approach.to_string(),
            fnum(report.makespan_us),
            fnum(paper_us),
            report.bottleneck().to_string(),
            paper_bn.to_string(),
        ]);
        let mut t = Table::new(
            format!("Fig. 7 — {approach} timeline, channel 0 (S=sense D=dma E=ext)"),
            &["timeline"],
        );
        for line in render_channel_timeline(&report, &scenario.config, 76).lines() {
            t.row(vec![line.to_string()]);
        }
        timelines.push(t);
    }
    summary.note("OSP is external-I/O bound, ISP internal-I/O bound, IFP sensing bound (§3.1).");
    let mut out = vec![summary];
    out.append(&mut timelines);
    out
}

/// Fig. 8: RBER vs retention age × P/E cycles, SLC/MLC × randomization.
pub fn fig08_rber() -> Vec<Table> {
    let points = reliability::fig8_sweep();
    let mut out = Vec::new();
    for (scheme, label) in [(ProgramScheme::Slc, "SLC"), (ProgramScheme::Mlc, "MLC")] {
        for randomized in [true, false] {
            let rand_label = if randomized { "with" } else { "without" };
            let mut t = Table::new(
                format!("Fig. 8 — avg RBER, {label}-mode programming, {rand_label} randomization"),
                &["PEC \\ months", "0", "1", "2", "3", "6", "12"],
            );
            for pec in [0u32, 1_000, 2_000, 3_000, 6_000, 10_000] {
                let mut row = vec![format!("{}K", pec / 1000)];
                for months in [0.0, 1.0, 2.0, 3.0, 6.0, 12.0] {
                    let p = points
                        .iter()
                        .find(|p| {
                            p.scheme == scheme
                                && p.randomized == randomized
                                && p.pec == pec
                                && p.retention_months == months
                        })
                        .expect("full grid");
                    row.push(fnum(p.rber));
                }
                t.row(row);
            }
            t.note(match (label, randomized) {
                ("MLC", true) => "paper anchor: best case 8.6e-4 (§7)",
                ("MLC", false) => "paper anchor: worst case 1.6e-2; no-randomization ×4.92 (§3.2)",
                ("SLC", false) => "paper anchor: no-randomization penalty ×1.91 (§3.2)",
                _ => "paper: ~12 orders of magnitude above the 1e-15 UBER requirement (§3.2)",
            });
            out.push(t);
        }
    }
    out
}

/// Fig. 11: RBER vs `tESP` for worst/median/best blocks.
pub fn fig11_esp() -> Table {
    let points = reliability::fig11_sweep();
    let mut t = Table::new(
        "Fig. 11 — RBER vs tESP (10K PEC, 1-year retention, no randomization)",
        &["tESP/tPROG", "worst block", "median block", "best block"],
    );
    for step in 0..=10 {
        let ratio = 1.0 + 0.1 * step as f64;
        let get = |g: BlockGrade| {
            points
                .iter()
                .find(|p| (p.tesp_ratio - ratio).abs() < 1e-9 && p.grade == g)
                .map(|p| fnum(p.rber))
                .unwrap_or_default()
        };
        t.row(vec![
            format!("{ratio:.1}"),
            get(BlockGrade::Worst),
            get(BlockGrade::Median),
            get(BlockGrade::Best),
        ]);
    }
    t.note("paper: one decade of improvement at +60% latency; zero errors for tESP ≥ 1.9×tPROG");
    t.note("(statistical RBER < 2.07e-12 across 4.83e11 validated bits, §5.2)");
    t
}

/// Fig. 12: intra-block MWS latency vs number of read wordlines.
pub fn fig12_intra_mws() -> Table {
    let mut t = Table::new(
        "Fig. 12 — intra-block MWS latency (tMWS / tR) vs simultaneously read WLs",
        &["WLs", "tMWS/tR", "paper"],
    );
    for (n, f) in reliability::fig12_sweep() {
        let paper = match n {
            1 => "1.000",
            8 => "<1.01",
            48 => "1.033",
            _ => "-",
        };
        t.row(vec![n.to_string(), format!("{f:.4}"), paper.to_string()]);
    }
    t.note("§5.2: ≤8 WLs under +1%; all 48 WLs only +3.3% over tR");
    t
}

/// Fig. 13: inter-block MWS latency vs number of activated blocks.
pub fn fig13_inter_mws() -> Table {
    let mut t = Table::new(
        "Fig. 13 — inter-block MWS latency (tMWS / tR) vs activated blocks",
        &["blocks", "tMWS/tR", "paper"],
    );
    for (n, f) in reliability::fig13_sweep() {
        let paper = match n {
            1 => "1.000",
            32 => "1.363",
            _ => "-",
        };
        t.row(vec![n.to_string(), format!("{f:.4}"), paper.to_string()]);
    }
    t.note("§5.2: +36.3% at 32 blocks; WL precharge hidden by BL precharge until ~8 blocks");
    t
}

/// Fig. 14: normalized chip power vs activated blocks.
pub fn fig14_power() -> Table {
    let data = reliability::fig14_sweep();
    let mut t = Table::new(
        "Fig. 14 — normalized chip power of inter-block MWS (worst case: one WL per block)",
        &["blocks", "power (× read)", "paper"],
    );
    for (n, p) in &data.mws_power {
        let paper = match n {
            1 => "1.00",
            2 => "1.34 (+34%)",
            4 => "~1.8 (< erase)",
            5 => "> erase",
            _ => "-",
        };
        t.row(vec![n.to_string(), format!("{p:.2}"), paper.to_string()]);
    }
    t.note(format!(
        "references — read: {:.2}, program: {:.2}, erase: {:.2} (× read)",
        data.read, data.program, data.erase
    ));
    t.note("§5.2: 4-block MWS stays below erase power → Table 1 caps inter-block MWS at 4");
    t
}

/// Table 1: evaluated system configurations.
pub fn table1_config() -> Table {
    let c = SsdConfig::paper_table1();
    let host = fc_host::HostCpu::paper_host();
    let mut t = Table::new("Table 1 — evaluated system configurations", &["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("host CPU", format!("{} cores @ {} GHz (i7-11700K class)", host.cores, host.freq_ghz)),
        (
            "host DRAM",
            format!(
                "DDR4-3600, {} channels, {:.1} GB/s peak",
                host.dram.channels,
                host.dram.peak_gbps()
            ),
        ),
        ("SSD capacity (TLC)", format!("{:.1} TB", c.capacity_bytes(3) as f64 / 1e12)),
        ("external bandwidth", format!("{} GB/s (4-lane PCIe Gen4)", c.external_gbps)),
        ("channel I/O rate", format!("{} GB/s × {} channels", c.channel_gbps, c.channels)),
        (
            "NAND organization",
            format!(
                "{} channels × {} dies × {} planes",
                c.channels, c.dies_per_channel, c.planes_per_die
            ),
        ),
        (
            "blocks/plane",
            format!("{} sub-blocks ({} physical × 4)", c.blocks_per_plane, c.blocks_per_plane / 4),
        ),
        ("WLs/block", format!("{} per sub-block (192 = 4×48 per physical block)", c.wls_per_block)),
        ("page size", format!("{} KiB", c.page_bytes / 1024)),
        ("tR (SLC)", format!("{} µs", c.tr_us)),
        ("tMWS", format!("{} µs (max {} blocks)", c.tmws_us, c.max_inter_blocks)),
        (
            "tPROG SLC/MLC/TLC",
            format!("{}/{}/{} µs", c.tprog_slc_us, c.tprog_mlc_us, c.tprog_tlc_us),
        ),
        ("tESP", format!("{} µs", c.tesp_us)),
        ("ISP accelerator", "bitwise logic + 256 KiB SRAM, 93 pJ / 64 B op".to_string()),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t
}

/// The Fig. 17 / Fig. 18 parameter sweeps.
fn sweep_shapes() -> Vec<(String, Vec<fc_workloads::WorkloadShape>)> {
    vec![
        (
            "BMI (m = months)".to_string(),
            [1u32, 3, 6, 12, 24, 36].iter().map(|&m| bmi::paper_shape(m)).collect(),
        ),
        (
            "IMS (I = images ×1000)".to_string(),
            [10_000u64, 50_000, 100_000, 200_000].iter().map(|&i| ims::paper_shape(i)).collect(),
        ),
        (
            "KCS (k = clique size)".to_string(),
            [8u32, 16, 24, 32, 48, 64].iter().map(|&k| kcs::paper_shape(k)).collect(),
        ),
    ]
}

/// Fig. 17: speedup over OSP for ISP / PB / FC across all three
/// workloads' sweeps.
pub fn fig17_speedup() -> Vec<Table> {
    let engines = Engines::paper();
    let mut out = Vec::new();
    for (title, shapes) in sweep_shapes() {
        let mut t = Table::new(
            format!("Fig. 17 — speedup over OSP: {title}"),
            &["config", "ISP", "PB", "FC", "FC/PB"],
        );
        for shape in &shapes {
            let s = engines.speedups_over_osp(shape);
            let get = |p: Platform| s.iter().find(|(q, _)| *q == p).map(|(_, v)| *v).unwrap();
            let (isp, pb, fc) =
                (get(Platform::Isp), get(Platform::ParaBit), get(Platform::FlashCosmos));
            t.row(vec![shape.name.clone(), fnum(isp), fnum(pb), fnum(fc), fnum(fc / pb)]);
        }
        t.note(
            "paper averages across all workloads: FC = 32× over OSP, 25× over ISP, 3.5× over PB",
        );
        if title.starts_with("BMI") {
            t.note("paper BMI anchors: FC up to 198.4× over OSP; PB 14× over OSP");
        }
        if title.starts_with("IMS") {
            t.note("paper: FC ≈ PB on IMS (result transfer dominates); both ~3× over OSP");
        }
        if title.starts_with("KCS") {
            t.note("paper: PB stops scaling beyond k=16 (serial sensing); FC keeps scaling");
        }
        out.push(t);
    }
    out
}

/// Fig. 18: energy-efficiency gain over OSP (bits per energy, normalized)
/// for ISP / PB / FC.
pub fn fig18_energy() -> Vec<Table> {
    let engines = Engines::paper();
    let mut out = Vec::new();
    for (title, shapes) in sweep_shapes() {
        let mut t = Table::new(
            format!("Fig. 18 — energy efficiency vs OSP: {title}"),
            &["config", "ISP", "PB", "FC", "FC energy (J)"],
        );
        for shape in &shapes {
            let reports = engines.evaluate_all(shape);
            let osp = reports[0].energy_j();
            let get = |p: Platform| {
                reports.iter().find(|r| r.platform == p).map(|r| r.energy_j()).unwrap()
            };
            t.row(vec![
                shape.name.clone(),
                fnum(osp / get(Platform::Isp)),
                fnum(osp / get(Platform::ParaBit)),
                fnum(osp / get(Platform::FlashCosmos)),
                fnum(get(Platform::FlashCosmos)),
            ]);
        }
        t.note("paper averages: FC = 95× over OSP, 13.4× over ISP, 3.3× over PB");
        if title.starts_with("BMI") {
            t.note("paper BMI m=36 maxima: 1839×/222×/35.5× over OSP/ISP/PB");
        }
        out.push(t);
    }
    out
}

/// §8.3: sequential write bandwidth of ESP vs regular programming.
pub fn sec83_write_bw() -> Table {
    let c = SsdConfig::paper_table1();
    let slc = sequential_write_gbps(&c, c.tprog_slc_us, 1);
    let esp = sequential_write_gbps(&c, c.tesp_us, 1);
    let mlc = sequential_write_gbps(&c, c.tprog_mlc_us, 2);
    let tlc = sequential_write_gbps(&c, c.tprog_tlc_us, 3);
    let mut t = Table::new(
        "§8.3 — sequential write bandwidth by programming scheme",
        &["scheme", "model (GB/s)", "paper (GB/s)", "vs ESP (model)", "vs ESP (paper)"],
    );
    let paper = [("SLC", slc, 6.4), ("ESP", esp, 4.7), ("MLC", mlc, 3.87), ("TLC", tlc, 2.82)];
    for (name, model, paper_v) in paper {
        t.row(vec![
            name.to_string(),
            fnum(model),
            fnum(paper_v),
            format!("{:.1}%", esp / model * 100.0),
            format!("{:.1}%", 4.7 / paper_v * 100.0),
        ]);
    }
    t.note("paper: ESP = 73.4%/121.4%/166.7% of SLC/MLC/TLC write bandwidth (§8.3)");
    t.note("the model reproduces the ordering and the ESP-vs-MLC/TLC ratios; see EXPERIMENTS.md");
    t
}

/// §5.2: the zero-error validation campaign (scaled down).
pub fn sec52_validation(bits: u64) -> Table {
    let esp = reliability::validate_zero_errors(bits, 0x5_EC52);
    let slc = reliability::validate_slc_baseline(bits, 0x5_EC52);
    let mut t = Table::new(
        "§5.2 — MWS result validation at worst-case stress (10K PEC, 1-year retention)",
        &["campaign", "bits checked", "MWS ops", "bit errors", "RBER"],
    );
    t.row(vec![
        "ESP (Flash-Cosmos)".to_string(),
        esp.bits_checked.to_string(),
        esp.mws_ops.to_string(),
        esp.bit_errors.to_string(),
        fnum(esp.bit_errors as f64 / esp.bits_checked as f64),
    ]);
    t.row(vec![
        "regular SLC (ParaBit-style)".to_string(),
        slc.bits_checked.to_string(),
        slc.mws_ops.to_string(),
        slc.bit_errors.to_string(),
        fnum(slc.bit_errors as f64 / slc.bits_checked as f64),
    ]);
    t.note("paper: zero bit errors across >4.83e11 bits with ESP (§5.2); plain SLC cannot");
    t
}

/// Runs every harness and returns all tables (what `cargo bench --bench
/// figures` prints).
pub fn all_figures(validation_bits: u64) -> Vec<Table> {
    let mut out = Vec::new();
    out.push(table1_config());
    out.extend(fig07_timeline());
    out.extend(fig08_rber());
    out.push(fig11_esp());
    out.push(fig12_intra_mws());
    out.push(fig13_inter_mws());
    out.push(fig14_power());
    out.extend(fig17_speedup());
    out.extend(fig18_energy());
    out.push(sec83_write_bw());
    out.push(sec52_validation(validation_bits));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders_nonempty() {
        for t in all_figures(100_000) {
            let s = t.render();
            assert!(s.contains("=="), "missing title: {s}");
            assert!(s.lines().count() >= 3, "too short: {s}");
        }
    }

    #[test]
    fn fig17_fc_dominates_pb_on_bmi() {
        let tables = fig17_speedup();
        let bmi = &tables[0];
        // Last sweep point (m=36): FC/PB column > 3.
        let last = bmi.rows.last().unwrap();
        let ratio: f64 = last[4].parse().unwrap();
        assert!(ratio > 3.0, "FC/PB at m=36 is {ratio}");
    }

    #[test]
    fn sec52_esp_shows_zero_errors() {
        let t = sec52_validation(200_000);
        assert_eq!(t.rows[0][3], "0", "ESP row must have zero errors");
        let slc_errors: u64 = t.rows[1][3].parse().unwrap();
        assert!(slc_errors > 0, "SLC row must show errors");
    }
}
