//! Runs the §5.2 zero-error validation campaign. Pass a bit budget as the
//! first argument (default 10,000,000).
fn main() {
    let bits = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10_000_000u64);
    fc_bench::sec52_validation(bits).print();
}
