//! Prints Table 1 (evaluated system configurations).
fn main() {
    fc_bench::table1_config().print();
}
