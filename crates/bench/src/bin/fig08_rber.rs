//! Regenerates Fig. 8 (RBER vs retention × PEC, SLC/MLC × randomization).
fn main() {
    for t in fc_bench::fig08_rber() {
        t.print();
    }
}
