//! Regenerates the §8.3 sequential-write-bandwidth comparison.
fn main() {
    fc_bench::sec83_write_bw().print();
}
