//! Regenerates Fig. 12 (intra-block MWS latency).
fn main() {
    fc_bench::fig12_intra_mws().print();
}
