//! Regenerates Fig. 14 (MWS power).
fn main() {
    fc_bench::fig14_power().print();
}
