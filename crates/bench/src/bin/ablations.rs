//! Runs every ablation study (DESIGN.md §5).
fn main() {
    for t in fc_bench::all_ablations() {
        t.print();
    }
}
