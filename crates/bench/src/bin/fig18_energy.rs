//! Regenerates Fig. 18 (energy efficiency over OSP).
fn main() {
    for t in fc_bench::fig18_energy() {
        t.print();
    }
}
