//! Regenerates Fig. 7 (OSP/ISP/IFP channel timelines).
fn main() {
    for t in fc_bench::fig07_timeline() {
        t.print();
    }
}
