//! Regenerates Fig. 17 (speedups over OSP for BMI/IMS/KCS sweeps).
fn main() {
    for t in fc_bench::fig17_speedup() {
        t.print();
    }
}
