//! Regenerates Fig. 13 (inter-block MWS latency).
fn main() {
    fc_bench::fig13_inter_mws().print();
}
