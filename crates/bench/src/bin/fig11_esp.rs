//! Regenerates Fig. 11 (RBER vs tESP).
fn main() {
    fc_bench::fig11_esp().print();
}
