//! Minimal fixed-width table rendering for the figure harnesses.

use std::fmt::Write as _;

/// A printable table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the table as text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  {note}");
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float compactly (3 significant-ish digits).
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2000".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert!(s.contains("a note"));
        // Header row and separator present.
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        Table::new("t", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234.5), "1234");
        assert_eq!(fnum(42.42), "42.4");
        assert_eq!(fnum(1.5), "1.500");
        assert_eq!(fnum(0.0005), "5.00e-4");
    }
}
