//! # fc-bench — harnesses that regenerate every table and figure of the
//! Flash-Cosmos evaluation
//!
//! Each `fig*`/`table*`/`sec*` function reproduces one artifact of the
//! paper and returns a printable [`table::Table`] annotated with the
//! paper's reported values where the paper states them. The `figures`
//! bench target (`cargo bench --bench figures`) prints all of them; the
//! `src/bin/` binaries print them individually.

pub mod ablations;
pub mod figures;
pub mod table;

pub use ablations::all_ablations;
pub use figures::*;
pub use table::Table;
