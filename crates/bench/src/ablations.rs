//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! These go beyond the paper's figures: each isolates one mechanism and
//! measures it on the functional chip model (not just the analytic cost
//! model), so the numbers are execution-backed.

use fc_bits::BitVec;
use fc_nand::chip::NandChip;
use fc_nand::command::Command;
use fc_nand::config::ChipConfig;
use fc_nand::geometry::{ChipGeometry, WlAddr};
use fc_nand::ispp::ProgramScheme;
use fc_nand::rber::RberModel;
use fc_nand::stress::StressState;
use fc_ssd::pipeline::sequential_write_gbps;
use fc_ssd::SsdConfig;
use fc_workloads::bmi;
use flash_cosmos::planner::{self, PlacementMap, PlannerCaps};
use flash_cosmos::{Expr, Nnf};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{fnum, Table};

/// A 48-layer single-plane chip with small pages for fast execution-backed
/// ablations.
fn ablation_chip() -> NandChip {
    let mut cfg = ChipConfig::tiny_test();
    cfg.geometry = ChipGeometry {
        planes: 1,
        blocks_per_plane: 64,
        wls_per_block: 48,
        page_bytes: 128,
        subblocks_per_physical_block: 4,
    };
    NandChip::new(cfg)
}

/// MWS fan-in ablation: one-shot multi-operand sensing vs ParaBit's
/// serial sensing, executed on the chip model for 2..=48 operands.
pub fn ablation_mws_fanin() -> Table {
    let mut t = Table::new(
        "Ablation — MWS fan-in: one-shot sensing vs ParaBit serial sensing (executed)",
        &["operands", "FC senses", "FC µs", "PB senses", "PB µs", "PB/FC time"],
    );
    for n in [2u32, 4, 8, 16, 24, 32, 48] {
        let mut chip = ablation_chip();
        let page_bits = chip.config().geometry.page_bits();
        let blk = fc_nand::geometry::BlockAddr::new(0, 0);
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut placements = PlacementMap::new();
        let vectors: Vec<BitVec> = (0..n)
            .map(|wl| {
                let v = BitVec::random(page_bits, &mut rng);
                chip.execute(Command::esp_program(blk.wordline(wl), v.clone())).unwrap();
                placements.insert(wl as usize, WlAddr::new(0, 0, wl), false);
                v
            })
            .collect();
        let expr = Expr::and_vars(0..n as usize);
        let nnf = expr.to_nnf();
        let caps = PlannerCaps { max_inter_blocks: 4, wls_per_block: 48 };
        let expect = vectors.iter().skip(1).fold(vectors[0].clone(), |a, v| a.and(v));

        let run = |chip: &mut NandChip, program: &flash_cosmos::MwsProgram| -> (usize, f64) {
            let mut us = 0.0;
            let mut out = None;
            for cmd in &program.commands {
                let o = chip.execute(cmd.clone()).unwrap();
                us += o.latency_us;
                out = o.into_page().or(out);
            }
            assert_eq!(out.as_ref(), Some(&expect), "fan-in {n}");
            (program.sense_count(), us)
        };
        let fc_prog = planner::compile(&nnf, &placements, caps).unwrap();
        let (fc_senses, fc_us) = run(&mut chip, &fc_prog);
        let pb_prog = flash_cosmos::parabit::compile(&nnf, &placements).unwrap();
        let (pb_senses, pb_us) = run(&mut chip, &pb_prog);
        t.row(vec![
            n.to_string(),
            fc_senses.to_string(),
            fnum(fc_us),
            pb_senses.to_string(),
            fnum(pb_us),
            format!("{:.1}×", pb_us / fc_us),
        ]);
    }
    t.note("FC's single sense costs ≤ +3.3% over tR at 48 operands; PB pays one tR per operand");
    t
}

/// OR-strategy ablation (§6.1): inter-block MWS under different power
/// caps vs storing the operands inverted in one block.
pub fn ablation_or_strategy() -> Table {
    let mut t = Table::new(
        "Ablation — OR of N operands: inter-block MWS (by power cap) vs inverse storage",
        &["operands", "cap=2 senses", "cap=4 senses", "cap=8 senses", "inverted senses"],
    );
    for n in [2usize, 4, 8, 16, 32, 48] {
        // Scattered placement: one operand per block (inter-block OR).
        let mut scattered = PlacementMap::new();
        for i in 0..n {
            scattered.insert(i, WlAddr::new(0, i as u32, 0), false);
        }
        // Inverse placement: all operands inverted in one block.
        let mut inverted = PlacementMap::new();
        for i in 0..n {
            inverted.insert(i, WlAddr::new(0, 0, i as u32), true);
        }
        let nnf = Expr::or_vars(0..n).to_nnf();
        let senses = |caps: PlannerCaps, map: &PlacementMap| -> String {
            planner::compile(&nnf, map, caps)
                .map(|p| p.sense_count().to_string())
                .unwrap_or_else(|_| "-".to_string())
        };
        let caps = |c: usize| PlannerCaps { max_inter_blocks: c, wls_per_block: 48 };
        t.row(vec![
            n.to_string(),
            senses(caps(2), &scattered),
            senses(caps(4), &scattered),
            senses(caps(8), &scattered),
            senses(caps(4), &inverted),
        ]);
    }
    t.note("§6.1: 48-operand OR = 12 inter-block MWS at cap 4, but a single intra-block");
    t.note("inverse MWS when stored inverted — the motivation for inverse storage");
    t
}

/// ESP latency-budget ablation: program latency, write bandwidth, RBER
/// and BMI-query correctness probability across `tESP/tPROG`.
pub fn ablation_esp_ratio() -> Table {
    let cfg = SsdConfig::paper_table1();
    let model = RberModel::paper();
    let stress = StressState::worst_case();
    let mut t = Table::new(
        "Ablation — ESP latency budget: reliability vs write cost",
        &[
            "tESP/tPROG",
            "tPROG (µs)",
            "write BW (GB/s)",
            "RBER (worst case)",
            "P(correct BMI m=36)",
        ],
    );
    for step in 0..=5 {
        let ratio = 1.0 + 0.2 * step as f64;
        let scheme = ProgramScheme::Esp { ratio };
        let latency = scheme.program_latency_us();
        let bw = sequential_write_gbps(&cfg, latency, 1);
        let rber = model.rber(scheme, false, stress);
        let p_correct = bmi::correct_output_probability(bmi::PAPER_USERS, 1095, rber);
        t.row(vec![
            format!("{ratio:.1}"),
            fnum(latency),
            fnum(bw),
            fnum(rber),
            if p_correct < 1e-12 { "~0".to_string() } else { format!("{p_correct:.4}") },
        ]);
    }
    t.note("zero RBER at tESP ≥ 1.9×tPROG is what makes the m=36 query answerable at all");
    t
}

/// Quantifies the §3.2 incompatibility: how wrong is an in-flash AND over
/// ECC-encoded or randomized data (Monte-Carlo over pages).
pub fn ablation_ecc_randomization() -> Table {
    use fc_nand::randomizer::Randomizer;
    use fc_ssd::ecc::{EccConfig, PageCodec, PageDecode};

    let mut t = Table::new(
        "Ablation — in-flash AND over protected data (fraction of wrong result bits)",
        &["storage path", "trials", "uncorrectable", "avg wrong bits", "verdict"],
    );
    let trials = 50;
    let bits = 504; // 8 codewords of the (63,45) code → 360 payload bits
    let codec = PageCodec::new(EccConfig::small());
    let payload_bits = bits / codec.code().n() * codec.code().k();
    let mut rng = StdRng::seed_from_u64(0xAB1A);

    // ECC path.
    let mut uncorrectable = 0usize;
    let mut wrong_bits = 0usize;
    for _ in 0..trials {
        let a = BitVec::random(payload_bits, &mut rng);
        let b = BitVec::random(payload_bits, &mut rng);
        let combined = codec.encode_page(&a).and(&codec.encode_page(&b));
        match codec.decode_page(&combined, payload_bits) {
            PageDecode::Uncorrectable => uncorrectable += 1,
            PageDecode::Corrected { data, .. } => {
                wrong_bits += data.hamming_distance(&a.and(&b));
            }
        }
    }
    t.row(vec![
        "ECC-encoded (BCH 63,45)".to_string(),
        trials.to_string(),
        uncorrectable.to_string(),
        fnum(wrong_bits as f64 / trials as f64),
        "unusable".to_string(),
    ]);

    // Randomized path.
    let r = Randomizer::new(3);
    let mut wrong = 0usize;
    for i in 0..trials {
        let a = BitVec::random(1024, &mut rng);
        let b = BitVec::random(1024, &mut rng);
        let a0 = WlAddr::new(0, 0, (2 * i) as u32 % 48);
        let a1 = WlAddr::new(0, 1, (2 * i + 1) as u32 % 48);
        let in_flash = r.randomize(a0, &a).and(&r.randomize(a1, &b));
        wrong += r.derandomize(a0, &in_flash).hamming_distance(&a.and(&b));
    }
    t.row(vec![
        "randomized (LFSR scrambler)".to_string(),
        trials.to_string(),
        "-".to_string(),
        fnum(wrong as f64 / trials as f64),
        "unusable".to_string(),
    ]);

    // The Flash-Cosmos path for reference.
    t.row(vec![
        "raw + ESP (Flash-Cosmos)".to_string(),
        trials.to_string(),
        "0".to_string(),
        "0".to_string(),
        "exact".to_string(),
    ]);
    t.note("§3.2: neither ECC nor randomization commutes with in-flash AND/OR — ESP replaces both");
    t
}

/// ParaBit accumulation beyond 48 operands (§6.1): Flash-Cosmos chains
/// intra-block MWS results through the S-latch; cost grows with blocks,
/// not operands.
pub fn ablation_accumulation() -> Table {
    let mut t = Table::new(
        "Ablation — accumulating beyond one block (§6.1): senses vs operand count",
        &["operands", "blocks", "FC senses", "PB senses"],
    );
    for n in [48usize, 96, 192, 480, 1095] {
        let blocks = n.div_ceil(48);
        let mut map = PlacementMap::new();
        for i in 0..n {
            map.insert(i, WlAddr::new(0, (i / 48) as u32, (i % 48) as u32), false);
        }
        let nnf = Expr::and_vars(0..n).to_nnf();
        let caps = PlannerCaps { max_inter_blocks: 4, wls_per_block: 48 };
        let fc = planner::compile(&nnf, &map, caps).unwrap().sense_count();
        let pb = flash_cosmos::parabit::sense_cost(&nnf);
        t.row(vec![n.to_string(), blocks.to_string(), fc.to_string(), pb.to_string()]);
    }
    t.note("BMI m=36's 1095 operands: 23 MWS senses for FC vs 1095 serial senses for PB");
    t
}

/// Checks an expression's NNF can be costed (helper for tests).
pub fn plannable(nnf: &Nnf, map: &PlacementMap, caps: PlannerCaps) -> bool {
    planner::compile(nnf, map, caps).is_ok()
}

/// All ablation tables.
pub fn all_ablations() -> Vec<Table> {
    vec![
        ablation_mws_fanin(),
        ablation_or_strategy(),
        ablation_esp_ratio(),
        ablation_ecc_randomization(),
        ablation_accumulation(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanin_table_shows_constant_fc_cost() {
        let t = ablation_mws_fanin();
        // FC senses stay at 1 for every fan-in ≤ 48.
        for row in &t.rows {
            assert_eq!(row[1], "1", "fan-in {} needs 1 sense", row[0]);
        }
        // PB senses equal the operand count.
        assert_eq!(t.rows.last().unwrap()[3], "48");
    }

    #[test]
    fn or_strategy_inverse_storage_wins() {
        let t = ablation_or_strategy();
        let last = t.rows.last().unwrap(); // 48 operands
        assert_eq!(last[4], "1", "inverted storage → single sense");
        let cap4: usize = last[2].parse().unwrap();
        assert_eq!(cap4, 12, "48 operands at cap 4 → 12 senses (§6.3)");
    }

    #[test]
    fn esp_ratio_table_reaches_zero_rber() {
        let t = ablation_esp_ratio();
        let last = t.rows.last().unwrap(); // ratio 2.0
        assert_eq!(last[3], "0");
        let first = &t.rows[0]; // ratio 1.0
        assert_eq!(first[4], "~0", "plain SLC cannot answer BMI m=36");
    }

    #[test]
    fn accumulation_matches_bmi_headline() {
        let t = ablation_accumulation();
        let last = t.rows.last().unwrap();
        assert_eq!(last[0], "1095");
        assert_eq!(last[2], "23");
        assert_eq!(last[3], "1095");
    }

    #[test]
    fn protected_paths_are_unusable() {
        let t = ablation_ecc_randomization();
        // Randomized AND corrupts roughly half of... at least many bits.
        let rand_row = &t.rows[1];
        let avg: f64 = rand_row[3].parse().unwrap_or(1e9);
        assert!(avg > 100.0, "randomized AND must corrupt many bits: {avg}");
    }
}
