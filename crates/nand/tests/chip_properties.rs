//! Property-based tests of the chip state machine: MWS correctness over
//! arbitrary target sets, command-frame codec roundtrips, and the
//! footnote-15 MLC LSB-page operating mode.

use fc_bits::BitVec;
use fc_nand::chip::NandChip;
use fc_nand::command::{decode_frame, encode_frame, Command, IscmFlags, MwsTarget};
use fc_nand::config::ChipConfig;
use fc_nand::geometry::BlockAddr;
use fc_nand::ispp::ProgramScheme;
use proptest::prelude::*;

fn chip() -> NandChip {
    NandChip::new(ChipConfig::tiny_test())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Intra-block MWS equals the AND of the targeted pages for any
    /// non-empty wordline subset.
    #[test]
    fn intra_mws_is_and_for_any_subset(
        pbm in 1u64..256, // 8 wordlines in the tiny geometry
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut chip = chip();
        let blk = BlockAddr::new(0, 0);
        let bits = chip.config().geometry.page_bits();
        let mut rng = StdRng::seed_from_u64(seed);
        let pages: Vec<BitVec> = (0..8u32)
            .map(|wl| {
                let p = BitVec::random(bits, &mut rng);
                chip.execute(Command::esp_program(blk.wordline(wl), p.clone())).unwrap();
                p
            })
            .collect();
        let target = MwsTarget { block: blk, pbm };
        let out = chip
            .execute(Command::Mws { flags: IscmFlags::single_read(), targets: vec![target] })
            .unwrap();
        let mut expect = BitVec::ones(bits);
        for wl in target.wls() {
            expect.and_assign(&pages[wl as usize]);
        }
        prop_assert_eq!(out.page().unwrap(), &expect);
    }

    /// Inter-block MWS equals the OR of per-block ANDs (Eq. 1) for any
    /// pair of non-empty subsets in two blocks.
    #[test]
    fn inter_mws_is_or_of_block_ands(
        pbm_a in 1u64..256,
        pbm_b in 1u64..256,
        inverse in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut chip = chip();
        let blk_a = BlockAddr::new(0, 1);
        let blk_b = BlockAddr::new(0, 2);
        let bits = chip.config().geometry.page_bits();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut program_block = |blk: BlockAddr| -> Vec<BitVec> {
            (0..8u32)
                .map(|wl| {
                    let p = BitVec::random(bits, &mut rng);
                    chip.execute(Command::esp_program(blk.wordline(wl), p.clone())).unwrap();
                    p
                })
                .collect()
        };
        let pages_a = program_block(blk_a);
        let pages_b = program_block(blk_b);
        let flags = if inverse {
            IscmFlags::single_inverse_read()
        } else {
            IscmFlags::single_read()
        };
        let out = chip
            .execute(Command::Mws {
                flags,
                targets: vec![
                    MwsTarget { block: blk_a, pbm: pbm_a },
                    MwsTarget { block: blk_b, pbm: pbm_b },
                ],
            })
            .unwrap();
        let and_of = |pages: &[BitVec], pbm: u64| {
            let mut acc = BitVec::ones(bits);
            for (wl, page) in pages.iter().enumerate() {
                if pbm & (1 << wl) != 0 {
                    acc.and_assign(page);
                }
            }
            acc
        };
        let mut expect = and_of(&pages_a, pbm_a).or(&and_of(&pages_b, pbm_b));
        if inverse {
            expect.not_assign();
        }
        prop_assert_eq!(out.page().unwrap(), &expect);
    }

    /// The Fig. 15a wire-frame codec roundtrips any flag/target set.
    #[test]
    fn frame_codec_roundtrips(
        nibble in 0u8..16,
        blocks in prop::collection::vec((0u32..2, 0u32..1024, 1u64..u64::MAX), 1..4),
    ) {
        let flags = IscmFlags::from_nibble(nibble);
        let targets: Vec<MwsTarget> = blocks
            .into_iter()
            .map(|(plane, block, pbm)| MwsTarget { block: BlockAddr::new(plane, block), pbm })
            .collect();
        let frame = encode_frame(flags, &targets);
        let (f2, t2) = decode_frame(&frame).unwrap();
        prop_assert_eq!(f2, flags);
        prop_assert_eq!(t2, targets);
    }

    /// MWS latency and energy are monotone in scope: more wordlines or
    /// more blocks never sense faster or cheaper.
    #[test]
    fn mws_cost_is_monotone(n_wls in 1u32..8, n_blocks in 1usize..4) {
        let mut chip = chip();
        let bits = chip.config().geometry.page_bits();
        for b in 0..4u32 {
            for wl in 0..8u32 {
                chip.execute(Command::esp_program(
                    BlockAddr::new(0, b).wordline(wl),
                    BitVec::ones(bits),
                ))
                .unwrap();
            }
        }
        let run = |chip: &mut NandChip, wls: u32, blocks: usize| {
            let targets: Vec<MwsTarget> = (0..blocks)
                .map(|b| MwsTarget::all_wls(BlockAddr::new(0, b as u32), wls))
                .collect();
            chip.execute(Command::Mws { flags: IscmFlags::single_read(), targets }).unwrap()
        };
        let base = run(&mut chip, n_wls, n_blocks);
        let more_wls = run(&mut chip, n_wls + 1, n_blocks);
        let more_blocks = run(&mut chip, n_wls, n_blocks + 1);
        prop_assert!(more_wls.latency_us >= base.latency_us);
        prop_assert!(more_blocks.latency_us >= base.latency_us);
        prop_assert!(more_blocks.energy_uj > base.energy_uj);
    }
}

/// Footnote 15: Flash-Cosmos on MLC NAND with operands in LSB pages —
/// "the mechanism of LSB-page reads is the same as SLC-page reads". The
/// chip supports `ProgramScheme::Mlc` pages whose single-bit payload is
/// read at the LSB level; MWS works, but reliability is only ParaBit-
/// grade (MLC RBER, not zero).
#[test]
fn footnote15_mlc_lsb_pages_support_mws() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut chip = NandChip::new(ChipConfig::tiny_test());
    let blk = BlockAddr::new(0, 3);
    let bits = chip.config().geometry.page_bits();
    let mut rng = StdRng::seed_from_u64(15);
    let pages: Vec<BitVec> = (0..4u32)
        .map(|wl| {
            let p = BitVec::random(bits, &mut rng);
            chip.execute(Command::Program {
                addr: blk.wordline(wl),
                data: p.clone(),
                scheme: ProgramScheme::Mlc,
                randomize: false,
            })
            .unwrap();
            p
        })
        .collect();
    let out = chip
        .execute(Command::Mws {
            flags: IscmFlags::single_read(),
            targets: vec![MwsTarget::new(blk, &[0, 1, 2, 3])],
        })
        .unwrap();
    let expect = pages.iter().skip(1).fold(pages[0].clone(), |a, p| a.and(p));
    assert_eq!(out.page().unwrap(), &expect, "error-free chip: LSB MWS is exact");
}

#[test]
fn footnote15_mlc_lsb_reliability_is_parabit_grade() {
    use fc_nand::rber::RberModel;
    use fc_nand::stress::StressState;
    let model = RberModel::paper();
    let stress = StressState::worst_case();
    let mlc_lsb = model.rber(ProgramScheme::Mlc, false, stress);
    let esp = model.rber(ProgramScheme::esp_default(), false, stress);
    // MLC LSB operation carries MLC-grade RBER — usable only by
    // error-tolerant applications (the ParaBit situation), unlike ESP.
    assert!(mlc_lsb > 1e-3, "MLC LSB RBER {mlc_lsb}");
    assert_eq!(esp, 0.0);
}
