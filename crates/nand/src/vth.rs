//! Threshold-voltage (V_TH) state model (§2.2, Fig. 5).
//!
//! A flash cell stores data as a V_TH level. Each programming mode packs
//! 2^bits states into the same fixed voltage window; the margin between
//! adjacent states determines how robust the cell is to retention loss,
//! disturbance and interference. ESP (§4.2) widens the SLC margin by
//! raising the programmed state's target voltage and narrowing its
//! distribution.
//!
//! Voltages are in volts throughout; distributions are Gaussian, which is
//! the standard first-order model for post-randomization V_TH states (the
//! paper's footnote 4 notes randomization is what makes states identically
//! shaped).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::geometry::CellMode;

/// A single V_TH state: mean and standard deviation of its distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VthState {
    /// Mean threshold voltage in volts.
    pub mean_v: f64,
    /// Standard deviation in volts.
    pub sigma_v: f64,
}

impl VthState {
    /// Creates a state.
    pub fn new(mean_v: f64, sigma_v: f64) -> Self {
        Self { mean_v, sigma_v }
    }

    /// Samples a cell's V_TH from this state.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean_v + self.sigma_v * sample_standard_normal(rng)
    }

    /// Probability that a cell in this state reads **above** `vref`
    /// (Gaussian upper tail).
    pub fn prob_above(&self, vref: f64) -> f64 {
        let z = (vref - self.mean_v) / self.sigma_v;
        1.0 - standard_normal_cdf(z)
    }

    /// Probability that a cell in this state reads **below** `vref`.
    pub fn prob_below(&self, vref: f64) -> f64 {
        standard_normal_cdf((vref - self.mean_v) / self.sigma_v)
    }
}

/// The erased state shared by all modes (the lowest-V_TH state; an erased
/// cell conducts and reads as `1` in SLC encoding).
pub const ERASED: VthState = VthState { mean_v: -2.0, sigma_v: 0.45 };

/// Pass voltage applied to non-target wordlines during a read (§2.1:
/// "V_PASS is high enough (>6 V) to turn on any flash cell").
pub const V_PASS: f64 = 6.5;

/// SLC read reference voltage in volts. Placed 5.5 erased sigmas above the
/// erased mean: erased cells drift up only slightly (disturb), while the
/// programmed state keeps a wide budget for retention loss.
pub const SLC_VREF: f64 = 0.5;

/// A complete V_TH layout for one programming scheme: the list of states
/// (index = state number, LSB-first encoding) and the read reference
/// voltages between adjacent states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VthLayout {
    /// States ordered by increasing mean voltage. `states[0]` is erased.
    pub states: Vec<VthState>,
    /// `vrefs[i]` separates `states[i]` from `states[i + 1]`.
    pub vrefs: Vec<f64>,
}

impl VthLayout {
    /// Standard SLC layout: erased vs one programmed state (Fig. 5a).
    ///
    /// `V_REF` sits asymmetrically, closer to the erased state: retention
    /// loss pulls *programmed* cells down over time while erased cells only
    /// drift up slowly via disturbance, so real read levels reserve most of
    /// the window for the programmed state's downward drift.
    pub fn slc() -> Self {
        Self { states: vec![ERASED, VthState::new(2.0, 0.25)], vrefs: vec![SLC_VREF] }
    }

    /// ESP layout for a given latency budget ratio `tESP/tPROG ≥ 1`.
    ///
    /// The extra ISPP steps (i) raise the programmed target voltage and
    /// (ii) shrink the distribution width, while `V_REF'` moves up to keep
    /// both margins balanced (Fig. 10b). At the paper's operating point
    /// (ratio 2.0) the programmed state is far enough from `V_REF'` that
    /// worst-case retention/disturb shifts cannot cross it.
    pub fn esp(ratio: f64) -> Self {
        let r = ratio.clamp(1.0, 2.5) - 1.0;
        // Ratio 1.0 → plain SLC; ratio 2.0 → mean 3.3 V, sigma 0.10 V.
        let prog = VthState::new(2.0 + 1.3 * r, 0.25 - 0.15 * r);
        Self { states: vec![ERASED, prog], vrefs: vec![esp_vref(ratio)] }
    }

    /// Standard MLC layout: four states (Fig. 5b).
    pub fn mlc() -> Self {
        let states = vec![
            ERASED,
            VthState::new(0.8, 0.18),
            VthState::new(2.0, 0.18),
            VthState::new(3.2, 0.18),
        ];
        let vrefs = pairwise_balanced_vrefs(&states);
        Self { states, vrefs }
    }

    /// Standard TLC layout: eight states.
    pub fn tlc() -> Self {
        let mut states = vec![ERASED];
        for i in 0..7 {
            states.push(VthState::new(0.2 + 0.62 * i as f64, 0.12));
        }
        let vrefs = pairwise_balanced_vrefs(&states);
        Self { states, vrefs }
    }

    /// Layout for a plain (non-ESP) mode.
    pub fn for_mode(mode: CellMode) -> Self {
        match mode {
            CellMode::Slc => Self::slc(),
            CellMode::Mlc => Self::mlc(),
            CellMode::Tlc => Self::tlc(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The single `V_REF` of a two-state (SLC/ESP) layout.
    ///
    /// # Panics
    ///
    /// Panics if the layout has more than two states.
    pub fn slc_vref(&self) -> f64 {
        assert_eq!(self.states.len(), 2, "slc_vref requires a two-state layout");
        self.vrefs[0]
    }

    /// The first `V_REF` — the read level used by SLC-style sensing. For
    /// two-state layouts this is the only reference; for MLC/TLC it is the
    /// lowest one (the LSB-page read level, footnote 15 of the paper).
    pub fn slc_vref_or_first(&self) -> f64 {
        self.vrefs[0]
    }

    /// Margin in volts from the erased state's mean to the first `V_REF`.
    pub fn erased_margin(&self) -> f64 {
        self.vrefs[0] - self.states[0].mean_v
    }

    /// Margin in volts from the last `V_REF` to the top state's mean.
    pub fn programmed_margin(&self) -> f64 {
        self.states.last().unwrap().mean_v - *self.vrefs.last().unwrap()
    }

    /// Decodes a V_TH value to a state index by comparing against the
    /// reference voltages.
    pub fn classify(&self, vth: f64) -> usize {
        self.vrefs.iter().take_while(|&&v| vth > v).count()
    }
}

/// The ESP read reference voltage `V_REF'` for a latency budget ratio:
/// rises with the programmed state (Fig. 10b) but keeps most of the added
/// window as programmed-side margin against retention. Exposed separately
/// from [`VthLayout::esp`] so hot paths can obtain the reference voltage
/// without materializing a layout.
pub fn esp_vref(ratio: f64) -> f64 {
    SLC_VREF + 0.15 * (ratio.clamp(1.0, 2.5) - 1.0)
}

/// `V_REF` position that equalizes the two states' error tails, measured in
/// units of their respective sigmas.
fn balanced_vref(lo: VthState, hi: VthState) -> f64 {
    (lo.mean_v * hi.sigma_v + hi.mean_v * lo.sigma_v) / (lo.sigma_v + hi.sigma_v)
}

fn pairwise_balanced_vrefs(states: &[VthState]) -> Vec<f64> {
    states.windows(2).map(|w| balanced_vref(w[0], w[1])).collect()
}

/// Samples a standard normal. `rand` is the only random dependency
/// sanctioned for this workspace, so we implement the sampler here rather
/// than pulling in `rand_distr`.
///
/// Uses the Marsaglia–Tsang ziggurat (128 layers): ~98% of draws cost one
/// 32-bit RNG word, a table compare and a multiply, which matters because
/// the physics-mode stress transforms draw one normal per cell per sense.
/// The tail and wedge fallbacks are exact, so the output distribution is a
/// true standard normal (the V_TH error model depends on its deep tails).
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    NormalSampler::get().sample(rng)
}

/// Batch handle over the ziggurat with the table pointer hoisted out of
/// the per-draw path — the stress transforms draw tens of thousands of
/// normals per sense, so even the `OnceLock` acquire-load per draw shows
/// up.
pub struct NormalSampler {
    z: &'static Ziggurat,
}

impl NormalSampler {
    /// Obtains the shared sampler (builds the tables on first use).
    pub fn get() -> Self {
        Self { z: Ziggurat::tables() }
    }

    /// Draws one standard normal.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let hz = rng.gen::<u32>() as i32;
            let iz = (hz & 127) as usize;
            if (hz.unsigned_abs()) < self.z.kn[iz] {
                return hz as f64 * self.z.wn[iz];
            }
            if let Some(x) = self.z.fix(hz, iz, rng) {
                return x;
            }
        }
    }
}

/// Precomputed ziggurat layer tables (Marsaglia & Tsang 2000, 128 layers).
struct Ziggurat {
    /// Acceptance thresholds per layer, scaled to the `i32` lattice.
    kn: [u32; 128],
    /// Layer x-coordinates scaled by 2⁻³¹ (multiplier per lattice point).
    wn: [f64; 128],
    /// Density values `exp(-x²/2)` at the layer boundaries.
    fd: [f64; 128],
}

/// Rightmost layer boundary of the 128-layer normal ziggurat.
const ZIG_R: f64 = 3.442619855899;

impl Ziggurat {
    fn tables() -> &'static Ziggurat {
        static TABLES: std::sync::OnceLock<Ziggurat> = std::sync::OnceLock::new();
        TABLES.get_or_init(Ziggurat::build)
    }

    fn build() -> Ziggurat {
        let m1 = 2147483648.0; // 2^31
        let vn = 9.91256303526217e-3; // area of each layer
        let mut dn = ZIG_R;
        let mut tn = dn;
        let mut kn = [0u32; 128];
        let mut wn = [0f64; 128];
        let mut fd = [0f64; 128];
        let q = vn / (-0.5 * dn * dn).exp();
        kn[0] = ((dn / q) * m1) as u32;
        kn[1] = 0;
        wn[0] = q / m1;
        wn[127] = dn / m1;
        fd[0] = 1.0;
        fd[127] = (-0.5 * dn * dn).exp();
        for i in (1..=126).rev() {
            dn = (-2.0 * (vn / dn + (-0.5 * dn * dn).exp()).ln()).sqrt();
            kn[i + 1] = ((dn / tn) * m1) as u32;
            tn = dn;
            fd[i] = (-0.5 * dn * dn).exp();
            wn[i] = dn / m1;
        }
        Ziggurat { kn, wn, fd }
    }

    /// Slow path: the sample fell outside the layer's rectangular core.
    /// Returns `None` when the retried lattice point needs the full
    /// top-level test again.
    fn fix<R: Rng + ?Sized>(&self, hz: i32, iz: usize, rng: &mut R) -> Option<f64> {
        let x = hz as f64 * self.wn[iz];
        if iz == 0 {
            // Base layer: sample the exact tail beyond R.
            loop {
                let u1 = positive_uniform(rng);
                let u2 = positive_uniform(rng);
                let xt = -u1.ln() / ZIG_R;
                let yt = -u2.ln();
                if yt + yt >= xt * xt {
                    return Some(if hz > 0 { ZIG_R + xt } else { -ZIG_R - xt });
                }
            }
        }
        // Wedge: accept with the exact density.
        let u: f64 = rng.gen::<f64>();
        if self.fd[iz] + u * (self.fd[iz - 1] - self.fd[iz]) < (-0.5 * x * x).exp() {
            return Some(x);
        }
        None
    }
}

/// Uniform draw in `(0, 1]` — safe to feed to `ln`.
fn positive_uniform<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    1.0 - rng.gen::<f64>()
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 rational approximation; max abs error < 1.5e-7,
/// ample for RBER work).
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * erfc_as(-z / std::f64::consts::SQRT_2)
}

fn erfc_as(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erfc = 1.0 - erf;
    if sign_neg {
        2.0 - erfc
    } else {
        erfc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_cdf_reference_points() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((standard_normal_cdf(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((standard_normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-5);
        assert!((standard_normal_cdf(3.0) - 0.998_650_1).abs() < 1e-5);
        assert!(standard_normal_cdf(8.0) > 0.999_999_9);
    }

    #[test]
    fn sampling_matches_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let st = VthState::new(2.0, 0.25);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| st.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.25).abs() < 0.01, "sigma {}", var.sqrt());
    }

    #[test]
    fn slc_layout_reserves_margin_for_retention() {
        let l = VthLayout::slc();
        let vref = l.slc_vref();
        // Erased cells sit at least 5 sigma below V_REF (disturb headroom).
        let z_erased = (vref - ERASED.mean_v) / ERASED.sigma_v;
        assert!(z_erased > 5.0, "erased margin {z_erased} sigma");
        // Programmed cells keep the larger share of the window in volts —
        // the retention-loss budget.
        assert!(l.programmed_margin() > l.erased_margin() / 2.0);
        assert!((vref - SLC_VREF).abs() < 1e-12);
    }

    #[test]
    fn esp_widens_margins_monotonically() {
        let mut last = 0.0;
        for ratio in [1.0, 1.2, 1.4, 1.6, 1.8, 2.0] {
            let l = VthLayout::esp(ratio);
            let z = (l.states[1].mean_v - l.slc_vref()) / l.states[1].sigma_v;
            assert!(z > last, "margin must grow with tESP (ratio {ratio}: z={z})");
            last = z;
        }
        // At the paper's operating point the programmed tail below V_REF'
        // is negligible even before stress.
        let l = VthLayout::esp(2.0);
        assert!(l.states[1].prob_below(l.slc_vref()) < 1e-15);
    }

    #[test]
    fn esp_ratio_one_is_plain_slc() {
        let esp = VthLayout::esp(1.0);
        let slc = VthLayout::slc();
        assert!((esp.states[1].mean_v - slc.states[1].mean_v).abs() < 1e-12);
        assert!((esp.states[1].sigma_v - slc.states[1].sigma_v).abs() < 1e-12);
    }

    #[test]
    fn mlc_packs_states_into_same_window_with_smaller_margins() {
        let slc = VthLayout::slc();
        let mlc = VthLayout::mlc();
        assert_eq!(mlc.num_states(), 4);
        // MLC's top state stays within a similar window but margins shrink.
        let slc_margin = slc.programmed_margin();
        let mlc_margin = mlc.states[1].mean_v - mlc.vrefs[0];
        assert!(mlc_margin < slc_margin);
        // V_REFs are strictly increasing.
        assert!(mlc.vrefs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tlc_has_eight_increasing_states() {
        let tlc = VthLayout::tlc();
        assert_eq!(tlc.num_states(), 8);
        assert!(tlc.states.windows(2).all(|w| w[0].mean_v < w[1].mean_v));
        assert_eq!(tlc.vrefs.len(), 7);
    }

    #[test]
    fn classify_roundtrips_state_means() {
        for layout in [VthLayout::slc(), VthLayout::mlc(), VthLayout::tlc(), VthLayout::esp(2.0)] {
            for (i, s) in layout.states.iter().enumerate() {
                assert_eq!(layout.classify(s.mean_v), i, "state {i} of {layout:?}");
            }
        }
    }

    #[test]
    fn vpass_turns_on_every_state() {
        for layout in [VthLayout::slc(), VthLayout::mlc(), VthLayout::tlc(), VthLayout::esp(2.0)] {
            for s in &layout.states {
                // Even 6 sigma above the top state stays below V_PASS.
                assert!(s.mean_v + 6.0 * s.sigma_v < V_PASS);
            }
        }
    }
}
