//! Cell-array geometry: planes, blocks, wordlines, bitlines (§2.1).
//!
//! Terminology follows the paper: a *NAND string* is a vertical series
//! connection of (e.g.) 48 cells; strings at different bitlines form a
//! *sub-block*; several sub-blocks form a physical block; thousands of
//! blocks share the bitlines of a *plane*.
//!
//! Like the paper ("we refer to a sub-block as a block for simplicity"),
//! the simulator addresses storage at sub-block granularity: a
//! [`BlockAddr`] names a sub-block whose wordline count equals the NAND
//! string length, which is exactly the unit over which intra-block MWS can
//! AND wordlines. The physical-block grouping is retained only as a count
//! ([`ChipGeometry::subblocks_per_physical_block`]) for capacity math.

use serde::{Deserialize, Serialize};

use crate::error::NandError;

/// Geometry of one NAND flash chip (die).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChipGeometry {
    /// Planes per die (Table 1: 2).
    pub planes: u32,
    /// Sub-blocks per plane. All of them share the plane's bitlines, so
    /// any set of them can participate in inter-block MWS.
    pub blocks_per_plane: u32,
    /// Cells per NAND string == wordlines per sub-block (48 for the
    /// paper's 48-layer chips).
    pub wls_per_block: u32,
    /// Page size in bytes (16 KiB in the paper). One wordline stores one
    /// page in SLC mode.
    pub page_bytes: u32,
    /// Sub-blocks per physical block (paper: 4; Table 1's "192 (4×48)
    /// WLs/block"). Only used for capacity accounting.
    pub subblocks_per_physical_block: u32,
}

impl ChipGeometry {
    /// Geometry of the paper's characterized chips (§5.1, Table 1),
    /// scaled to one die: 2 planes × 2048 physical blocks × 4 sub-blocks
    /// × 48 WLs × 16 KiB pages.
    pub fn paper() -> Self {
        Self {
            planes: 2,
            blocks_per_plane: 2048 * 4,
            wls_per_block: 48,
            page_bytes: 16 * 1024,
            subblocks_per_physical_block: 4,
        }
    }

    /// A small geometry for unit tests and examples: functional behaviour
    /// is identical, data sizes are laptop-friendly.
    pub fn tiny() -> Self {
        Self {
            planes: 2,
            blocks_per_plane: 16,
            wls_per_block: 8,
            page_bytes: 32,
            subblocks_per_physical_block: 4,
        }
    }

    /// Bits per page (bitlines per plane).
    pub fn page_bits(&self) -> usize {
        self.page_bytes as usize * 8
    }

    /// Total sub-blocks on the die.
    pub fn total_blocks(&self) -> usize {
        self.planes as usize * self.blocks_per_plane as usize
    }

    /// Total wordlines on the die.
    pub fn total_wls(&self) -> usize {
        self.total_blocks() * self.wls_per_block as usize
    }

    /// Total cells on the die.
    pub fn total_cells(&self) -> usize {
        self.total_wls() * self.page_bits()
    }

    /// Raw capacity in bytes when every cell stores `bits_per_cell` bits.
    pub fn capacity_bytes(&self, bits_per_cell: u32) -> u64 {
        self.total_wls() as u64 * self.page_bytes as u64 * bits_per_cell as u64
    }

    /// Checks that a block address lies on this die.
    pub fn validate_block(&self, addr: BlockAddr) -> Result<(), NandError> {
        if addr.plane >= self.planes || addr.block >= self.blocks_per_plane {
            return Err(NandError::AddressOutOfRange {
                what: "block",
                plane: addr.plane,
                block: addr.block,
                wl: 0,
            });
        }
        Ok(())
    }

    /// Checks that a wordline address lies on this die.
    pub fn validate_wl(&self, addr: WlAddr) -> Result<(), NandError> {
        self.validate_block(addr.block())?;
        if addr.wl >= self.wls_per_block {
            return Err(NandError::AddressOutOfRange {
                what: "wordline",
                plane: addr.plane,
                block: addr.block,
                wl: addr.wl,
            });
        }
        Ok(())
    }

    /// Iterator over every block address on the die, plane-major.
    pub fn iter_blocks(&self) -> impl Iterator<Item = BlockAddr> {
        let planes = self.planes;
        let blocks = self.blocks_per_plane;
        (0..planes).flat_map(move |p| (0..blocks).map(move |b| BlockAddr::new(p, b)))
    }

    /// Iterator over every wordline of a block.
    pub fn iter_wls(&self, block: BlockAddr) -> impl Iterator<Item = WlAddr> {
        (0..self.wls_per_block).map(move |wl| block.wordline(wl))
    }
}

/// Address of a sub-block on a die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Plane index on the die.
    pub plane: u32,
    /// Sub-block index within the plane.
    pub block: u32,
}

impl BlockAddr {
    /// Creates a block address.
    pub fn new(plane: u32, block: u32) -> Self {
        Self { plane, block }
    }

    /// The address of wordline `wl` within this block.
    pub fn wordline(self, wl: u32) -> WlAddr {
        WlAddr { plane: self.plane, block: self.block, wl }
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}/B{}", self.plane, self.block)
    }
}

/// Address of a wordline (equivalently: an SLC page) on a die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WlAddr {
    /// Plane index on the die.
    pub plane: u32,
    /// Sub-block index within the plane.
    pub block: u32,
    /// Wordline index within the sub-block (0-based from the bitline side).
    pub wl: u32,
}

impl WlAddr {
    /// Creates a wordline address.
    pub fn new(plane: u32, block: u32, wl: u32) -> Self {
        Self { plane, block, wl }
    }

    /// The containing block's address.
    pub fn block(self) -> BlockAddr {
        BlockAddr { plane: self.plane, block: self.block }
    }
}

impl std::fmt::Display for WlAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}/B{}/W{}", self.plane, self.block, self.wl)
    }
}

/// How many bits a cell stores in each programming mode (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellMode {
    /// Single-level cell: 1 bit, two V_TH states.
    Slc,
    /// Multi-level cell: 2 bits, four V_TH states.
    Mlc,
    /// Triple-level cell: 3 bits, eight V_TH states.
    Tlc,
}

impl CellMode {
    /// Bits stored per cell.
    pub fn bits_per_cell(self) -> u32 {
        match self {
            CellMode::Slc => 1,
            CellMode::Mlc => 2,
            CellMode::Tlc => 3,
        }
    }

    /// Number of V_TH states.
    pub fn states(self) -> u32 {
        1 << self.bits_per_cell()
    }
}

impl std::fmt::Display for CellMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellMode::Slc => write!(f, "SLC"),
            CellMode::Mlc => write!(f, "MLC"),
            CellMode::Tlc => write!(f, "TLC"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_table1() {
        let g = ChipGeometry::paper();
        // 2 planes × 2048 physical blocks × 192 WLs = Table 1 per-die count.
        assert_eq!(g.total_wls(), 2 * 2048 * 4 * 48);
        assert_eq!(g.page_bits(), 16 * 1024 * 8);
        // TLC capacity per die: 2 planes × 2048 blocks × 192 WLs × 16 KiB × 3.
        let cap = g.capacity_bytes(3);
        assert_eq!(cap, 2 * 2048 * 192 * 16 * 1024 * 3);
    }

    #[test]
    fn address_validation() {
        let g = ChipGeometry::tiny();
        assert!(g.validate_block(BlockAddr::new(0, 0)).is_ok());
        assert!(g.validate_block(BlockAddr::new(1, 15)).is_ok());
        assert!(g.validate_block(BlockAddr::new(2, 0)).is_err());
        assert!(g.validate_block(BlockAddr::new(0, 16)).is_err());
        assert!(g.validate_wl(WlAddr::new(0, 0, 7)).is_ok());
        assert!(g.validate_wl(WlAddr::new(0, 0, 8)).is_err());
    }

    #[test]
    fn iterators_cover_the_die() {
        let g = ChipGeometry::tiny();
        assert_eq!(g.iter_blocks().count(), g.total_blocks());
        let blk = BlockAddr::new(1, 3);
        let wls: Vec<_> = g.iter_wls(blk).collect();
        assert_eq!(wls.len(), 8);
        assert_eq!(wls[0], WlAddr::new(1, 3, 0));
        assert_eq!(wls[7], WlAddr::new(1, 3, 7));
    }

    #[test]
    fn cell_mode_bits() {
        assert_eq!(CellMode::Slc.bits_per_cell(), 1);
        assert_eq!(CellMode::Mlc.states(), 4);
        assert_eq!(CellMode::Tlc.states(), 8);
        assert_eq!(CellMode::Tlc.to_string(), "TLC");
    }

    #[test]
    fn display_formats() {
        assert_eq!(BlockAddr::new(1, 2).to_string(), "P1/B2");
        assert_eq!(WlAddr::new(1, 2, 3).to_string(), "P1/B2/W3");
        assert_eq!(BlockAddr::new(0, 5).wordline(7), WlAddr::new(0, 5, 7));
    }
}
