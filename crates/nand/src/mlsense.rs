//! Dynamic-sensing arithmetic and multi-level page codes (the `mlsense`
//! subsystem's device half).
//!
//! Flash-Cosmos senses a multi-WL activation at a single fixed Vref, so a
//! bitline can only answer AND (intra-block) or OR (inter-block). MCFlash
//! observes that the *same* activation sensed at an intermediate reference
//! answers a richer question: "did at least K of the activated cells
//! conduct?" — a per-bitline threshold/majority vote. This module supplies
//! the two pieces of device-side machinery that turn that observation into
//! a compute primitive:
//!
//! * **Vote counting** — [`threshold_ge_into`], a word-parallel bit-sliced
//!   ripple-carry population counter plus an MSB-down `≥ k` comparator over
//!   the per-bitline counts, with [`threshold_ge_serial`] as the bit-exact
//!   scalar oracle (the same kernel/oracle pairing as `ispp::pulse_rounds`).
//! * **Multi-level page codes** — Gray-code level maps for MLC/TLC cells
//!   ([`gray_codes`]), cell-level encoding of 2–3 logical pages into one
//!   physical page ([`encode_levels`]), and the read-side transition model
//!   ([`transition_levels`], [`page_from_senses`]) that recovers one logical
//!   page from conduction senses at the Gray transitions — exactly the
//!   per-state read levels a real controller issues.

use fc_bits::BitVec;

use crate::geometry::CellMode;

/// Reusable buffers for [`threshold_ge_into`]: the bit-sliced count planes
/// plus carry/comparator temporaries. Create once per chip/plane and reuse
/// across senses — same pattern as `sense::SenseScratch`.
#[derive(Debug, Default, Clone)]
pub struct ThresholdScratch {
    /// Bit-sliced per-bitline vote count: `planes[p]` holds bit `p` of
    /// every bitline's count.
    planes: Vec<BitVec>,
    carry: BitVec,
    tmp: BitVec,
    gt: BitVec,
    eq: BitVec,
}

/// Word-parallel threshold vote: sets bit `i` of `out` iff at least `k` of
/// the `votes` pages have bit `i` set.
///
/// Counts votes into a bit-sliced ripple-carry accumulator (one full-adder
/// chain per vote page, all bitlines in parallel per 64-bit word), then
/// compares the per-bitline counts against the constant `k` MSB-down. Cost
/// is `O(votes · log votes)` word ops — independent of `k`.
///
/// # Panics
///
/// Panics if `votes` is empty or the vote pages have mismatched lengths.
pub fn threshold_ge_into(
    votes: &[&BitVec],
    k: usize,
    scratch: &mut ThresholdScratch,
    out: &mut BitVec,
) {
    assert!(!votes.is_empty(), "threshold vote needs at least one page");
    let len = votes[0].len();
    let n = votes.len();
    // Enough planes to hold counts up to n.
    let width = usize::BITS as usize - n.leading_zeros() as usize;
    scratch.planes.resize_with(width, BitVec::default);
    for plane in &mut scratch.planes {
        plane.reset(len, false);
    }
    scratch.carry.reset(len, false);
    scratch.tmp.reset(len, false);

    // Accumulate: add 1 (where the vote page is set) into the bit-sliced
    // counter with a ripple carry across planes.
    for vote in votes {
        assert_eq!(vote.len(), len, "threshold vote pages must share a length");
        scratch.carry.assign_from(vote);
        for plane in &mut scratch.planes {
            // (plane, carry) -> (plane ^ carry, plane & carry)
            scratch.tmp.assign_from(plane);
            scratch.tmp.and_assign(&scratch.carry);
            plane.xor_assign(&scratch.carry);
            scratch.carry.assign_from(&scratch.tmp);
        }
    }

    // Compare count >= k, scanning bits MSB-down:
    //   gt |= eq & count_bit & !k_bit;   eq &= !(count_bit ^ k_bit)
    // `k` may need more bits than the counter holds (k > n is legal and
    // simply never satisfied), so scan over max(width, bits(k)).
    let k_width = usize::BITS as usize - k.leading_zeros() as usize;
    scratch.gt.reset(len, false);
    scratch.eq.reset(len, true);
    for bit in (0..width.max(k_width)).rev() {
        let k_bit = (k >> bit) & 1 == 1;
        match scratch.planes.get(bit) {
            Some(plane) => {
                if k_bit {
                    scratch.eq.and_assign(plane);
                } else {
                    scratch.tmp.assign_from(&scratch.eq);
                    scratch.tmp.and_assign(plane);
                    scratch.gt.or_assign(&scratch.tmp);
                    scratch.eq.and_not_assign(plane);
                }
            }
            // Count bit is implicitly 0 above the counter width.
            None => {
                if k_bit {
                    scratch.eq.fill(false);
                }
            }
        }
    }
    out.reset(len, false);
    out.or_assign(&scratch.gt);
    out.or_assign(&scratch.eq);
}

/// Scalar oracle for [`threshold_ge_into`]: per-bitline `filter().count()`,
/// no word tricks. Property tests pin the packed kernel against this.
///
/// # Panics
///
/// Panics if `votes` is empty.
pub fn threshold_ge_serial(votes: &[&BitVec], k: usize) -> BitVec {
    assert!(!votes.is_empty(), "threshold vote needs at least one page");
    BitVec::from_fn(votes[0].len(), |i| votes.iter().filter(|v| v.get(i)).count() >= k)
}

/// The Gray code assigned to each V_TH level, lowest (erased) level first.
/// Adjacent levels differ in exactly one bit and the erased level is
/// all-ones (an erased cell reads 1 on every logical page, matching the
/// SLC convention where erased = 1).
pub fn gray_codes(mode: CellMode) -> &'static [u8] {
    match mode {
        CellMode::Slc => &[0b1, 0b0],
        // LSB page (bit 0) needs 1 read level, MSB page (bit 1) needs 2.
        CellMode::Mlc => &[0b11, 0b01, 0b00, 0b10],
        // 1-2-4 read-level split across LSB/CSB/MSB (bits 2/1/0).
        CellMode::Tlc => &[0b111, 0b110, 0b100, 0b101, 0b001, 0b000, 0b010, 0b011],
    }
}

/// Packs per-cell logical page bits into V_TH level indices. `pages[b]`
/// carries logical bit `b` of every cell; cell `i` lands on the unique
/// level whose Gray code matches its bits.
///
/// # Panics
///
/// Panics if `pages` does not hold exactly [`CellMode::bits_per_cell`]
/// pages of equal length.
pub fn encode_levels(pages: &[BitVec], mode: CellMode) -> Vec<u8> {
    let bits = mode.bits_per_cell() as usize;
    assert_eq!(pages.len(), bits, "{mode} packs exactly {bits} logical pages per cell");
    let len = pages[0].len();
    assert!(pages.iter().all(|p| p.len() == len), "logical pages must share a length");
    let codes = gray_codes(mode);
    (0..len)
        .map(|i| {
            let code: u8 = (0..bits).map(|b| (pages[b].get(i) as u8) << b).sum();
            codes.iter().position(|&c| c == code).expect("gray code covers all bit patterns") as u8
        })
        .collect()
}

/// Recovers logical page `page` directly from per-cell levels (the
/// functional-mode decode; the sense-based path goes through
/// [`transition_levels`] + [`page_from_senses`]).
///
/// # Panics
///
/// Panics if `page` is out of range for the mode.
pub fn decode_page(levels: &[u8], mode: CellMode, page: usize) -> BitVec {
    let codes = gray_codes(mode);
    assert!(page < mode.bits_per_cell() as usize, "{mode} has no logical page {page}");
    BitVec::from_fn(levels.len(), |i| (codes[levels[i] as usize] >> page) & 1 == 1)
}

/// The read levels needed to recover logical page `page`: every adjacent
/// level boundary `t` (a conduction sense "level ≤ t", i.e. a Vref between
/// states `t` and `t + 1`) where the Gray code flips bit `page`.
///
/// # Panics
///
/// Panics if `page` is out of range for the mode.
pub fn transition_levels(mode: CellMode, page: usize) -> Vec<u8> {
    let codes = gray_codes(mode);
    assert!(page < mode.bits_per_cell() as usize, "{mode} has no logical page {page}");
    (0..codes.len() - 1)
        .filter(|&t| (codes[t] ^ codes[t + 1]) >> page & 1 == 1)
        .map(|t| t as u8)
        .collect()
}

/// Number of read levels (sense operations) needed to recover logical page
/// `page` — the per-page read cost of the density trade.
pub fn senses_for_page(mode: CellMode, page: usize) -> usize {
    transition_levels(mode, page).len()
}

/// Combines conduction senses at the page's [`transition_levels`] back
/// into the logical page. Walking levels top-down, bit `page` of the Gray
/// code flips once per transition at or above the cell's level, so
/// `bit = bit(top code) XOR (XOR over the conduction senses)`.
///
/// # Panics
///
/// Panics if the sense count does not match [`senses_for_page`] or the
/// senses have mismatched lengths.
pub fn page_from_senses(senses: &[BitVec], mode: CellMode, page: usize) -> BitVec {
    let codes = gray_codes(mode);
    assert_eq!(
        senses.len(),
        senses_for_page(mode, page),
        "{mode} page {page} decodes from exactly {} senses",
        senses_for_page(mode, page)
    );
    let top = (codes[codes.len() - 1] >> page) & 1 == 1;
    let mut out = BitVec::default();
    out.reset(senses[0].len(), top);
    for sense in senses {
        out.xor_assign(sense);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vote_pages(n: usize, bits: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let density = rng.gen::<f64>();
                BitVec::random_with_density(bits, density, &mut rng)
            })
            .collect()
    }

    #[test]
    fn packed_threshold_matches_serial_oracle() {
        let mut scratch = ThresholdScratch::default();
        let mut out = BitVec::default();
        for n in [1, 2, 3, 5, 9, 17, 64] {
            let votes = vote_pages(n, 515, n as u64);
            let refs: Vec<&BitVec> = votes.iter().collect();
            for k in [1, 2, n / 2, n.div_ceil(2), n, n + 1, n + 40] {
                if k == 0 {
                    continue;
                }
                threshold_ge_into(&refs, k, &mut scratch, &mut out);
                assert_eq!(out, threshold_ge_serial(&refs, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn threshold_extremes_are_or_and_and() {
        let votes = vote_pages(7, 256, 99);
        let refs: Vec<&BitVec> = votes.iter().collect();
        let mut scratch = ThresholdScratch::default();
        let mut out = BitVec::default();
        threshold_ge_into(&refs, 1, &mut scratch, &mut out);
        assert_eq!(out, BitVec::or_fold(&refs));
        threshold_ge_into(&refs, 7, &mut scratch, &mut out);
        assert_eq!(out, BitVec::and_fold(&refs));
        threshold_ge_into(&refs, 8, &mut scratch, &mut out);
        assert!(out.is_all_zeros(), "k > n is never satisfied");
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let mut scratch = ThresholdScratch::default();
        let mut out = BitVec::default();
        // A big first call must not leak counts into a smaller second call.
        let big = vote_pages(33, 512, 7);
        let refs: Vec<&BitVec> = big.iter().collect();
        threshold_ge_into(&refs, 17, &mut scratch, &mut out);
        let small = vote_pages(3, 130, 8);
        let refs: Vec<&BitVec> = small.iter().collect();
        threshold_ge_into(&refs, 2, &mut scratch, &mut out);
        assert_eq!(out, threshold_ge_serial(&refs, 2));
    }

    #[test]
    fn gray_codes_are_gray_and_erased_is_all_ones() {
        for mode in [CellMode::Slc, CellMode::Mlc, CellMode::Tlc] {
            let codes = gray_codes(mode);
            assert_eq!(codes.len(), mode.states() as usize);
            let bits = mode.bits_per_cell();
            assert_eq!(codes[0], (1u8 << bits) - 1, "{mode} erased level reads all-ones");
            for t in 0..codes.len() - 1 {
                assert_eq!(
                    (codes[t] ^ codes[t + 1]).count_ones(),
                    1,
                    "{mode} levels {t}/{} differ in one bit",
                    t + 1
                );
            }
            // All codes distinct => every bit pattern maps to one level.
            let mut sorted: Vec<u8> = codes.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), codes.len());
        }
    }

    #[test]
    fn per_page_sense_counts_sum_to_state_boundaries() {
        // Every one of the states−1 level boundaries is a transition for
        // exactly one logical page.
        for mode in [CellMode::Slc, CellMode::Mlc, CellMode::Tlc] {
            let total: usize =
                (0..mode.bits_per_cell() as usize).map(|p| senses_for_page(mode, p)).sum();
            assert_eq!(total, mode.states() as usize - 1, "{mode}");
        }
        assert_eq!(senses_for_page(CellMode::Mlc, 0), 1);
        assert_eq!(senses_for_page(CellMode::Mlc, 1), 2);
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut rng = StdRng::seed_from_u64(42);
        for mode in [CellMode::Slc, CellMode::Mlc, CellMode::Tlc] {
            let bits = mode.bits_per_cell() as usize;
            let pages: Vec<BitVec> = (0..bits).map(|_| BitVec::random(300, &mut rng)).collect();
            let levels = encode_levels(&pages, mode);
            for (b, page) in pages.iter().enumerate() {
                assert_eq!(&decode_page(&levels, mode, b), page, "{mode} page {b}");
            }
        }
    }

    #[test]
    fn sense_based_decode_matches_direct_decode() {
        let mut rng = StdRng::seed_from_u64(43);
        for mode in [CellMode::Slc, CellMode::Mlc, CellMode::Tlc] {
            let bits = mode.bits_per_cell() as usize;
            let pages: Vec<BitVec> = (0..bits).map(|_| BitVec::random(256, &mut rng)).collect();
            let levels = encode_levels(&pages, mode);
            for (b, page) in pages.iter().enumerate() {
                // Model each read level as a conduction sense: 1 iff the
                // cell's level is at or below the boundary.
                let senses: Vec<BitVec> = transition_levels(mode, b)
                    .into_iter()
                    .map(|t| BitVec::from_fn(levels.len(), |i| levels[i] <= t))
                    .collect();
                assert_eq!(&page_from_senses(&senses, mode, b), page, "{mode} page {b}");
            }
        }
    }
}
