//! Calibration constants taken directly from the paper.
//!
//! Every constant cites the paper section, table or figure it comes from so
//! that `EXPERIMENTS.md` can audit paper-vs-model in a single pass. Nothing
//! else in the workspace hard-codes paper numbers.

/// Operation timing parameters (Table 1 and §5.1).
pub mod timing {
    /// SLC-mode page read latency `tR` in microseconds (Table 1, §5.1:
    /// "the chips have a read latency tR = 22.5 µs").
    pub const T_R_SLC_US: f64 = 22.5;

    /// Fixed MWS latency budget in microseconds when the number of
    /// simultaneously activated blocks is capped at 4 (Table 1:
    /// "tMWS: 25 µs (Max. 4 blocks)").
    pub const T_MWS_US: f64 = 25.0;

    /// SLC-mode program latency `tPROG` in microseconds (Table 1, §5.1).
    pub const T_PROG_SLC_US: f64 = 200.0;

    /// MLC-mode program latency in microseconds (Table 1).
    pub const T_PROG_MLC_US: f64 = 500.0;

    /// TLC-mode program latency in microseconds (Table 1).
    pub const T_PROG_TLC_US: f64 = 700.0;

    /// ESP program latency in microseconds (Table 1: "tESP: 400 µs";
    /// §8.3: "2× the page-program latency compared to regular SLC").
    pub const T_ESP_US: f64 = 400.0;

    /// Block erase latency `tBERS` in microseconds (§2.1: "3–5 ms").
    pub const T_BERS_US: f64 = 3_500.0;

    /// Maximum number of simultaneously activated blocks for inter-block
    /// MWS under the fixed `T_MWS_US` budget (Table 1, §5.2).
    pub const MAX_INTER_BLOCKS: usize = 4;
}

/// MWS latency scaling (Figs. 12 and 13).
pub mod mws_latency {
    /// Relative `tMWS/tR` increase when simultaneously sensing all 48
    /// wordlines of a block (Fig. 12 / §5.2: "only 3.3% higher than tR").
    pub const INTRA_MAX_FACTOR_DELTA: f64 = 0.033;

    /// Wordline count at which the paper measured the max intra factor.
    pub const INTRA_MAX_WLS: usize = 48;

    /// Shape exponent for the intra-block curve. Chosen so that sensing
    /// ≤ 8 wordlines stays below +1% (§5.2: "When we perform intra-block
    /// MWS on eight (or fewer) WLs, tMWS is less than 1% higher than tR").
    pub const INTRA_SHAPE_EXP: f64 = 0.8;

    /// Relative `tMWS/tR` increase when activating 32 blocks (Fig. 13 /
    /// §5.2: "tMWS is 36.3% higher than tR").
    pub const INTER_MAX_FACTOR_DELTA: f64 = 0.363;

    /// Block count at which the paper measured the max inter factor.
    pub const INTER_MAX_BLOCKS: usize = 32;

    /// Block count up to which the extra wordline-precharge time is mostly
    /// hidden by the bitline precharge (§5.2: "mostly hidden ... until we
    /// activate eight blocks").
    pub const INTER_HIDDEN_BLOCKS: usize = 8;

    /// Per-block latency delta in the hidden region (small but non-zero —
    /// Fig. 13 shows a mild slope below 8 blocks).
    pub const INTER_HIDDEN_SLOPE: f64 = 0.005;
}

/// Chip power, normalized to a regular page read (Fig. 14 and §5.2).
pub mod power {
    /// Normalized power of a regular page read (the Fig. 14 baseline).
    pub const READ: f64 = 1.0;

    /// Normalized program-operation power (Fig. 14 reference line).
    pub const PROGRAM: f64 = 1.5;

    /// Normalized erase-operation power (Fig. 14 reference line; §5.2:
    /// inter-block MWS up to 4 blocks "remains lower than that of an
    /// erase operation", and 4 blocks is "about 80% power increase").
    pub const ERASE: f64 = 1.9;

    /// Normalized inter-block MWS power for 1..=5 activated blocks
    /// (Fig. 14; §5.2: one→two blocks "increases the average power
    /// consumption by about 34%").
    pub const INTER_MWS_BY_BLOCKS: [f64; 5] = [1.0, 1.34, 1.58, 1.80, 2.02];

    /// Extrapolation slope beyond 5 blocks (normalized power per block).
    pub const INTER_MWS_EXTRA_SLOPE: f64 = 0.22;

    /// Intra-block MWS power relative to a regular read. §4.1: "an
    /// intra-block MWS operation's power consumption is lower compared to
    /// a regular read because it applies V_REF to additional target WLs,
    /// to which a regular read would apply V_PASS".
    pub const INTRA_MWS: f64 = 0.95;

    /// Absolute average power of a regular page read, in milliwatts, for
    /// one plane of one die. Used to anchor the normalized Fig. 14 scale
    /// to joules in the SSD energy model. (Not reported by the paper;
    /// representative of commodity 3D TLC parts.)
    pub const READ_POWER_MW: f64 = 40.0;
}

/// Raw bit error rate calibration (Figs. 8 and 11, §3.2 and §5.2).
pub mod rber {
    /// Best-case RBER the paper quotes for MLC-mode programming with data
    /// randomization (§7: "a best-case RBER of 8.6×10⁻⁴").
    pub const MLC_RANDOMIZED_BEST: f64 = 8.6e-4;

    /// Worst-case RBER across the MLC plots (§3.2: "a bit error rate range
    /// of 8.6×10⁻⁴ to 1.6×10⁻²").
    pub const MLC_WORST: f64 = 1.6e-2;

    /// RBER increase factor when randomization is disabled, SLC mode
    /// (§3.2: "by 1.91× and 4.92× in SLC mode and MLC mode").
    pub const SLC_NO_RANDOMIZATION_FACTOR: f64 = 1.91;

    /// RBER increase factor when randomization is disabled, MLC mode.
    pub const MLC_NO_RANDOMIZATION_FACTOR: f64 = 4.92;

    /// MLC-vs-SLC RBER ratio (§3.2: "up to 4× the RBER of SLC-mode").
    pub const MLC_OVER_SLC: f64 = 4.0;

    /// `tESP/tPROG` ratio above which the paper observed zero bit errors
    /// (§5.2: "When we increase tESP by more than 90% compared to tPROG,
    /// we observe zero bit errors").
    pub const ESP_ZERO_ERROR_RATIO: f64 = 1.9;

    /// Statistical RBER bound demonstrated at the zero-error point (§5.2:
    /// "the statistical RBER of ESP is lower than 2.07×10⁻¹²").
    pub const ESP_STATISTICAL_RBER: f64 = 2.07e-12;

    /// Median-block RBER reduction at +60% program latency (§5.2:
    /// "increasing tESP by 60% achieves an order of magnitude RBER
    /// reduction").
    pub const ESP_DECADE_AT_RATIO: f64 = 1.6;

    /// Total bits validated with zero errors in the paper's MWS
    /// characterization (§5.2: "more than 4.83×10¹¹ bits in total").
    pub const VALIDATED_BITS: f64 = 4.83e11;

    /// P/E-cycle count used for worst-case characterization (§5.1).
    pub const WORST_CASE_PEC: u32 = 10_000;

    /// Retention age (months) for worst-case characterization (§5.1:
    /// "1-year retention age at 30 °C").
    pub const WORST_CASE_RETENTION_MONTHS: f64 = 12.0;
}

/// Real-device characterization campaign parameters (§5.1).
pub mod characterization {
    /// Number of chips the paper tested.
    pub const CHIPS: usize = 160;

    /// Layers / cells per NAND string of the tested chips.
    pub const STRING_LENGTH: usize = 48;

    /// Page size of the tested chips in bytes.
    pub const PAGE_BYTES: usize = 16 * 1024;

    /// Blocks sampled per chip.
    pub const BLOCKS_PER_CHIP: usize = 120;

    /// Total wordlines tested ("a total of 3,686,400 WLs").
    pub const TOTAL_WLS: usize = 3_686_400;

    /// Wafers the chips came from.
    pub const WAFERS: usize = 5;

    /// Operating temperature for the tests, °C.
    pub const TEST_TEMPERATURE_C: f64 = 85.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // named constants, checked for consistency
    fn table1_timing_is_consistent() {
        // ESP is exactly double regular SLC programming (§8.3).
        assert_eq!(timing::T_ESP_US, 2.0 * timing::T_PROG_SLC_US);
        // tMWS covers the worst intra-block case with margin.
        assert!(
            timing::T_MWS_US > timing::T_R_SLC_US * (1.0 + mws_latency::INTRA_MAX_FACTOR_DELTA)
        );
        // Program latencies are ordered SLC < MLC < TLC.
        assert!(timing::T_PROG_SLC_US < timing::T_PROG_MLC_US);
        assert!(timing::T_PROG_MLC_US < timing::T_PROG_TLC_US);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // named constants, checked for consistency
    fn fig14_power_ordering_matches_paper_text() {
        // Two blocks is ~+34% over one.
        assert!((power::INTER_MWS_BY_BLOCKS[1] - 1.34).abs() < 1e-9);
        // Four blocks (~+80%) stays below erase power.
        assert!(power::INTER_MWS_BY_BLOCKS[3] < power::ERASE);
        // Five blocks exceeds erase power (why the cap is 4).
        assert!(power::INTER_MWS_BY_BLOCKS[4] > power::ERASE);
        // Intra-block MWS is cheaper than a regular read.
        assert!(power::INTRA_MWS < power::READ);
    }

    #[test]
    fn characterization_totals_are_self_consistent() {
        // 160 chips × 120 blocks × 192 WLs/block = 3,686,400 WLs.
        let wls_per_block = characterization::TOTAL_WLS
            / (characterization::CHIPS * characterization::BLOCKS_PER_CHIP);
        assert_eq!(wls_per_block, 192);
        assert_eq!(wls_per_block % characterization::STRING_LENGTH, 0);
    }
}
