//! The per-bitline latch periphery: sensing latch (S-latch) and cache
//! latch (C-latch), with the Boolean semantics the paper derives from the
//! circuit (Figs. 3, 4 and 6).
//!
//! The circuit facts this model encodes:
//!
//! * A **normal sense** can only pull `OUT_S` down: after evaluation,
//!   `S ← S AND N` where `N` is the freshly sensed page. Initializing the
//!   S-latch (activating only M1) sets it to all-ones, so an initialized
//!   sense is a plain read (`S ← N`). Sensing *without* initialization is
//!   ParaBit's AND accumulation (Fig. 6b).
//! * An **inverse sense** (inverse read mode, §2.1/Fig. 4) swaps the
//!   M1/M2 activation order, so the sensed value lands inverted:
//!   `S ← NOT N`. Because the M2-first protocol initializes the latch,
//!   inverse senses never accumulate — a program needing both inverse and
//!   accumulated data must issue the inverse sense first (Fig. 16).
//! * The **M3 transfer** can only set the C-latch: `C ← C OR S`
//!   (Fig. 6c — ParaBit's OR accumulation). Initializing the C-latch
//!   (M4) clears it to all-zeros, so init-then-transfer is a copy.
//! * The chip's **internal XOR logic** (§6.1, used for on-chip
//!   randomization and testing) computes `C ← S XOR C`.
//!
//! Because M3 can only OR into the C-latch, AND-accumulation across
//! multiple MWS commands must happen in the S-latch, with a final
//! C-init + transfer to publish the result — see `DESIGN.md` §3.1 for how
//! this resolves the ambiguity in the paper's Fig. 16.

use fc_bits::BitVec;
use serde::{Deserialize, Serialize};

/// One plane's latch bank (every bitline has an S- and a C-latch; we model
/// the whole page-wide bank as two bit vectors).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatchBank {
    s: BitVec,
    c: BitVec,
}

impl LatchBank {
    /// Creates a latch bank for a plane with `page_bits` bitlines.
    /// Power-on state: S-latch all ones, C-latch all zeros (both
    /// "initialized").
    pub fn new(page_bits: usize) -> Self {
        Self { s: BitVec::ones(page_bits), c: BitVec::zeros(page_bits) }
    }

    /// Width of the bank in bits.
    pub fn width(&self) -> usize {
        self.s.len()
    }

    /// Initializes the S-latch (activate only M1 before evaluation):
    /// every `OUT_S` reads as one, ready to AND-accumulate.
    pub fn init_s(&mut self) {
        self.s.fill(true);
    }

    /// Initializes the C-latch (activate M4): every `OUT_L` reads as zero,
    /// ready to OR-accumulate.
    pub fn init_c(&mut self) {
        self.c.fill(false);
    }

    /// Evaluation step of a sense.
    ///
    /// * Normal mode: `S ← S AND N` — the evaluation can only pull `OUT_S`
    ///   down, which is what makes ParaBit's AND accumulation work
    ///   (Fig. 6b).
    /// * Inverse mode: `S ← NOT N` — the inverse-read protocol activates
    ///   M2 *before* evaluation (Fig. 4), which initializes the latch as a
    ///   side effect; an inverse sense therefore **cannot accumulate**.
    ///   This is why the paper's Fig. 16 example issues its inverse MWS
    ///   command first ("the order of the two MWS commands is important,
    ///   as an inverse read requires S-latch initialization, which
    ///   prevents the accumulation of the results").
    ///
    /// # Panics
    ///
    /// Panics if `sensed` does not match the bank width.
    pub fn sense(&mut self, sensed: &BitVec, inverse: bool) {
        assert_eq!(sensed.len(), self.s.len(), "sensed page width mismatch");
        if inverse {
            self.s.assign_not_from(sensed);
        } else {
            self.s.and_assign(sensed);
        }
    }

    /// M3 transfer: `C ← C OR S`.
    pub fn transfer(&mut self) {
        self.c.or_assign(&self.s);
    }

    /// Internal XOR logic: `C ← S XOR C`.
    pub fn xor_into_c(&mut self) {
        let Self { s, c } = self;
        c.xor_assign(s);
    }

    /// Current S-latch contents (`OUT_S` column).
    pub fn s_latch(&self) -> &BitVec {
        &self.s
    }

    /// Current C-latch contents (`OUT_L` column) — this is what a data-out
    /// (cache read-out) cycle streams to the flash controller.
    pub fn c_latch(&self) -> &BitVec {
        &self.c
    }

    /// Loads external data into the S-latch (data-in path used by program
    /// operations and by tests).
    ///
    /// # Panics
    ///
    /// Panics if `data` does not match the bank width.
    pub fn load_s(&mut self, data: &BitVec) {
        assert_eq!(data.len(), self.s.len(), "data width mismatch");
        self.s.assign_from(data);
    }

    /// Loads external data into the C-latch.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not match the bank width.
    pub fn load_c(&mut self, data: &BitVec) {
        assert_eq!(data.len(), self.c.len(), "data width mismatch");
        self.c.assign_from(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_page(seed: u64, bits: usize) -> BitVec {
        let mut rng = StdRng::seed_from_u64(seed);
        BitVec::random(bits, &mut rng)
    }

    #[test]
    fn initialized_sense_is_a_plain_read() {
        let mut bank = LatchBank::new(128);
        let n = rand_page(1, 128);
        bank.init_s();
        bank.sense(&n, false);
        assert_eq!(bank.s_latch(), &n);
    }

    #[test]
    fn parabit_and_accumulation() {
        // Fig. 6b: serial senses without re-initialization AND-accumulate.
        let mut bank = LatchBank::new(256);
        let pages: Vec<BitVec> = (0..5).map(|i| rand_page(10 + i, 256)).collect();
        bank.init_s();
        for p in &pages {
            bank.sense(p, false);
        }
        let expect = pages.iter().skip(1).fold(pages[0].clone(), |acc, p| acc.and(p));
        assert_eq!(bank.s_latch(), &expect);
    }

    #[test]
    fn parabit_or_accumulation() {
        // Fig. 6c: init-S before each sense, transfer after each sense.
        let mut bank = LatchBank::new(256);
        let pages: Vec<BitVec> = (0..5).map(|i| rand_page(20 + i, 256)).collect();
        bank.init_c();
        for p in &pages {
            bank.init_s();
            bank.sense(p, false);
            bank.transfer();
        }
        let expect = pages.iter().skip(1).fold(pages[0].clone(), |acc, p| acc.or(p));
        assert_eq!(bank.c_latch(), &expect);
    }

    #[test]
    fn inverse_sense_inverts() {
        let mut bank = LatchBank::new(128);
        let n = rand_page(2, 128);
        bank.init_s();
        bank.sense(&n, true);
        assert_eq!(bank.s_latch(), &n.not());
    }

    #[test]
    fn inverse_sense_cannot_accumulate() {
        // Fig. 4: the inverse protocol initializes the latch before
        // evaluation, so a second inverse sense overwrites the first.
        let mut bank = LatchBank::new(128);
        let a = rand_page(3, 128);
        let b = rand_page(4, 128);
        bank.init_s();
        bank.sense(&a, true);
        bank.sense(&b, true);
        assert_eq!(bank.s_latch(), &b.not(), "inverse sense re-initializes S");
        // The circuit-legal way to combine complements in one step is a
        // single inverse sense of the OR (inter-block MWS): De Morgan.
        bank.sense(&a.or(&b), true);
        assert_eq!(bank.s_latch(), &a.or(&b).not());
        assert_eq!(bank.s_latch(), &a.not().and(&b.not()));
    }

    #[test]
    fn transfer_only_sets_bits() {
        let mut bank = LatchBank::new(64);
        let first = rand_page(5, 64);
        let second = rand_page(6, 64);
        bank.init_c();
        bank.init_s();
        bank.sense(&first, false);
        bank.transfer();
        bank.init_s();
        bank.sense(&second, false);
        bank.transfer();
        // C can never lose a bit through M3.
        assert_eq!(bank.c_latch(), &first.or(&second));
    }

    #[test]
    fn copy_requires_c_init() {
        let mut bank = LatchBank::new(64);
        bank.load_c(&BitVec::ones(64));
        bank.init_s();
        bank.sense(&BitVec::zeros(64), false);
        // Without C-init the stale ones stay.
        bank.transfer();
        assert!(bank.c_latch().is_all_ones());
        // With C-init the transfer is a clean copy.
        bank.init_c();
        bank.transfer();
        assert!(bank.c_latch().is_all_zeros());
    }

    #[test]
    fn xor_logic_and_xnor_identity() {
        // §6.1 Eq. (2): A XNOR B == (NOT A) XOR B.
        let a = rand_page(7, 128);
        let b = rand_page(8, 128);
        let mut bank = LatchBank::new(128);
        // Sense A inverted into S, load B into C, then XOR.
        bank.init_s();
        bank.sense(&a, true);
        bank.load_c(&b);
        bank.xor_into_c();
        let xnor_expect = a.xor(&b).not();
        assert_eq!(bank.c_latch(), &xnor_expect);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut bank = LatchBank::new(64);
        bank.sense(&BitVec::zeros(32), false);
    }

    #[test]
    fn power_on_state() {
        let bank = LatchBank::new(32);
        assert!(bank.s_latch().is_all_ones());
        assert!(bank.c_latch().is_all_zeros());
        assert_eq!(bank.width(), 32);
    }
}
