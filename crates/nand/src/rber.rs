//! Closed-form raw-bit-error-rate model calibrated to the paper's 160-chip
//! characterization (Figs. 8 and 11, §3.2, §5.2).
//!
//! The model is multiplicative:
//!
//! ```text
//! RBER = base(mode) × rand_penalty(mode, randomized)
//!        × pec_growth(PEC) × retention_growth(months)
//!        × esp_decay(tESP/tPROG) × block_grade
//! ```
//!
//! Anchors (all from the paper, see [`crate::calib::rber`]):
//! * MLC + randomization, fresh: 8.6×10⁻⁴ (§7)
//! * MLC worst case (no randomization, 10K PEC, 1 yr): 1.6×10⁻² (§3.2)
//! * randomization-off penalty: 1.91× (SLC), 4.92× (MLC) (§3.2)
//! * MLC ≈ 4× SLC (§3.2)
//! * ESP: one decade of improvement at ratio 1.6, zero observed errors at
//!   ratio ≥ 1.9 (statistically < 2.07×10⁻¹²) (§5.2, Fig. 11)

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::calib::rber as c;
use crate::geometry::CellMode;
use crate::ispp::ProgramScheme;
use crate::stress::StressState;

/// Block-to-block reliability variation, as plotted in Fig. 11
/// (worst / median / best block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockGrade {
    /// The worst block of the tested population.
    Worst,
    /// The median block.
    Median,
    /// The best block.
    Best,
}

impl BlockGrade {
    /// RBER multiplier relative to the median block.
    pub fn multiplier(self) -> f64 {
        match self {
            BlockGrade::Worst => 2.5,
            BlockGrade::Median => 1.0,
            BlockGrade::Best => 0.25,
        }
    }
}

/// The calibrated RBER model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RberModel {
    /// RBER of fresh SLC with randomization (the anchor everything else is
    /// expressed relative to). Derived: MLC anchor / MLC-over-SLC ratio.
    pub slc_randomized_fresh: f64,
    /// P/E-cycle growth coefficient (`1 + a·(PEC/1000)^pec_exp`).
    pub pec_alpha: f64,
    /// P/E-cycle growth exponent.
    pub pec_exp: f64,
    /// Retention growth coefficient (`1 + b·ln(1 + months/t0)`).
    pub retention_beta: f64,
    /// Retention time constant in months.
    pub retention_t0: f64,
    /// ESP improvement in decades per unit of `(ratio - 1)` (Fig. 11:
    /// one decade at ratio 1.6 → 1/0.6 decades per unit).
    pub esp_decades_per_ratio: f64,
    /// `tESP/tPROG` at and above which no errors are observed (§5.2).
    pub esp_zero_ratio: f64,
}

impl Default for RberModel {
    fn default() -> Self {
        Self {
            slc_randomized_fresh: c::MLC_RANDOMIZED_BEST / c::MLC_OVER_SLC,
            pec_alpha: 0.10,
            pec_exp: 1.0,
            retention_beta: 0.28,
            retention_t0: 0.5,
            esp_decades_per_ratio: 1.0 / (c::ESP_DECADE_AT_RATIO - 1.0),
            esp_zero_ratio: c::ESP_ZERO_ERROR_RATIO,
        }
    }
}

impl RberModel {
    /// The paper-calibrated model.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Expected RBER for a page programmed with `scheme`, with or without
    /// data randomization, after the given stress.
    ///
    /// Returns exactly `0.0` for ESP at or above the zero-error ratio —
    /// the paper's core reliability claim (§5.2). The statistical upper
    /// bound for that regime is [`crate::calib::rber::ESP_STATISTICAL_RBER`].
    pub fn rber(&self, scheme: ProgramScheme, randomized: bool, stress: StressState) -> f64 {
        self.rber_graded(scheme, randomized, stress, BlockGrade::Median)
    }

    /// Like [`Self::rber`] but for a specific block grade (Fig. 11 plots
    /// worst/median/best).
    pub fn rber_graded(
        &self,
        scheme: ProgramScheme,
        randomized: bool,
        stress: StressState,
        grade: BlockGrade,
    ) -> f64 {
        let esp_ratio = match scheme {
            ProgramScheme::Esp { ratio } => ratio.clamp(1.0, 2.5),
            _ => 1.0,
        };
        if matches!(scheme, ProgramScheme::Esp { .. }) && esp_ratio >= self.esp_zero_ratio {
            return 0.0;
        }
        let mode = scheme.cell_mode();
        let base = self.slc_randomized_fresh * mode_factor(mode);
        let rand_factor = if randomized { 1.0 } else { no_randomization_factor(mode) };
        let growth = self.pec_growth(stress.pec) * self.retention_growth(stress.retention_months);
        let esp = 10f64.powf(-self.esp_decades_per_ratio * (esp_ratio - 1.0));
        base * rand_factor * growth * esp * grade.multiplier()
    }

    /// P/E-cycle growth factor.
    pub fn pec_growth(&self, pec: u32) -> f64 {
        1.0 + self.pec_alpha * (pec as f64 / 1000.0).powf(self.pec_exp)
    }

    /// Retention growth factor.
    pub fn retention_growth(&self, months: f64) -> f64 {
        1.0 + self.retention_beta * (1.0 + months.max(0.0) / self.retention_t0).ln()
    }

    /// Samples the number of raw bit errors in a page of `page_bits` bits
    /// (binomial via per-trial simulation for small expected counts,
    /// normal approximation for large ones).
    pub fn sample_errors<R: Rng + ?Sized>(
        &self,
        scheme: ProgramScheme,
        randomized: bool,
        stress: StressState,
        page_bits: usize,
        rng: &mut R,
    ) -> usize {
        let p = self.rber(scheme, randomized, stress);
        sample_binomial(page_bits, p, rng)
    }
}

/// RBER multiplier for storing more bits per cell (§3.2).
fn mode_factor(mode: CellMode) -> f64 {
    match mode {
        CellMode::Slc => 1.0,
        CellMode::Mlc => c::MLC_OVER_SLC,
        // TLC extrapolated beyond the paper's MLC data (used only for
        // completeness; the paper's IFP data is SLC/MLC).
        CellMode::Tlc => c::MLC_OVER_SLC * 3.0,
    }
}

/// RBER multiplier for disabling data randomization (§3.2).
fn no_randomization_factor(mode: CellMode) -> f64 {
    match mode {
        CellMode::Slc => c::SLC_NO_RANDOMIZATION_FACTOR,
        CellMode::Mlc | CellMode::Tlc => c::MLC_NO_RANDOMIZATION_FACTOR,
    }
}

/// Samples Binomial(n, p). Uses the normal approximation when `n·p` is
/// large and exact Bernoulli summation otherwise.
pub fn sample_binomial<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> usize {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if mean > 64.0 && n as f64 * (1.0 - p) > 64.0 {
        let sigma = (mean * (1.0 - p)).sqrt();
        let z = crate::vth::sample_standard_normal(rng);
        return (mean + sigma * z).round().clamp(0.0, n as f64) as usize;
    }
    if mean < 16.0 {
        // Sparse case: geometric skipping (O(errors), not O(n)).
        let mut count = 0usize;
        let mut i = 0usize;
        let log_q = (1.0 - p).ln();
        loop {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let skip = (u.ln() / log_q).floor() as usize;
            i = match i.checked_add(skip) {
                Some(v) => v,
                None => break,
            };
            if i >= n {
                break;
            }
            count += 1;
            i += 1;
        }
        return count;
    }
    (0..n).filter(|_| rng.gen_bool(p)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn worst() -> StressState {
        StressState::worst_case()
    }

    #[test]
    fn anchor_mlc_randomized_fresh() {
        let m = RberModel::paper();
        let r = m.rber(ProgramScheme::Mlc, true, StressState::fresh());
        let rel = (r - c::MLC_RANDOMIZED_BEST).abs() / c::MLC_RANDOMIZED_BEST;
        assert!(rel < 0.05, "MLC fresh anchor off by {rel}: {r}");
    }

    #[test]
    fn anchor_mlc_unrandomized_worst() {
        let m = RberModel::paper();
        let r = m.rber(ProgramScheme::Mlc, false, worst());
        let rel = (r - c::MLC_WORST).abs() / c::MLC_WORST;
        assert!(rel < 0.25, "MLC worst anchor off by {rel}: {r}");
    }

    #[test]
    fn randomization_factors_match_paper() {
        let m = RberModel::paper();
        let s = worst();
        let slc_ratio = m.rber(ProgramScheme::Slc, false, s) / m.rber(ProgramScheme::Slc, true, s);
        let mlc_ratio = m.rber(ProgramScheme::Mlc, false, s) / m.rber(ProgramScheme::Mlc, true, s);
        assert!((slc_ratio - 1.91).abs() < 1e-9);
        assert!((mlc_ratio - 4.92).abs() < 1e-9);
    }

    #[test]
    fn mlc_is_4x_slc() {
        let m = RberModel::paper();
        let s = worst();
        let ratio = m.rber(ProgramScheme::Mlc, true, s) / m.rber(ProgramScheme::Slc, true, s);
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rber_grows_with_pec_and_retention() {
        let m = RberModel::paper();
        let mut last = 0.0;
        for pec in [0u32, 1000, 2000, 3000, 6000, 10_000] {
            let r = m.rber(
                ProgramScheme::Slc,
                true,
                StressState { pec, retention_months: 6.0, reads_since_program: 0 },
            );
            assert!(r > last, "RBER must grow with PEC ({pec}: {r})");
            last = r;
        }
        let mut last = 0.0;
        for months in [0.0, 1.0, 2.0, 3.0, 6.0, 12.0] {
            let r = m.rber(
                ProgramScheme::Slc,
                true,
                StressState { pec: 10_000, retention_months: months, reads_since_program: 0 },
            );
            assert!(r > last, "RBER must grow with retention ({months}: {r})");
            last = r;
        }
    }

    #[test]
    fn slc_rber_far_above_uber_requirement() {
        // §3.2: "around 12 orders of magnitude higher than the UBER
        // requirement (<1e-15 to 1e-16)".
        let m = RberModel::paper();
        let r = m.rber(ProgramScheme::Slc, true, worst());
        assert!(r > 1e-4, "SLC worst-case RBER {r} should be ~1e-3");
        assert!(r / 1e-15 > 1e10, "should be >10 decades above UBER");
    }

    #[test]
    fn esp_decade_at_1_6_and_zero_at_1_9() {
        let m = RberModel::paper();
        let s = worst();
        let base = m.rber(ProgramScheme::Esp { ratio: 1.0 }, false, s);
        let at16 = m.rber(ProgramScheme::Esp { ratio: 1.6 }, false, s);
        assert!((base / at16 - 10.0).abs() < 0.5, "decade at 1.6: {}", base / at16);
        assert_eq!(m.rber(ProgramScheme::Esp { ratio: 1.9 }, false, s), 0.0);
        assert_eq!(m.rber(ProgramScheme::Esp { ratio: 2.0 }, false, s), 0.0);
        assert!(m.rber(ProgramScheme::Esp { ratio: 1.89 }, false, s) > 0.0);
    }

    #[test]
    fn esp_ratio_one_equals_unrandomized_slc() {
        let m = RberModel::paper();
        let s = worst();
        let esp = m.rber(ProgramScheme::Esp { ratio: 1.0 }, false, s);
        let slc = m.rber(ProgramScheme::Slc, false, s);
        assert!((esp - slc).abs() / slc < 1e-12);
    }

    #[test]
    fn block_grades_are_ordered() {
        let m = RberModel::paper();
        let s = worst();
        let w = m.rber_graded(ProgramScheme::Slc, false, s, BlockGrade::Worst);
        let med = m.rber_graded(ProgramScheme::Slc, false, s, BlockGrade::Median);
        let b = m.rber_graded(ProgramScheme::Slc, false, s, BlockGrade::Best);
        assert!(w > med && med > b);
    }

    #[test]
    fn binomial_sampler_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        // Sparse regime.
        let total: usize = (0..2000).map(|_| sample_binomial(10_000, 1e-3, &mut rng)).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 10.0).abs() < 0.8, "sparse mean {mean}");
        // Normal-approximation regime.
        let total: usize = (0..500).map(|_| sample_binomial(100_000, 0.01, &mut rng)).sum();
        let mean = total as f64 / 500.0;
        assert!((mean - 1000.0).abs() < 15.0, "normal-approx mean {mean}");
        // Edge cases.
        assert_eq!(sample_binomial(100, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(100, 1.0, &mut rng), 100);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
    }

    #[test]
    fn sample_errors_is_zero_for_esp_operating_point() {
        let m = RberModel::paper();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let e = m.sample_errors(
                ProgramScheme::esp_default(),
                false,
                worst(),
                16 * 1024 * 8,
                &mut rng,
            );
            assert_eq!(e, 0);
        }
    }
}
