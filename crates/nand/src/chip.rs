//! The NAND chip state machine: executes [`Command`]s against the cell
//! array, drives the latch banks, injects reliability behaviour, and
//! accounts latency and energy per operation.
//!
//! A [`NandChip`] models one die. Each plane has its own latch bank (as in
//! real chips); blocks track P/E cycles and reads since their last program
//! so the stress and RBER models see the right conditions.

use fc_bits::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::calib::timing;
use crate::command::{Command, Feature, IscmFlags, MwsTarget};
use crate::config::{ChipConfig, Fidelity};
use crate::error::NandError;
use crate::geometry::{BlockAddr, WlAddr};
use crate::ispp::{self, ProgramScheme};
use crate::latch::LatchBank;
use crate::mlsense;
use crate::power;
use crate::randomizer::Randomizer;
use crate::sense;
use crate::stress::StressState;

/// Raw state of one programmed wordline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageState {
    /// Raw stored bits (post-randomization if the page was scrambled).
    pub data: BitVec,
    /// Programming scheme used.
    pub scheme: ProgramScheme,
    /// Whether the on-chip scrambler was engaged.
    pub randomized: bool,
    /// Physics mode only: per-cell threshold voltages at program time.
    #[serde(skip)]
    pub vth: Option<Vec<f64>>,
    /// Multi-level pages only: the per-cell V_TH level index each cell
    /// was programmed to (`mlsense::encode_levels`). `None` for
    /// single-bit (SLC/ESP) pages.
    #[serde(default)]
    pub levels: Option<Vec<u8>>,
}

/// Grown per-block stuck-at columns: a block whose strings developed a
/// permanent defect after fabrication (the grown-defect class real
/// drives track in a bad-block/defect list). Any sense touching the
/// block reads the stuck value on the masked columns regardless of the
/// stored data — the stored bits themselves are unharmed, which is
/// exactly why unprotected (raw, ECC-less) pages corrupt silently and
/// need cross-die parity to recover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StuckColumns {
    /// Columns forced to the stuck value.
    pub mask: BitVec,
    /// The value each masked column reads as (zero outside the mask).
    pub value: BitVec,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Block {
    pages: Vec<Option<PageState>>,
    pec: u32,
    reads_since_program: u64,
    /// Grown stuck-at columns, if the block has failed (fault injection /
    /// grown defects). `None` for healthy blocks.
    #[serde(default)]
    stuck: Option<StuckColumns>,
}

impl Block {
    fn new(wls: usize) -> Self {
        Self { pages: vec![None; wls], pec: 0, reads_since_program: 0, stuck: None }
    }
}

#[derive(Debug)]
struct Plane {
    blocks: Vec<Block>,
    latches: LatchBank,
    /// Permanently defective bitline columns (stuck-at faults).
    faulty_mask: BitVec,
    /// The value each faulty column is stuck at.
    faulty_stuck: BitVec,
}

/// Result of executing one command.
#[derive(Debug, Clone, PartialEq)]
pub struct CmdOutput {
    /// Operation latency in microseconds.
    pub latency_us: f64,
    /// Operation energy in microjoules.
    pub energy_uj: f64,
    /// Chip power during the operation, normalized to a regular read
    /// (Fig. 14 scale). Zero for pure latch/feature operations.
    pub norm_power: f64,
    page: Option<BitVec>,
}

impl CmdOutput {
    fn latch_only() -> Self {
        Self { latency_us: 0.0, energy_uj: 0.0, norm_power: 0.0, page: None }
    }

    /// Page data produced by the command (the C-latch snapshot after a
    /// transfer, or the streamed-out data of a `ReadOut`).
    pub fn page(&self) -> Option<&BitVec> {
        self.page.as_ref()
    }

    /// Consumes the output, returning the page data.
    pub fn into_page(self) -> Option<BitVec> {
        self.page
    }
}

/// Cumulative operation counters for one chip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChipStats {
    /// Sensing operations (regular reads + MWS + erase-verify).
    pub senses: u64,
    /// Of which multi-wordline (more than one WL or more than one block).
    pub mws_ops: u64,
    /// Program operations.
    pub programs: u64,
    /// Erase operations.
    pub erases: u64,
    /// Raw bit errors injected into sensed data (functional mode).
    pub injected_errors: u64,
    /// Total busy time, microseconds.
    pub busy_us: f64,
    /// Total energy, microjoules.
    pub energy_uj: f64,
}

/// Reusable buffers for the sensing hot path.
///
/// # Scratch-reuse contract
///
/// Every sense (`Read`, `Mws`, `EraseVerify`) evaluates its per-block
/// ANDs, the inter-block OR, and any error injection **into these
/// buffers** instead of allocating. The buffers are owned by the chip and
/// live as long as it does, so steady-state sensing performs zero heap
/// allocations once each buffer has grown to the chip's page size:
///
/// * `per_block` is an arena of per-block AND results — one entry per
///   simultaneously activated block, grown on demand and never shrunk.
/// * `sensed` holds the OR-combined page that feeds the latch bank.
/// * `corrupt` receives a copy of a stored page **only** when that page
///   actually gets injected errors (error-free pages are ANDed in place
///   from the stored data, with no copy at all).
/// * `flip_idx` is the error-injection working memory between senses.
/// * `stress_buf` is the physics-mode working population: the stored
///   V_TH vector is copied in, stress-shifted, and threshold-compared —
///   the stored populations themselves are never cloned.
///
/// Buffer contents are unspecified between senses; each sense fully
/// re-initializes what it reads. Nothing outside the sense path may hold
/// references into the scratch across a sense.
#[derive(Debug, Default)]
pub struct SenseScratch {
    per_block: Vec<BitVec>,
    sensed: BitVec,
    corrupt: BitVec,
    flip_idx: Vec<usize>,
    stress_buf: Vec<f64>,
    /// Per-wordline vote pages of a threshold MWS (1 = programmed), an
    /// arena like `per_block` — grown on demand, never shrunk.
    votes: Vec<BitVec>,
    /// The bit-sliced vote counter's working planes.
    threshold: mlsense::ThresholdScratch,
}

impl SenseScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One simulated NAND die.
pub struct NandChip {
    config: ChipConfig,
    planes: Vec<Plane>,
    randomizer: Randomizer,
    rng: StdRng,
    retention_months: f64,
    esp_ratio_default: f64,
    stats: ChipStats,
    scratch: SenseScratch,
}

impl std::fmt::Debug for NandChip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NandChip")
            .field("geometry", &self.config.geometry)
            .field("fidelity", &self.config.fidelity)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl NandChip {
    /// Creates a chip in the fully erased state. Fabrication defects
    /// (stuck-at bitline columns) are sampled per plane from the
    /// configured fraction.
    pub fn new(config: ChipConfig) -> Self {
        let page_bits = config.geometry.page_bits();
        let mut fab_rng = StdRng::seed_from_u64(config.seed ^ 0xFAB);
        let planes = (0..config.geometry.planes)
            .map(|_| {
                let faulty_mask = if config.faulty_column_fraction > 0.0 {
                    BitVec::random_with_density(
                        page_bits,
                        config.faulty_column_fraction,
                        &mut fab_rng,
                    )
                } else {
                    BitVec::zeros(page_bits)
                };
                let faulty_stuck = BitVec::random(page_bits, &mut fab_rng).and(&faulty_mask);
                Plane {
                    blocks: (0..config.geometry.blocks_per_plane)
                        .map(|_| Block::new(config.geometry.wls_per_block as usize))
                        .collect(),
                    latches: LatchBank::new(page_bits),
                    faulty_mask,
                    faulty_stuck,
                }
            })
            .collect();
        let rng = StdRng::seed_from_u64(config.seed);
        let randomizer = Randomizer::new(config.seed ^ 0x5EED_5EED);
        Self {
            config,
            planes,
            randomizer,
            rng,
            retention_months: 0.0,
            esp_ratio_default: timing::T_ESP_US / timing::T_PROG_SLC_US,
            stats: ChipStats::default(),
            scratch: SenseScratch::new(),
        }
    }

    /// The chip's configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Cumulative operation statistics.
    pub fn stats(&self) -> ChipStats {
        self.stats
    }

    /// The on-chip scrambler (the SSD controller model uses this to
    /// derandomize data read from randomized pages).
    pub fn randomizer(&self) -> &Randomizer {
        &self.randomizer
    }

    /// Sets the equivalent retention age seen by all stored data. The
    /// paper's testbed accelerates aging with temperature (Arrhenius);
    /// experiments here set the equivalent age directly.
    pub fn set_retention_months(&mut self, months: f64) {
        self.retention_months = months;
    }

    /// Current equivalent retention age, months.
    pub fn retention_months(&self) -> f64 {
        self.retention_months
    }

    /// Current ESP latency-ratio default (SET FEATURE adjustable).
    pub fn esp_ratio_default(&self) -> f64 {
        self.esp_ratio_default
    }

    /// P/E-cycle count of a block.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range address.
    pub fn block_pec(&self, block: BlockAddr) -> Result<u32, NandError> {
        self.config.geometry.validate_block(block)?;
        Ok(self.planes[block.plane as usize].blocks[block.block as usize].pec)
    }

    /// Ages a block by `cycles` program/erase cycles without simulating
    /// each one (the paper's PEC-conditioning loop, §5.1).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range address.
    pub fn cycle_block(&mut self, block: BlockAddr, cycles: u32) -> Result<(), NandError> {
        self.config.geometry.validate_block(block)?;
        let b = &mut self.planes[block.plane as usize].blocks[block.block as usize];
        b.pec = b.pec.saturating_add(cycles);
        Ok(())
    }

    /// Reads since a block's last program/erase — the read-disturb state
    /// the retry ladder and scrub policy condition on.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range address.
    pub fn block_reads_since_program(&self, block: BlockAddr) -> Result<u64, NandError> {
        self.config.geometry.validate_block(block)?;
        Ok(self.planes[block.plane as usize].blocks[block.block as usize].reads_since_program)
    }

    /// Adds `reads` to a block's reads-since-program counter without
    /// issuing the senses — the fault-injection path for read-disturb
    /// conditioning (issuing tens of thousands of real reads would also
    /// perturb the RNG streams seeded tests depend on).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range address.
    pub fn add_block_reads(&mut self, block: BlockAddr, reads: u64) -> Result<(), NandError> {
        self.config.geometry.validate_block(block)?;
        let b = &mut self.planes[block.plane as usize].blocks[block.block as usize];
        b.reads_since_program = b.reads_since_program.saturating_add(reads);
        Ok(())
    }

    /// Marks a block's columns as stuck-at (grown defect / fault
    /// injection): every later sense of the block reads `value` on the
    /// `mask` columns instead of the stored data. Stored bits are
    /// untouched — the defect lives in the sensing path, like real grown
    /// defects do.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range address or masks that do not
    /// match the page size.
    pub fn set_block_stuck(
        &mut self,
        block: BlockAddr,
        mask: BitVec,
        value: BitVec,
    ) -> Result<(), NandError> {
        self.config.geometry.validate_block(block)?;
        let expected = self.config.geometry.page_bits();
        if mask.len() != expected || value.len() != expected {
            return Err(NandError::PageSizeMismatch { got: mask.len(), expected });
        }
        let stuck = StuckColumns { value: value.and(&mask), mask };
        self.planes[block.plane as usize].blocks[block.block as usize].stuck = Some(stuck);
        Ok(())
    }

    /// The grown stuck-column state of a block, if it has been marked
    /// failed.
    pub fn block_stuck(&self, block: BlockAddr) -> Option<&StuckColumns> {
        self.config.geometry.validate_block(block).ok()?;
        self.planes[block.plane as usize].blocks[block.block as usize].stuck.as_ref()
    }

    /// Senses one wordline at a recalibrated read reference voltage —
    /// nominal `V_REF` plus `vref_offset_v` volts — the read-retry
    /// primitive (sense-level shifting is a standard SET-FEATURE knob on
    /// commodity chips; see [`crate::sense::retry_ladder`] for how the
    /// stress model picks the offsets). An offset of 0.0 is exactly a
    /// regular read.
    ///
    /// # Errors
    ///
    /// Same errors as a regular [`Command::Read`].
    pub fn read_shifted(
        &mut self,
        addr: WlAddr,
        vref_offset_v: f64,
    ) -> Result<CmdOutput, NandError> {
        let out = self.exec_mws(
            IscmFlags::single_read(),
            &[MwsTarget::new(addr.block(), &[addr.wl])],
            false,
            vref_offset_v,
        )?;
        self.stats.busy_us += out.latency_us;
        self.stats.energy_uj += out.energy_uj;
        Ok(out)
    }

    /// Raw stored bits of a page, if programmed. Post-randomization if the
    /// page was scrambled; no error injection (this is the ground truth).
    pub fn page_raw(&self, addr: WlAddr) -> Option<&BitVec> {
        self.config.geometry.validate_wl(addr).ok()?;
        self.planes[addr.plane as usize].blocks[addr.block as usize].pages[addr.wl as usize]
            .as_ref()
            .map(|p| &p.data)
    }

    /// Convenience: reads a page and undoes randomization if it was
    /// scrambled (combines the chip read and the controller descrambling
    /// step).
    ///
    /// # Errors
    ///
    /// Propagates any chip error from the underlying read.
    pub fn read_logical(&mut self, addr: WlAddr) -> Result<BitVec, NandError> {
        let randomized = self
            .page_state(addr)
            .ok_or(NandError::ReadOfUnwrittenPage {
                plane: addr.plane,
                block: addr.block,
                wl: addr.wl,
            })?
            .randomized;
        let out = self.execute(Command::Read { addr, inverse: false })?;
        let raw = out.into_page().expect("read always produces a page");
        Ok(if randomized { self.randomizer.derandomize(addr, &raw) } else { raw })
    }

    fn page_state(&self, addr: WlAddr) -> Option<&PageState> {
        self.config.geometry.validate_wl(addr).ok()?;
        self.planes[addr.plane as usize].blocks[addr.block as usize].pages[addr.wl as usize]
            .as_ref()
    }

    /// Profiles the permanently faulty bitline columns of a plane by the
    /// standard two-pattern test: program all-ones and all-zeros pages
    /// into two wordlines of `scratch_block`, read both back, and flag
    /// any column that misreads either pattern persistently (transient
    /// injected errors are filtered by majority over `rounds` reads).
    ///
    /// §5.1 footnote 9: "faulty cells can be profiled and excluded for
    /// the purpose of Flash-Cosmos".
    ///
    /// # Errors
    ///
    /// Propagates chip errors; the scratch block is erased on entry and
    /// on exit.
    pub fn profile_faulty_columns(
        &mut self,
        scratch_block: BlockAddr,
        rounds: u32,
    ) -> Result<BitVec, NandError> {
        self.config.geometry.validate_block(scratch_block)?;
        let bits = self.config.geometry.page_bits();
        self.execute(Command::Erase { block: scratch_block })?;
        self.execute(Command::Program {
            addr: scratch_block.wordline(0),
            data: BitVec::ones(bits),
            scheme: crate::ispp::ProgramScheme::esp_default(),
            randomize: false,
        })?;
        self.execute(Command::Program {
            addr: scratch_block.wordline(1),
            data: BitVec::zeros(bits),
            scheme: crate::ispp::ProgramScheme::esp_default(),
            randomize: false,
        })?;
        let mut miscount = vec![0u32; bits];
        for _ in 0..rounds {
            let ones = self
                .execute(Command::Read { addr: scratch_block.wordline(0), inverse: false })?
                .into_page()
                .expect("read produces a page");
            let zeros = self
                .execute(Command::Read { addr: scratch_block.wordline(1), inverse: false })?
                .into_page()
                .expect("read produces a page");
            for (i, m) in miscount.iter_mut().enumerate() {
                if !ones.get(i) || zeros.get(i) {
                    *m += 1;
                }
            }
        }
        self.execute(Command::Erase { block: scratch_block })?;
        // Persistent across a majority of rounds → permanent defect.
        Ok(BitVec::from_fn(bits, |i| miscount[i] * 2 > rounds))
    }

    /// The fabrication-time faulty-column map of a plane (ground truth
    /// for validating profiling).
    pub fn faulty_columns(&self, plane: u32) -> Option<&BitVec> {
        self.planes.get(plane as usize).map(|p| &p.faulty_mask)
    }

    /// Executes one command.
    ///
    /// # Errors
    ///
    /// Returns a [`NandError`] for invalid addresses, programming rule
    /// violations, malformed MWS target lists, or power-cap violations.
    pub fn execute(&mut self, cmd: Command) -> Result<CmdOutput, NandError> {
        let out = match cmd {
            Command::Read { addr, inverse } => {
                let flags = if inverse {
                    IscmFlags::single_inverse_read()
                } else {
                    IscmFlags::single_read()
                };
                self.exec_mws(flags, &[MwsTarget::new(addr.block(), &[addr.wl])], false, 0.0)?
            }
            Command::Mws { flags, targets } => self.exec_mws(flags, &targets, false, 0.0)?,
            Command::ThresholdMws { target, k } => self.exec_threshold_mws(target, k)?,
            Command::ProgramMl { addr, pages, scheme } => {
                self.exec_program_ml(addr, pages, scheme)?
            }
            Command::ReadLevel { addr, level } => self.exec_read_level(addr, level)?,
            Command::EraseVerify { block } => {
                self.config.geometry.validate_block(block)?;
                let n = self.config.geometry.wls_per_block.min(64);
                self.exec_mws(IscmFlags::single_read(), &[MwsTarget::all_wls(block, n)], true, 0.0)?
            }
            Command::Program { addr, data, scheme, randomize } => {
                self.exec_program(addr, data, scheme, randomize)?
            }
            Command::Erase { block } => self.exec_erase(block)?,
            Command::XorLatch { plane } => {
                self.validate_plane(plane)?;
                self.planes[plane as usize].latches.xor_into_c();
                CmdOutput::latch_only()
            }
            Command::ReadOut { plane } => {
                self.validate_plane(plane)?;
                let page = self.planes[plane as usize].latches.c_latch().clone();
                CmdOutput { page: Some(page), ..CmdOutput::latch_only() }
            }
            Command::Copyback { from, to } => self.exec_copyback(from, to)?,
            Command::SetFeature { feature } => self.exec_set_feature(feature)?,
        };
        self.stats.busy_us += out.latency_us;
        self.stats.energy_uj += out.energy_uj;
        Ok(out)
    }

    fn validate_plane(&self, plane: u32) -> Result<(), NandError> {
        if plane >= self.config.geometry.planes {
            return Err(NandError::AddressOutOfRange { what: "plane", plane, block: 0, wl: 0 });
        }
        Ok(())
    }

    fn exec_program(
        &mut self,
        addr: WlAddr,
        data: BitVec,
        scheme: ProgramScheme,
        randomize: bool,
    ) -> Result<CmdOutput, NandError> {
        self.config.geometry.validate_wl(addr)?;
        let expected = self.config.geometry.page_bits();
        if data.len() != expected {
            return Err(NandError::PageSizeMismatch { got: data.len(), expected });
        }
        if self.page_state(addr).is_some() {
            return Err(NandError::ProgramWithoutErase {
                plane: addr.plane,
                block: addr.block,
                wl: addr.wl,
            });
        }
        let stored = if randomize { self.randomizer.randomize(addr, &data) } else { data };

        let vth = if matches!(self.config.fidelity, Fidelity::Physics) {
            // SLC encoding: bit 1 = erased, bit 0 = programmed. The
            // packed page feeds the word-parallel ISPP engine directly.
            Some(ispp::program_page(&stored, scheme, &mut self.rng).vth)
        } else {
            None
        };

        let latency = scheme.program_latency_us();
        let energy = power::program_energy_uj(latency);
        let block = &mut self.planes[addr.plane as usize].blocks[addr.block as usize];
        block.pages[addr.wl as usize] =
            Some(PageState { data: stored, scheme, randomized: randomize, vth, levels: None });
        block.reads_since_program = 0;

        // Physics: programming disturbs the neighbouring wordlines
        // (program interference, §2.2).
        if matches!(self.config.fidelity, Fidelity::Physics) {
            let model = self.config.stress_model;
            let wl = addr.wl as usize;
            let block = &mut self.planes[addr.plane as usize].blocks[addr.block as usize];
            for neighbour in [wl.checked_sub(1), Some(wl + 1)].into_iter().flatten() {
                if let Some(Some(p)) = block.pages.get_mut(neighbour) {
                    if let Some(vth) = p.vth.as_mut() {
                        model.apply_interference(vth, &mut self.rng);
                    }
                }
            }
        }

        self.stats.programs += 1;
        Ok(CmdOutput {
            latency_us: latency,
            energy_uj: energy,
            norm_power: power::program_power_norm(),
            page: None,
        })
    }

    fn exec_erase(&mut self, block: BlockAddr) -> Result<CmdOutput, NandError> {
        self.config.geometry.validate_block(block)?;
        let b = &mut self.planes[block.plane as usize].blocks[block.block as usize];
        for p in &mut b.pages {
            *p = None;
        }
        b.pec = b.pec.saturating_add(1);
        b.reads_since_program = 0;
        self.stats.erases += 1;
        Ok(CmdOutput {
            latency_us: timing::T_BERS_US,
            energy_uj: power::erase_energy_uj(),
            norm_power: power::erase_power_norm(),
            page: None,
        })
    }

    fn exec_copyback(&mut self, from: WlAddr, to: WlAddr) -> Result<CmdOutput, NandError> {
        // Copyback is die-internal: the page register bridges the planes,
        // so source and destination may differ in plane (but never leave
        // the chip — cross-die moves go through the controller).
        self.config.geometry.validate_wl(from)?;
        self.config.geometry.validate_wl(to)?;
        let src = self
            .page_state(from)
            .ok_or(NandError::ReadOfUnwrittenPage {
                plane: from.plane,
                block: from.block,
                wl: from.wl,
            })?
            .clone();
        // Internal read (with error injection — copyback copies raw bits,
        // errors and all, which is why real SSDs bound copyback chains).
        let read = self.exec_mws(
            IscmFlags::single_read(),
            &[MwsTarget::new(from.block(), &[from.wl])],
            false,
            0.0,
        )?;
        let data = read.page.clone().expect("read produces a page");
        let prog = self.exec_program(to, data, src.scheme, false)?;
        Ok(CmdOutput {
            latency_us: read.latency_us + prog.latency_us,
            energy_uj: read.energy_uj + prog.energy_uj,
            norm_power: prog.norm_power,
            page: None,
        })
    }

    fn exec_set_feature(&mut self, feature: Feature) -> Result<CmdOutput, NandError> {
        match feature {
            Feature::MaxInterBlocks(n) => {
                if n == 0 || n as usize > 32 {
                    return Err(NandError::InvalidFeature(format!(
                        "max inter-block count {n} outside 1..=32"
                    )));
                }
                self.config.max_inter_blocks = n as usize;
            }
            Feature::EspLatencyRatio(r) => {
                if !(1.0..=2.5).contains(&r) {
                    return Err(NandError::InvalidFeature(format!(
                        "ESP latency ratio {r} outside 1.0..=2.5"
                    )));
                }
                self.esp_ratio_default = r;
            }
        }
        Ok(CmdOutput::latch_only())
    }

    /// Core sensing path shared by `Read`, `Mws`, `EraseVerify` and
    /// [`NandChip::read_shifted`].
    ///
    /// `allow_unwritten` treats unwritten wordlines as fully erased
    /// (all-ones) instead of erroring — needed by erase-verify.
    /// `vref_offset` shifts the read reference voltage from the nominal
    /// level (0.0 everywhere except read-retry).
    fn exec_mws(
        &mut self,
        flags: IscmFlags,
        targets: &[MwsTarget],
        allow_unwritten: bool,
        vref_offset: f64,
    ) -> Result<CmdOutput, NandError> {
        if targets.is_empty() || targets.iter().any(|t| t.pbm == 0) {
            return Err(NandError::EmptyMwsTarget);
        }
        let plane = targets[0].block.plane;
        if targets.iter().any(|t| t.block.plane != plane) {
            return Err(NandError::PlaneMismatch);
        }
        if targets.len() > self.config.max_inter_blocks {
            return Err(NandError::TooManyBlocks {
                requested: targets.len(),
                max: self.config.max_inter_blocks,
            });
        }
        let geom = self.config.geometry;
        for t in targets {
            geom.validate_block(t.block)?;
            for wl in t.wls() {
                geom.validate_wl(t.block.wordline(wl))?;
                if !allow_unwritten && self.page_state(t.block.wordline(wl)).is_none() {
                    return Err(NandError::ReadOfUnwrittenPage {
                        plane: t.block.plane,
                        block: t.block.block,
                        wl,
                    });
                }
            }
        }

        // Evaluate each block's string AND into the scratch arena, then OR
        // across blocks (Eq. 1). Field-level borrows keep the stored pages
        // readable in place while the RNG, stats and scratch mutate.
        {
            let Self { planes, rng, scratch, config, stats, retention_months, .. } = self;
            while scratch.per_block.len() < targets.len() {
                scratch.per_block.push(BitVec::default());
            }
            let SenseScratch { per_block, corrupt, flip_idx, stress_buf, .. } = scratch;
            let plane_state = &planes[plane as usize];
            for (out, t) in per_block.iter_mut().zip(targets) {
                sense_block_and_into(
                    out,
                    plane_state,
                    t,
                    allow_unwritten,
                    config,
                    *retention_months,
                    vref_offset,
                    rng,
                    stats,
                    corrupt,
                    flip_idx,
                    stress_buf,
                )?;
            }
        }
        {
            let SenseScratch { per_block, sensed, .. } = &mut self.scratch;
            sense::combine_blocks_or_into(sensed, &per_block[..targets.len()]);
        }
        let page = self.overlay_and_latch(plane, flags);

        // Timing and power.
        let max_wls = targets.iter().map(MwsTarget::wl_count).max().unwrap_or(1);
        let latency = sense::mws_latency_us(timing::T_R_SLC_US, max_wls, targets.len());
        let norm_power = if targets.len() > 1 {
            power::mws_power_norm(targets.len())
        } else if max_wls > 1 {
            power::mws_power_norm(1)
        } else {
            power::read_power_norm()
        };
        let energy = power::energy_uj(norm_power, latency);

        // Read disturb accounting.
        for t in targets {
            let b = &mut self.planes[plane as usize].blocks[t.block.block as usize];
            b.reads_since_program += 1;
        }

        self.stats.senses += 1;
        if targets.len() > 1 || max_wls > 1 {
            self.stats.mws_ops += 1;
        }
        Ok(CmdOutput { latency_us: latency, energy_uj: energy, norm_power, page })
    }

    /// Shared sense tail: applies the plane's permanently faulty columns
    /// to `scratch.sensed` (stuck columns read their stuck value
    /// regardless of the stored data, §5.1 footnote 9), then drives the
    /// latch sequence per the ISCM flags. Returns the C-latch snapshot
    /// if the flags transfer.
    fn overlay_and_latch(&mut self, plane: u32, flags: IscmFlags) -> Option<BitVec> {
        let sensed = &mut self.scratch.sensed;
        let plane_state = &self.planes[plane as usize];
        if !plane_state.faulty_mask.is_all_zeros() {
            sensed.and_not_assign(&plane_state.faulty_mask);
            sensed.or_assign(&plane_state.faulty_stuck);
        }
        let latches = &mut self.planes[plane as usize].latches;
        if flags.init_s {
            latches.init_s();
        }
        if flags.init_c {
            latches.init_c();
        }
        latches.sense(sensed, flags.inverse);
        if flags.transfer {
            latches.transfer();
        }
        flags.transfer.then(|| latches.c_latch().clone())
    }

    /// Dynamic-sensing threshold vote over one block's wordlines: bit `i`
    /// of the result is 1 iff at least `k` of the activated cells on
    /// bitline `i` are **programmed**. Functional mode counts exactly;
    /// physics mode derives each wordline's vote from its stress-shifted
    /// V_TH population (a cell votes when it fails to conduct at its
    /// scheme's read reference), then counts with the word-parallel
    /// bit-sliced kernel — `mlsense::threshold_ge_serial` is the scalar
    /// oracle both modes are property-tested against.
    fn exec_threshold_mws(&mut self, target: MwsTarget, k: usize) -> Result<CmdOutput, NandError> {
        if target.pbm == 0 {
            return Err(NandError::EmptyMwsTarget);
        }
        if k == 0 {
            return Err(NandError::InvalidMlsense("threshold k must be at least 1".to_string()));
        }
        let geom = self.config.geometry;
        geom.validate_block(target.block)?;
        for wl in target.wls() {
            geom.validate_wl(target.block.wordline(wl))?;
            if self.page_state(target.block.wordline(wl)).is_none() {
                return Err(NandError::ReadOfUnwrittenPage {
                    plane: target.block.plane,
                    block: target.block.block,
                    wl,
                });
            }
        }
        let page_bits = geom.page_bits();
        let plane = target.block.plane;
        let n_wls = target.wl_count();

        {
            let Self { planes, rng, scratch, config, stats, retention_months, .. } = self;
            let block_ref = &planes[plane as usize].blocks[target.block.block as usize];
            let stress = StressState {
                pec: block_ref.pec,
                retention_months: *retention_months,
                reads_since_program: block_ref.reads_since_program,
            };
            while scratch.votes.len() < n_wls {
                scratch.votes.push(BitVec::default());
            }
            let SenseScratch { votes, flip_idx, stress_buf, .. } = scratch;
            for (vote, wl) in votes.iter_mut().zip(target.wls()) {
                let p = block_ref.pages[wl as usize].as_ref().expect("validated above");
                match config.fidelity {
                    Fidelity::Functional { inject_errors } => {
                        // A programmed cell (stored 0) casts a vote.
                        vote.assign_not_from(&p.data);
                        if inject_errors {
                            let n = config.rber.sample_errors(
                                p.scheme,
                                p.randomized,
                                stress,
                                page_bits,
                                rng,
                            );
                            stats.injected_errors += n as u64;
                            vote.flip_random_bits_with(n, rng, flip_idx);
                        }
                    }
                    Fidelity::Physics => {
                        stress_buf.clear();
                        stress_buf.extend_from_slice(
                            p.vth.as_ref().expect("physics mode stores V_TH populations"),
                        );
                        config.stress_model.apply(stress_buf, stress, rng);
                        // Conduction sense at the scheme's reference,
                        // inverted: a programmed cell blocks the string.
                        vote.reset(page_bits, false);
                        vote.fill_le_threshold(stress_buf, p.scheme.read_vref());
                        vote.not_assign();
                    }
                }
            }
        }
        {
            let SenseScratch { votes, threshold, sensed, .. } = &mut self.scratch;
            let refs: Vec<&BitVec> = votes[..n_wls].iter().collect();
            mlsense::threshold_ge_into(&refs, k, threshold, sensed);
        }
        // Grown per-block defects overlay, as in any other sense.
        {
            let Self { planes, scratch, .. } = self;
            let block_ref = &planes[plane as usize].blocks[target.block.block as usize];
            if let Some(stuck) = &block_ref.stuck {
                scratch.sensed.and_not_assign(&stuck.mask);
                scratch.sensed.or_assign(&stuck.value);
            }
        }
        let page = self.overlay_and_latch(plane, IscmFlags::single_read());

        // One multi-WL activation, one sense — same latency/power shape
        // as a single-block MWS over the same wordlines.
        let latency = sense::mws_latency_us(timing::T_R_SLC_US, n_wls, 1);
        let norm_power =
            if n_wls > 1 { power::mws_power_norm(1) } else { power::read_power_norm() };
        let energy = power::energy_uj(norm_power, latency);
        let b = &mut self.planes[plane as usize].blocks[target.block.block as usize];
        b.reads_since_program += 1;
        self.stats.senses += 1;
        if n_wls > 1 {
            self.stats.mws_ops += 1;
        }
        Ok(CmdOutput { latency_us: latency, energy_uj: energy, norm_power, page })
    }

    /// Multi-level program: Gray-packs 2–3 logical pages cell-wise into
    /// one physical wordline (`mlsense::encode_levels`). The stored
    /// single-bit view is the *erased mask* (only a fully erased cell
    /// conducts at the standard MWS reference), so ML pages degrade
    /// gracefully under plain senses; physics mode samples each cell's
    /// V_TH from its level's state distribution.
    fn exec_program_ml(
        &mut self,
        addr: WlAddr,
        pages: Vec<BitVec>,
        scheme: ProgramScheme,
    ) -> Result<CmdOutput, NandError> {
        if scheme.is_single_bit() {
            return Err(NandError::InvalidMlsense(format!(
                "multi-level program needs an MLC/TLC scheme, got {scheme:?}"
            )));
        }
        self.config.geometry.validate_wl(addr)?;
        let expected = self.config.geometry.page_bits();
        let mode = scheme.cell_mode();
        if pages.len() != mode.bits_per_cell() as usize {
            return Err(NandError::InvalidMlsense(format!(
                "{mode} packs {} logical pages per cell, got {}",
                mode.bits_per_cell(),
                pages.len()
            )));
        }
        for p in &pages {
            if p.len() != expected {
                return Err(NandError::PageSizeMismatch { got: p.len(), expected });
            }
        }
        if self.page_state(addr).is_some() {
            return Err(NandError::ProgramWithoutErase {
                plane: addr.plane,
                block: addr.block,
                wl: addr.wl,
            });
        }
        let levels = mlsense::encode_levels(&pages, mode);
        let data = BitVec::from_fn(expected, |i| levels[i] == 0);
        let vth = if matches!(self.config.fidelity, Fidelity::Physics) {
            let layout = scheme.layout();
            Some(
                levels
                    .iter()
                    .map(|&l| layout.states[l as usize].sample(&mut self.rng))
                    .collect::<Vec<f64>>(),
            )
        } else {
            None
        };

        let latency = scheme.program_latency_us();
        let energy = power::program_energy_uj(latency);
        let block = &mut self.planes[addr.plane as usize].blocks[addr.block as usize];
        block.pages[addr.wl as usize] =
            Some(PageState { data, scheme, randomized: false, vth, levels: Some(levels) });
        block.reads_since_program = 0;

        if matches!(self.config.fidelity, Fidelity::Physics) {
            let model = self.config.stress_model;
            let wl = addr.wl as usize;
            let block = &mut self.planes[addr.plane as usize].blocks[addr.block as usize];
            for neighbour in [wl.checked_sub(1), Some(wl + 1)].into_iter().flatten() {
                if let Some(Some(p)) = block.pages.get_mut(neighbour) {
                    if let Some(vth) = p.vth.as_mut() {
                        model.apply_interference(vth, &mut self.rng);
                    }
                }
            }
        }

        self.stats.programs += 1;
        Ok(CmdOutput {
            latency_us: latency,
            energy_uj: energy,
            norm_power: power::program_power_norm(),
            page: None,
        })
    }

    /// Sense one wordline at an explicit level boundary: bit `i` is 1 iff
    /// cell `i` conducts at the Vref between states `level` and
    /// `level + 1`. The per-transition senses of
    /// `mlsense::transition_levels` recover one logical page via
    /// `mlsense::page_from_senses`. On a single-bit page the only
    /// boundary (level 0) is exactly a regular read.
    fn exec_read_level(&mut self, addr: WlAddr, level: u8) -> Result<CmdOutput, NandError> {
        self.config.geometry.validate_wl(addr)?;
        let page_bits = self.config.geometry.page_bits();
        let state = self.page_state(addr).ok_or(NandError::ReadOfUnwrittenPage {
            plane: addr.plane,
            block: addr.block,
            wl: addr.wl,
        })?;
        let mode = state.scheme.cell_mode();
        if u32::from(level) + 1 >= mode.states() {
            return Err(NandError::InvalidMlsense(format!(
                "level boundary {level} out of range for {mode}"
            )));
        }
        let plane = addr.plane;
        {
            let Self { planes, rng, scratch, config, stats, retention_months, .. } = self;
            let block_ref = &planes[plane as usize].blocks[addr.block as usize];
            let stress = StressState {
                pec: block_ref.pec,
                retention_months: *retention_months,
                reads_since_program: block_ref.reads_since_program,
            };
            let p = block_ref.pages[addr.wl as usize].as_ref().expect("validated above");
            let SenseScratch { sensed, flip_idx, stress_buf, .. } = scratch;
            match config.fidelity {
                Fidelity::Functional { inject_errors } => {
                    match &p.levels {
                        Some(levels) => {
                            sensed.reset(page_bits, false);
                            for (i, &l) in levels.iter().enumerate() {
                                if l <= level {
                                    sensed.set(i, true);
                                }
                            }
                        }
                        // Single-bit page: the lone boundary separates
                        // erased (conducts, stored 1) from programmed.
                        None => sensed.assign_from(&p.data),
                    }
                    if inject_errors {
                        let n = config.rber.sample_errors(
                            p.scheme,
                            p.randomized,
                            stress,
                            page_bits,
                            rng,
                        );
                        stats.injected_errors += n as u64;
                        sensed.flip_random_bits_with(n, rng, flip_idx);
                    }
                }
                Fidelity::Physics => {
                    stress_buf.clear();
                    stress_buf.extend_from_slice(
                        p.vth.as_ref().expect("physics mode stores V_TH populations"),
                    );
                    config.stress_model.apply(stress_buf, stress, rng);
                    let layout = p.scheme.layout();
                    sensed.reset(page_bits, false);
                    sensed.fill_le_threshold(stress_buf, layout.vrefs[level as usize]);
                }
            }
            if let Some(stuck) = &block_ref.stuck {
                scratch.sensed.and_not_assign(&stuck.mask);
                scratch.sensed.or_assign(&stuck.value);
            }
        }
        let page = self.overlay_and_latch(plane, IscmFlags::single_read());

        let latency = timing::T_R_SLC_US;
        let norm_power = power::read_power_norm();
        let energy = power::energy_uj(norm_power, latency);
        let b = &mut self.planes[plane as usize].blocks[addr.block as usize];
        b.reads_since_program += 1;
        self.stats.senses += 1;
        Ok(CmdOutput { latency_us: latency, energy_uj: energy, norm_power, page })
    }
}

/// AND of one block's target wordlines, with fidelity-appropriate
/// reliability behaviour, written into `out` (reusing its allocation).
///
/// A free function rather than a `NandChip` method so `exec_mws` can pass
/// disjoint field borrows: the plane's stored pages stay borrowed
/// immutably while the RNG, stats and scratch buffers mutate. See
/// [`SenseScratch`] for the reuse contract of `corrupt` / `flip_idx` /
/// `stress_buf`.
#[allow(clippy::too_many_arguments)]
fn sense_block_and_into(
    out: &mut BitVec,
    plane: &Plane,
    target: &MwsTarget,
    allow_unwritten: bool,
    config: &ChipConfig,
    retention_months: f64,
    vref_offset: f64,
    rng: &mut StdRng,
    stats: &mut ChipStats,
    corrupt: &mut BitVec,
    flip_idx: &mut Vec<usize>,
    stress_buf: &mut Vec<f64>,
) -> Result<(), NandError> {
    let page_bits = config.geometry.page_bits();
    let block_ref = &plane.blocks[target.block.block as usize];
    let stress = StressState {
        pec: block_ref.pec,
        retention_months,
        reads_since_program: block_ref.reads_since_program,
    };

    out.reset(page_bits, true);
    match config.fidelity {
        Fidelity::Functional { inject_errors } => {
            // Fold the stored pages directly — word-at-a-time, with no
            // snapshot clones. A page is copied (into the reusable
            // `corrupt` buffer) only when it actually receives errors.
            for wl in target.wls() {
                let page = match &block_ref.pages[wl as usize] {
                    Some(p) => Some(p),
                    None if allow_unwritten => None, // fully erased: all ones
                    None => unreachable!("validated above"),
                };
                if inject_errors {
                    let (scheme, randomized) =
                        page.map_or((ProgramScheme::Slc, false), |p| (p.scheme, p.randomized));
                    let n = if vref_offset == 0.0 {
                        config.rber.sample_errors(scheme, randomized, stress, page_bits, rng)
                    } else {
                        // Retry read at a shifted sense level: scale the
                        // nominal RBER by the Gaussian-tail model's ratio
                        // between the shifted and nominal levels, so a
                        // well-chosen offset genuinely reduces the error
                        // probability (that is the whole point of retry).
                        let nominal_rber = config.rber.rber(scheme, randomized, stress);
                        let vref = scheme.read_vref();
                        let base =
                            sense::shifted_read_rber(scheme, stress, &config.stress_model, vref);
                        let shifted = sense::shifted_read_rber(
                            scheme,
                            stress,
                            &config.stress_model,
                            vref + vref_offset,
                        );
                        let factor = if base > 0.0 && base.is_finite() && shifted.is_finite() {
                            shifted / base
                        } else {
                            1.0
                        };
                        crate::rber::sample_binomial(
                            page_bits,
                            (nominal_rber * factor).min(1.0),
                            rng,
                        )
                    };
                    stats.injected_errors += n as u64;
                    if n > 0 {
                        match page {
                            Some(p) => corrupt.assign_from(&p.data),
                            None => corrupt.reset(page_bits, true),
                        }
                        corrupt.flip_random_bits_with(n, rng, flip_idx);
                        out.and_assign(corrupt);
                        continue;
                    }
                }
                if let Some(p) = page {
                    out.and_assign(&p.data);
                }
                // Erased, error-free page: AND with all-ones is a no-op.
            }
        }
        Fidelity::Physics => {
            // Pass 1 (metadata only): the read reference voltage is the
            // highest V_REF among the target wordlines' schemes.
            let mut vref = f64::NEG_INFINITY;
            for wl in target.wls() {
                if let Some(p) = &block_ref.pages[wl as usize] {
                    vref = vref.max(p.scheme.read_vref());
                }
            }
            if vref == f64::NEG_INFINITY {
                vref = crate::vth::SLC_VREF;
            }
            vref += vref_offset;
            // Pass 2: stress-shift each population in the reusable buffer
            // (stored V_TH vectors are never cloned) and fold its packed
            // threshold comparison into the accumulator.
            let model = config.stress_model;
            for wl in target.wls() {
                stress_buf.clear();
                match &block_ref.pages[wl as usize] {
                    Some(p) => stress_buf.extend_from_slice(
                        p.vth.as_ref().expect("physics mode stores V_TH populations"),
                    ),
                    None if allow_unwritten => {
                        stress_buf.resize(page_bits, crate::vth::ERASED.mean_v);
                    }
                    None => unreachable!("validated above"),
                }
                model.apply(stress_buf, stress, rng);
                out.and_le_threshold(stress_buf, vref);
            }
        }
    }
    // Grown per-block defects: the masked columns read their stuck value
    // no matter what the strings held.
    if let Some(stuck) = &block_ref.stuck {
        out.and_not_assign(&stuck.mask);
        out.or_assign(&stuck.value);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;

    fn page(chip: &NandChip, seed: u64) -> BitVec {
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        BitVec::random(chip.config().geometry.page_bits(), &mut rng)
    }

    fn write_pages(chip: &mut NandChip, blk: BlockAddr, n: usize, seed: u64) -> Vec<BitVec> {
        (0..n)
            .map(|i| {
                let p = page(chip, seed + i as u64);
                chip.execute(Command::esp_program(blk.wordline(i as u32), p.clone())).unwrap();
                p
            })
            .collect()
    }

    #[test]
    fn read_returns_stored_page() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 0);
        let pages = write_pages(&mut chip, blk, 1, 100);
        let out = chip.execute(Command::Read { addr: blk.wordline(0), inverse: false }).unwrap();
        assert_eq!(out.page().unwrap(), &pages[0]);
        assert!((out.latency_us - timing::T_R_SLC_US).abs() < 1e-9);
    }

    #[test]
    fn inverse_read_returns_complement() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 0);
        let pages = write_pages(&mut chip, blk, 1, 101);
        let out = chip.execute(Command::Read { addr: blk.wordline(0), inverse: true }).unwrap();
        assert_eq!(out.page().unwrap(), &pages[0].not());
    }

    #[test]
    fn intra_block_mws_computes_and() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 1);
        let pages = write_pages(&mut chip, blk, 5, 200);
        let out = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![MwsTarget::new(blk, &[0, 1, 2, 3, 4])],
            })
            .unwrap();
        let expect = pages.iter().skip(1).fold(pages[0].clone(), |a, p| a.and(p));
        assert_eq!(out.page().unwrap(), &expect);
        assert_eq!(chip.stats().mws_ops, 1);
    }

    #[test]
    fn inter_block_mws_computes_or_of_per_block_ands() {
        // Eq. (1): (A1·A2) + (B1·B2).
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk_a = BlockAddr::new(0, 2);
        let blk_b = BlockAddr::new(0, 3);
        let a = write_pages(&mut chip, blk_a, 2, 300);
        let b = write_pages(&mut chip, blk_b, 2, 310);
        let out = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![MwsTarget::new(blk_a, &[0, 1]), MwsTarget::new(blk_b, &[0, 1])],
            })
            .unwrap();
        let expect = a[0].and(&a[1]).or(&b[0].and(&b[1]));
        assert_eq!(out.page().unwrap(), &expect);
    }

    #[test]
    fn inverse_mws_gives_nand_and_nor() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 4);
        let pages = write_pages(&mut chip, blk, 3, 400);
        // NAND via intra-block MWS + inverse read.
        let out = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_inverse_read(),
                targets: vec![MwsTarget::new(blk, &[0, 1, 2])],
            })
            .unwrap();
        let expect = pages[0].and(&pages[1]).and(&pages[2]).not();
        assert_eq!(out.page().unwrap(), &expect);
        // NOR via inter-block MWS + inverse read.
        let blk2 = BlockAddr::new(0, 5);
        let q = write_pages(&mut chip, blk2, 1, 410);
        let out = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_inverse_read(),
                targets: vec![MwsTarget::new(blk, &[0]), MwsTarget::new(blk2, &[0])],
            })
            .unwrap();
        let expect = pages[0].or(&q[0]).not();
        assert_eq!(out.page().unwrap(), &expect);
    }

    #[test]
    fn accumulation_across_mws_commands() {
        // DESIGN.md §3.1: AND-accumulate in the S-latch across commands,
        // publish with C-init + transfer on the last command.
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk_a = BlockAddr::new(0, 6);
        let blk_b = BlockAddr::new(0, 7);
        let a = write_pages(&mut chip, blk_a, 3, 500);
        let b = write_pages(&mut chip, blk_b, 3, 510);
        // First command: plain sense into initialized latches, no transfer.
        let first = chip
            .execute(Command::Mws {
                flags: IscmFlags { inverse: false, init_s: true, init_c: true, transfer: false },
                targets: vec![MwsTarget::new(blk_a, &[0, 1, 2])],
            })
            .unwrap();
        assert!(first.page().is_none(), "no transfer → no page output");
        // Second command: accumulate and publish.
        let out = chip
            .execute(Command::Mws {
                flags: IscmFlags::accumulate_last(),
                targets: vec![MwsTarget::new(blk_b, &[0, 1, 2])],
            })
            .unwrap();
        let expect = a[0].and(&a[1]).and(&a[2]).and(&b[0]).and(&b[1]).and(&b[2]);
        assert_eq!(out.page().unwrap(), &expect);
    }

    #[test]
    fn xor_latch_command() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 8);
        let pages = write_pages(&mut chip, blk, 2, 600);
        // Read A (lands in S and C), then sense B into S only, then XOR.
        chip.execute(Command::Read { addr: blk.wordline(0), inverse: false }).unwrap();
        chip.execute(Command::Mws {
            flags: IscmFlags { inverse: false, init_s: true, init_c: false, transfer: false },
            targets: vec![MwsTarget::new(blk, &[1])],
        })
        .unwrap();
        chip.execute(Command::XorLatch { plane: 0 }).unwrap();
        let out = chip.execute(Command::ReadOut { plane: 0 }).unwrap();
        assert_eq!(out.page().unwrap(), &pages[0].xor(&pages[1]));
    }

    #[test]
    fn erase_verify_detects_programmed_pages() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(1, 0);
        let out = chip.execute(Command::EraseVerify { block: blk }).unwrap();
        assert!(out.page().unwrap().is_all_ones(), "fresh block verifies erased");
        write_pages(&mut chip, blk, 1, 700);
        let out = chip.execute(Command::EraseVerify { block: blk }).unwrap();
        assert!(!out.page().unwrap().is_all_ones(), "programmed block fails verify");
        chip.execute(Command::Erase { block: blk }).unwrap();
        let out = chip.execute(Command::EraseVerify { block: blk }).unwrap();
        assert!(out.page().unwrap().is_all_ones(), "erased block verifies again");
    }

    #[test]
    fn erase_bumps_pec_and_clears_pages() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 9);
        write_pages(&mut chip, blk, 2, 800);
        assert_eq!(chip.block_pec(blk).unwrap(), 0);
        chip.execute(Command::Erase { block: blk }).unwrap();
        assert_eq!(chip.block_pec(blk).unwrap(), 1);
        assert!(chip.page_raw(blk.wordline(0)).is_none());
        chip.cycle_block(blk, 999).unwrap();
        assert_eq!(chip.block_pec(blk).unwrap(), 1000);
    }

    #[test]
    fn program_without_erase_is_rejected() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 10);
        write_pages(&mut chip, blk, 1, 900);
        let err =
            chip.execute(Command::esp_program(blk.wordline(0), page(&chip, 901))).unwrap_err();
        assert!(matches!(err, NandError::ProgramWithoutErase { .. }));
    }

    #[test]
    fn page_size_mismatch_is_rejected() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let err =
            chip.execute(Command::esp_program(WlAddr::new(0, 0, 0), BitVec::zeros(3))).unwrap_err();
        assert!(matches!(err, NandError::PageSizeMismatch { .. }));
    }

    #[test]
    fn power_cap_on_inter_block_mws() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        for b in 0..5 {
            write_pages(&mut chip, BlockAddr::new(0, b), 1, 1000 + b as u64);
        }
        let targets: Vec<MwsTarget> =
            (0..5).map(|b| MwsTarget::new(BlockAddr::new(0, b), &[0])).collect();
        let err =
            chip.execute(Command::Mws { flags: IscmFlags::single_read(), targets }).unwrap_err();
        assert_eq!(err, NandError::TooManyBlocks { requested: 5, max: 4 });
        // Raising the cap via SET FEATURE lets it through.
        chip.execute(Command::SetFeature { feature: Feature::MaxInterBlocks(8) }).unwrap();
        let targets: Vec<MwsTarget> =
            (0..5).map(|b| MwsTarget::new(BlockAddr::new(0, b), &[0])).collect();
        assert!(chip.execute(Command::Mws { flags: IscmFlags::single_read(), targets }).is_ok());
    }

    #[test]
    fn cross_plane_mws_is_rejected() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        write_pages(&mut chip, BlockAddr::new(0, 0), 1, 1100);
        write_pages(&mut chip, BlockAddr::new(1, 0), 1, 1101);
        let err = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![
                    MwsTarget::new(BlockAddr::new(0, 0), &[0]),
                    MwsTarget::new(BlockAddr::new(1, 0), &[0]),
                ],
            })
            .unwrap_err();
        assert_eq!(err, NandError::PlaneMismatch);
    }

    #[test]
    fn read_of_unwritten_page_is_rejected() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let err =
            chip.execute(Command::Read { addr: WlAddr::new(0, 0, 0), inverse: false }).unwrap_err();
        assert!(matches!(err, NandError::ReadOfUnwrittenPage { .. }));
    }

    #[test]
    fn copyback_moves_data_within_plane() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 11);
        let pages = write_pages(&mut chip, blk, 1, 1200);
        let dst = BlockAddr::new(0, 12).wordline(0);
        chip.execute(Command::Copyback { from: blk.wordline(0), to: dst }).unwrap();
        assert_eq!(chip.page_raw(dst).unwrap(), &pages[0]);
    }

    #[test]
    fn copyback_crosses_planes_within_the_die() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 3);
        let pages = write_pages(&mut chip, blk, 1, 1201);
        let dst = BlockAddr::new(1, 3).wordline(2);
        chip.execute(Command::Copyback { from: blk.wordline(0), to: dst }).unwrap();
        assert_eq!(chip.page_raw(dst).unwrap(), &pages[0]);
    }

    #[test]
    fn randomized_program_roundtrips_through_read_logical() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let addr = WlAddr::new(0, 13, 0);
        let data = page(&chip, 1300);
        chip.execute(Command::slc_program(addr, data.clone())).unwrap();
        // Raw differs (scrambled), logical read restores.
        assert_ne!(chip.page_raw(addr).unwrap(), &data);
        assert_eq!(chip.read_logical(addr).unwrap(), data);
    }

    #[test]
    fn mws_latency_grows_with_scope() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 14);
        write_pages(&mut chip, blk, 8, 1400);
        let one = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![MwsTarget::new(blk, &[0])],
            })
            .unwrap();
        let eight = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![MwsTarget::all_wls(blk, 8)],
            })
            .unwrap();
        assert!(eight.latency_us > one.latency_us);
        assert!(eight.latency_us < one.latency_us * 1.01, "Fig. 12: ≤8 WLs under +1%");
    }

    #[test]
    fn esp_program_latency_is_double_slc() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let esp =
            chip.execute(Command::esp_program(WlAddr::new(0, 15, 0), page(&chip, 1500))).unwrap();
        let slc = chip
            .execute(Command::Program {
                addr: WlAddr::new(0, 15, 1),
                data: page(&chip, 1501),
                scheme: ProgramScheme::Slc,
                randomize: false,
            })
            .unwrap();
        assert!((esp.latency_us / slc.latency_us - 2.0).abs() < 1e-9);
    }

    #[test]
    fn feature_validation() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        assert!(chip.execute(Command::SetFeature { feature: Feature::MaxInterBlocks(0) }).is_err());
        assert!(chip
            .execute(Command::SetFeature { feature: Feature::EspLatencyRatio(0.5) })
            .is_err());
        chip.execute(Command::SetFeature { feature: Feature::EspLatencyRatio(1.8) }).unwrap();
        assert!((chip.esp_ratio_default() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn stats_accumulate() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 0);
        write_pages(&mut chip, blk, 2, 1600);
        chip.execute(Command::Read { addr: blk.wordline(0), inverse: false }).unwrap();
        chip.execute(Command::Mws {
            flags: IscmFlags::single_read(),
            targets: vec![MwsTarget::new(blk, &[0, 1])],
        })
        .unwrap();
        let s = chip.stats();
        assert_eq!(s.programs, 2);
        assert_eq!(s.senses, 2);
        assert_eq!(s.mws_ops, 1);
        assert!(s.busy_us > 0.0 && s.energy_uj > 0.0);
    }

    #[test]
    fn scratch_reuse_is_stateless_across_senses() {
        // The sense scratch persists inside the chip; interleaving senses
        // of different shapes (single read, intra-MWS, inter-MWS over
        // varying block counts, erase-verify) must never leak state from
        // one sense into the next. Every result is checked against the
        // stored ground truth, three rounds over the same buffers.
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blocks: Vec<BlockAddr> = (0..3).map(|b| BlockAddr::new(0, b)).collect();
        let pages: Vec<Vec<BitVec>> = blocks
            .iter()
            .enumerate()
            .map(|(i, &blk)| write_pages(&mut chip, blk, 3, 2000 + 10 * i as u64))
            .collect();
        for _round in 0..3 {
            let single = chip
                .execute(Command::Read { addr: blocks[0].wordline(1), inverse: false })
                .unwrap();
            assert_eq!(single.page().unwrap(), &pages[0][1]);

            let intra = chip
                .execute(Command::Mws {
                    flags: IscmFlags::single_read(),
                    targets: vec![MwsTarget::new(blocks[1], &[0, 1, 2])],
                })
                .unwrap();
            let expect = pages[1][0].and(&pages[1][1]).and(&pages[1][2]);
            assert_eq!(intra.page().unwrap(), &expect);

            let inter = chip
                .execute(Command::Mws {
                    flags: IscmFlags::single_read(),
                    targets: blocks.iter().map(|&b| MwsTarget::new(b, &[0, 1])).collect(),
                })
                .unwrap();
            let expect = pages.iter().map(|p| p[0].and(&p[1])).reduce(|a, b| a.or(&b)).unwrap();
            assert_eq!(inter.page().unwrap(), &expect);

            let verify =
                chip.execute(Command::EraseVerify { block: BlockAddr::new(1, 0) }).unwrap();
            assert!(verify.page().unwrap().is_all_ones(), "untouched block verifies erased");
        }
    }

    #[test]
    fn noisy_chip_injects_errors_on_aged_blocks() {
        let mut cfg = ChipConfig::tiny_noisy();
        // Large pages so expected error counts are visible.
        cfg.geometry.page_bytes = 4096;
        let mut chip = NandChip::new(cfg);
        let blk = BlockAddr::new(0, 0);
        let data = BitVec::ones(chip.config().geometry.page_bits());
        chip.execute(Command::Program {
            addr: blk.wordline(0),
            data: data.clone(),
            scheme: ProgramScheme::Slc,
            randomize: false,
        })
        .unwrap();
        chip.cycle_block(blk, 10_000).unwrap();
        chip.set_retention_months(12.0);
        let mut total_errors = 0usize;
        for _ in 0..20 {
            let out =
                chip.execute(Command::Read { addr: blk.wordline(0), inverse: false }).unwrap();
            total_errors += out.page().unwrap().hamming_distance(&data);
        }
        assert!(total_errors > 0, "aged unrandomized SLC must show raw bit errors");
    }

    #[test]
    fn faulty_columns_are_stuck_and_profilable() {
        let cfg = ChipConfig::tiny_test().with_faulty_columns(0.05);
        let mut chip = NandChip::new(cfg);
        let truth = chip.faulty_columns(0).unwrap().clone();
        assert!(truth.count_ones() > 0, "5% of 256 columns should include faults");
        // Profiling finds exactly the fabrication map.
        let profiled = chip.profile_faulty_columns(BlockAddr::new(0, 15), 5).unwrap();
        assert_eq!(profiled, truth);
        // Excluding profiled columns makes MWS exact again (the paper's
        // §5.1 methodology).
        let blk = BlockAddr::new(0, 1);
        let bits = chip.config().geometry.page_bits();
        let pages: Vec<BitVec> = (0..3u32)
            .map(|wl| {
                use rand::rngs::StdRng;
                let mut rng = StdRng::seed_from_u64(900 + wl as u64);
                let p = BitVec::random(bits, &mut rng);
                chip.execute(Command::esp_program(blk.wordline(wl), p.clone())).unwrap();
                p
            })
            .collect();
        let out = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![MwsTarget::new(blk, &[0, 1, 2])],
            })
            .unwrap();
        let expect = pages[0].and(&pages[1]).and(&pages[2]);
        let sensed = out.into_page().unwrap();
        assert_ne!(sensed, expect, "stuck columns corrupt the raw result");
        let keep = profiled.not();
        assert_eq!(
            sensed.and(&keep),
            expect.and(&keep),
            "masking profiled columns restores exactness"
        );
    }

    #[test]
    fn healthy_chip_profiles_clean() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let profiled = chip.profile_faulty_columns(BlockAddr::new(1, 15), 3).unwrap();
        assert!(profiled.is_all_zeros());
    }

    #[test]
    fn stuck_block_corrupts_senses_until_masked() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 2);
        let pages = write_pages(&mut chip, blk, 2, 1700);
        let bits = chip.config().geometry.page_bits();
        let mut mask = BitVec::zeros(bits);
        let mut value = BitVec::zeros(bits);
        for col in [3usize, 17, 40] {
            mask.set(col, true);
        }
        value.set(3, true); // column 3 stuck-at-1, 17 and 40 stuck-at-0
        chip.set_block_stuck(blk, mask.clone(), value.clone()).unwrap();
        let out = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![MwsTarget::new(blk, &[0, 1])],
            })
            .unwrap();
        let expect = pages[0].and(&pages[1]);
        let sensed = out.into_page().unwrap();
        let keep = mask.not();
        assert_eq!(sensed.and(&keep), expect.and(&keep), "healthy columns stay exact");
        assert_eq!(sensed.and(&mask), value, "masked columns read the stuck value");
        // The defect is per block: a neighbour is unaffected.
        let other = BlockAddr::new(0, 3);
        let clean = write_pages(&mut chip, other, 1, 1710);
        let out = chip.execute(Command::Read { addr: other.wordline(0), inverse: false }).unwrap();
        assert_eq!(out.page().unwrap(), &clean[0]);
    }

    #[test]
    fn shifted_read_beats_nominal_on_aged_blocks() {
        let mut cfg = ChipConfig::tiny_noisy();
        cfg.geometry.page_bytes = 4096;
        let mut chip = NandChip::new(cfg);
        let blk = BlockAddr::new(0, 0);
        let data = BitVec::ones(chip.config().geometry.page_bits());
        chip.execute(Command::Program {
            addr: blk.wordline(0),
            data: data.clone(),
            scheme: ProgramScheme::Slc,
            randomize: false,
        })
        .unwrap();
        chip.cycle_block(blk, 10_000).unwrap();
        chip.set_retention_months(12.0);
        let stress = StressState {
            pec: chip.block_pec(blk).unwrap(),
            retention_months: 12.0,
            reads_since_program: chip.block_reads_since_program(blk).unwrap(),
        };
        let ladder =
            sense::retry_ladder(ProgramScheme::Slc, stress, &chip.config().stress_model, 6);
        let best = ladder[0];
        let mut nominal_errors = 0usize;
        let mut shifted_errors = 0usize;
        for _ in 0..20 {
            let out =
                chip.execute(Command::Read { addr: blk.wordline(0), inverse: false }).unwrap();
            nominal_errors += out.page().unwrap().hamming_distance(&data);
            let out = chip.read_shifted(blk.wordline(0), best).unwrap();
            shifted_errors += out.page().unwrap().hamming_distance(&data);
        }
        assert!(nominal_errors > 0, "aged block must show raw errors at the nominal level");
        assert!(
            shifted_errors < nominal_errors,
            "retry level must reduce errors: {shifted_errors} vs {nominal_errors}"
        );
    }

    #[test]
    fn threshold_mws_counts_programmed_cells() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 1);
        let pages = write_pages(&mut chip, blk, 7, 3000);
        let wls: Vec<u32> = (0..7).collect();
        for k in 1..=8 {
            let out = chip
                .execute(Command::ThresholdMws { target: MwsTarget::new(blk, &wls), k })
                .unwrap();
            // Ground truth: a programmed cell stores 0, so count zeros.
            let expect = BitVec::from_fn(pages[0].len(), |i| {
                pages.iter().filter(|p| !p.get(i)).count() >= k
            });
            assert_eq!(out.page().unwrap(), &expect, "k={k}");
        }
        // k = 1 is the inverse of the intra-block AND (any programmed
        // cell breaks the string), tying the new sense to the old one.
        let th1 = chip
            .execute(Command::ThresholdMws { target: MwsTarget::new(blk, &wls), k: 1 })
            .unwrap();
        let and = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![MwsTarget::new(blk, &wls)],
            })
            .unwrap();
        assert_eq!(th1.page().unwrap(), &and.page().unwrap().not());
    }

    #[test]
    fn threshold_mws_physics_matches_scalar_oracle() {
        let mut cfg = ChipConfig::tiny_test();
        cfg.fidelity = crate::config::Fidelity::Physics;
        let mut chip = NandChip::new(cfg);
        let blk = BlockAddr::new(0, 0);
        let pages = write_pages(&mut chip, blk, 5, 3100);
        let wls: Vec<u32> = (0..5).collect();
        // Fresh cells: the physics-mode vote pages equal the logical
        // complements, so the result must be bit-exact vs the oracle.
        let votes: Vec<BitVec> = pages.iter().map(BitVec::not).collect();
        let refs: Vec<&BitVec> = votes.iter().collect();
        for k in [1, 2, 3, 5] {
            let out = chip
                .execute(Command::ThresholdMws { target: MwsTarget::new(blk, &wls), k })
                .unwrap();
            assert_eq!(
                out.page().unwrap(),
                &mlsense::threshold_ge_serial(&refs, k),
                "physics threshold k={k} vs scalar oracle"
            );
        }
    }

    #[test]
    fn threshold_mws_rejects_bad_requests() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 0);
        write_pages(&mut chip, blk, 2, 3200);
        let err = chip
            .execute(Command::ThresholdMws { target: MwsTarget { block: blk, pbm: 0 }, k: 1 })
            .unwrap_err();
        assert_eq!(err, NandError::EmptyMwsTarget);
        let err = chip
            .execute(Command::ThresholdMws { target: MwsTarget::new(blk, &[0, 1]), k: 0 })
            .unwrap_err();
        assert!(matches!(err, NandError::InvalidMlsense(_)));
        let err = chip
            .execute(Command::ThresholdMws { target: MwsTarget::new(blk, &[0, 5]), k: 1 })
            .unwrap_err();
        assert!(matches!(err, NandError::ReadOfUnwrittenPage { .. }));
    }

    #[test]
    fn ml_program_and_read_level_round_trip() {
        for fidelity in [crate::config::Fidelity::Functional { inject_errors: false }, {
            crate::config::Fidelity::Physics
        }] {
            let mut cfg = ChipConfig::tiny_test();
            cfg.fidelity = fidelity;
            let mut chip = NandChip::new(cfg);
            let bits = chip.config().geometry.page_bits();
            for (wl, scheme) in [(0u32, ProgramScheme::Mlc), (1u32, ProgramScheme::Tlc)] {
                let addr = WlAddr::new(0, 0, wl);
                let mode = scheme.cell_mode();
                let n_pages = mode.bits_per_cell() as usize;
                let pages: Vec<BitVec> = (0..n_pages)
                    .map(|i| {
                        use rand::rngs::StdRng;
                        let mut rng = StdRng::seed_from_u64(3300 + wl as u64 * 8 + i as u64);
                        BitVec::random(bits, &mut rng)
                    })
                    .collect();
                chip.execute(Command::ProgramMl { addr, pages: pages.clone(), scheme }).unwrap();
                // Recover each logical page from its transition senses.
                for (b, page) in pages.iter().enumerate() {
                    let senses: Vec<BitVec> = mlsense::transition_levels(mode, b)
                        .into_iter()
                        .map(|level| {
                            chip.execute(Command::ReadLevel { addr, level })
                                .unwrap()
                                .into_page()
                                .expect("read level produces a page")
                        })
                        .collect();
                    let decoded = mlsense::page_from_senses(&senses, mode, b);
                    match fidelity {
                        crate::config::Fidelity::Physics => {
                            // Adjacent V_TH states genuinely overlap, so a
                            // raw physics decode carries a small RBER —
                            // bounded, not bit-exact (ECC's job upstream).
                            let errs = decoded.hamming_distance(page);
                            assert!(errs <= bits / 32, "{mode} page {b}: {errs} raw errors");
                        }
                        _ => assert_eq!(&decoded, page, "{fidelity:?} {mode} page {b}"),
                    }
                }
            }
        }
    }

    #[test]
    fn read_level_on_slc_page_is_a_regular_read() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let blk = BlockAddr::new(0, 0);
        let pages = write_pages(&mut chip, blk, 1, 3400);
        let out = chip.execute(Command::ReadLevel { addr: blk.wordline(0), level: 0 }).unwrap();
        assert_eq!(out.page().unwrap(), &pages[0]);
    }

    #[test]
    fn ml_program_rejects_bad_requests() {
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let bits = chip.config().geometry.page_bits();
        let addr = WlAddr::new(0, 0, 0);
        let err = chip
            .execute(Command::ProgramMl {
                addr,
                pages: vec![BitVec::zeros(bits)],
                scheme: ProgramScheme::Slc,
            })
            .unwrap_err();
        assert!(matches!(err, NandError::InvalidMlsense(_)), "single-bit scheme rejected");
        let err = chip
            .execute(Command::ProgramMl {
                addr,
                pages: vec![BitVec::zeros(bits)],
                scheme: ProgramScheme::Mlc,
            })
            .unwrap_err();
        assert!(matches!(err, NandError::InvalidMlsense(_)), "wrong page count rejected");
        // Level boundary out of range for the stored page's mode.
        chip.execute(Command::ProgramMl {
            addr,
            pages: vec![BitVec::zeros(bits), BitVec::ones(bits)],
            scheme: ProgramScheme::Mlc,
        })
        .unwrap();
        let err = chip.execute(Command::ReadLevel { addr, level: 3 }).unwrap_err();
        assert!(matches!(err, NandError::InvalidMlsense(_)));
    }

    #[test]
    fn ml_pages_degrade_to_erased_mask_under_plain_mws() {
        // An ML page under a regular sense conducts only where the cell
        // is fully erased (level 0) — both logical bits 1.
        let mut chip = NandChip::new(ChipConfig::tiny_test());
        let addr = WlAddr::new(0, 0, 0);
        let bits = chip.config().geometry.page_bits();
        let lsb = page(&chip, 3500);
        let msb = page(&chip, 3501);
        chip.execute(Command::ProgramMl {
            addr,
            pages: vec![lsb.clone(), msb.clone()],
            scheme: ProgramScheme::Mlc,
        })
        .unwrap();
        let out = chip.execute(Command::Read { addr, inverse: false }).unwrap();
        assert_eq!(out.page().unwrap(), &lsb.and(&msb));
        assert_eq!(bits, out.page().unwrap().len());
    }

    #[test]
    fn esp_pages_stay_error_free_even_when_noisy() {
        let mut cfg = ChipConfig::tiny_noisy();
        cfg.geometry.page_bytes = 4096;
        let mut chip = NandChip::new(cfg);
        let blk = BlockAddr::new(0, 0);
        let data = BitVec::ones(chip.config().geometry.page_bits());
        chip.execute(Command::esp_program(blk.wordline(0), data.clone())).unwrap();
        chip.cycle_block(blk, 10_000).unwrap();
        chip.set_retention_months(12.0);
        for _ in 0..50 {
            let out =
                chip.execute(Command::Read { addr: blk.wordline(0), inverse: false }).unwrap();
            assert_eq!(out.page().unwrap().hamming_distance(&data), 0);
        }
    }
}
