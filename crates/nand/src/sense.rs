//! The read mechanism and Multi-Wordline Sensing (§2.1, §4.1, §5.2).
//!
//! A read is precharge → evaluation → discharge (Fig. 2). MWS applies
//! `V_REF` to *several* wordlines at once:
//!
//! * **intra-block** — several wordlines of one NAND string: the bitline
//!   conducts only if *every* target cell is erased → bitwise AND.
//! * **inter-block** — wordlines in several blocks sharing the bitlines:
//!   the bitline conducts if *any* activated string conducts → bitwise OR
//!   across blocks (of the AND within each block, Eq. (1)).
//!
//! This module provides the latency model of Figs. 12/13, and the
//! physics-mode sensing primitive that evaluates strings from per-cell
//! V_TH populations.

use fc_bits::BitVec;

use crate::calib::mws_latency as cal;
use crate::calib::timing;
use crate::ispp::ProgramScheme;
use crate::stress::{StressModel, StressState};
use crate::vth::VthState;

/// Latency factor `tMWS / tR` for intra-block MWS over `n_wls`
/// simultaneously read wordlines (Fig. 12).
///
/// A single wordline is a regular read (factor 1.0; §5.2: "bypassing data
/// randomization does not increase a regular read operation's latency").
/// The curve stays below +1% through 8 wordlines and reaches +3.3% at 48.
///
/// # Panics
///
/// Panics if `n_wls` is zero.
pub fn intra_latency_factor(n_wls: usize) -> f64 {
    assert!(n_wls > 0, "at least one wordline must be sensed");
    let span = (cal::INTRA_MAX_WLS - 1) as f64;
    let x = ((n_wls - 1) as f64 / span).min(1.5);
    1.0 + cal::INTRA_MAX_FACTOR_DELTA * x.powf(cal::INTRA_SHAPE_EXP)
}

/// Latency factor `tMWS / tR` for inter-block MWS over `n_blocks`
/// simultaneously activated blocks (Fig. 13).
///
/// The extra wordline-precharge time is mostly hidden by the bitline
/// precharge until about 8 blocks, then grows roughly linearly to +36.3%
/// at 32 blocks.
///
/// # Panics
///
/// Panics if `n_blocks` is zero.
pub fn inter_latency_factor(n_blocks: usize) -> f64 {
    assert!(n_blocks > 0, "at least one block must be activated");
    let hidden = cal::INTER_HIDDEN_BLOCKS;
    let hidden_end = 1.0 + cal::INTER_HIDDEN_SLOPE * (hidden - 1) as f64;
    if n_blocks <= hidden {
        1.0 + cal::INTER_HIDDEN_SLOPE * (n_blocks - 1) as f64
    } else {
        let visible_slope = (1.0 + cal::INTER_MAX_FACTOR_DELTA - hidden_end)
            / (cal::INTER_MAX_BLOCKS - hidden) as f64;
        hidden_end + visible_slope * (n_blocks - hidden) as f64
    }
}

/// Combined MWS latency in microseconds for an operation that activates
/// `n_blocks` blocks with at most `max_wls_per_block` target wordlines in
/// any one of them, given the base read latency `tr_us`.
///
/// The wordline-count and block-count effects are both precharge-side, so
/// the model composes their *deltas* additively on the shared baseline.
pub fn mws_latency_us(tr_us: f64, max_wls_per_block: usize, n_blocks: usize) -> f64 {
    let intra_delta = intra_latency_factor(max_wls_per_block) - 1.0;
    let inter_delta = inter_latency_factor(n_blocks) - 1.0;
    tr_us * (1.0 + intra_delta + inter_delta)
}

/// Latency of a regular single-wordline SLC read, microseconds (Table 1).
pub fn regular_read_latency_us() -> f64 {
    timing::T_R_SLC_US
}

/// Physics-mode string evaluation for one block's contribution to a sense:
/// column `c` conducts iff **every** target wordline's cell `c` has
/// `V_TH ≤ V_REF` (non-target wordlines get `V_PASS` and always conduct).
///
/// `wl_vth[w]` is the V_TH population of target wordline `w`; all must
/// have the same length. Returns the per-bitline conduction (i.e. the
/// sensed AND page).
///
/// The comparisons are packed 64 bitlines per word
/// ([`BitVec::and_le_threshold`]); no per-bit construction happens.
///
/// # Panics
///
/// Panics if `wl_vth` is empty or the populations have different lengths.
pub fn evaluate_string_and(wl_vth: &[&[f64]], vref: f64) -> BitVec {
    assert!(!wl_vth.is_empty(), "no target wordlines");
    let bits = wl_vth[0].len();
    assert!(wl_vth.iter().all(|v| v.len() == bits), "wordline width mismatch");
    let mut out = BitVec::ones(bits);
    for v in wl_vth {
        out.and_le_threshold(v, vref);
    }
    out
}

/// Physics-mode inter-block combination: the bitline conducts if **any**
/// activated block's string conducts (OR across blocks).
///
/// # Panics
///
/// Panics if `per_block` is empty or widths mismatch.
pub fn combine_blocks_or(per_block: &[BitVec]) -> BitVec {
    assert!(!per_block.is_empty(), "no blocks to combine");
    let mut out = BitVec::zeros(per_block[0].len());
    combine_blocks_or_into(&mut out, per_block);
    out
}

/// Like [`combine_blocks_or`] but writes into a caller-provided output
/// (reusing its allocation), so the steady-state MWS path combines blocks
/// without cloning any per-block page.
///
/// # Panics
///
/// Panics if `per_block` is empty or widths mismatch.
pub fn combine_blocks_or_into(out: &mut BitVec, per_block: &[BitVec]) {
    assert!(!per_block.is_empty(), "no blocks to combine");
    out.assign_from(&per_block[0]);
    for b in &per_block[1..] {
        out.or_assign(b);
    }
}

/// Predicted single-bit misread probability when a page programmed with
/// `scheme` is sensed at `vref` under the block's stress conditions —
/// the read-retry calibration model (MCFlash-style sense-level shifting).
///
/// Both distributions are shifted the way [`StressModel::apply`] shifts
/// the physics-mode populations: retention pulls the programmed state
/// *down* (mean loss ∝ stored charge, tail spread ∝ √wear·√log-time) and
/// read disturb pushes the erased state *up* (erased cells carry the
/// full disturb weight). Assuming balanced stored data, the misread
/// probability is the average of the two Gaussian tails across `vref` —
/// which is exactly what a retry controller minimizes when it picks a
/// shifted sense level.
pub fn shifted_read_rber(
    scheme: ProgramScheme,
    stress: StressState,
    model: &StressModel,
    vref: f64,
) -> f64 {
    let layout = scheme.layout();
    let erased = layout.states[0];
    let programmed = *layout.states.last().expect("layouts always carry states");
    let charge = programmed.mean_v - erased.mean_v;
    let ln_t = (1.0 + stress.retention_months.max(0.0) / model.retention_t0_months).ln();
    let sigma_ret = model.retention_sigma_v
        * model.wear_factor(stress.pec).sqrt()
        * (ln_t.max(0.0) / 13f64.ln()).sqrt();
    let shifted_programmed = VthState::new(
        programmed.mean_v - model.retention_shift_mean(charge, stress),
        (programmed.sigma_v * programmed.sigma_v + sigma_ret * sigma_ret).sqrt(),
    );
    // Erased cells sit far from V_PASS, so they take the disturb bump at
    // the erased-cell weight (charge ≈ 0 → weight 1/2 in the stress
    // sweep's `(2 - charge) / 4` ramp).
    let disturb = 0.5 * model.disturb_shift_mean(stress.reads_since_program);
    let shifted_erased = VthState::new(erased.mean_v + disturb, erased.sigma_v);
    0.5 * (shifted_erased.prob_above(vref) + shifted_programmed.prob_below(vref))
}

/// Builds a read-retry ladder for a page that failed to decode at the
/// nominal sense level: up to `budget` Vref *offsets* (volts, relative
/// to the scheme's nominal `V_REF`), best predicted candidate first.
///
/// Candidates come from the stress model's shift means — retention loss
/// moved the programmed distribution down, so offsets track it downward
/// (−½·shift, −shift, −1½·shift); read disturb moved the erased
/// distribution up, so offsets also probe upward (+½·bump, +bump) — plus
/// a small fixed sweep for blocks whose stress state underestimates the
/// real damage. The candidates are deduplicated and ranked by
/// [`shifted_read_rber`], so the first retry is always the model's best
/// guess and later retries widen the search.
pub fn retry_ladder(
    scheme: ProgramScheme,
    stress: StressState,
    model: &StressModel,
    budget: usize,
) -> Vec<f64> {
    if budget == 0 {
        return Vec::new();
    }
    let layout = scheme.layout();
    let charge =
        layout.states.last().expect("layouts always carry states").mean_v - layout.states[0].mean_v;
    let retention = model.retention_shift_mean(charge, stress);
    let disturb = model.disturb_shift_mean(stress.reads_since_program);
    let mut candidates: Vec<f64> = Vec::new();
    if retention > 0.0 {
        candidates.extend([-0.5 * retention, -retention, -1.5 * retention]);
    }
    if disturb > 0.0 {
        candidates.extend([0.5 * disturb, disturb]);
    }
    candidates.extend([-0.1, 0.1, -0.2, 0.2]);
    let nominal = scheme.read_vref();
    let mut ladder: Vec<f64> = Vec::with_capacity(candidates.len());
    for c in candidates {
        if ladder.iter().all(|&o| (o - c).abs() > 1e-6) {
            ladder.push(c);
        }
    }
    ladder.sort_by(|&a, &b| {
        shifted_read_rber(scheme, stress, model, nominal + a).total_cmp(&shifted_read_rber(
            scheme,
            stress,
            model,
            nominal + b,
        ))
    });
    ladder.truncate(budget);
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wl_is_a_regular_read() {
        assert!((intra_latency_factor(1) - 1.0).abs() < 1e-12);
        assert!((inter_latency_factor(1) - 1.0).abs() < 1e-12);
        assert!((mws_latency_us(22.5, 1, 1) - 22.5).abs() < 1e-9);
    }

    #[test]
    fn fig12_anchors() {
        // ≤ 8 WLs: under +1%.
        for n in [2, 4, 8] {
            let f = intra_latency_factor(n);
            assert!(f < 1.01, "{n} WLs → {f}");
        }
        // 48 WLs: +3.3%.
        assert!((intra_latency_factor(48) - 1.033).abs() < 1e-3);
        // Monotone.
        for n in 1..48 {
            assert!(intra_latency_factor(n) < intra_latency_factor(n + 1));
        }
    }

    #[test]
    fn fig13_anchors() {
        // 32 blocks: +36.3%.
        assert!((inter_latency_factor(32) - 1.363).abs() < 1e-3);
        // Mostly hidden through 8 blocks.
        assert!(inter_latency_factor(8) < 1.05);
        // Monotone.
        for n in 1..32 {
            assert!(inter_latency_factor(n) <= inter_latency_factor(n + 1));
        }
        // Much cheaper than serial reads (the whole point of MWS).
        assert!(inter_latency_factor(32) < 32.0 * 0.5);
    }

    #[test]
    fn four_block_cap_fits_the_fixed_budget() {
        // Table 1: tMWS = 25 µs covers 4 blocks × up to 48 WLs.
        let worst = mws_latency_us(timing::T_R_SLC_US, 48, 4);
        assert!(worst <= timing::T_MWS_US, "worst capped MWS {worst} µs > 25 µs");
    }

    #[test]
    fn string_and_evaluates_conduction() {
        // Cells: wl0 = [-2, 2, -2, 2], wl1 = [-2, -2, 2, 2]; vref = 0.
        let wl0 = [-2.0, 2.0, -2.0, 2.0];
        let wl1 = [-2.0, -2.0, 2.0, 2.0];
        let out = evaluate_string_and(&[&wl0, &wl1], 0.0);
        // AND of (1,0,1,0) and (1,1,0,0) = (1,0,0,0).
        assert!(out.get(0));
        assert!(!out.get(1));
        assert!(!out.get(2));
        assert!(!out.get(3));
    }

    #[test]
    fn blocks_or_combines() {
        let a = BitVec::from_bools(&[true, false, false]);
        let b = BitVec::from_bools(&[false, true, false]);
        let out = combine_blocks_or(&[a, b]);
        assert!(out.get(0) && out.get(1) && !out.get(2));
    }

    #[test]
    #[should_panic(expected = "at least one wordline")]
    fn zero_wordlines_panics() {
        intra_latency_factor(0);
    }

    #[test]
    fn shifted_rber_improves_at_the_retry_offset_under_retention() {
        // A retention-aged block moved its programmed distribution down;
        // sensing lower must beat the nominal level.
        let model = StressModel::default();
        let stress = StressState { pec: 10_000, retention_months: 12.0, reads_since_program: 0 };
        let nominal = ProgramScheme::Slc.read_vref();
        let at_nominal = shifted_read_rber(ProgramScheme::Slc, stress, &model, nominal);
        let charge = 4.0; // SLC: programmed 2.0 − erased −2.0
        let shift = model.retention_shift_mean(charge, stress);
        let at_retry = shifted_read_rber(ProgramScheme::Slc, stress, &model, nominal - 0.5 * shift);
        assert!(at_nominal > 0.0, "aged SLC must predict errors");
        assert!(
            at_retry < at_nominal,
            "retry level must predict fewer: {at_retry} vs {at_nominal}"
        );
    }

    #[test]
    fn retry_ladder_is_ranked_deduped_and_budgeted() {
        let model = StressModel::default();
        let stress = StressState { pec: 10_000, retention_months: 12.0, reads_since_program: 50 };
        let ladder = retry_ladder(ProgramScheme::Slc, stress, &model, 4);
        assert_eq!(ladder.len(), 4, "budget bounds the ladder");
        let nominal = ProgramScheme::Slc.read_vref();
        let rbers: Vec<f64> = ladder
            .iter()
            .map(|&o| shifted_read_rber(ProgramScheme::Slc, stress, &model, nominal + o))
            .collect();
        assert!(rbers.windows(2).all(|w| w[0] <= w[1]), "best candidate first: {rbers:?}");
        for (i, &a) in ladder.iter().enumerate() {
            for &b in &ladder[i + 1..] {
                assert!((a - b).abs() > 1e-6, "duplicate offsets in {ladder:?}");
            }
        }
        // Retention dominates the aged case: the top offsets sense lower.
        assert!(ladder[0] < 0.0, "aged block retries downward first: {ladder:?}");
        assert!(retry_ladder(ProgramScheme::Slc, stress, &model, 0).is_empty());
    }

    #[test]
    fn fresh_block_ladder_falls_back_to_the_fixed_sweep() {
        let model = StressModel::default();
        let ladder = retry_ladder(ProgramScheme::esp_default(), StressState::fresh(), &model, 8);
        assert_eq!(ladder.len(), 4, "no stress shifts → only the fixed sweep");
    }
}
