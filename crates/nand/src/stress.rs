//! Error-source physics: retention loss, read disturb, program
//! interference and P/E-cycle wear (§2.2, Fig. 5a).
//!
//! These transforms act on per-cell V_TH populations produced by the ISPP
//! engine. The closed-form RBER model in [`crate::rber`] is calibrated to
//! the paper's measurements; this module makes the *physics-mode* chip
//! reproduce the same qualitative behaviour from first principles so the
//! characterization harness can cross-check the two.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::vth::{sample_standard_normal, ERASED};

/// Stress conditions a block has experienced since its pages were
/// programmed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StressState {
    /// Program/erase cycles endured by the block (wear).
    pub pec: u32,
    /// Retention age in months at 30 °C equivalent (the paper accelerates
    /// this with temperature per Arrhenius's law; we take the equivalent
    /// age directly).
    pub retention_months: f64,
    /// Read operations since the last program (read disturb).
    pub reads_since_program: u64,
}

impl StressState {
    /// Freshly programmed block on a fresh chip.
    pub fn fresh() -> Self {
        Self { pec: 0, retention_months: 0.0, reads_since_program: 0 }
    }

    /// The paper's worst-case characterization point (§5.1): 10K P/E
    /// cycles, 1-year retention.
    pub fn worst_case() -> Self {
        Self { pec: 10_000, retention_months: 12.0, reads_since_program: 0 }
    }
}

impl Default for StressState {
    fn default() -> Self {
        Self::fresh()
    }
}

/// Physics coefficients for the stress transforms. The defaults are
/// calibrated so the physics-mode RBER lands in the same decade as the
/// paper's Fig. 8 measurements (see `tests` and the characterization
/// harness in the `flash-cosmos` crate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StressModel {
    /// Retention: fraction of a cell's charge (V_TH above the erased mean)
    /// lost per log-unit of time.
    pub retention_k: f64,
    /// Retention time constant in months.
    pub retention_t0_months: f64,
    /// Wear growth coefficient: multiplies stress per (PEC/1000)^wear_exp.
    pub wear_alpha: f64,
    /// Wear growth exponent.
    pub wear_exp: f64,
    /// Absolute per-cell spread of the retention shift in volts (scaled by
    /// √wear and √log-time). This is what creates the deep error tail: a
    /// small population of cells loses far more charge than the mean
    /// (fast-detrapping cells), which is why plain SLC still shows errors
    /// while ESP's wider margin outruns the tail.
    pub retention_sigma_v: f64,
    /// Read disturb: V_TH increase per decade of reads, in volts (affects
    /// low-V_TH cells most; §2.2).
    pub disturb_v_per_decade: f64,
    /// Program interference: one-off V_TH increase applied to a wordline
    /// when a neighbouring wordline is programmed, in volts.
    pub interference_v: f64,
    /// Random spread of interference, in volts.
    pub interference_spread_v: f64,
}

impl Default for StressModel {
    fn default() -> Self {
        Self {
            retention_k: 0.0245,
            retention_t0_months: 1.0,
            wear_alpha: 0.45,
            wear_exp: 0.6,
            retention_sigma_v: 0.19,
            disturb_v_per_decade: 0.04,
            interference_v: 0.06,
            interference_spread_v: 0.04,
        }
    }
}

impl StressModel {
    /// Wear multiplier for a P/E-cycle count: 1.0 when fresh, growing
    /// sub-linearly (§2.2: cells become more error-prone with cycling).
    pub fn wear_factor(&self, pec: u32) -> f64 {
        1.0 + self.wear_alpha * (pec as f64 / 1000.0).powf(self.wear_exp)
    }

    /// Mean retention V_TH loss for a cell currently `charge` volts above
    /// the erased mean.
    pub fn retention_shift_mean(&self, charge: f64, stress: StressState) -> f64 {
        if charge <= 0.0 || stress.retention_months <= 0.0 {
            return 0.0;
        }
        self.retention_k
            * charge
            * (1.0 + stress.retention_months / self.retention_t0_months).ln()
            * self.wear_factor(stress.pec)
    }

    /// Mean read-disturb V_TH gain after `reads` read operations.
    pub fn disturb_shift_mean(&self, reads: u64) -> f64 {
        if reads == 0 {
            return 0.0;
        }
        self.disturb_v_per_decade * (1.0 + reads as f64).log10()
    }

    /// Applies every stress source to a V_TH population **in place**.
    ///
    /// Retention pulls programmed cells down (proportionally to their
    /// stored charge); disturb and interference push low-V_TH cells up.
    pub fn apply<R: Rng + ?Sized>(&self, vth: &mut [f64], stress: StressState, rng: &mut R) {
        let disturb = self.disturb_shift_mean(stress.reads_since_program);
        let retention_on = stress.retention_months > 0.0;
        if !retention_on && disturb <= 0.0 {
            // Fresh, undisturbed block: every transform below is the
            // identity, so skip the per-cell sweep entirely.
            return;
        }
        let ln_t = (1.0 + stress.retention_months.max(0.0) / self.retention_t0_months).ln();
        let wear = self.wear_factor(stress.pec);
        let loss_scale = self.retention_k * ln_t * wear;
        // Tail spread grows with both wear and elapsed time (normalized so
        // the calibration point is the paper's worst case: 12 months).
        let sigma_ret = self.retention_sigma_v * wear.sqrt() * (ln_t / 13f64.ln()).sqrt();
        let normals = crate::vth::NormalSampler::get();
        let dis_on = disturb > 0.0;

        // The sweep is the sense hot path: one draw per affected cell on a
        // population that interleaves erased and programmed cells at
        // random. A naive per-cell loop takes two unpredictable branches
        // per cell; instead, classify each fixed-size chunk into compact
        // stack-resident index lists (branch-free), then run the draw
        // loops over just the affected cells. Disturb weights come from
        // the pre-retention charge, so each cell's shift distribution is
        // exactly the sequential formulation's — but the RNG draw *order*
        // differs (retention draws batch before disturb draws per chunk,
        // and zero-coefficient cells consume no draw), so seeded outputs
        // are statistically equivalent, not bit-identical, to a per-cell
        // loop.
        const CHUNK: usize = 1024;
        let mut ret_idx = [0u16; CHUNK];
        let mut dis_idx = [0u16; CHUNK];
        let mut dis_weight = [0f64; CHUNK];
        for chunk in vth.chunks_mut(CHUNK) {
            let mut nr = 0usize;
            let mut nd = 0usize;
            for (j, v) in chunk.iter().enumerate() {
                let charge = *v - ERASED.mean_v;
                // Retention loss applies to cells holding charge
                // (programmed states); erased cells have nothing to leak.
                ret_idx[nr] = j as u16;
                nr += usize::from(retention_on && charge > 1.0);
                // Disturb affects cells far below V_PASS the most; weight
                // by how "erased" the cell is (from the pre-retention
                // charge, as in the sequential formulation).
                let weight = ((2.0 - charge) / 4.0).clamp(0.0, 1.0);
                dis_idx[nd] = j as u16;
                dis_weight[nd] = weight;
                nd += usize::from(dis_on && weight > 0.0);
            }
            for &j in &ret_idx[..nr] {
                let v = &mut chunk[j as usize];
                let charge = *v - ERASED.mean_v;
                let loss = loss_scale * charge + sigma_ret * normals.sample(rng);
                *v -= loss.max(0.0);
            }
            for (&j, &weight) in dis_idx[..nd].iter().zip(&dis_weight) {
                let bump = disturb * weight * (1.0 + 0.3 * normals.sample(rng)).max(0.0);
                chunk[j as usize] += bump;
            }
        }
    }

    /// Applies one program-interference event (a neighbouring wordline was
    /// programmed) to a V_TH population in place.
    pub fn apply_interference<R: Rng + ?Sized>(&self, vth: &mut [f64], rng: &mut R) {
        for v in vth.iter_mut() {
            let bump =
                self.interference_v + self.interference_spread_v * sample_standard_normal(rng);
            *v += bump.max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ispp::{program_esp, program_slc_like, IsppConfig};
    use crate::vth::VthLayout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rber_after_stress(esp_ratio: Option<f64>, stress: StressState, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let targets: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let (mut vth, layout) = match esp_ratio {
            Some(r) => (program_esp(&targets, r, &mut rng).vth, VthLayout::esp(r)),
            None => (
                program_slc_like(&targets, IsppConfig::slc_default(), &mut rng).vth,
                VthLayout::slc(),
            ),
        };
        let model = StressModel::default();
        model.apply(&mut vth, stress, &mut rng);
        let vref = layout.slc_vref();
        let errors = vth
            .iter()
            .zip(&targets)
            .filter(|(&v, &erased)| {
                let read_one = v <= vref;
                read_one != erased
            })
            .count();
        errors as f64 / n as f64
    }

    #[test]
    fn wear_factor_grows_with_pec() {
        let m = StressModel::default();
        assert!((m.wear_factor(0) - 1.0).abs() < 1e-12);
        assert!(m.wear_factor(10_000) > m.wear_factor(1_000));
        assert!(m.wear_factor(10_000) > 2.0 && m.wear_factor(10_000) < 4.0);
    }

    #[test]
    fn fresh_stress_produces_effectively_no_errors() {
        let r = rber_after_stress(None, StressState::fresh(), 100_000, 11);
        assert!(r < 1e-4, "fresh SLC RBER {r}");
    }

    #[test]
    fn worst_case_slc_rber_in_fig8_decade() {
        // Fig. 8a without randomization tops out around 6e-3; physics mode
        // should land within the same decade at the worst-case corner.
        let r = rber_after_stress(None, StressState::worst_case(), 200_000, 12);
        assert!(r > 2e-4 && r < 3e-2, "worst-case SLC RBER {r} outside Fig. 8 decade");
    }

    #[test]
    fn esp_eliminates_errors_at_operating_point() {
        // §5.2: tESP ≥ 1.9 × tPROG → zero observed errors even worst-case.
        let r = rber_after_stress(Some(2.0), StressState::worst_case(), 200_000, 13);
        assert_eq!(r, 0.0, "ESP at ratio 2.0 must show zero errors, got {r}");
    }

    #[test]
    fn esp_monotonically_improves_with_budget() {
        let worst = StressState::worst_case();
        let r10 = rber_after_stress(Some(1.0), worst, 120_000, 14);
        let r16 = rber_after_stress(Some(1.6), worst, 120_000, 14);
        let r20 = rber_after_stress(Some(2.0), worst, 120_000, 14);
        assert!(r16 < r10, "ratio 1.6 ({r16}) !< ratio 1.0 ({r10})");
        assert!(r20 <= r16);
    }

    #[test]
    fn retention_pulls_down_and_disturb_pushes_up() {
        let m = StressModel::default();
        let mut rng = StdRng::seed_from_u64(15);
        let mut programmed = vec![2.0; 1000];
        m.apply(
            &mut programmed,
            StressState { pec: 5000, retention_months: 6.0, reads_since_program: 0 },
            &mut rng,
        );
        let mean = programmed.iter().sum::<f64>() / 1000.0;
        assert!(mean < 2.0, "retention must lower programmed cells: {mean}");

        let mut erased = vec![-2.0; 1000];
        m.apply(
            &mut erased,
            StressState { pec: 0, retention_months: 0.0, reads_since_program: 100_000 },
            &mut rng,
        );
        let mean = erased.iter().sum::<f64>() / 1000.0;
        assert!(mean > -2.0, "read disturb must raise erased cells: {mean}");
    }

    #[test]
    fn interference_raises_vth() {
        let m = StressModel::default();
        let mut rng = StdRng::seed_from_u64(16);
        let mut vth = vec![-2.0; 1000];
        m.apply_interference(&mut vth, &mut rng);
        let mean = vth.iter().sum::<f64>() / 1000.0;
        assert!(mean > -2.0 && mean < -1.7, "interference bump {mean}");
    }
}
