//! The Flash-Cosmos command set (§6.2, Fig. 15) plus the legacy commands.
//!
//! Three new commands extend a commodity chip's interface:
//!
//! * **MWS** — an extended read frame: an `ISCM` slot with four flags
//!   (Inverse read, S-latch init, C-latch init, M3 transfer), then one or
//!   more address slots each carrying a block address and a **page bitmap
//!   (PBM)** naming the wordlines to activate, chained with `CONT` and
//!   closed with `CONF`.
//! * **ESP** — same interface as a regular program command, but runs the
//!   enhanced ISPP pulse train.
//! * **XOR** — combines the sensing and cache latches (`C ← S XOR C`).
//!
//! This module defines the in-memory [`Command`] type and a byte-level
//! frame codec ([`encode_frame`] / [`decode_frame`]) emulating what the
//! command latching circuitry of a real chip would parse.

use fc_bits::BitVec;
use serde::{Deserialize, Serialize};

use crate::error::NandError;
use crate::geometry::{BlockAddr, WlAddr};
use crate::ispp::ProgramScheme;

/// The `ISCM` flag slot of an MWS frame (Fig. 15a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IscmFlags {
    /// Inverse-read mode (swap M1/M2 init order → sensed data inverted).
    pub inverse: bool,
    /// Initialize the sensing latch before evaluation.
    pub init_s: bool,
    /// Initialize the cache latch before evaluation.
    pub init_c: bool,
    /// Activate M3 after evaluation (`C ← C OR S`).
    pub transfer: bool,
}

impl IscmFlags {
    /// Flags for a stand-alone read/MWS whose result should land in the
    /// C-latch: init both latches, sense, transfer.
    pub fn single_read() -> Self {
        Self { inverse: false, init_s: true, init_c: true, transfer: true }
    }

    /// Flags for a stand-alone *inverse* read (NAND/NOR/NOT results).
    pub fn single_inverse_read() -> Self {
        Self { inverse: true, init_s: true, init_c: true, transfer: true }
    }

    /// Flags for an AND-accumulating sense: keep both latches, no
    /// transfer. Chain these and finish with [`Self::accumulate_last`].
    pub fn accumulate() -> Self {
        Self { inverse: false, init_s: false, init_c: false, transfer: false }
    }

    /// Flags for the last sense of an AND-accumulation chain: publish the
    /// S-latch into a freshly initialized C-latch.
    pub fn accumulate_last() -> Self {
        Self { inverse: false, init_s: false, init_c: true, transfer: true }
    }

    /// Packs the flags into the 4-bit ISCM nibble (I=bit3 … M=bit0).
    pub fn to_nibble(self) -> u8 {
        (u8::from(self.inverse) << 3)
            | (u8::from(self.init_s) << 2)
            | (u8::from(self.init_c) << 1)
            | u8::from(self.transfer)
    }

    /// Unpacks the 4-bit ISCM nibble.
    pub fn from_nibble(n: u8) -> Self {
        Self {
            inverse: n & 0b1000 != 0,
            init_s: n & 0b0100 != 0,
            init_c: n & 0b0010 != 0,
            transfer: n & 0b0001 != 0,
        }
    }
}

/// One address slot of an MWS frame: a block plus the page bitmap (PBM) of
/// wordlines to activate within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MwsTarget {
    /// Block to activate.
    pub block: BlockAddr,
    /// Bit `w` set → apply `V_REF` to wordline `w` (others get `V_PASS`).
    /// Supports strings of up to 64 cells; the paper's chips have 48.
    pub pbm: u64,
}

impl MwsTarget {
    /// Creates a target from a wordline list.
    ///
    /// # Panics
    ///
    /// Panics if any wordline index is ≥ 64.
    pub fn new(block: BlockAddr, wls: &[u32]) -> Self {
        let mut pbm = 0u64;
        for &w in wls {
            assert!(w < 64, "wordline {w} does not fit the 64-bit PBM");
            pbm |= 1 << w;
        }
        Self { block, pbm }
    }

    /// Creates a target activating all `n` wordlines of the block.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 64.
    pub fn all_wls(block: BlockAddr, n: u32) -> Self {
        assert!(n > 0 && n <= 64, "wordline count {n} out of range");
        let pbm = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        Self { block, pbm }
    }

    /// Number of activated wordlines.
    pub fn wl_count(&self) -> usize {
        self.pbm.count_ones() as usize
    }

    /// Iterator over activated wordline indices.
    pub fn wls(&self) -> impl Iterator<Item = u32> + '_ {
        (0..64u32).filter(move |w| self.pbm & (1 << w) != 0)
    }
}

/// A chip command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Command {
    /// Legacy single-wordline read: init both latches, sense, transfer.
    /// Equivalent to a one-target, one-wordline MWS with
    /// [`IscmFlags::single_read`].
    Read {
        /// Wordline to read.
        addr: WlAddr,
        /// Read in inverse mode (returns NOT of the stored raw data).
        inverse: bool,
    },
    /// Program one wordline. `randomize` engages the on-chip scrambler
    /// (incompatible with in-flash computation, §3.2 — provided so the
    /// reproduction can demonstrate exactly that).
    Program {
        /// Destination wordline.
        addr: WlAddr,
        /// Page data (must match the geometry's page size).
        data: BitVec,
        /// Programming scheme (SLC / ESP / MLC / TLC).
        scheme: ProgramScheme,
        /// Scramble data before storing.
        randomize: bool,
    },
    /// Erase a block (resets every wordline, increments its P/E count).
    Erase {
        /// Block to erase.
        block: BlockAddr,
    },
    /// Erase-verify: intra-block MWS over *all* wordlines, checking that
    /// every cell is erased (§4.1 — evidence that chips already support
    /// intra-block MWS). Result page is all-ones iff fully erased.
    EraseVerify {
        /// Block to verify.
        block: BlockAddr,
    },
    /// Multi-Wordline Sensing (Fig. 15a).
    Mws {
        /// ISCM latch-control flags.
        flags: IscmFlags,
        /// One or more (block, PBM) targets, all in the same plane.
        targets: Vec<MwsTarget>,
    },
    /// Dynamic-sensing threshold vote (the MCFlash-style `mlsense`
    /// primitive): activate the target's wordlines like an intra-block
    /// MWS, but sense at an intermediate reference so each bitline
    /// reports "at least `k` of the activated cells are **programmed**"
    /// instead of "all erased". A single-block, single-sense operation —
    /// the cross-block generalization is the controller's job.
    ThresholdMws {
        /// The (block, PBM) group to activate — one block only.
        target: MwsTarget,
        /// Minimum number of programmed cells per bitline for a 1 result.
        k: usize,
    },
    /// Program one physical wordline as a multi-level (MLC/TLC) cell
    /// page: 2–3 logical pages are Gray-packed cell-wise into one V_TH
    /// level per cell (`mlsense::encode_levels`). Never randomized — the
    /// data feeds in-flash computation.
    ProgramMl {
        /// Destination wordline.
        addr: WlAddr,
        /// The logical pages, LSB page first (length must equal the
        /// scheme's bits-per-cell).
        pages: Vec<BitVec>,
        /// Multi-level programming scheme (`Mlc` or `Tlc`).
        scheme: ProgramScheme,
    },
    /// Read one wordline at an explicit level boundary: bit `i` of the
    /// result is 1 iff cell `i`'s V_TH level is at or below `level` (a
    /// conduction sense at the Vref between states `level` and
    /// `level + 1`). The controller combines these per-transition senses
    /// into a logical page (`mlsense::page_from_senses`).
    ReadLevel {
        /// Wordline to sense.
        addr: WlAddr,
        /// Level boundary index (`0..states − 1`).
        level: u8,
    },
    /// Inter-latch XOR (`C ← S XOR C`, Fig. 15).
    XorLatch {
        /// Plane whose latch bank to combine.
        plane: u32,
    },
    /// Stream the C-latch out to the controller (a data-out cycle).
    ReadOut {
        /// Plane whose C-latch to stream.
        plane: u32,
    },
    /// Copyback: read a page into the latch and program it to another
    /// wordline of the same plane without off-chip transfer (§2.1
    /// footnote 3).
    Copyback {
        /// Source wordline.
        from: WlAddr,
        /// Destination wordline.
        to: WlAddr,
    },
    /// SET FEATURE: tune operating parameters (§4.2 — "commodity NAND
    /// flash chips can tune ISPP parameters using the SET FEATURE
    /// command").
    SetFeature {
        /// The feature to set.
        feature: Feature,
    },
}

impl Command {
    /// Convenience constructor: ESP-program a page at the paper's default
    /// operating point (no randomization — the data feeds in-flash
    /// computation).
    pub fn esp_program(addr: WlAddr, data: BitVec) -> Self {
        Command::Program { addr, data, scheme: ProgramScheme::esp_default(), randomize: false }
    }

    /// Convenience constructor: regular SLC program with randomization
    /// (the conventional storage path).
    pub fn slc_program(addr: WlAddr, data: BitVec) -> Self {
        Command::Program { addr, data, scheme: ProgramScheme::Slc, randomize: true }
    }
}

/// Tunable chip features (SET FEATURE, §4.2/§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Feature {
    /// Power cap on simultaneously activated blocks for inter-block MWS
    /// (Table 1 default: 4).
    MaxInterBlocks(u8),
    /// ESP latency budget as a multiple of `tPROG` (default 2.0).
    EspLatencyRatio(f64),
}

/// Opcodes of the byte-level frame codec.
mod opcode {
    pub const MWS: u8 = 0xC0;
    pub const ESP: u8 = 0xC1;
    pub const XOR: u8 = 0xC2;
    /// `CONT`: another address slot follows (Fig. 15a).
    pub const CONT: u8 = 0xC8;
    /// `CONF`: end of command sequence (Fig. 15a).
    pub const CONF: u8 = 0xC9;
}

/// Encodes an MWS command into the Fig. 15a wire frame:
///
/// ```text
/// [MWS][ISCM][plane][blk lo][blk hi][pbm ×8] ([CONT][plane][blk lo][blk hi][pbm ×8])* [CONF]
/// ```
pub fn encode_frame(flags: IscmFlags, targets: &[MwsTarget]) -> Vec<u8> {
    let mut out = vec![opcode::MWS, flags.to_nibble()];
    for (i, t) in targets.iter().enumerate() {
        if i > 0 {
            out.push(opcode::CONT);
        }
        out.push(t.block.plane as u8);
        out.extend_from_slice(&(t.block.block as u16).to_le_bytes());
        out.extend_from_slice(&t.pbm.to_le_bytes());
    }
    out.push(opcode::CONF);
    out
}

/// Decodes a Fig. 15a wire frame back into flags and targets.
///
/// # Errors
///
/// Returns [`NandError::MalformedFrame`] on truncated or ill-formed input.
pub fn decode_frame(bytes: &[u8]) -> Result<(IscmFlags, Vec<MwsTarget>), NandError> {
    let malformed = |msg: &str| NandError::MalformedFrame(msg.to_string());
    if bytes.len() < 2 || bytes[0] != opcode::MWS {
        return Err(malformed("missing MWS opcode"));
    }
    if bytes[1] > 0x0F {
        return Err(malformed("ISCM slot uses more than four bits"));
    }
    let flags = IscmFlags::from_nibble(bytes[1]);
    let mut targets = Vec::new();
    let mut i = 2;
    loop {
        if i + 11 > bytes.len() {
            return Err(malformed("truncated address slot"));
        }
        let plane = bytes[i] as u32;
        let block = u16::from_le_bytes([bytes[i + 1], bytes[i + 2]]) as u32;
        let pbm = u64::from_le_bytes(bytes[i + 3..i + 11].try_into().unwrap());
        targets.push(MwsTarget { block: BlockAddr::new(plane, block), pbm });
        i += 11;
        match bytes.get(i) {
            Some(&b) if b == opcode::CONT => i += 1,
            Some(&b) if b == opcode::CONF => {
                if i + 1 != bytes.len() {
                    return Err(malformed("trailing bytes after CONF"));
                }
                return Ok((flags, targets));
            }
            _ => return Err(malformed("expected CONT or CONF")),
        }
    }
}

/// Opcode byte of the ESP command (Fig. 15b — "same command interface as
/// the regular program command"). Exposed for controller firmware models.
pub fn esp_opcode() -> u8 {
    opcode::ESP
}

/// Opcode byte of the XOR command (Fig. 15c).
pub fn xor_opcode() -> u8 {
    opcode::XOR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iscm_nibble_roundtrip() {
        for n in 0..16u8 {
            assert_eq!(IscmFlags::from_nibble(n).to_nibble(), n);
        }
        assert_eq!(IscmFlags::single_read().to_nibble(), 0b0111);
        assert_eq!(IscmFlags::single_inverse_read().to_nibble(), 0b1111);
        assert_eq!(IscmFlags::accumulate().to_nibble(), 0b0000);
        assert_eq!(IscmFlags::accumulate_last().to_nibble(), 0b0011);
    }

    #[test]
    fn target_wordline_helpers() {
        let t = MwsTarget::new(BlockAddr::new(0, 7), &[0, 3, 47]);
        assert_eq!(t.wl_count(), 3);
        assert_eq!(t.wls().collect::<Vec<_>>(), vec![0, 3, 47]);
        let all = MwsTarget::all_wls(BlockAddr::new(1, 0), 48);
        assert_eq!(all.wl_count(), 48);
        let full = MwsTarget::all_wls(BlockAddr::new(1, 0), 64);
        assert_eq!(full.wl_count(), 64);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_wordline_panics() {
        MwsTarget::new(BlockAddr::new(0, 0), &[64]);
    }

    #[test]
    fn frame_roundtrip_single_target() {
        let flags = IscmFlags::single_read();
        let targets = vec![MwsTarget::new(BlockAddr::new(1, 513), &[0, 5])];
        let frame = encode_frame(flags, &targets);
        let (f2, t2) = decode_frame(&frame).unwrap();
        assert_eq!(f2, flags);
        assert_eq!(t2, targets);
    }

    #[test]
    fn frame_roundtrip_four_targets() {
        // Fig. 15a: "up to four address slots for inter-block MWS".
        let flags = IscmFlags::single_inverse_read();
        let targets: Vec<MwsTarget> =
            (0..4).map(|b| MwsTarget::new(BlockAddr::new(0, b), &[b, b + 1])).collect();
        let frame = encode_frame(flags, &targets);
        // Three CONT separators present.
        assert_eq!(frame.iter().filter(|&&b| b == 0xC8).count(), 3);
        assert_eq!(*frame.last().unwrap(), 0xC9);
        let (f2, t2) = decode_frame(&frame).unwrap();
        assert_eq!(f2, flags);
        assert_eq!(t2, targets);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(decode_frame(&[]).is_err());
        assert!(decode_frame(&[0x00, 0x07]).is_err());
        let good =
            encode_frame(IscmFlags::single_read(), &[MwsTarget::new(BlockAddr::new(0, 0), &[0])]);
        // Truncation anywhere breaks it.
        for cut in 1..good.len() {
            assert!(decode_frame(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage breaks it.
        let mut bad = good.clone();
        bad.push(0xFF);
        assert!(decode_frame(&bad).is_err());
    }

    #[test]
    fn constructors_build_expected_commands() {
        let addr = WlAddr::new(0, 1, 2);
        match Command::esp_program(addr, BitVec::zeros(8)) {
            Command::Program { scheme: ProgramScheme::Esp { ratio }, randomize, .. } => {
                assert_eq!(ratio, 2.0);
                assert!(!randomize);
            }
            other => panic!("unexpected {other:?}"),
        }
        match Command::slc_program(addr, BitVec::zeros(8)) {
            Command::Program { scheme: ProgramScheme::Slc, randomize, .. } => assert!(randomize),
            other => panic!("unexpected {other:?}"),
        }
    }
}
