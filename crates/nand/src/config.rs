//! Chip configuration: geometry, fidelity level, environment and seeds.

use serde::{Deserialize, Serialize};

use crate::calib::timing;
use crate::geometry::ChipGeometry;
use crate::rber::RberModel;
use crate::stress::StressModel;

/// How faithfully the chip simulates cell behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Pages are stored as exact bit vectors; reads optionally inject
    /// raw bit errors sampled from the calibrated RBER model. Fast enough
    /// for SSD-scale functional runs.
    Functional {
        /// Inject sampled raw bit errors on every sense.
        inject_errors: bool,
    },
    /// Every cell carries a threshold voltage: programs run the ISPP
    /// engine, stress physics shift V_TH, senses compare against `V_REF`.
    /// Used by the characterization harness on small geometries.
    Physics,
}

/// Full chip configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Cell-array geometry.
    pub geometry: ChipGeometry,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Power cap on simultaneously activated blocks for inter-block MWS
    /// (Table 1 default: 4). Adjustable at runtime via SET FEATURE.
    pub max_inter_blocks: usize,
    /// Calibrated RBER model (functional-mode error injection).
    pub rber: RberModel,
    /// Stress physics coefficients (physics mode).
    pub stress_model: StressModel,
    /// Seed for all stochastic behaviour (error sampling, V_TH sampling,
    /// scrambler). Two chips with equal configs behave identically.
    pub seed: u64,
    /// Fraction of bitline columns with permanent (stuck-at) defects
    /// (§5.1 footnote 9: the paper profiles and excludes faulty cells).
    /// Zero by default; reliability studies opt in.
    pub faulty_column_fraction: f64,
}

impl ChipConfig {
    /// The paper's chip (Table 1 geometry, functional fidelity, error
    /// injection on).
    pub fn paper() -> Self {
        Self {
            geometry: ChipGeometry::paper(),
            fidelity: Fidelity::Functional { inject_errors: true },
            max_inter_blocks: timing::MAX_INTER_BLOCKS,
            rber: RberModel::paper(),
            stress_model: StressModel::default(),
            seed: 0xC05_305,
            faulty_column_fraction: 0.0,
        }
    }

    /// Tiny geometry, functional fidelity, **no** error injection —
    /// deterministic results for unit tests and examples.
    pub fn tiny_test() -> Self {
        Self {
            geometry: ChipGeometry::tiny(),
            fidelity: Fidelity::Functional { inject_errors: false },
            max_inter_blocks: timing::MAX_INTER_BLOCKS,
            rber: RberModel::paper(),
            stress_model: StressModel::default(),
            seed: 7,
            faulty_column_fraction: 0.0,
        }
    }

    /// Tiny geometry with error injection on — for reliability tests.
    pub fn tiny_noisy() -> Self {
        Self { fidelity: Fidelity::Functional { inject_errors: true }, ..Self::tiny_test() }
    }

    /// Tiny geometry at physics fidelity — for characterization tests.
    pub fn tiny_physics() -> Self {
        Self { fidelity: Fidelity::Physics, ..Self::tiny_test() }
    }

    /// Returns this config with a different seed (for multi-chip sweeps).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns this config with a fraction of permanently faulty bitline
    /// columns (stuck-at defects).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `0.0..=0.5`.
    pub fn with_faulty_columns(mut self, fraction: f64) -> Self {
        assert!((0.0..=0.5).contains(&fraction), "faulty fraction {fraction} out of range");
        self.faulty_column_fraction = fraction;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_sane() {
        let paper = ChipConfig::paper();
        assert_eq!(paper.max_inter_blocks, 4);
        assert!(matches!(paper.fidelity, Fidelity::Functional { inject_errors: true }));

        let t = ChipConfig::tiny_test();
        assert!(matches!(t.fidelity, Fidelity::Functional { inject_errors: false }));
        assert!(t.geometry.total_cells() < 1_000_000, "tiny must stay tiny");

        assert!(matches!(ChipConfig::tiny_physics().fidelity, Fidelity::Physics));
        assert!(matches!(
            ChipConfig::tiny_noisy().fidelity,
            Fidelity::Functional { inject_errors: true }
        ));
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = ChipConfig::tiny_test();
        let b = a.clone().with_seed(99);
        assert_eq!(a.geometry, b.geometry);
        assert_ne!(a.seed, b.seed);
    }
}
