//! Incremental Step Pulse Programming (ISPP) and Enhanced SLC-mode
//! Programming (ESP) — §4.2, Fig. 10.
//!
//! ISPP raises a cell's V_TH in discrete pulses: every pulse adds roughly
//! `ΔV_ISPP` to the cell's threshold voltage, and a verify step after each
//! pulse excludes cells that have reached their target voltage `V_TGT` from
//! further pulses. The final distribution width is therefore governed by
//! `ΔV_ISPP` (plus intrinsic noise), and the program latency by the number
//! of pulses.
//!
//! ESP = regular SLC programming + extra pulses with a **raised `V_TGT`**
//! and a **smaller `ΔV_ISPP`**, trading latency for margin (Fig. 10a:
//! "Only in ESP").

use fc_bits::BitVec;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::calib::timing;
use crate::geometry::CellMode;
use crate::vth::{NormalSampler, VthLayout, ERASED};

/// How a page is programmed. This choice drives latency, capacity and
/// reliability everywhere in the stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ProgramScheme {
    /// Regular SLC-mode programming (1 bit/cell, default ISPP).
    #[default]
    Slc,
    /// Enhanced SLC-mode programming with the given latency budget
    /// `tESP / tPROG(SLC)` (the paper's operating point is 2.0 → 400 µs).
    Esp {
        /// Latency budget as a multiple of the SLC program latency;
        /// clamped to `1.0..=2.5` wherever it is interpreted.
        ratio: f64,
    },
    /// Regular MLC-mode programming (2 bits/cell).
    Mlc,
    /// Regular TLC-mode programming (3 bits/cell).
    Tlc,
}

impl ProgramScheme {
    /// ESP at the paper's default operating point (`tESP = 2 × tPROG`).
    pub fn esp_default() -> Self {
        ProgramScheme::Esp { ratio: timing::T_ESP_US / timing::T_PROG_SLC_US }
    }

    /// The cell mode this scheme programs in.
    pub fn cell_mode(self) -> CellMode {
        match self {
            ProgramScheme::Slc | ProgramScheme::Esp { .. } => CellMode::Slc,
            ProgramScheme::Mlc => CellMode::Mlc,
            ProgramScheme::Tlc => CellMode::Tlc,
        }
    }

    /// Program latency in microseconds (Table 1).
    pub fn program_latency_us(self) -> f64 {
        match self {
            ProgramScheme::Slc => timing::T_PROG_SLC_US,
            ProgramScheme::Esp { ratio } => timing::T_PROG_SLC_US * ratio.clamp(1.0, 2.5),
            ProgramScheme::Mlc => timing::T_PROG_MLC_US,
            ProgramScheme::Tlc => timing::T_PROG_TLC_US,
        }
    }

    /// The V_TH layout this scheme produces.
    pub fn layout(self) -> VthLayout {
        match self {
            ProgramScheme::Slc => VthLayout::slc(),
            ProgramScheme::Esp { ratio } => VthLayout::esp(ratio),
            ProgramScheme::Mlc => VthLayout::mlc(),
            ProgramScheme::Tlc => VthLayout::tlc(),
        }
    }

    /// The SLC-style read reference voltage of this scheme's layout
    /// (the first `V_REF`), computed without materializing the layout —
    /// the physics-mode sense path queries this per target wordline.
    pub fn read_vref(self) -> f64 {
        match self {
            ProgramScheme::Slc => crate::vth::SLC_VREF,
            ProgramScheme::Esp { ratio } => crate::vth::esp_vref(ratio),
            // Multi-bit layouts derive their read levels from the state
            // list; rare on this path, so building the layout is fine.
            ProgramScheme::Mlc | ProgramScheme::Tlc => self.layout().slc_vref_or_first(),
        }
    }

    /// Whether this is (any flavor of) single-bit-per-cell programming.
    pub fn is_single_bit(self) -> bool {
        matches!(self, ProgramScheme::Slc | ProgramScheme::Esp { .. })
    }
}

/// ISPP pulse-train parameters (Fig. 10a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsppConfig {
    /// Target threshold voltage `V_TGT` in volts.
    pub vtgt: f64,
    /// Step voltage `ΔV_ISPP` in volts.
    pub delta_v: f64,
    /// Per-pulse intrinsic noise sigma in volts (cell-to-cell variation in
    /// coupling efficiency).
    pub pulse_noise_v: f64,
    /// Maximum pulses before giving up (real chips flag a program failure;
    /// we size it generously).
    pub max_pulses: u32,
}

impl IsppConfig {
    /// Default SLC pulse train: coarse steps to 2.0 V.
    pub fn slc_default() -> Self {
        Self { vtgt: 2.0, delta_v: 0.6, pulse_noise_v: 0.05, max_pulses: 32 }
    }

    /// The ESP refinement pulse train for a latency ratio: smaller steps,
    /// raised target (Fig. 10).
    pub fn esp_refinement(ratio: f64) -> Self {
        let r = ratio.clamp(1.0, 2.5) - 1.0;
        Self {
            vtgt: 2.0 + 1.3 * r,
            delta_v: (0.6 - 0.4 * r).max(0.1),
            pulse_noise_v: 0.03,
            max_pulses: 64,
        }
    }
}

/// Outcome of programming one wordline's cells through the ISPP engine.
#[derive(Debug, Clone, PartialEq)]
pub struct IsppOutcome {
    /// Final per-cell threshold voltages.
    pub vth: Vec<f64>,
    /// Pulses consumed by the slowest cell.
    pub pulses: u32,
}

/// Packs the cells that must be programmed (SLC encoding: bit 1 = stay
/// erased, bit 0 = program) into 64-lane mask words.
fn program_mask(targets: &[bool]) -> Vec<u64> {
    let mut mask = vec![0u64; targets.len().div_ceil(64)];
    for (i, &stay_erased) in targets.iter().enumerate() {
        if !stay_erased {
            mask[i / 64] |= 1 << (i % 64);
        }
    }
    mask
}

/// Samples every cell's starting (erased) level, cell-major — shared by
/// the word-parallel kernel and the scalar oracle so their RNG streams
/// stay aligned.
fn erased_levels<R: Rng + ?Sized>(cells: usize, rng: &mut R) -> Vec<f64> {
    let sampler = NormalSampler::get();
    (0..cells).map(|_| ERASED.mean_v + ERASED.sigma_v * sampler.sample(rng)).collect()
}

/// The word-parallel pulse engine: applies ISPP rounds to every cell
/// whose lane is set in `program` until all reach `cfg.vtgt` (or the
/// pulse cap). Per round, lanes update 64-at-a-time off the packed
/// active mask — finished words (and all stay-erased lanes) are skipped
/// with one comparison — and the verify step folds into the update (the
/// mask bit is recomputed from the fresh V_TH in place). Draw order is
/// pulse-major (round by round, ascending cell), which the scalar oracle
/// mirrors exactly.
///
/// Returns the number of rounds any cell consumed.
fn pulse_rounds<R: Rng + ?Sized>(
    vth: &mut [f64],
    program: &[u64],
    cfg: IsppConfig,
    rng: &mut R,
) -> u32 {
    let sampler = NormalSampler::get();
    // Active = programmed lanes still below target.
    let mut active: Vec<u64> = program.to_vec();
    for (w, word) in active.iter_mut().enumerate() {
        let mut m = *word;
        let mut keep = 0u64;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            if vth[w * 64 + b] < cfg.vtgt {
                keep |= 1 << b;
            }
        }
        *word = keep;
    }
    let mut rounds = 0u32;
    while rounds < cfg.max_pulses {
        let mut any = false;
        for (w, word) in active.iter_mut().enumerate() {
            let mut m = *word;
            if m == 0 {
                continue;
            }
            any = true;
            let base = w * 64;
            let mut next = 0u64;
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                m &= m - 1;
                let v = &mut vth[base + b];
                *v += cfg.delta_v + cfg.pulse_noise_v * sampler.sample(rng);
                if *v < cfg.vtgt {
                    next |= 1 << b;
                }
            }
            *word = next;
        }
        if !any {
            break;
        }
        rounds += 1;
    }
    rounds
}

/// The scalar pulse engine — the bit-exact oracle for `pulse_rounds`.
/// Identical semantics and RNG draw order (pulse-major, ascending cell),
/// expressed cell-by-cell with no packing; kept for the equivalence
/// tests and as the readable specification.
fn pulse_rounds_serial<R: Rng + ?Sized>(
    vth: &mut [f64],
    targets: &[bool],
    cfg: IsppConfig,
    rng: &mut R,
) -> u32 {
    let sampler = NormalSampler::get();
    let mut active: Vec<bool> =
        targets.iter().zip(vth.iter()).map(|(&stay, &v)| !stay && v < cfg.vtgt).collect();
    let mut rounds = 0u32;
    while rounds < cfg.max_pulses {
        let mut any = false;
        for (i, on) in active.iter_mut().enumerate() {
            if !*on {
                continue;
            }
            any = true;
            vth[i] += cfg.delta_v + cfg.pulse_noise_v * sampler.sample(rng);
            *on = vth[i] < cfg.vtgt;
        }
        if !any {
            break;
        }
        rounds += 1;
    }
    rounds
}

/// Programs cells to `targets` (true = leave erased, false = program, SLC
/// encoding) through the word-parallel ISPP engine (`pulse_rounds`).
///
/// Returns the final V_TH of each cell and the pulse count. Cells left
/// erased are sampled from the erased distribution.
pub fn program_slc_like<R: Rng + ?Sized>(
    targets: &[bool],
    cfg: IsppConfig,
    rng: &mut R,
) -> IsppOutcome {
    let mut vth = erased_levels(targets.len(), rng);
    let pulses = pulse_rounds(&mut vth, &program_mask(targets), cfg, rng);
    IsppOutcome { vth, pulses }
}

/// Scalar oracle for [`program_slc_like`]: bit-exact (same RNG stream,
/// same output) but cell-by-cell.
pub fn program_slc_like_serial<R: Rng + ?Sized>(
    targets: &[bool],
    cfg: IsppConfig,
    rng: &mut R,
) -> IsppOutcome {
    let mut vth = erased_levels(targets.len(), rng);
    let pulses = pulse_rounds_serial(&mut vth, targets, cfg, rng);
    IsppOutcome { vth, pulses }
}

/// The single train-composition the mask-level entry points share: the
/// coarse SLC train, plus the ESP refinement train when the scheme asks
/// for one — so the bool-slice and packed-page paths cannot drift apart.
fn program_masked<R: Rng + ?Sized>(
    program: &[u64],
    cells: usize,
    scheme: ProgramScheme,
    rng: &mut R,
) -> IsppOutcome {
    let mut vth = erased_levels(cells, rng);
    let mut pulses = pulse_rounds(&mut vth, program, IsppConfig::slc_default(), rng);
    if let ProgramScheme::Esp { ratio } = scheme {
        if ratio > 1.0 {
            pulses += pulse_rounds(&mut vth, program, IsppConfig::esp_refinement(ratio), rng);
        }
    }
    IsppOutcome { vth, pulses }
}

/// Programs cells with full ESP: the regular SLC pulse train followed by
/// the refinement train with raised `V_TGT` and reduced `ΔV_ISPP`, both
/// through the word-parallel engine.
pub fn program_esp<R: Rng + ?Sized>(targets: &[bool], ratio: f64, rng: &mut R) -> IsppOutcome {
    program_masked(&program_mask(targets), targets.len(), ProgramScheme::Esp { ratio }, rng)
}

/// Scalar oracle for [`program_esp`].
pub fn program_esp_serial<R: Rng + ?Sized>(
    targets: &[bool],
    ratio: f64,
    rng: &mut R,
) -> IsppOutcome {
    let mut out = program_slc_like_serial(targets, IsppConfig::slc_default(), rng);
    if ratio <= 1.0 {
        return out;
    }
    let refine = IsppConfig::esp_refinement(ratio);
    out.pulses += pulse_rounds_serial(&mut out.vth, targets, refine, rng);
    out
}

/// Programs a stored page straight off its packed words (bit 1 = stay
/// erased): the physics-mode program path's entry point, word-parallel
/// end to end with no `Vec<bool>` materialization.
pub fn program_page<R: Rng + ?Sized>(
    page: &BitVec,
    scheme: ProgramScheme,
    rng: &mut R,
) -> IsppOutcome {
    // The packed page *is* the stay-erased mask; programming wants its
    // complement, trimmed to the page length.
    let cells = page.len();
    let mut program: Vec<u64> = page.words().iter().map(|w| !w).collect();
    if !cells.is_multiple_of(64) {
        if let Some(last) = program.last_mut() {
            *last &= (1u64 << (cells % 64)) - 1;
        }
    }
    program_masked(&program, cells, scheme, rng)
}

/// Empirical width (standard deviation) of the programmed distribution.
/// Convenience for tests and the characterization harness.
pub fn programmed_sigma(vth: &[f64], targets: &[bool]) -> f64 {
    let programmed: Vec<f64> =
        vth.iter().zip(targets).filter(|(_, &e)| !e).map(|(&v, _)| v).collect();
    if programmed.len() < 2 {
        return 0.0;
    }
    let mean = programmed.iter().sum::<f64>() / programmed.len() as f64;
    (programmed.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / programmed.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn half_programmed(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 0).collect()
    }

    #[test]
    fn scheme_latencies_match_table1() {
        assert_eq!(ProgramScheme::Slc.program_latency_us(), 200.0);
        assert_eq!(ProgramScheme::esp_default().program_latency_us(), 400.0);
        assert_eq!(ProgramScheme::Mlc.program_latency_us(), 500.0);
        assert_eq!(ProgramScheme::Tlc.program_latency_us(), 700.0);
        assert_eq!(ProgramScheme::Esp { ratio: 1.5 }.program_latency_us(), 300.0);
    }

    #[test]
    fn slc_programming_reaches_target() {
        let mut rng = StdRng::seed_from_u64(1);
        let targets = half_programmed(2000);
        let out = program_slc_like(&targets, IsppConfig::slc_default(), &mut rng);
        for (v, &erased) in out.vth.iter().zip(&targets) {
            if erased {
                assert!(*v < 0.0, "erased cell at {v}");
            } else {
                assert!(*v >= 2.0, "programmed cell below target: {v}");
                assert!(*v < 3.2, "programmed cell overshot: {v}");
            }
        }
        assert!(out.pulses <= 32);
    }

    #[test]
    fn esp_raises_target_and_tightens_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let targets = half_programmed(4000);
        let slc = program_slc_like(&targets, IsppConfig::slc_default(), &mut rng);
        let esp = program_esp(&targets, 2.0, &mut rng);
        let slc_sigma = programmed_sigma(&slc.vth, &targets);
        let esp_sigma = programmed_sigma(&esp.vth, &targets);
        assert!(esp_sigma < slc_sigma, "ESP sigma {esp_sigma} !< SLC sigma {slc_sigma}");
        // ESP programmed cells all sit at/above the raised target.
        for (v, &erased) in esp.vth.iter().zip(&targets) {
            if !erased {
                assert!(*v >= 3.2, "ESP cell below raised target: {v}");
            }
        }
        // ESP spends more pulses (that is where the latency goes).
        assert!(esp.pulses > slc.pulses);
    }

    #[test]
    fn esp_ratio_one_adds_no_refinement() {
        let mut rng = StdRng::seed_from_u64(3);
        let targets = half_programmed(512);
        let out = program_esp(&targets, 1.0, &mut rng);
        for (v, &erased) in out.vth.iter().zip(&targets) {
            if !erased {
                assert!(*v >= 2.0 && *v < 3.2);
            }
        }
    }

    #[test]
    fn refinement_step_shrinks_with_budget() {
        let a = IsppConfig::esp_refinement(1.2);
        let b = IsppConfig::esp_refinement(2.0);
        assert!(b.delta_v < a.delta_v);
        assert!(b.vtgt > a.vtgt);
    }

    #[test]
    fn word_parallel_kernel_matches_scalar_oracle_bit_exactly() {
        // Same seed, same draw order: the packed 64-lane kernel and the
        // cell-by-cell oracle must produce identical V_TH vectors and
        // pulse counts — for coarse SLC, full ESP, and awkward lengths
        // (partial last word, all-erased, all-programmed).
        for (n, seed) in [(4096usize, 1u64), (1000, 2), (63, 3), (64, 4), (65, 5), (1, 6)] {
            let targets = half_programmed(n);
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let fast = program_slc_like(&targets, IsppConfig::slc_default(), &mut a);
            let slow = program_slc_like_serial(&targets, IsppConfig::slc_default(), &mut b);
            assert_eq!(fast, slow, "SLC kernel diverged at n={n}");
            let mut a = StdRng::seed_from_u64(seed ^ 0xE5);
            let mut b = StdRng::seed_from_u64(seed ^ 0xE5);
            let fast = program_esp(&targets, 2.0, &mut a);
            let slow = program_esp_serial(&targets, 2.0, &mut b);
            assert_eq!(fast, slow, "ESP kernel diverged at n={n}");
        }
        for targets in [vec![true; 130], vec![false; 130]] {
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            assert_eq!(
                program_esp(&targets, 2.0, &mut a),
                program_esp_serial(&targets, 2.0, &mut b),
            );
        }
    }

    #[test]
    fn packed_page_entry_matches_bool_kernel() {
        let mut rng = StdRng::seed_from_u64(11);
        let page = BitVec::random(1000, &mut rng);
        let targets: Vec<bool> = page.iter().collect();
        let mut a = StdRng::seed_from_u64(12);
        let mut b = StdRng::seed_from_u64(12);
        let packed = program_page(&page, ProgramScheme::esp_default(), &mut a);
        let ratio = timing::T_ESP_US / timing::T_PROG_SLC_US;
        let bools = program_esp(&targets, ratio, &mut b);
        assert_eq!(packed, bools, "packed entry must match the bool-slice kernel");
        // Non-ESP schemes run the coarse train only.
        let mut a = StdRng::seed_from_u64(13);
        let mut b = StdRng::seed_from_u64(13);
        let packed = program_page(&page, ProgramScheme::Slc, &mut a);
        let bools = program_slc_like(&targets, IsppConfig::slc_default(), &mut b);
        assert_eq!(packed, bools);
    }

    #[test]
    fn all_erased_page_needs_no_pulses() {
        let mut rng = StdRng::seed_from_u64(4);
        let targets = vec![true; 64];
        let out = program_slc_like(&targets, IsppConfig::slc_default(), &mut rng);
        assert_eq!(out.pulses, 0);
        assert!(out.vth.iter().all(|&v| v < 0.0));
    }

    #[test]
    fn scheme_cell_modes() {
        assert!(ProgramScheme::Slc.is_single_bit());
        assert!(ProgramScheme::esp_default().is_single_bit());
        assert!(!ProgramScheme::Mlc.is_single_bit());
        assert_eq!(ProgramScheme::Tlc.cell_mode(), CellMode::Tlc);
        assert_eq!(ProgramScheme::default(), ProgramScheme::Slc);
    }
}
