//! Incremental Step Pulse Programming (ISPP) and Enhanced SLC-mode
//! Programming (ESP) — §4.2, Fig. 10.
//!
//! ISPP raises a cell's V_TH in discrete pulses: every pulse adds roughly
//! `ΔV_ISPP` to the cell's threshold voltage, and a verify step after each
//! pulse excludes cells that have reached their target voltage `V_TGT` from
//! further pulses. The final distribution width is therefore governed by
//! `ΔV_ISPP` (plus intrinsic noise), and the program latency by the number
//! of pulses.
//!
//! ESP = regular SLC programming + extra pulses with a **raised `V_TGT`**
//! and a **smaller `ΔV_ISPP`**, trading latency for margin (Fig. 10a:
//! "Only in ESP").

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::calib::timing;
use crate::geometry::CellMode;
use crate::vth::{sample_standard_normal, VthLayout, ERASED};

/// How a page is programmed. This choice drives latency, capacity and
/// reliability everywhere in the stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ProgramScheme {
    /// Regular SLC-mode programming (1 bit/cell, default ISPP).
    #[default]
    Slc,
    /// Enhanced SLC-mode programming with the given latency budget
    /// `tESP / tPROG(SLC)` (the paper's operating point is 2.0 → 400 µs).
    Esp {
        /// Latency budget as a multiple of the SLC program latency;
        /// clamped to `1.0..=2.5` wherever it is interpreted.
        ratio: f64,
    },
    /// Regular MLC-mode programming (2 bits/cell).
    Mlc,
    /// Regular TLC-mode programming (3 bits/cell).
    Tlc,
}

impl ProgramScheme {
    /// ESP at the paper's default operating point (`tESP = 2 × tPROG`).
    pub fn esp_default() -> Self {
        ProgramScheme::Esp { ratio: timing::T_ESP_US / timing::T_PROG_SLC_US }
    }

    /// The cell mode this scheme programs in.
    pub fn cell_mode(self) -> CellMode {
        match self {
            ProgramScheme::Slc | ProgramScheme::Esp { .. } => CellMode::Slc,
            ProgramScheme::Mlc => CellMode::Mlc,
            ProgramScheme::Tlc => CellMode::Tlc,
        }
    }

    /// Program latency in microseconds (Table 1).
    pub fn program_latency_us(self) -> f64 {
        match self {
            ProgramScheme::Slc => timing::T_PROG_SLC_US,
            ProgramScheme::Esp { ratio } => timing::T_PROG_SLC_US * ratio.clamp(1.0, 2.5),
            ProgramScheme::Mlc => timing::T_PROG_MLC_US,
            ProgramScheme::Tlc => timing::T_PROG_TLC_US,
        }
    }

    /// The V_TH layout this scheme produces.
    pub fn layout(self) -> VthLayout {
        match self {
            ProgramScheme::Slc => VthLayout::slc(),
            ProgramScheme::Esp { ratio } => VthLayout::esp(ratio),
            ProgramScheme::Mlc => VthLayout::mlc(),
            ProgramScheme::Tlc => VthLayout::tlc(),
        }
    }

    /// The SLC-style read reference voltage of this scheme's layout
    /// (the first `V_REF`), computed without materializing the layout —
    /// the physics-mode sense path queries this per target wordline.
    pub fn read_vref(self) -> f64 {
        match self {
            ProgramScheme::Slc => crate::vth::SLC_VREF,
            ProgramScheme::Esp { ratio } => crate::vth::esp_vref(ratio),
            // Multi-bit layouts derive their read levels from the state
            // list; rare on this path, so building the layout is fine.
            ProgramScheme::Mlc | ProgramScheme::Tlc => self.layout().slc_vref_or_first(),
        }
    }

    /// Whether this is (any flavor of) single-bit-per-cell programming.
    pub fn is_single_bit(self) -> bool {
        matches!(self, ProgramScheme::Slc | ProgramScheme::Esp { .. })
    }
}

/// ISPP pulse-train parameters (Fig. 10a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsppConfig {
    /// Target threshold voltage `V_TGT` in volts.
    pub vtgt: f64,
    /// Step voltage `ΔV_ISPP` in volts.
    pub delta_v: f64,
    /// Per-pulse intrinsic noise sigma in volts (cell-to-cell variation in
    /// coupling efficiency).
    pub pulse_noise_v: f64,
    /// Maximum pulses before giving up (real chips flag a program failure;
    /// we size it generously).
    pub max_pulses: u32,
}

impl IsppConfig {
    /// Default SLC pulse train: coarse steps to 2.0 V.
    pub fn slc_default() -> Self {
        Self { vtgt: 2.0, delta_v: 0.6, pulse_noise_v: 0.05, max_pulses: 32 }
    }

    /// The ESP refinement pulse train for a latency ratio: smaller steps,
    /// raised target (Fig. 10).
    pub fn esp_refinement(ratio: f64) -> Self {
        let r = ratio.clamp(1.0, 2.5) - 1.0;
        Self {
            vtgt: 2.0 + 1.3 * r,
            delta_v: (0.6 - 0.4 * r).max(0.1),
            pulse_noise_v: 0.03,
            max_pulses: 64,
        }
    }
}

/// Outcome of programming one wordline's cells through the ISPP engine.
#[derive(Debug, Clone, PartialEq)]
pub struct IsppOutcome {
    /// Final per-cell threshold voltages.
    pub vth: Vec<f64>,
    /// Pulses consumed by the slowest cell.
    pub pulses: u32,
}

/// Programs cells to `targets` (true = leave erased, false = program, SLC
/// encoding) by simulating the ISPP pulse train cell-by-cell.
///
/// Returns the final V_TH of each cell and the pulse count. Cells left
/// erased are sampled from the erased distribution.
pub fn program_slc_like<R: Rng + ?Sized>(
    targets: &[bool],
    cfg: IsppConfig,
    rng: &mut R,
) -> IsppOutcome {
    let mut vth = Vec::with_capacity(targets.len());
    let mut max_pulses = 0u32;
    for &stay_erased in targets {
        if stay_erased {
            vth.push(ERASED.sample(rng));
            continue;
        }
        // Cell starts from a fresh erased level and is pulsed until the
        // verify step sees it at/above V_TGT.
        let mut v = ERASED.sample(rng);
        let mut pulses = 0u32;
        while v < cfg.vtgt && pulses < cfg.max_pulses {
            v += cfg.delta_v + cfg.pulse_noise_v * sample_standard_normal(rng);
            pulses += 1;
        }
        max_pulses = max_pulses.max(pulses);
        vth.push(v);
    }
    IsppOutcome { vth, pulses: max_pulses }
}

/// Programs cells with full ESP: the regular SLC pulse train followed by
/// the refinement train with raised `V_TGT` and reduced `ΔV_ISPP`.
pub fn program_esp<R: Rng + ?Sized>(targets: &[bool], ratio: f64, rng: &mut R) -> IsppOutcome {
    let coarse = IsppConfig::slc_default();
    let refine = IsppConfig::esp_refinement(ratio);
    let mut out = program_slc_like(targets, coarse, rng);
    if ratio <= 1.0 {
        return out;
    }
    let mut extra = 0u32;
    for (v, &stay_erased) in out.vth.iter_mut().zip(targets) {
        if stay_erased {
            continue;
        }
        let mut pulses = 0u32;
        while *v < refine.vtgt && pulses < refine.max_pulses {
            *v += refine.delta_v + refine.pulse_noise_v * sample_standard_normal(rng);
            pulses += 1;
        }
        extra = extra.max(pulses);
    }
    out.pulses += extra;
    out
}

/// Empirical width (standard deviation) of the programmed distribution.
/// Convenience for tests and the characterization harness.
pub fn programmed_sigma(vth: &[f64], targets: &[bool]) -> f64 {
    let programmed: Vec<f64> =
        vth.iter().zip(targets).filter(|(_, &e)| !e).map(|(&v, _)| v).collect();
    if programmed.len() < 2 {
        return 0.0;
    }
    let mean = programmed.iter().sum::<f64>() / programmed.len() as f64;
    (programmed.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / programmed.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn half_programmed(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 0).collect()
    }

    #[test]
    fn scheme_latencies_match_table1() {
        assert_eq!(ProgramScheme::Slc.program_latency_us(), 200.0);
        assert_eq!(ProgramScheme::esp_default().program_latency_us(), 400.0);
        assert_eq!(ProgramScheme::Mlc.program_latency_us(), 500.0);
        assert_eq!(ProgramScheme::Tlc.program_latency_us(), 700.0);
        assert_eq!(ProgramScheme::Esp { ratio: 1.5 }.program_latency_us(), 300.0);
    }

    #[test]
    fn slc_programming_reaches_target() {
        let mut rng = StdRng::seed_from_u64(1);
        let targets = half_programmed(2000);
        let out = program_slc_like(&targets, IsppConfig::slc_default(), &mut rng);
        for (v, &erased) in out.vth.iter().zip(&targets) {
            if erased {
                assert!(*v < 0.0, "erased cell at {v}");
            } else {
                assert!(*v >= 2.0, "programmed cell below target: {v}");
                assert!(*v < 3.2, "programmed cell overshot: {v}");
            }
        }
        assert!(out.pulses <= 32);
    }

    #[test]
    fn esp_raises_target_and_tightens_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let targets = half_programmed(4000);
        let slc = program_slc_like(&targets, IsppConfig::slc_default(), &mut rng);
        let esp = program_esp(&targets, 2.0, &mut rng);
        let slc_sigma = programmed_sigma(&slc.vth, &targets);
        let esp_sigma = programmed_sigma(&esp.vth, &targets);
        assert!(esp_sigma < slc_sigma, "ESP sigma {esp_sigma} !< SLC sigma {slc_sigma}");
        // ESP programmed cells all sit at/above the raised target.
        for (v, &erased) in esp.vth.iter().zip(&targets) {
            if !erased {
                assert!(*v >= 3.2, "ESP cell below raised target: {v}");
            }
        }
        // ESP spends more pulses (that is where the latency goes).
        assert!(esp.pulses > slc.pulses);
    }

    #[test]
    fn esp_ratio_one_adds_no_refinement() {
        let mut rng = StdRng::seed_from_u64(3);
        let targets = half_programmed(512);
        let out = program_esp(&targets, 1.0, &mut rng);
        for (v, &erased) in out.vth.iter().zip(&targets) {
            if !erased {
                assert!(*v >= 2.0 && *v < 3.2);
            }
        }
    }

    #[test]
    fn refinement_step_shrinks_with_budget() {
        let a = IsppConfig::esp_refinement(1.2);
        let b = IsppConfig::esp_refinement(2.0);
        assert!(b.delta_v < a.delta_v);
        assert!(b.vtgt > a.vtgt);
    }

    #[test]
    fn all_erased_page_needs_no_pulses() {
        let mut rng = StdRng::seed_from_u64(4);
        let targets = vec![true; 64];
        let out = program_slc_like(&targets, IsppConfig::slc_default(), &mut rng);
        assert_eq!(out.pulses, 0);
        assert!(out.vth.iter().all(|&v| v < 0.0));
    }

    #[test]
    fn scheme_cell_modes() {
        assert!(ProgramScheme::Slc.is_single_bit());
        assert!(ProgramScheme::esp_default().is_single_bit());
        assert!(!ProgramScheme::Mlc.is_single_bit());
        assert_eq!(ProgramScheme::Tlc.cell_mode(), CellMode::Tlc);
        assert_eq!(ProgramScheme::default(), ProgramScheme::Slc);
    }
}
