//! # fc-nand — NAND flash chip simulator
//!
//! This crate is the key substrate of the Flash-Cosmos reproduction: a
//! behavioural model of a 3D NAND flash chip faithful to the cell-array
//! structures and operating principles that the paper's two mechanisms
//! exploit.
//!
//! The model covers, bottom-up:
//!
//! * [`geometry`] — planes / blocks / NAND strings / wordlines / bitlines,
//!   matching the 48-layer 3D TLC chips characterized in the paper (§2.1).
//! * [`vth`] + [`ispp`] — per-cell threshold-voltage physics: state
//!   distributions, incremental step pulse programming (ISPP), and the
//!   paper's Enhanced SLC-mode Programming (ESP, §4.2).
//! * [`stress`] — retention loss, program interference, read disturb and
//!   P/E-cycle wear applied to cell populations (§2.2).
//! * [`rber`] — a closed-form raw-bit-error-rate model calibrated to the
//!   paper's 160-chip characterization (Figs. 8 and 11).
//! * [`latch`] — the sensing-latch / cache-latch periphery with the exact
//!   Boolean semantics of Figs. 3, 4 and 6 (normal/inverse sensing,
//!   AND-accumulation, M3 OR-transfer, inter-latch XOR).
//! * [`sense`] — the read mechanism including **Multi-Wordline Sensing**
//!   (intra-block → AND, inter-block → OR; §4.1) with the latency model of
//!   Figs. 12/13.
//! * [`power`] — op power/energy calibrated to Fig. 14.
//! * [`command`] — the Flash-Cosmos command set of Fig. 15 (`MWS`, `ESP`,
//!   `XOR`) plus the legacy read/program/erase/set-feature commands, with
//!   byte-level frame encoding/decoding.
//! * [`chip`] — the chip state machine tying everything together.
//!
//! ## Quick example: one-shot 3-operand AND via intra-block MWS
//!
//! ```
//! use fc_nand::chip::NandChip;
//! use fc_nand::config::ChipConfig;
//! use fc_nand::command::{Command, IscmFlags, MwsTarget};
//! use fc_nand::geometry::BlockAddr;
//! use fc_bits::BitVec;
//!
//! let mut chip = NandChip::new(ChipConfig::tiny_test());
//! let blk = BlockAddr::new(0, 0);
//! let pages: Vec<BitVec> = (0..3)
//!     .map(|i| BitVec::from_fn(chip.config().geometry.page_bits(), |c| (c + i) % 2 == 0))
//!     .collect();
//! for (wl, page) in pages.iter().enumerate() {
//!     chip.execute(Command::esp_program(blk.wordline(wl as u32), page.clone())).unwrap();
//! }
//! let out = chip
//!     .execute(Command::Mws {
//!         flags: IscmFlags::single_read(),
//!         targets: vec![MwsTarget::new(blk, &[0, 1, 2])],
//!     })
//!     .unwrap();
//! let expect = pages[0].and(&pages[1]).and(&pages[2]);
//! assert_eq!(out.page().unwrap(), &expect);
//! ```

pub mod calib;
pub mod chip;
pub mod command;
pub mod config;
pub mod error;
pub mod geometry;
pub mod ispp;
pub mod latch;
pub mod mlsense;
pub mod power;
pub mod randomizer;
pub mod rber;
pub mod sense;
pub mod stress;
pub mod vth;

pub use chip::NandChip;
pub use config::ChipConfig;
pub use error::NandError;
pub use geometry::{BlockAddr, ChipGeometry, WlAddr};
