//! Error types for the NAND chip simulator.

use std::error::Error;
use std::fmt;

/// Errors returned by chip-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NandError {
    /// An address does not exist on this die.
    AddressOutOfRange {
        /// Which address component was invalid ("block", "wordline", ...).
        what: &'static str,
        /// Offending plane index.
        plane: u32,
        /// Offending block index.
        block: u32,
        /// Offending wordline index (0 when not applicable).
        wl: u32,
    },
    /// Attempt to program a wordline that has not been erased since its
    /// last program. Real NAND requires erase-before-program.
    ProgramWithoutErase {
        /// Plane of the offending wordline.
        plane: u32,
        /// Block of the offending wordline.
        block: u32,
        /// Offending wordline.
        wl: u32,
    },
    /// Data length does not match the page size.
    PageSizeMismatch {
        /// Bits supplied by the caller.
        got: usize,
        /// Bits the geometry requires.
        expected: usize,
    },
    /// An MWS command listed no target wordline at all.
    EmptyMwsTarget,
    /// An MWS command activates more blocks than the chip's power budget
    /// allows (§5.2; Table 1 caps inter-block MWS at 4 blocks).
    TooManyBlocks {
        /// Blocks requested.
        requested: usize,
        /// Configured cap.
        max: usize,
    },
    /// MWS targets must all lie in the same plane (they must share
    /// bitlines and sensing circuitry).
    PlaneMismatch,
    /// A command frame could not be decoded.
    MalformedFrame(String),
    /// A read targeted a wordline that holds no data (erased / never
    /// programmed). The simulator is strict about this so placement bugs
    /// surface as errors instead of reads of stale data.
    ReadOfUnwrittenPage {
        /// Plane of the offending wordline.
        plane: u32,
        /// Block of the offending wordline.
        block: u32,
        /// Offending wordline.
        wl: u32,
    },
    /// A SET FEATURE parameter value was outside its legal range.
    InvalidFeature(String),
    /// An `mlsense` command (threshold MWS, multi-level program, read
    /// level) was malformed: bad vote threshold, wrong page count or
    /// scheme for a multi-level program, or a level boundary outside the
    /// cell mode's range.
    InvalidMlsense(String),
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::AddressOutOfRange { what, plane, block, wl } => {
                write!(f, "{what} address out of range: plane {plane}, block {block}, wl {wl}")
            }
            NandError::ProgramWithoutErase { plane, block, wl } => {
                write!(f, "program without erase at plane {plane}, block {block}, wl {wl}")
            }
            NandError::PageSizeMismatch { got, expected } => {
                write!(f, "page size mismatch: got {got} bits, expected {expected}")
            }
            NandError::EmptyMwsTarget => write!(f, "MWS command has no target wordlines"),
            NandError::TooManyBlocks { requested, max } => {
                write!(f, "inter-block MWS over {requested} blocks exceeds the power cap of {max}")
            }
            NandError::PlaneMismatch => {
                write!(f, "MWS targets must share a plane (bitlines are per-plane)")
            }
            NandError::MalformedFrame(msg) => write!(f, "malformed command frame: {msg}"),
            NandError::ReadOfUnwrittenPage { plane, block, wl } => {
                write!(f, "read of unwritten page at plane {plane}, block {block}, wl {wl}")
            }
            NandError::InvalidFeature(msg) => write!(f, "invalid feature setting: {msg}"),
            NandError::InvalidMlsense(msg) => write!(f, "invalid mlsense command: {msg}"),
        }
    }
}

impl Error for NandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_trailing_punctuation() {
        let errors: Vec<NandError> = vec![
            NandError::AddressOutOfRange { what: "block", plane: 9, block: 9, wl: 0 },
            NandError::ProgramWithoutErase { plane: 0, block: 1, wl: 2 },
            NandError::PageSizeMismatch { got: 8, expected: 16 },
            NandError::EmptyMwsTarget,
            NandError::TooManyBlocks { requested: 8, max: 4 },
            NandError::PlaneMismatch,
            NandError::MalformedFrame("oops".into()),
            NandError::ReadOfUnwrittenPage { plane: 0, block: 0, wl: 0 },
            NandError::InvalidFeature("bad".into()),
            NandError::InvalidMlsense("bad".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing period: {s}");
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("MWS"), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NandError>();
    }
}
