//! Chip power and energy model, calibrated to Fig. 14 (§5.2).
//!
//! Fig. 14 reports power normalized to a regular page read. To account
//! energy in joules at the SSD level, the normalized scale is anchored by
//! [`crate::calib::power::READ_POWER_MW`] (an assumed absolute read power;
//! the paper reports only the normalized values).

use crate::calib::power as cal;
use crate::calib::timing;

/// Power of an inter-block MWS activating `n_blocks` blocks, normalized to
/// a regular page read (Fig. 14). One block degenerates to the intra-block
/// case, which is slightly *cheaper* than a regular read (§4.1).
///
/// # Panics
///
/// Panics if `n_blocks` is zero.
pub fn mws_power_norm(n_blocks: usize) -> f64 {
    assert!(n_blocks > 0, "at least one block must be activated");
    if n_blocks == 1 {
        return cal::INTRA_MWS;
    }
    if n_blocks <= cal::INTER_MWS_BY_BLOCKS.len() {
        return cal::INTER_MWS_BY_BLOCKS[n_blocks - 1];
    }
    let last = *cal::INTER_MWS_BY_BLOCKS.last().unwrap();
    last + cal::INTER_MWS_EXTRA_SLOPE * (n_blocks - cal::INTER_MWS_BY_BLOCKS.len()) as f64
}

/// Normalized power of a regular page read.
pub fn read_power_norm() -> f64 {
    cal::READ
}

/// Normalized power of a program operation.
pub fn program_power_norm() -> f64 {
    cal::PROGRAM
}

/// Normalized power of an erase operation.
pub fn erase_power_norm() -> f64 {
    cal::ERASE
}

/// Converts a normalized power and a latency to energy in microjoules:
/// `norm × READ_POWER_MW [mW] × t [µs] = nJ`, divided by 1000 → µJ.
pub fn energy_uj(norm_power: f64, latency_us: f64) -> f64 {
    norm_power * cal::READ_POWER_MW * latency_us / 1000.0
}

/// Energy of a regular SLC page read, microjoules.
pub fn read_energy_uj() -> f64 {
    energy_uj(cal::READ, timing::T_R_SLC_US)
}

/// Energy of one MWS operation activating `n_blocks` blocks at the fixed
/// `tMWS` budget, microjoules.
pub fn mws_energy_uj(n_blocks: usize) -> f64 {
    energy_uj(mws_power_norm(n_blocks), timing::T_MWS_US)
}

/// Energy of a program operation with the given latency, microjoules.
pub fn program_energy_uj(latency_us: f64) -> f64 {
    energy_uj(cal::PROGRAM, latency_us)
}

/// Energy of a block erase, microjoules.
pub fn erase_energy_uj() -> f64 {
    energy_uj(cal::ERASE, timing::T_BERS_US)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_two_blocks_is_plus_34_percent() {
        assert!((mws_power_norm(2) - 1.34).abs() < 1e-9);
    }

    #[test]
    fn four_blocks_below_erase_five_above() {
        assert!(mws_power_norm(4) < erase_power_norm());
        assert!(mws_power_norm(5) > erase_power_norm());
    }

    #[test]
    fn intra_block_mws_cheaper_than_read() {
        assert!(mws_power_norm(1) < read_power_norm());
    }

    #[test]
    fn extrapolation_is_monotone() {
        for n in 1..16 {
            assert!(mws_power_norm(n) < mws_power_norm(n + 1));
        }
    }

    #[test]
    fn mws_on_four_blocks_halves_energy_vs_serial_reads() {
        // §5.2: 4-block inter-block MWS "significantly reduces the energy
        // consumption by 53% compared to individual reads of the four WLs".
        let mws = mws_energy_uj(4);
        let serial = 4.0 * read_energy_uj();
        let saving = 1.0 - mws / serial;
        assert!((saving - 0.53).abs() < 0.08, "energy saving {saving}");
    }

    #[test]
    fn energy_units() {
        // 1.0 normalized × 40 mW × 25 µs = 1000 nJ = 1 µJ.
        assert!((energy_uj(1.0, 25.0) - 1.0).abs() < 1e-12);
    }
}
