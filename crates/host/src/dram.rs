//! DDR4 main-memory model (the Ramulator substitute).
//!
//! Bulk bitwise kernels stream sequentially, so a bandwidth/energy model
//! captures what a cycle-accurate simulation would report for these
//! access patterns: effective bandwidth = peak × efficiency, energy =
//! bytes × per-byte cost.

use serde::{Deserialize, Serialize};

use crate::calib;

/// A DDR4 memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ddr4 {
    /// Data rate in MT/s.
    pub mtps: f64,
    /// Number of channels.
    pub channels: usize,
    /// Bus width per channel, bytes.
    pub bus_bytes: usize,
    /// Effective fraction of peak bandwidth sustained by streaming.
    pub efficiency: f64,
    /// Access energy, pJ per byte.
    pub pj_per_byte: f64,
}

impl Ddr4 {
    /// The evaluated host's memory: DDR4-3600, 4 channels (Table 1).
    pub fn paper_host() -> Self {
        Self {
            mtps: calib::DDR_MTPS,
            channels: calib::DRAM_CHANNELS,
            bus_bytes: 8,
            efficiency: calib::DRAM_EFFICIENCY,
            pj_per_byte: calib::DRAM_PJ_PER_BYTE,
        }
    }

    /// Peak bandwidth, GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.mtps * 1e6 * self.bus_bytes as f64 * self.channels as f64 / 1e9
    }

    /// Effective streaming bandwidth, GB/s.
    pub fn effective_gbps(&self) -> f64 {
        self.peak_gbps() * self.efficiency
    }

    /// Time to stream `bytes` through DRAM, microseconds.
    pub fn stream_us(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.effective_gbps() * 1e9) * 1e6
    }

    /// Energy to move `bytes` through DRAM, microjoules.
    pub fn energy_uj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.pj_per_byte * 1e-6
    }
}

impl Default for Ddr4 {
    fn default() -> Self {
        Self::paper_host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_host_bandwidth() {
        let d = Ddr4::paper_host();
        assert!((d.peak_gbps() - 115.2).abs() < 0.1);
        assert!(d.effective_gbps() < d.peak_gbps());
        assert!(d.effective_gbps() > 80.0);
    }

    #[test]
    fn streaming_time_scales_linearly() {
        let d = Ddr4::paper_host();
        let t1 = d.stream_us(1 << 30);
        let t2 = d.stream_us(2 << 30);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // 1 GiB at ~86 GB/s ≈ 12.4 ms.
        assert!((t1 - 12_420.0).abs() < 500.0, "{t1}");
    }

    #[test]
    fn energy_per_gigabyte() {
        let d = Ddr4::paper_host();
        // 1 GB × 20 pJ/B = 20 mJ = 20_000 µJ.
        assert!((d.energy_uj(1_000_000_000) - 20_000.0).abs() < 1.0);
    }
}
