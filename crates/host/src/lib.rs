//! # fc-host — host-system model
//!
//! The outside-storage-processing (OSP) side of the evaluation (§7):
//! an Intel Rocket Lake i7-11700K-class CPU (8 cores, 3.6 GHz) with 64 GB
//! of DDR4-3600 over 4 channels. The paper measures this machine directly
//! (RAPL for CPU energy, a DDR4 power model for DRAM); we replace it with
//! a calibrated streaming model, which is accurate for bulk bitwise
//! kernels because they are memory-bandwidth-bound.
//!
//! * [`dram`] — DDR4 channel bandwidth and per-byte energy.
//! * [`cpu`] — streaming bitwise / popcount throughput and energy.
//! * [`osp`] — the OSP executor model: compute overlapped with SSD reads.

pub mod cpu;
pub mod dram;
pub mod osp;

pub use cpu::HostCpu;
pub use dram::Ddr4;
pub use osp::OspModel;

/// Host calibration constants (Table 1 host row + representative
/// technology figures; the paper reports only end-to-end energies).
pub mod calib {
    /// CPU cores (Table 1).
    pub const CORES: usize = 8;

    /// Base clock, GHz (Table 1: 3.6 GHz).
    pub const FREQ_GHZ: f64 = 3.6;

    /// DDR4 data rate, MT/s (Table 1: DDR4-3600).
    pub const DDR_MTPS: f64 = 3600.0;

    /// DRAM channels (Table 1: 4).
    pub const DRAM_CHANNELS: usize = 4;

    /// Effective fraction of peak DRAM bandwidth a streaming kernel
    /// sustains (row-buffer + refresh + controller overheads).
    pub const DRAM_EFFICIENCY: f64 = 0.75;

    /// DRAM access energy, pJ per byte (DDR4 activate+IO, ~2.5 pJ/bit).
    pub const DRAM_PJ_PER_BYTE: f64 = 20.0;

    /// Package energy per byte for streaming bitwise kernels, pJ/byte
    /// (RAPL-style: ~30 W package at ~15 GB/s effective processing).
    pub const CPU_PJ_PER_BYTE: f64 = 2_000.0;

    /// Sustained multi-core throughput of a streaming two-operand bitwise
    /// kernel, GB/s of *output* produced (bounded by reading 2 inputs +
    /// writing 1 output through DRAM).
    pub const BITWISE_GBPS: f64 = 15.0;

    /// Sustained multi-core `popcnt` throughput, GB/s consumed.
    pub const POPCOUNT_GBPS: f64 = 25.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_internally_consistent() {
        // Peak DDR4-3600 × 4 channels × 8 B = 115.2 GB/s; the streaming
        // kernels must not claim more than effective bandwidth / 3
        // (2 reads + 1 write per output byte).
        let peak = calib::DDR_MTPS * 1e6 * 8.0 * calib::DRAM_CHANNELS as f64 / 1e9;
        assert!((peak - 115.2).abs() < 0.1);
        let effective = peak * calib::DRAM_EFFICIENCY;
        assert!(calib::BITWISE_GBPS * 3.0 <= effective);
        assert!(calib::POPCOUNT_GBPS < effective);
    }
}
