//! Multicore CPU model for streaming bitwise kernels and population
//! counts (the RAPL-measured side of §7).

use fc_bits::BitVec;
use serde::{Deserialize, Serialize};

use crate::calib;
use crate::dram::Ddr4;

/// The host CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostCpu {
    /// Core count.
    pub cores: usize,
    /// Clock, GHz.
    pub freq_ghz: f64,
    /// Sustained streaming bitwise throughput, GB/s of output.
    pub bitwise_gbps: f64,
    /// Sustained popcount throughput, GB/s consumed.
    pub popcount_gbps: f64,
    /// Package energy per byte processed, pJ.
    pub pj_per_byte: f64,
    /// The attached memory system.
    pub dram: Ddr4,
}

impl HostCpu {
    /// The evaluated host (Table 1: i7-11700K, 8 cores, 3.6 GHz).
    pub fn paper_host() -> Self {
        Self {
            cores: calib::CORES,
            freq_ghz: calib::FREQ_GHZ,
            bitwise_gbps: calib::BITWISE_GBPS,
            popcount_gbps: calib::POPCOUNT_GBPS,
            pj_per_byte: calib::CPU_PJ_PER_BYTE,
            dram: Ddr4::paper_host(),
        }
    }

    /// Time to combine `operands` vectors of `bytes_each` into one result
    /// with a streaming bitwise kernel, microseconds. Each accumulation
    /// step reads one operand and the accumulator and writes the
    /// accumulator, so `operands − 1` passes of `bytes_each` output.
    pub fn bitwise_combine_us(&self, operands: u64, bytes_each: u64) -> f64 {
        if operands <= 1 {
            return 0.0;
        }
        let passes = (operands - 1) as f64;
        passes * bytes_each as f64 / (self.bitwise_gbps * 1e9) * 1e6
    }

    /// Time to popcount `bytes`, microseconds.
    pub fn popcount_us(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.popcount_gbps * 1e9) * 1e6
    }

    /// Package energy for processing `bytes`, microjoules.
    pub fn energy_uj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.pj_per_byte * 1e-6
    }

    /// Reference (functional) bulk AND used for ground truth in tests and
    /// examples: the actual computation the model's throughput numbers
    /// describe.
    pub fn combine_and(&self, operands: &[BitVec]) -> Option<BitVec> {
        let (first, rest) = operands.split_first()?;
        Some(rest.iter().fold(first.clone(), |acc, v| acc.and(v)))
    }

    /// Reference bulk OR.
    pub fn combine_or(&self, operands: &[BitVec]) -> Option<BitVec> {
        let (first, rest) = operands.split_first()?;
        Some(rest.iter().fold(first.clone(), |acc, v| acc.or(v)))
    }

    /// Reference bulk XOR.
    pub fn combine_xor(&self, operands: &[BitVec]) -> Option<BitVec> {
        let (first, rest) = operands.split_first()?;
        Some(rest.iter().fold(first.clone(), |acc, v| acc.xor(v)))
    }

    /// Reference popcount.
    pub fn popcount(&self, v: &BitVec) -> usize {
        v.count_ones()
    }
}

impl Default for HostCpu {
    fn default() -> Self {
        Self::paper_host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn throughput_model_scales() {
        let cpu = HostCpu::paper_host();
        // 3 operands of 1 GB → 2 passes at 15 GB/s ≈ 133 ms.
        let t = cpu.bitwise_combine_us(3, 1_000_000_000);
        assert!((t - 133_333.0).abs() < 1_000.0, "{t}");
        assert_eq!(cpu.bitwise_combine_us(1, 1_000_000_000), 0.0);
        // Popcount of 1 GB at 25 GB/s = 40 ms.
        assert!((cpu.popcount_us(1_000_000_000) - 40_000.0).abs() < 100.0);
    }

    #[test]
    fn energy_model() {
        let cpu = HostCpu::paper_host();
        // 1 GB × 2000 pJ/B = 2 J = 2e6 µJ.
        assert!((cpu.energy_uj(1_000_000_000) - 2e6).abs() < 1.0);
    }

    #[test]
    fn reference_kernels_match_bitvec_ops() {
        let cpu = HostCpu::paper_host();
        let mut rng = StdRng::seed_from_u64(1);
        let ops: Vec<BitVec> = (0..4).map(|_| BitVec::random(512, &mut rng)).collect();
        let and = cpu.combine_and(&ops).unwrap();
        let or = cpu.combine_or(&ops).unwrap();
        let xor = cpu.combine_xor(&ops).unwrap();
        for i in 0..512 {
            let bits: Vec<bool> = ops.iter().map(|o| o.get(i)).collect();
            assert_eq!(and.get(i), bits.iter().all(|&b| b));
            assert_eq!(or.get(i), bits.iter().any(|&b| b));
            assert_eq!(xor.get(i), bits.iter().fold(false, |a, &b| a ^ b));
        }
        assert_eq!(cpu.popcount(&and), and.count_ones());
        assert!(cpu.combine_and(&[]).is_none());
    }
}
