//! The outside-storage-processing executor model (§7: "OSP performs bulk
//! bitwise operations using the host CPU concurrently with reading the
//! operands from the SSD to main memory in batches").
//!
//! Because bitwise kernels are far faster than the SSD's external link
//! (≥15 GB/s vs 8 GB/s), computation hides completely behind the reads —
//! the paper's observation that *"any other outside-storage processing
//! platform cannot improve the performance of bulk bitwise operations
//! over OSP (unless one increases SSD's external bandwidth)"*. The model
//! still accounts the host energy of every processed byte.

use serde::{Deserialize, Serialize};

use crate::cpu::HostCpu;

/// Breakdown of an OSP execution estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OspEstimate {
    /// End-to-end time, µs.
    pub time_us: f64,
    /// Host CPU busy time, µs.
    pub cpu_us: f64,
    /// CPU package energy, µJ.
    pub cpu_energy_uj: f64,
    /// DRAM energy, µJ.
    pub dram_energy_uj: f64,
    /// Whether the host compute was fully hidden behind the stream.
    pub compute_hidden: bool,
}

/// The OSP executor model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OspModel {
    /// The host.
    pub cpu: HostCpu,
}

impl OspModel {
    /// Creates the paper-host model.
    pub fn paper_host() -> Self {
        Self { cpu: HostCpu::paper_host() }
    }

    /// Estimates OSP execution: `stream_us` is when the last operand byte
    /// arrives from the SSD (produced by the SSD pipeline model);
    /// `operand_bytes` is the total operand volume; `result_bytes` the
    /// result volume the host additionally post-processes (e.g. BMI's
    /// bit-count).
    pub fn estimate(&self, stream_us: f64, operand_bytes: u64, result_bytes: u64) -> OspEstimate {
        // Combine work: every operand byte passes through the kernel once.
        let combine_us = operand_bytes as f64 / (self.cpu.bitwise_gbps * 1e9) * 1e6;
        let post_us = self.cpu.popcount_us(result_bytes);
        let cpu_us = combine_us + post_us;
        let hidden = cpu_us <= stream_us;
        let time_us =
            if hidden { stream_us } else { stream_us.max(cpu_us) } + post_us.min(stream_us * 0.01);
        // DRAM traffic: operands written on arrival + read by the kernel;
        // results written + read once more for post-processing.
        let dram_bytes = 2 * operand_bytes + 2 * result_bytes;
        OspEstimate {
            time_us,
            cpu_us,
            cpu_energy_uj: self.cpu.energy_uj(operand_bytes + result_bytes),
            dram_energy_uj: self.cpu.dram.energy_uj(dram_bytes),
            compute_hidden: hidden,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_hides_behind_the_stream() {
        let osp = OspModel::paper_host();
        // 8 GB/s external stream of 8 GB = 1 s; combine at 15 GB/s is
        // faster, so it hides.
        let e = osp.estimate(1_000_000.0, 8_000_000_000, 0);
        assert!(e.compute_hidden);
        assert!((e.time_us - 1_000_000.0).abs() / 1_000_000.0 < 0.02);
    }

    #[test]
    fn slow_post_processing_adds_a_tail() {
        let osp = OspModel::paper_host();
        // Tiny stream, huge popcount workload → compute-bound.
        let e = osp.estimate(10.0, 1_000_000, 10_000_000_000);
        assert!(!e.compute_hidden);
        assert!(e.time_us > 100_000.0);
    }

    #[test]
    fn energy_scales_with_volume() {
        let osp = OspModel::paper_host();
        let small = osp.estimate(100.0, 1_000_000, 0);
        let large = osp.estimate(100.0, 10_000_000, 0);
        assert!(large.cpu_energy_uj > small.cpu_energy_uj * 9.0);
        assert!(large.dram_energy_uj > small.dram_energy_uj * 9.0);
    }
}
