//! Property tests for the word-parallel kernels: every fast path must
//! match its naive per-bit reference, including non-word-aligned tails.

use fc_bits::BitVec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random operands of one shared (possibly unaligned) length.
fn operands(seed: u64, count: usize, len: usize) -> Vec<BitVec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| BitVec::random(len, &mut rng)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `and_fold` equals the naive per-bit AND over any operand count and
    /// any length (word-aligned or not).
    #[test]
    fn and_fold_matches_per_bit_reference(
        seed in any::<u64>(),
        count in 1usize..6,
        len in 1usize..300,
    ) {
        let ops = operands(seed, count, len);
        let refs: Vec<&BitVec> = ops.iter().collect();
        let fast = BitVec::and_fold(&refs);
        let naive = BitVec::from_fn(len, |i| ops.iter().all(|o| o.get(i)));
        prop_assert_eq!(fast, naive);
    }

    /// `or_fold` equals the naive per-bit OR.
    #[test]
    fn or_fold_matches_per_bit_reference(
        seed in any::<u64>(),
        count in 1usize..6,
        len in 1usize..300,
    ) {
        let ops = operands(seed, count, len);
        let refs: Vec<&BitVec> = ops.iter().collect();
        let fast = BitVec::or_fold(&refs);
        let naive = BitVec::from_fn(len, |i| ops.iter().any(|o| o.get(i)));
        prop_assert_eq!(fast, naive);
    }

    /// The in-place fold variants agree with their allocating forms and
    /// honor the existing accumulator contents.
    #[test]
    fn fold_assign_composes_with_accumulator(
        seed in any::<u64>(),
        count in 1usize..5,
        len in 1usize..200,
    ) {
        let ops = operands(seed, count + 1, len);
        let (acc0, rest) = ops.split_first().unwrap();
        let refs: Vec<&BitVec> = rest.iter().collect();
        let mut acc_and = acc0.clone();
        acc_and.and_fold_assign(&refs);
        let mut acc_or = acc0.clone();
        acc_or.or_fold_assign(&refs);
        for i in 0..len {
            prop_assert_eq!(acc_and.get(i), acc0.get(i) && rest.iter().all(|o| o.get(i)));
            prop_assert_eq!(acc_or.get(i), acc0.get(i) || rest.iter().any(|o| o.get(i)));
        }
    }

    /// The packed threshold compare matches the scalar comparison at every
    /// lane, including the last partial word.
    #[test]
    fn threshold_pack_matches_scalar_compare(
        seed in any::<u64>(),
        len in 1usize..300,
        vref in -3.0f64..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-4.0f64..4.0)).collect();
        let mut filled = BitVec::zeros(len);
        filled.fill_le_threshold(&values, vref);
        let naive = BitVec::from_fn(len, |i| values[i] <= vref);
        prop_assert_eq!(&filled, &naive);

        // AND-variant folds into an existing accumulator.
        let acc0 = BitVec::random(len, &mut rng);
        let mut acc = acc0.clone();
        acc.and_le_threshold(&values, vref);
        prop_assert_eq!(acc, acc0.and(&naive));
    }

    /// `slice_into` (both aligned and unaligned starts) matches per-bit
    /// extraction and reuses any prior buffer contents safely.
    #[test]
    fn slice_into_matches_per_bit_reference(
        seed in any::<u64>(),
        len in 1usize..400,
        start_frac in 0.0f64..1.0,
        take_frac in 0.0f64..=1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = BitVec::random(len, &mut rng);
        let start = ((len - 1) as f64 * start_frac) as usize;
        let take = 1 + ((len - start - 1) as f64 * take_frac) as usize;
        let mut out = BitVec::random(17, &mut rng); // stale, differently-sized buffer
        v.slice_into(start, take, &mut out);
        let naive = BitVec::from_fn(take, |i| v.get(start + i));
        prop_assert_eq!(out, naive);
    }

    /// `assign_from` / `assign_not_from` copy exactly, across lengths.
    #[test]
    fn assign_from_variants_copy_exactly(
        seed in any::<u64>(),
        len in 1usize..300,
        stale_len in 0usize..300,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = BitVec::random(len, &mut rng);
        let mut dst = BitVec::random(stale_len, &mut rng);
        dst.assign_from(&src);
        prop_assert_eq!(&dst, &src);
        let mut neg = BitVec::random(stale_len, &mut rng);
        neg.assign_not_from(&src);
        prop_assert_eq!(neg, src.not());
    }

    /// `resize` preserves the prefix and fills new bits with the given
    /// value; the tail invariant holds afterwards (count_ones sees no
    /// garbage).
    #[test]
    fn resize_preserves_prefix_and_fill(
        seed in any::<u64>(),
        len in 0usize..260,
        new_len in 0usize..260,
        value in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = BitVec::random(len, &mut rng);
        let mut r = v.clone();
        r.resize(new_len, value);
        prop_assert_eq!(r.len(), new_len);
        let keep = len.min(new_len);
        for i in 0..keep {
            prop_assert_eq!(r.get(i), v.get(i));
        }
        for i in keep..new_len {
            prop_assert_eq!(r.get(i), value);
        }
        let expect_ones = (0..keep).filter(|&i| v.get(i)).count()
            + if value { new_len - keep } else { 0 };
        prop_assert_eq!(r.count_ones(), expect_ones);
    }

    /// `from_fn_words` agrees with `from_fn` via word expansion and masks
    /// tail garbage.
    #[test]
    fn from_fn_words_matches_from_fn(seed in any::<u64>(), len in 1usize..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let words: Vec<u64> = (0..len.div_ceil(64)).map(|_| rng.gen()).collect();
        let fast = BitVec::from_fn_words(len, |w| words[w]);
        let naive = BitVec::from_fn(len, |i| (words[i / 64] >> (i % 64)) & 1 == 1);
        prop_assert_eq!(fast, naive);
    }

    /// `flip_random_bits_with` flips exactly `count` distinct bits.
    #[test]
    fn flip_random_bits_flips_exact_count(
        seed in any::<u64>(),
        len in 1usize..2000,
        count_frac in 0.0f64..=1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = (len as f64 * count_frac) as usize;
        let v = BitVec::random(len, &mut rng);
        let mut flipped = v.clone();
        let mut scratch = Vec::new();
        flipped.flip_random_bits_with(count, &mut rng, &mut scratch);
        prop_assert_eq!(v.hamming_distance(&flipped), count);
    }
}
