//! NAND data patterns used in the paper's real-device characterization.
//!
//! Section 5.1: *"Unless specified otherwise, we program each page using the
//! checkered data pattern, the worst-case data pattern for NAND flash
//! reliability where any two adjacent cells (both horizontally and
//! vertically) are programmed either to the highest V_TH state or to the
//! lowest V_TH state."*
//!
//! Section 5.2 additionally uses a *maximum string resistance* pattern for
//! stress-testing MWS: at most one `1` cell per NAND string, and only on an
//! MWS target wordline.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::BitVec;

/// A named data pattern to program into a wordline.
///
/// Patterns are functions of the (wordline, column) position so that the
/// "checkered" pattern alternates both horizontally (across bitlines) and
/// vertically (across wordlines), exactly as in §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPattern {
    /// Worst-case checkerboard: cell (wl, col) stores `(wl + col) % 2`.
    Checkered,
    /// All cells erased (`1` in SLC encoding — erased cells read as one).
    AllOnes,
    /// All cells programmed (`0` in SLC encoding).
    AllZeros,
    /// Vertical stripes of the given width in bits.
    Stripes(u32),
    /// Uniformly random data with the given seed mixed with the wordline
    /// index, so each wordline gets distinct but reproducible data.
    Random(u64),
}

impl DataPattern {
    /// Renders the pattern for wordline `wl` into a page of `bits` bits.
    pub fn render(self, wl: usize, bits: usize) -> BitVec {
        match self {
            DataPattern::Checkered => checkered(wl, bits),
            DataPattern::AllOnes => solid(true, bits),
            DataPattern::AllZeros => solid(false, bits),
            DataPattern::Stripes(width) => striped(width as usize, bits),
            DataPattern::Random(seed) => {
                use rand::rngs::StdRng;
                use rand::SeedableRng;
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (wl as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                BitVec::random(bits, &mut rng)
            }
        }
    }
}

/// The checkerboard pattern for wordline `wl`: bit `i` is `(wl + i) % 2 == 0`.
///
/// Adjacent cells along the wordline differ, and the same column on the
/// next wordline differs too — the 2-D worst case of §5.1.
pub fn checkered(wl: usize, bits: usize) -> BitVec {
    BitVec::from_fn(bits, |i| (wl + i).is_multiple_of(2))
}

/// A solid page of all-`value` bits.
pub fn solid(value: bool, bits: usize) -> BitVec {
    if value {
        BitVec::ones(bits)
    } else {
        BitVec::zeros(bits)
    }
}

/// Vertical stripes: `width` ones followed by `width` zeros, repeating.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn striped(width: usize, bits: usize) -> BitVec {
    assert!(width > 0, "stripe width must be positive");
    BitVec::from_fn(bits, |i| (i / width).is_multiple_of(2))
}

/// Generates the §5.2 *maximum string resistance* pattern for a whole block:
/// one page per wordline, such that every NAND string (bitline column) has at
/// most one `1` cell, and if it has one, it lies on an MWS target wordline.
///
/// Returns `wordlines` pages of `bits` bits each.
///
/// # Panics
///
/// Panics if `targets` contains an index `>= wordlines`.
pub fn max_string_resistance<R: Rng + ?Sized>(
    wordlines: usize,
    bits: usize,
    targets: &[usize],
    rng: &mut R,
) -> Vec<BitVec> {
    for &t in targets {
        assert!(t < wordlines, "target wordline {t} out of range ({wordlines})");
    }
    let mut pages = vec![BitVec::zeros(bits); wordlines];
    if targets.is_empty() {
        return pages;
    }
    for col in 0..bits {
        // Each column independently either stays all-programmed (`0`s,
        // maximum resistance) or gets exactly one erased cell on a random
        // target wordline.
        if rng.gen_bool(0.5) {
            let t = targets[rng.gen_range(0..targets.len())];
            pages[t].set(col, true);
        }
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn checkered_alternates_in_both_dimensions() {
        let wl0 = checkered(0, 16);
        let wl1 = checkered(1, 16);
        for i in 0..15 {
            assert_ne!(wl0.get(i), wl0.get(i + 1), "horizontal alternation");
        }
        for i in 0..16 {
            assert_ne!(wl0.get(i), wl1.get(i), "vertical alternation");
        }
    }

    #[test]
    fn solid_patterns() {
        assert!(solid(true, 64).is_all_ones());
        assert!(solid(false, 64).is_all_zeros());
    }

    #[test]
    fn stripes_have_requested_width() {
        let v = striped(4, 16);
        let expected = [true, true, true, true, false, false, false, false];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(v.get(i), e);
            assert_eq!(v.get(i + 8), e);
        }
    }

    #[test]
    #[should_panic(expected = "stripe width")]
    fn zero_stripe_width_panics() {
        striped(0, 8);
    }

    #[test]
    fn render_random_is_reproducible_and_distinct_per_wl() {
        let p = DataPattern::Random(42);
        assert_eq!(p.render(3, 256), p.render(3, 256));
        assert_ne!(p.render(3, 256), p.render(4, 256));
    }

    #[test]
    fn max_string_resistance_has_at_most_one_erased_cell_per_string() {
        let mut rng = StdRng::seed_from_u64(1);
        let targets = [2, 5, 7];
        let pages = max_string_resistance(8, 512, &targets, &mut rng);
        for col in 0..512 {
            let ones: Vec<usize> = (0..8).filter(|&wl| pages[wl].get(col)).collect();
            assert!(ones.len() <= 1, "column {col} has {} erased cells", ones.len());
            if let Some(&wl) = ones.first() {
                assert!(targets.contains(&wl), "erased cell on non-target wl {wl}");
            }
        }
        // Roughly half the columns should carry an erased cell.
        let total: usize = pages.iter().map(|p| p.count_ones()).sum();
        assert!(total > 150 && total < 360, "total erased cells {total}");
    }

    #[test]
    fn max_string_resistance_empty_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let pages = max_string_resistance(4, 64, &[], &mut rng);
        assert!(pages.iter().all(|p| p.is_all_zeros()));
    }
}
