//! Word-packed bit vector with bulk bitwise operations.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{words_for, WORD_BITS};

/// A fixed-length bit vector packed into `u64` words.
///
/// `BitVec` is the common data representation of the whole reproduction:
/// a NAND page, a latch bank's contents, and a workload operand are all bit
/// vectors. All bulk operations (`and`, `or`, `xor`, `not`, `count_ones`)
/// run word-at-a-time.
///
/// Bits beyond `len` inside the last word are kept at zero as an internal
/// invariant, so `count_ones` and word-level comparisons never see garbage.
///
/// ```
/// use fc_bits::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// assert!(v.get(3));
/// assert_eq!(v.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self { words: vec![0u64; words_for(len)], len }
    }

    /// Creates a bit vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = Self { words: vec![u64::MAX; words_for(len)], len };
        v.mask_tail();
        v
    }

    /// Creates a bit vector of `len` bits, where bit `i` is `f(i)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut v = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a bit vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        Self::from_fn(bits.len(), |i| bits[i])
    }

    /// Creates a bit vector of `len` bits where storage word `w` is
    /// `f(w)` — the word-parallel counterpart of [`BitVec::from_fn`].
    ///
    /// Bits beyond `len` in the last word are masked off, so `f` may
    /// return garbage in the tail.
    pub fn from_fn_words(len: usize, mut f: impl FnMut(usize) -> u64) -> Self {
        let mut v = Self { words: (0..words_for(len)).map(&mut f).collect(), len };
        v.mask_tail();
        v
    }

    /// Multi-operand AND: returns `ops[0] & ops[1] & …` evaluated one
    /// storage word at a time, without cloning any operand.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty or the operands' lengths differ.
    pub fn and_fold(ops: &[&Self]) -> Self {
        let mut out = Self::ones(Self::fold_len(ops));
        out.and_fold_assign(ops);
        out
    }

    /// Multi-operand OR: returns `ops[0] | ops[1] | …` evaluated one
    /// storage word at a time, without cloning any operand.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty or the operands' lengths differ.
    pub fn or_fold(ops: &[&Self]) -> Self {
        let mut out = Self::zeros(Self::fold_len(ops));
        out.or_fold_assign(ops);
        out
    }

    /// In-place multi-operand AND: `self &= ops[0] & ops[1] & …`, one
    /// storage word at a time. All operands of one word are combined
    /// before moving to the next, so each output word is written once.
    ///
    /// # Panics
    ///
    /// Panics if any operand's length differs from `self`.
    pub fn and_fold_assign(&mut self, ops: &[&Self]) {
        for op in ops {
            self.assert_same_len(op);
        }
        for (w, a) in self.words.iter_mut().enumerate() {
            let mut acc = *a;
            for op in ops {
                acc &= op.words[w];
            }
            *a = acc;
        }
    }

    /// In-place multi-operand OR: `self |= ops[0] | ops[1] | …`, one
    /// storage word at a time.
    ///
    /// # Panics
    ///
    /// Panics if any operand's length differs from `self`.
    pub fn or_fold_assign(&mut self, ops: &[&Self]) {
        for op in ops {
            self.assert_same_len(op);
        }
        for (w, a) in self.words.iter_mut().enumerate() {
            let mut acc = *a;
            for op in ops {
                acc |= op.words[w];
            }
            *a = acc;
        }
    }

    fn fold_len(ops: &[&Self]) -> usize {
        assert!(!ops.is_empty(), "fold needs at least one operand");
        ops[0].len
    }

    /// Creates a bit vector of `len` bits copied from `bytes`
    /// (little-endian bit order within each byte).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds fewer than `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(bytes.len() * 8 >= len, "byte slice too short for {len} bits");
        let mut v = Self::zeros(len);
        for (w, chunk) in v.words.iter_mut().zip(bytes.chunks(8)) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            *w = u64::from_le_bytes(buf);
        }
        v.mask_tail();
        v
    }

    /// Creates a bit vector whose words come directly from `words`.
    ///
    /// # Panics
    ///
    /// Panics if `words` does not have exactly `words_for(len)` entries.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), words_for(len), "word count must match len");
        let mut v = Self { words, len };
        v.mask_tail();
        v
    }

    /// Creates a uniformly random bit vector of `len` bits.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut v = Self { words: (0..words_for(len)).map(|_| rng.gen()).collect(), len };
        v.mask_tail();
        v
    }

    /// Creates a random bit vector where each bit is one with probability
    /// `density`.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not within `0.0..=1.0`.
    pub fn random_with_density<R: Rng + ?Sized>(len: usize, density: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        Self::from_fn(len, |_| rng.gen_bool(density))
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Flips bit `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.toggle(i);
        self.get(i)
    }

    /// Flips bit `i` without reading it back — one word XOR.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn toggle(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of zero bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Whether every bit is zero.
    pub fn is_all_zeros(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether every bit is one.
    pub fn is_all_ones(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Number of positions where `self` and `other` differ (Hamming
    /// distance). This is how the characterization harness counts raw bit
    /// errors between programmed and sensed data.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &Self) -> usize {
        self.assert_same_len(other);
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones() as usize).sum()
    }

    /// In-place bitwise AND with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &Self) {
        self.assert_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place bitwise OR with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &Self) {
        self.assert_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise XOR with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &Self) {
        self.assert_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place bitwise NOT.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// In-place bitwise AND-NOT: clears every bit of `self` that is set
    /// in `other` (`self &= !other`), without materializing `!other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_not_assign(&mut self, other: &Self) {
        self.assert_same_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Overwrites `self` with a copy of `other`, reusing `self`'s
    /// allocation. Unlike [`BitVec::copy_from`] the lengths may differ:
    /// `self` takes `other`'s length.
    pub fn assign_from(&mut self, other: &Self) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// Overwrites `self` with `NOT other` in a single pass, reusing
    /// `self`'s allocation (the in-place counterpart of
    /// [`BitVec::not`]).
    pub fn assign_not_from(&mut self, other: &Self) {
        self.words.clear();
        self.words.extend(other.words.iter().map(|w| !w));
        self.len = other.len;
        self.mask_tail();
    }

    /// Returns `self AND other`.
    pub fn and(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Returns `self OR other`.
    pub fn or(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Returns `self XOR other`.
    pub fn xor(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Returns `NOT self`.
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// Fills every bit with `value`.
    pub fn fill(&mut self, value: bool) {
        let w = if value { u64::MAX } else { 0 };
        self.words.fill(w);
        self.mask_tail();
    }

    /// Resizes to `new_len` bits, filling any new bits with `value`
    /// (like `Vec::resize`, reusing the allocation).
    pub fn resize(&mut self, new_len: usize, value: bool) {
        if new_len <= self.len {
            self.words.truncate(words_for(new_len));
            self.len = new_len;
            self.mask_tail();
            return;
        }
        if value {
            // Raise the tail bits of the current last word before
            // extending with all-ones words.
            let rem = self.len % WORD_BITS;
            if rem != 0 {
                if let Some(last) = self.words.last_mut() {
                    *last |= !((1u64 << rem) - 1);
                }
            }
            self.words.resize(words_for(new_len), u64::MAX);
        } else {
            self.words.resize(words_for(new_len), 0);
        }
        self.len = new_len;
        self.mask_tail();
    }

    /// Re-initializes the vector to `len` bits of `value`, reusing the
    /// existing allocation — the buffer-recycling counterpart of
    /// [`BitVec::zeros`]/[`BitVec::ones`].
    pub fn reset(&mut self, len: usize, value: bool) {
        self.words.clear();
        self.words.resize(words_for(len), if value { u64::MAX } else { 0 });
        self.len = len;
        if value {
            self.mask_tail();
        }
    }

    /// Overwrites this vector with the packed comparisons
    /// `bit c = values[c] <= threshold`, 64 lanes per storage word.
    ///
    /// This is the sensing kernel of the physics-mode chip model: a NAND
    /// string's per-bitline conduction against `V_REF` packs into page
    /// words without any per-bit `set` calls.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    pub fn fill_le_threshold(&mut self, values: &[f64], threshold: f64) {
        assert_eq!(values.len(), self.len, "threshold input length mismatch");
        for (wi, w) in self.words.iter_mut().enumerate() {
            let start = wi * WORD_BITS;
            let end = (start + WORD_BITS).min(values.len());
            *w = pack_le_word(&values[start..end], threshold);
        }
    }

    /// ANDs the packed comparisons `values[c] <= threshold` into this
    /// vector: `bit c &= (values[c] <= threshold)`.
    ///
    /// Folding one wordline at a time with this kernel evaluates an
    /// intra-block multi-wordline sense without materializing any
    /// intermediate page.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    pub fn and_le_threshold(&mut self, values: &[f64], threshold: f64) {
        assert_eq!(values.len(), self.len, "threshold input length mismatch");
        for (wi, w) in self.words.iter_mut().enumerate() {
            let start = wi * WORD_BITS;
            let end = (start + WORD_BITS).min(values.len());
            *w &= pack_le_word(&values[start..end], threshold);
        }
    }

    /// Returns a copy of bits `start..start + len` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, len: usize) -> Self {
        let mut out = Self::zeros(len);
        self.slice_into(start, len, &mut out);
        out
    }

    /// Copies bits `start..start + len` into `out`, reusing `out`'s
    /// allocation (`out` takes length `len`). Word-parallel for both
    /// aligned and unaligned `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_into(&self, start: usize, len: usize, out: &mut Self) {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "slice {start}+{len} out of range (len {})",
            self.len
        );
        out.words.clear();
        let first = start / WORD_BITS;
        let nw = words_for(len);
        let off = start % WORD_BITS;
        if off == 0 {
            out.words.extend_from_slice(&self.words[first..first + nw]);
        } else {
            // Unaligned: each output word stitches two neighbouring input
            // words together.
            out.words.extend((0..nw).map(|i| {
                let lo = self.words[first + i] >> off;
                let hi = self.words.get(first + i + 1).map_or(0, |w| w << (WORD_BITS - off));
                lo | hi
            }));
        }
        out.len = len;
        out.mask_tail();
    }

    /// Overwrites bits `start..start + src.len()` with `src`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn copy_from(&mut self, start: usize, src: &Self) {
        assert!(
            start.checked_add(src.len).is_some_and(|end| end <= self.len),
            "copy {start}+{} out of range (len {})",
            src.len,
            self.len
        );
        if start.is_multiple_of(WORD_BITS) && src.len.is_multiple_of(WORD_BITS) {
            let first = start / WORD_BITS;
            self.words[first..first + src.words.len()].copy_from_slice(&src.words);
            return;
        }
        for i in 0..src.len {
            self.set(start + i, src.get(i));
        }
    }

    /// ORs `src` into bits `start..start + src.len()` — the accumulation
    /// counterpart of [`BitVec::copy_from`], used when several partial
    /// results land in the same destination window (e.g. a batched query
    /// assembling OR-shared sub-results in place).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn or_from(&mut self, start: usize, src: &Self) {
        assert!(
            start.checked_add(src.len).is_some_and(|end| end <= self.len),
            "or {start}+{} out of range (len {})",
            src.len,
            self.len
        );
        if start.is_multiple_of(WORD_BITS) && src.len.is_multiple_of(WORD_BITS) {
            let first = start / WORD_BITS;
            for (dst, s) in self.words[first..first + src.words.len()].iter_mut().zip(&src.words) {
                *dst |= s;
            }
            return;
        }
        for i in src.iter_ones() {
            self.set(start + i, true);
        }
    }

    /// Iterator over bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Iterator over the indices of one bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * WORD_BITS;
            let len = self.len;
            BitIter { word: w }.map(move |b| base + b).filter(move |&i| i < len)
        })
    }

    /// Serializes to little-endian bytes (ceil(len/8) of them).
    pub fn to_bytes(&self) -> Vec<u8> {
        let nbytes = self.len.div_ceil(8);
        let mut out = Vec::with_capacity(nbytes);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(nbytes);
        out
    }

    /// Flips `count` distinct randomly-chosen bits. Used by the error
    /// injection machinery to apply a sampled raw-bit-error count to a page.
    ///
    /// # Panics
    ///
    /// Panics if `count > len`.
    pub fn flip_random_bits<R: Rng + ?Sized>(&mut self, count: usize, rng: &mut R) {
        let mut scratch = Vec::new();
        self.flip_random_bits_with(count, rng, &mut scratch);
    }

    /// Like [`BitVec::flip_random_bits`], but uses `scratch` as reusable
    /// working memory (contents unspecified afterwards), so repeated
    /// callers — the chip's error-injection path flips bits on every
    /// sense — perform no per-call allocation once the buffer has warmed
    /// up. Flips are word-indexed XORs; no bit is read back.
    ///
    /// # Panics
    ///
    /// Panics if `count > len`.
    pub fn flip_random_bits_with<R: Rng + ?Sized>(
        &mut self,
        count: usize,
        rng: &mut R,
        scratch: &mut Vec<usize>,
    ) {
        assert!(count <= self.len, "cannot flip {count} bits of {}", self.len);
        if count == 0 {
            return;
        }
        const SB: usize = usize::BITS as usize;
        if count * 4 <= self.len {
            // Sparse case: rejection sampling, deduplicated with a
            // word-packed seen-bitmap carried in `scratch` — O(1) per
            // draw, no hashing.
            let words = self.len.div_ceil(SB);
            scratch.clear();
            scratch.resize(words, 0);
            let mut done = 0;
            while done < count {
                let i = rng.gen_range(0..self.len);
                let mask = 1usize << (i % SB);
                let seen = &mut scratch[i / SB];
                if *seen & mask == 0 {
                    *seen |= mask;
                    self.toggle(i);
                    done += 1;
                }
            }
        } else {
            // Dense case: partial Fisher-Yates over all indices.
            scratch.clear();
            scratch.extend(0..self.len);
            for k in 0..count {
                let j = rng.gen_range(k..scratch.len());
                scratch.swap(k, j);
                self.toggle(scratch[k]);
            }
        }
    }

    fn assert_same_len(&self, other: &Self) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
    }

    /// Zeroes bits beyond `len` in the last word (maintains the invariant).
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl Default for BitVec {
    /// An empty (zero-bit) vector — the natural seed for buffers that are
    /// later [`BitVec::reset`] or [`BitVec::assign_from`] into shape.
    fn default() -> Self {
        Self::zeros(0)
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec(len={}, ones={}", self.len, self.count_ones())?;
        if self.len <= 64 {
            write!(f, ", bits=")?;
            for i in 0..self.len {
                write!(f, "{}", u8::from(self.get(i)))?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len.min(256) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 256 {
            write!(f, "… ({} bits)", self.len)?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        Self::from_bools(&bools)
    }
}

/// Packs up to 64 `v <= threshold` comparisons into one word
/// (little-endian lane order, branch-free inner loop).
#[inline]
fn pack_le_word(values: &[f64], threshold: f64) -> u64 {
    let mut w = 0u64;
    for (b, &v) in values.iter().enumerate() {
        w |= u64::from(v <= threshold) << b;
    }
    w
}

/// Iterator over set-bit positions inside one word.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

/// Borrowed view of a bit vector's words, used by zero-copy consumers such
/// as the popcount pipelines in the host model.
#[derive(Debug, Clone, Copy)]
pub struct Words<'a> {
    words: &'a [u64],
    len: usize,
}

impl<'a> Words<'a> {
    /// Number of valid bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying words.
    pub fn words(&self) -> &'a [u64] {
        self.words
    }
}

impl<'a> From<&'a BitVec> for Words<'a> {
    fn from(v: &'a BitVec) -> Self {
        Words { words: &v.words, len: v.len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(100);
        assert_eq!(z.len(), 100);
        assert_eq!(z.count_ones(), 0);
        assert!(z.is_all_zeros());
        let o = BitVec::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(o.is_all_ones());
    }

    #[test]
    fn tail_masking_invariant() {
        let o = BitVec::ones(65);
        assert_eq!(o.words()[1], 1);
        let mut n = BitVec::zeros(65);
        n.not_assign();
        assert_eq!(n.count_ones(), 65);
    }

    #[test]
    fn get_set_flip() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);
        assert!(!v.flip(0));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn bulk_ops_match_bitwise_definition() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = BitVec::random(333, &mut rng);
        let b = BitVec::random(333, &mut rng);
        for i in 0..333 {
            assert_eq!(a.and(&b).get(i), a.get(i) & b.get(i));
            assert_eq!(a.or(&b).get(i), a.get(i) | b.get(i));
            assert_eq!(a.xor(&b).get(i), a.get(i) ^ b.get(i));
            assert_eq!(a.not().get(i), !a.get(i));
        }
    }

    #[test]
    fn demorgan_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = BitVec::random(512, &mut rng);
        let b = BitVec::random(512, &mut rng);
        // NOT (a AND b) == (NOT a) OR (NOT b)
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        // NOT (a OR b) == (NOT a) AND (NOT b)
        assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
    }

    #[test]
    fn hamming_distance_counts_flips() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = BitVec::random(1000, &mut rng);
        let mut b = a.clone();
        b.flip_random_bits(37, &mut rng);
        assert_eq!(a.hamming_distance(&b), 37);
    }

    #[test]
    fn flip_random_bits_dense() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v = BitVec::zeros(64);
        v.flip_random_bits(64, &mut rng);
        assert!(v.is_all_ones());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = BitVec::random(777, &mut rng);
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 98);
        let w = BitVec::from_bytes(&bytes, 777);
        assert_eq!(v, w);
    }

    #[test]
    fn slice_and_copy_roundtrip() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = BitVec::random(500, &mut rng);
        let s = v.slice(64, 128); // word-aligned path
        let t = v.slice(65, 100); // unaligned path
        for i in 0..128 {
            assert_eq!(s.get(i), v.get(64 + i));
        }
        for i in 0..100 {
            assert_eq!(t.get(i), v.get(65 + i));
        }
        let mut w = BitVec::zeros(500);
        w.copy_from(64, &s);
        assert_eq!(w.slice(64, 128), s);
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut rng = StdRng::seed_from_u64(21);
        let v = BitVec::random_with_density(300, 0.1, &mut rng);
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones.len(), v.count_ones());
        assert!(ones.iter().all(|&i| v.get(i)));
        assert!(ones.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn from_iterator_collects() {
        let v: BitVec = (0..10).map(|i| i % 2 == 0).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v.count_ones(), 5);
    }

    #[test]
    fn density_is_respected() {
        let mut rng = StdRng::seed_from_u64(17);
        let v = BitVec::random_with_density(100_000, 0.25, &mut rng);
        let density = v.count_ones() as f64 / v.len() as f64;
        assert!((density - 0.25).abs() < 0.01, "density {density}");
    }

    #[test]
    fn empty_vector_is_well_behaved() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert!(v.is_all_zeros());
        assert!(v.is_all_ones()); // vacuously true
        assert_eq!(v.to_bytes().len(), 0);
    }
}
