//! # fc-bits — bit-vector substrate for the Flash-Cosmos reproduction
//!
//! Every layer of the Flash-Cosmos stack — NAND pages, latch contents,
//! workload operands, host-side reference computation — is a large bit
//! vector. This crate provides [`BitVec`], a word-packed bit vector with the
//! bulk bitwise operations the paper's applications rely on (AND, OR, XOR,
//! NOT, population count), plus the NAND data patterns used in the paper's
//! real-device characterization (checkered worst-case, random, solid).
//!
//! ```
//! use fc_bits::BitVec;
//!
//! let a = BitVec::from_fn(128, |i| i % 2 == 0);
//! let b = BitVec::from_fn(128, |i| i % 3 == 0);
//! let c = a.and(&b);
//! assert_eq!(c.count_ones(), (0..128).filter(|i| i % 2 == 0 && i % 3 == 0).count());
//! ```

mod bitvec;
mod pattern;

pub use bitvec::{BitVec, Words};
pub use pattern::{checkered, max_string_resistance, solid, striped, DataPattern};

/// Number of bits in one storage word of a [`BitVec`].
pub const WORD_BITS: usize = 64;

/// Returns the number of `u64` words needed to hold `bits` bits.
///
/// ```
/// assert_eq!(fc_bits::words_for(0), 0);
/// assert_eq!(fc_bits::words_for(64), 1);
/// assert_eq!(fc_bits::words_for(65), 2);
/// ```
pub const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}
