//! The batched query-session API: plan, dedup, and schedule many
//! expressions per device pass.
//!
//! Flash-Cosmos amortizes work *within* one expression — a single MWS
//! sense evaluates tens of operands — but a production bulk-bitwise
//! service (a bitmap index answering thousands of concurrent filters, an
//! HDC classifier matching a query against every prototype) issues many
//! expressions at once. [`QueryBatch`] collects them;
//! [`FlashCosmosDevice::submit`] compiles the whole batch **jointly**:
//!
//! * **Canonical dedup** — queries that are the same Boolean function
//!   after normalization (operand reordering, duplicated terms, XOR
//!   negation parity) share one compiled plan and one set of senses.
//! * **Shared-term extraction** — a top-level OR term appearing in
//!   several queries is sensed once and OR-merged into every consumer on
//!   the controller, when the joint plan needs fewer senses than the
//!   per-query plans (the planner compares both and keeps the cheaper).
//! * **Cross-die execution** — a unit whose operands live on several
//!   dies (die-aware placement spreads distinct groups on purpose) is
//!   split into per-die sub-programs ([`crate::crossdie`]); the partial
//!   pages AND/OR/XOR-merge in the controller, so spanning queries
//!   execute instead of failing with `PlaneMismatch`.
//! * **Die-aware ordering** — per-stripe programs are scheduled die by
//!   die, so the reported critical path reflects cross-die parallelism
//!   ([`BatchStats::critical_path_us`] is the busiest die's time) while
//!   chip time stays the serial-equivalent sum.
//!
//! Results land in caller-provided buffers ([`submit_into`] — zero
//! steady-state allocation) or freshly allocated vectors ([`submit`]),
//! together with a [`BatchStats`] that reports the senses saved versus
//! running every query through a serial [`FlashCosmosDevice::fc_read`].
//!
//! [`submit`]: FlashCosmosDevice::submit
//! [`submit_into`]: FlashCosmosDevice::submit_into

use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

use fc_bits::BitVec;
use fc_nand::command::Command;
use fc_ssd::device::DeviceError;
use fc_ssd::pipeline::DieQueues;

use crate::crossdie::{self, ExecPlan, Leaf, MergeTree};
use crate::device::{DeviceCore, FcError, FlashCosmosDevice};
use crate::expr::{Expr, Literal, Nnf, OperandId};
use crate::planner::{self, PlannerCaps};

/// Identifies one query inside a [`QueryBatch`] — the index of the
/// matching entry in [`BatchResults::results`] / [`BatchStats::per_query`].
pub type QueryId = usize;

/// An ordered collection of bulk bitwise queries submitted as one unit.
///
/// Build it incrementally with [`QueryBatch::push`] (which accepts
/// anything convertible to [`Expr`], including `OperandHandle`s), or
/// collect an iterator of expressions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryBatch {
    queries: Vec<Expr>,
}

impl QueryBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `n` queries.
    pub fn with_capacity(n: usize) -> Self {
        Self { queries: Vec::with_capacity(n) }
    }

    /// Adds a query and returns its id (position in the batch).
    pub fn push(&mut self, expr: impl Into<Expr>) -> QueryId {
        self.queries.push(expr.into());
        self.queries.len() - 1
    }

    /// Number of queries collected.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The collected queries, in submission order.
    pub fn queries(&self) -> &[Expr] {
        &self.queries
    }
}

impl<E: Into<Expr>> Extend<E> for QueryBatch {
    fn extend<I: IntoIterator<Item = E>>(&mut self, iter: I) {
        self.queries.extend(iter.into_iter().map(Into::into));
    }
}

impl<E: Into<Expr>> FromIterator<E> for QueryBatch {
    fn from_iter<I: IntoIterator<Item = E>>(iter: I) -> Self {
        Self { queries: iter.into_iter().map(Into::into).collect() }
    }
}

/// Per-query share of a batch's execution cost. Costs of plan units
/// shared by several queries are split evenly among the sharers, so the
/// per-query values sum to the batch totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Sensing operations attributed to this query (fractional when a
    /// sense served several queries).
    pub senses: f64,
    /// Chip time attributed to this query, µs.
    pub chip_time_us: f64,
    /// NAND energy attributed to this query, µJ.
    pub energy_uj: f64,
}

/// Execution statistics of one batch submission.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Sensing operations actually executed across the whole batch.
    pub senses: u64,
    /// Sensing operations N serial `fc_read` calls would have executed.
    pub serial_senses: u64,
    /// Serial-equivalent chip time (sum over all commands), µs.
    pub chip_time_us: f64,
    /// Critical path under die *and* channel parallelism: the busier of
    /// the busiest die (sense/program time) and the busiest channel bus
    /// (page output transfers), µs.
    pub critical_path_us: f64,
    /// The busiest die's sense/program time, µs — the die-parallel
    /// component of [`BatchStats::critical_path_us`].
    pub busiest_die_us: f64,
    /// The busiest channel bus's output-transfer occupancy, µs. Exceeds
    /// `busiest_die_us` when the batch is transfer-bound (many pages
    /// streamed out per sense).
    pub busiest_channel_us: f64,
    /// Wall time the controller spent merging cross-die / cross-shard
    /// partial pages, µs. When this rivals `critical_path_us`, the
    /// controller merge — not the flash — is the scaling bottleneck.
    pub merge_us: f64,
    /// Total NAND energy, µJ.
    pub energy_uj: f64,
    /// Queries answered by another query's pass (canonical duplicates).
    pub deduped_queries: usize,
    /// Shared OR terms extracted into their own single-sense plan units.
    pub shared_units: usize,
    /// Plan units answered by the cross-batch result cache (no compile,
    /// no sensing — see `flash_cosmos::session`).
    pub cached_units: usize,
    /// Sensing operations the cache hits avoided (what the joint plan
    /// would have executed for those units on a cold cache). Counted in
    /// `serial_senses` but not in `senses`.
    pub cached_senses: u64,
    /// Distinct dies that executed sensing work — >1 means the batch
    /// genuinely exploited die-level parallelism (and `critical_path_us`
    /// sits below `chip_time_us`).
    pub dies_used: usize,
    /// Cost split per query, indexed by [`QueryId`].
    pub per_query: Vec<QueryStats>,
}

impl BatchStats {
    /// Senses the joint plan avoided versus serial execution.
    pub fn senses_saved(&self) -> u64 {
        self.serial_senses.saturating_sub(self.senses)
    }

    /// Which resource bounded this batch: the busiest die, the busiest
    /// channel bus, or the controller merge. Saturation attribution for
    /// the channel-scaling story — near-linear qps scaling holds while
    /// this stays [`Bottleneck::Die`]/[`Bottleneck::Channel`] and breaks
    /// when the serial controller merge takes over.
    pub fn bottleneck(&self) -> Bottleneck {
        if self.merge_us > self.busiest_die_us && self.merge_us > self.busiest_channel_us {
            Bottleneck::Merge
        } else if self.busiest_channel_us > self.busiest_die_us {
            Bottleneck::Channel
        } else {
            Bottleneck::Die
        }
    }
}

/// The resource a batch (or drain pass) saturated — see
/// [`BatchStats::bottleneck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Sense/program time on the busiest die dominates.
    Die,
    /// Output transfers on the busiest channel bus dominate.
    Channel,
    /// The controller's serial cross-die / cross-shard merge dominates.
    Merge,
}

/// Results of [`FlashCosmosDevice::submit`]: one vector per query, in
/// submission order, plus the batch statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResults {
    /// Per-query result vectors, indexed by [`QueryId`]. Failed queries
    /// (listed in [`BatchResults::failures`]) hold empty vectors.
    pub results: Vec<BitVec>,
    /// Batch execution statistics.
    pub stats: BatchStats,
    /// Queries that could not be answered (per-query failure isolation:
    /// the rest of the batch executed normally). Empty on full success.
    pub failures: Vec<QueryFailure>,
}

/// One query of a batch that could not be answered: a page it depends on
/// stayed unreadable after every recovery tier. The same facts surface
/// as [`FcError::QueryFailed`] on the fail-fast paths
/// ([`FlashCosmosDevice::submit_into`] / [`FlashCosmosDevice::fc_read`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryFailure {
    /// The failed query.
    pub query: QueryId,
    /// The logical page that stayed unreadable.
    pub lpn: u64,
    /// Recovery tiers attempted before giving up (1 = retry ladder,
    /// 2 = + parity rebuild).
    pub tiers_tried: u32,
}

/// One canonically-distinct query of a batch: the first submitted form
/// plus its canonical normal form (computed once, reused as the dedup,
/// sharing and cache key) and every query id it answers.
struct UniqueQuery {
    nnf: Nnf,
    canon: Nnf,
    consumers: Vec<QueryId>,
}

/// One schedulable piece of the joint plan: an expression evaluated by a
/// single compiled program per stripe, feeding one or more queries. The
/// canonical form rides along from dedup so the cache key never
/// re-canonicalizes on the hot (warm-resubmit) path.
struct Unit {
    nnf: Nnf,
    canon: Nnf,
    ids: Vec<OperandId>,
    pages: usize,
    consumers: Vec<QueryId>,
    shared: bool,
}

/// How a planned unit obtains its result vector.
pub(crate) enum UnitWork {
    /// Served from the cross-batch result cache: the unit's full output
    /// (snapshotted at compile time — valid as long as the operand
    /// generations in the unit key hold) plus the senses a cold execution
    /// would have cost.
    Cached {
        /// The memoized unit output (`pages × page_bits` bits).
        result: BitVec,
    },
    /// Controller evaluation: the unit touches a multi-level operand
    /// ([`FlashCosmosDevice::fc_write_ml`]), whose pages are Gray-coded
    /// cell levels rather than raw SLC bits — no MWS sense can combine
    /// them, so the controller reads every operand page (2–4 senses per
    /// MLC/TLC page) and evaluates the expression itself. This is the
    /// density side of the §6.3 trade, priced honestly against in-flash
    /// sensing.
    Controller {
        /// The unit expression, evaluated per stripe over the read pages.
        nnf: Nnf,
        /// The operands to read.
        ids: Vec<OperandId>,
        /// Total senses the page reads cost across all stripes.
        senses: u64,
    },
    /// Compiled per-plane programs to execute on the chips.
    Execute {
        /// All stripes' leaves, in flatten order (merge trees index into
        /// this list).
        leaves: Vec<Leaf>,
        /// Stripe slot per leaf.
        slots: Vec<usize>,
        /// Whether the leaf's page *is* its stripe's result (single-plane
        /// stripe) — streamed straight into the unit output.
        direct: Vec<bool>,
        /// Controller merges for stripes that span planes.
        merges: Vec<(usize, MergeTree)>,
        /// Total senses across the leaves.
        senses: u64,
    },
}

/// One planned unit of a compiled batch.
pub(crate) struct PlannedUnit {
    pub(crate) pages: usize,
    pub(crate) consumers: Vec<QueryId>,
    /// The unit expression as compiled (the plan lint re-derives the
    /// cross-die and threshold-lowering contracts from it — see
    /// [`crate::audit`]).
    pub(crate) nnf: Nnf,
    /// Result-cache key: epoch + canonical form + operand generations.
    pub(crate) key: crate::session::CacheKey,
    pub(crate) work: UnitWork,
}

/// A batch compiled against the current placement and cache state, ready
/// to execute — immediately ([`FlashCosmosDevice::submit_into`]) or
/// queued ([`FlashCosmosDevice::submit_async`]).
pub(crate) struct CompiledBatch {
    pub(crate) q_bits: Vec<usize>,
    pub(crate) q_pages: Vec<usize>,
    pub(crate) units: Vec<PlannedUnit>,
    /// Stats fields known at compile time (dedup/sharing/cache/serial
    /// counts); execution clones this and fills in the measured fields.
    pub(crate) stats_seed: BatchStats,
    /// Generation of every operand the batch references, plus the device
    /// epoch — the staleness check for queued batches.
    pub(crate) epoch: u64,
    pub(crate) snapshot: Vec<(OperandId, u64)>,
}

impl CompiledBatch {
    /// Queries in the source batch.
    pub(crate) fn queries(&self) -> usize {
        self.q_bits.len()
    }
}

impl DeviceCore {
    /// Executes a batch of queries in one jointly planned device pass and
    /// returns per-query result vectors plus [`BatchStats`].
    ///
    /// # Errors
    ///
    /// Fails like `fc_read` would on the offending
    /// query: unknown operands, operand size mismatches *within* a query,
    /// planner rejections, or chip errors. Queries of different vector
    /// lengths may share a batch.
    ///
    /// A query that depends on a page the recovery layer lost (unreadable
    /// after read-retry *and* parity rebuild) does **not** fail the
    /// batch: it is reported in [`BatchResults::failures`] with an empty
    /// result vector, while every other query completes normally.
    pub(crate) fn submit(&self, batch: &QueryBatch) -> Result<BatchResults, FcError> {
        let mut results: Vec<BitVec> = (0..batch.len()).map(|_| BitVec::zeros(0)).collect();
        if batch.is_empty() {
            return Ok(BatchResults { results, stats: BatchStats::default(), failures: vec![] });
        }
        let compiled = self.compile_batch(batch)?;
        let (stats, failures) = self.execute_compiled(&compiled, &mut results, None)?;
        Ok(BatchResults { results, stats, failures })
    }

    /// Like `submit`, but writes each query's result
    /// into the caller's buffers (`outs[i]` receives query `i`, resized in
    /// place) — the zero-copy output mode for callers that recycle
    /// vectors across submissions.
    ///
    /// # Errors
    ///
    /// [`FcError::OutputSlots`] when `outs.len() != batch.len()`, plus
    /// everything `submit` can return. Unlike
    /// `submit`, this path fails fast: the first
    /// query touching a lost page surfaces as [`FcError::QueryFailed`]
    /// (use `submit` for partial results).
    pub(crate) fn submit_into(
        &self,
        batch: &QueryBatch,
        outs: &mut [BitVec],
    ) -> Result<BatchStats, FcError> {
        if outs.len() != batch.len() {
            return Err(FcError::OutputSlots { got: outs.len(), expected: batch.len() });
        }
        if batch.is_empty() {
            return Ok(BatchStats::default());
        }
        let compiled = self.compile_batch(batch)?;
        let (stats, failures) = self.execute_compiled(&compiled, outs, None)?;
        if let Some(f) = failures.first() {
            return Err(FcError::QueryFailed {
                query: f.query,
                lpn: f.lpn,
                tiers_tried: f.tiers_tried,
            });
        }
        Ok(stats)
    }

    /// Compiles a batch against the current placement, dedup/sharing the
    /// queries jointly and consulting the cross-batch result cache per
    /// unit — the planning half of `submit_into`,
    /// shared with the async submission path. Records each unit's
    /// operand set with the maintenance affinity tracker — one
    /// observation per *submission*, so the drain-time recompile of a
    /// stale async batch uses [`Self::recompile_batch`] instead (the
    /// client queried once, no matter how often the batch recompiles).
    pub(crate) fn compile_batch(&self, batch: &QueryBatch) -> Result<CompiledBatch, FcError> {
        self.compile_batch_inner(batch, true)
    }

    /// [`Self::compile_batch`] for drain-time recompilation of a stale
    /// queued batch: identical plan, but the affinity tracker is not fed
    /// a second time.
    pub(crate) fn recompile_batch(&self, batch: &QueryBatch) -> Result<CompiledBatch, FcError> {
        self.compile_batch_inner(batch, false)
    }

    fn compile_batch_inner(
        &self,
        batch: &QueryBatch,
        record_affinity: bool,
    ) -> Result<CompiledBatch, FcError> {
        let n = batch.len();
        let mut stats = BatchStats {
            queries: n,
            per_query: vec![QueryStats::default(); n],
            ..BatchStats::default()
        };

        // Validate every query and capture its geometry.
        let mut q_bits = vec![0usize; n];
        let mut q_pages = vec![0usize; n];
        let mut q_nnf: Vec<Nnf> = Vec::with_capacity(n);
        for (qi, expr) in batch.queries().iter().enumerate() {
            let ids: Vec<OperandId> = expr.operands().into_iter().collect();
            let first = *ids.first().ok_or(FcError::SizeMismatch)?;
            let bits = self.record(first)?.bits;
            let pages = self.record(first)?.lpns.len();
            for &id in &ids {
                let r = self.record(id)?;
                if r.bits != bits || r.lpns.len() != pages {
                    return Err(FcError::SizeMismatch);
                }
            }
            q_bits[qi] = bits;
            q_pages[qi] = pages;
            q_nnf.push(expr.to_nnf());
        }

        // Canonical dedup: queries with the same normal form share a plan.
        // The canonical forms are kept — they become the plan units' cache
        // keys without being recomputed.
        let mut key_index: HashMap<Nnf, usize> = HashMap::new();
        let mut uniques: Vec<UniqueQuery> = Vec::new();
        for (qi, nnf) in q_nnf.iter().enumerate() {
            let key = canonicalize(nnf);
            match key_index.get(&key) {
                Some(&u) => uniques[u].consumers.push(qi),
                None => {
                    key_index.insert(key.clone(), uniques.len());
                    uniques.push(UniqueQuery { nnf: nnf.clone(), canon: key, consumers: vec![qi] });
                }
            }
        }
        stats.deduped_queries = n - uniques.len();

        let caps = PlannerCaps {
            max_inter_blocks: self.ssd.config().max_inter_blocks,
            wls_per_block: self.ssd.config().wls_per_block,
        };

        // Candidate plans: per-unique-query units, and (when top-level OR
        // terms recur across queries) a decomposed plan that senses each
        // shared term once. Keep whichever needs fewer senses.
        let plan_a = self.whole_query_units(&uniques, &q_pages)?;
        let units = match self.shared_term_units(&uniques, &q_pages, &plan_a) {
            Some(plan_b) => {
                let a = self.estimate_senses(&plan_a, caps);
                let b = self.estimate_senses(&plan_b, caps);
                match (a, b) {
                    (Ok(a), Ok(b)) if b < a => plan_b,
                    _ => plan_a,
                }
            }
            None => plan_a,
        };
        stats.shared_units = units.iter().filter(|u| u.shared).count();

        // Standalone cost per exact expression form, seeded by the unit
        // compiles below and topped up on demand — the serial-reference
        // accounting (`serial_senses`) prices each query's *own* form,
        // because a canonical duplicate with a different written form
        // (reordered or repeated literals) can compile to a different
        // sense count than its class representative. (Found by the
        // pinned-seed proptest replay: the old representative × count
        // accounting drifted from an actual serial loop.)
        let mut form_cost: HashMap<Nnf, u64> = HashMap::new();

        // Compile every unit: a cache hit snapshots the memoized result
        // (no plans compiled, no senses queued); a miss compiles each
        // stripe into a cross-die plan whose leaves queue on their dies.
        let epoch = self.epoch;
        let mut snapshot: Vec<(OperandId, u64)> = Vec::new();
        {
            let mut seen: HashSet<OperandId> = HashSet::new();
            for nnf in &q_nnf {
                for id in nnf.operands() {
                    if seen.insert(id) {
                        snapshot.push((id, self.operand_generation(id)));
                    }
                }
            }
            snapshot.sort_unstable();
        }
        let mut planned: Vec<PlannedUnit> = Vec::with_capacity(units.len());
        for unit in &units {
            let gens: Vec<(OperandId, u64)> =
                unit.ids.iter().map(|&id| (id, self.operand_generation(id))).collect();
            let key: crate::session::CacheKey = (epoch, unit.canon.clone(), gens);
            let cached = self.session.cache().lookup(&key).map(|e| (e.result.clone(), e.senses));
            if let Some((result, senses)) = cached {
                stats.cached_units += 1;
                stats.cached_senses += senses;
                form_cost.entry(unit.nnf.clone()).or_insert(senses);
                // The maintenance layer's observation stream: this set
                // was fused again (served from cache this time).
                if record_affinity {
                    self.session.affinity().record(
                        &unit.ids,
                        senses,
                        unit.pages as u64,
                        unit.consumers.len() as u64,
                        true,
                    );
                }
                planned.push(PlannedUnit {
                    pages: unit.pages,
                    consumers: unit.consumers.clone(),
                    nnf: unit.nnf.clone(),
                    work: UnitWork::Cached { result },
                    key,
                });
                continue;
            }
            // Units touching a multi-level operand bypass the planner:
            // their pages cannot join an MWS sense (see
            // [`UnitWork::Controller`]).
            if unit.ids.iter().any(|&id| self.operands.get(id).is_some_and(|r| r.ml)) {
                let senses = self.controller_senses(&unit.ids)?;
                form_cost.entry(unit.nnf.clone()).or_insert(senses);
                if record_affinity {
                    self.session.affinity().record(
                        &unit.ids,
                        senses,
                        unit.pages as u64,
                        unit.consumers.len() as u64,
                        false,
                    );
                }
                planned.push(PlannedUnit {
                    pages: unit.pages,
                    consumers: unit.consumers.clone(),
                    nnf: unit.nnf.clone(),
                    work: UnitWork::Controller {
                        nnf: unit.nnf.clone(),
                        ids: unit.ids.clone(),
                        senses,
                    },
                    key,
                });
                continue;
            }
            let mut leaves: Vec<Leaf> = Vec::new();
            let mut slots: Vec<usize> = Vec::new();
            let mut direct: Vec<bool> = Vec::new();
            let mut merges: Vec<(usize, MergeTree)> = Vec::new();
            let mut senses = 0u64;
            for slot in 0..unit.pages {
                let plan = self.stripe_plan(&unit.nnf, &unit.ids, slot, caps)?;
                senses += plan.sense_count() as u64;
                let tree = plan.flatten(&mut leaves);
                slots.resize(leaves.len(), slot);
                direct.resize(leaves.len(), false);
                // Single-leaf plans (the common co-planar case) stream
                // their page straight into the unit output; only genuinely
                // spanning plans buffer partials for the controller merge.
                if let MergeTree::Leaf(i) = tree {
                    direct[i] = true;
                } else {
                    merges.push((slot, tree));
                }
            }
            form_cost.entry(unit.nnf.clone()).or_insert(senses);
            if record_affinity {
                self.session.affinity().record(
                    &unit.ids,
                    senses,
                    unit.pages as u64,
                    unit.consumers.len() as u64,
                    false,
                );
            }
            planned.push(PlannedUnit {
                pages: unit.pages,
                consumers: unit.consumers.clone(),
                nnf: unit.nnf.clone(),
                work: UnitWork::Execute { leaves, slots, direct, merges, senses },
                key,
            });
        }
        // Serial reference (the paper's headline metric): what N
        // back-to-back `fc_read`s would sense — each query priced at its
        // own form's standalone cost. Whole-query units seeded the map
        // above with exact executed counts, so only forms the joint plan
        // never compiled verbatim (decomposed terms, reordered
        // duplicates) cost anything here: one stripe-0 compile each,
        // projected across slots (stripe structure is slot-invariant —
        // placement groups fill every slot the same way, the same
        // assumption `estimate_senses` plans by).
        for (qi, nnf) in q_nnf.iter().enumerate() {
            let cost = match form_cost.get(nnf) {
                Some(&c) => c,
                None => {
                    let ids: Vec<OperandId> = nnf.operands().into_iter().collect();
                    let senses =
                        if ids.iter().any(|&id| self.operands.get(id).is_some_and(|r| r.ml)) {
                            self.controller_senses(&ids)?
                        } else {
                            self.stripe_plan(nnf, &ids, 0, caps)?.sense_count() as u64
                                * q_pages[qi] as u64
                        };
                    form_cost.insert(nnf.clone(), senses);
                    senses
                }
            };
            stats.serial_senses += cost;
        }
        let compiled =
            CompiledBatch { q_bits, q_pages, units: planned, stats_seed: stats, epoch, snapshot };
        // Pass 1 of the static analyzer: lint the plan IR before any chip
        // is touched (debug builds only — release keeps the hot compile
        // path unchanged; see `crate::audit`).
        #[cfg(debug_assertions)]
        crate::audit::enforce_plan(self, &compiled);
        Ok(compiled)
    }

    /// Re-consults the result cache for every still-executable unit of a
    /// compiled batch. Async batches compile at `submit_async` time —
    /// before earlier queued batches have executed — so a unit another
    /// in-flight batch also computes misses at compile; by drain time the
    /// earlier batch's execution has populated the cache and this swap
    /// turns the duplicate work into a replay. Unit keys embed operand
    /// generations, so a swapped-in entry is valid by construction (stale
    /// batches are recompiled before this runs).
    pub(crate) fn refresh_cache_hits(&self, compiled: &mut CompiledBatch) {
        for unit in &mut compiled.units {
            let UnitWork::Execute { senses, .. } = &unit.work else { continue };
            let senses = *senses;
            let hit = self.session.cache().peek_hit(&unit.key).map(|e| e.result.clone());
            if let Some(result) = hit {
                unit.work = UnitWork::Cached { result };
                compiled.stats_seed.cached_units += 1;
                compiled.stats_seed.cached_senses += senses;
            }
        }
    }

    /// Executes a compiled batch on the chips: leaves run die-major (each
    /// die's queue is contiguous), cached units replay their memoized
    /// pages, fresh unit results populate the cache, and every unit
    /// accumulates into its consumers' outputs. `combined`, when given,
    /// receives this batch's per-die occupancy on top of whatever other
    /// batches already queued — the drain path's overlap accounting.
    pub(crate) fn execute_compiled(
        &self,
        compiled: &CompiledBatch,
        outs: &mut [BitVec],
        combined: Option<&mut DieQueues>,
    ) -> Result<(BatchStats, Vec<QueryFailure>), FcError> {
        let mut stats = compiled.stats_seed.clone();
        let page_bits = self.ssd.config().page_bits();
        let xfer_us = self.ssd.config().page_transfer_us();

        // Per-query failure isolation: a unit that would read a page the
        // recovery layer recorded as lost (unreadable after the retry
        // ladder *and* parity rebuild) cannot produce a correct answer.
        // Its consumer queries fail individually; every other unit of the
        // batch executes normally.
        let mut unit_failed: Vec<Option<u64>> = vec![None; compiled.units.len()];
        if self.lost_page_count() > 0 {
            for (ui, unit) in compiled.units.iter().enumerate() {
                'ids: for &(id, _) in &unit.key.2 {
                    for &lpn in &self.operands[id].lpns {
                        if self.is_lost_page(lpn) {
                            unit_failed[ui] = Some(lpn);
                            break 'ids;
                        }
                    }
                }
            }
        }
        let mut failures: Vec<QueryFailure> = Vec::new();
        for (ui, unit) in compiled.units.iter().enumerate() {
            if let Some(lpn) = unit_failed[ui] {
                for &qi in &unit.consumers {
                    failures.push(QueryFailure { query: qi, lpn, tiers_tried: 2 });
                }
            }
        }
        failures.sort_by_key(|f| f.query);
        failures.dedup_by_key(|f| f.query);

        // Global die-major execution order over all units' leaves.
        let mut order: Vec<(usize, usize)> = Vec::new();
        for (ui, unit) in compiled.units.iter().enumerate() {
            if unit_failed[ui].is_some() {
                continue;
            }
            if let UnitWork::Execute { leaves, slots, .. } = &unit.work {
                order.extend((0..leaves.len()).map(|li| (ui, li)));
                debug_assert_eq!(leaves.len(), slots.len());
            }
        }
        order.sort_by_key(|&(ui, li)| {
            let UnitWork::Execute { leaves, slots, .. } = &compiled.units[ui].work else {
                unreachable!("order only holds executable units");
            };
            (leaves[li].plane.die, slots[li], ui, li)
        });

        let mut unit_outs: Vec<Option<BitVec>> = compiled
            .units
            .iter()
            .map(|u| match &u.work {
                UnitWork::Execute { .. } | UnitWork::Controller { .. } => {
                    Some(BitVec::zeros(u.pages * page_bits))
                }
                UnitWork::Cached { .. } => None,
            })
            .collect();
        let mut partials: Vec<Vec<Option<BitVec>>> = compiled
            .units
            .iter()
            .map(|u| match &u.work {
                UnitWork::Execute { leaves, .. } => vec![None; leaves.len()],
                UnitWork::Cached { .. } | UnitWork::Controller { .. } => Vec::new(),
            })
            .collect();

        let mut own = DieQueues::for_config(self.ssd.config());
        for (ui, li) in order {
            let unit = &compiled.units[ui];
            let UnitWork::Execute { leaves, slots, direct, .. } = &unit.work else {
                unreachable!("order only holds executable units");
            };
            let leaf = &leaves[li];
            let mut chip = self.ssd.chip_exec(leaf.plane.die);
            let mut latency = 0.0;
            let mut energy = 0.0;
            for cmd in &leaf.program.commands {
                let out = chip.execute(cmd.clone()).map_err(DeviceError::Nand)?;
                latency += out.latency_us;
                energy += out.energy_uj;
            }
            let mut page = chip
                .execute(Command::ReadOut { plane: leaf.program.plane })
                .map_err(DeviceError::Nand)?
                .into_page()
                .expect("read-out streams the cache latch");
            if leaf.program.controller_not {
                page.not_assign();
            }
            let senses = leaf.program.sense_count() as u64;
            stats.senses += senses;
            stats.chip_time_us += latency;
            stats.energy_uj += energy;
            let die_flat = leaf.plane.die.flat(self.ssd.config());
            own.push(die_flat, latency);
            // The ReadOut's page streams over the die's channel bus —
            // bus occupancy, not die occupancy (the die is free to sense
            // the next leaf while the bus drains).
            own.push_transfer(die_flat, xfer_us);
            // Amortized attribution: a unit serving several queries splits
            // its cost evenly. A consumer-less unit (nothing to attribute
            // to) must not poison the stats with a division by zero.
            debug_assert!(!unit.consumers.is_empty(), "plan units always feed ≥ 1 query");
            if !unit.consumers.is_empty() {
                let share = 1.0 / unit.consumers.len() as f64;
                for &qi in &unit.consumers {
                    let qs = &mut stats.per_query[qi];
                    qs.senses += senses as f64 * share;
                    qs.chip_time_us += latency * share;
                    qs.energy_uj += energy * share;
                }
            }
            if direct[li] {
                unit_outs[ui]
                    .as_mut()
                    .expect("executable units own an output buffer")
                    .copy_from(slots[li] * page_bits, &page);
            } else {
                partials[ui][li] = Some(page);
            }
        }
        // Controller units: read every operand page (the full multi-level
        // page-read cost) and evaluate the expression in the controller.
        for (ui, unit) in compiled.units.iter().enumerate() {
            if unit_failed[ui].is_some() {
                continue;
            }
            let UnitWork::Controller { nnf, ids, senses } = &unit.work else { continue };
            let mut latency_total = 0.0;
            let mut env: HashMap<OperandId, BitVec> = HashMap::new();
            for slot in 0..unit.pages {
                env.clear();
                for &id in ids {
                    let (lpn, die_flat, page_senses) = {
                        let rec = &self.operands[id];
                        let lpn = rec.lpns[slot];
                        let meta =
                            self.ssd.page_meta(lpn).expect("written operands carry metadata");
                        let mode = meta.scheme.cell_mode();
                        let s = if mode.bits_per_cell() > 1 {
                            fc_nand::mlsense::senses_for_page(mode, meta.ml_page as usize)
                        } else {
                            1
                        };
                        (lpn, rec.dies[slot].flat(self.ssd.config()), s)
                    };
                    let page = self.ssd.read(lpn)?;
                    let us = page_senses as f64 * fc_nand::calib::timing::T_R_SLC_US;
                    own.push(die_flat, us);
                    // Controller evaluation moves every operand page off
                    // the die — each read crosses the channel bus.
                    own.push_transfer(die_flat, xfer_us);
                    latency_total += us;
                    env.insert(id, page);
                }
                let page = eval_nnf_page(nnf, &env);
                unit_outs[ui]
                    .as_mut()
                    .expect("controller units own an output buffer")
                    .copy_from(slot * page_bits, &page);
            }
            stats.senses += *senses;
            stats.chip_time_us += latency_total;
            debug_assert!(!unit.consumers.is_empty(), "plan units always feed ≥ 1 query");
            if !unit.consumers.is_empty() {
                let share = 1.0 / unit.consumers.len() as f64;
                for &qi in &unit.consumers {
                    let qs = &mut stats.per_query[qi];
                    qs.senses += *senses as f64 * share;
                    qs.chip_time_us += latency_total * share;
                }
            }
        }
        stats.busiest_die_us = own.busiest_us();
        stats.busiest_channel_us = own.busiest_channel_us();
        stats.critical_path_us = own.critical_path_us();
        stats.dies_used = own.dies_busy();
        if let Some(combined) = combined {
            combined.merge(&own);
        }

        // Merge each spanning unit-stripe's buffered partial pages into
        // the unit output. Measured: the merge is the one serial stage of
        // a batch (dies and channels parallelize, the controller does
        // not), so its wall time is the saturation signal the scaling
        // bench attributes against.
        let merge_start = std::time::Instant::now();
        for (ui, unit) in compiled.units.iter().enumerate() {
            if unit_failed[ui].is_some() {
                continue;
            }
            let UnitWork::Execute { merges, .. } = &unit.work else { continue };
            for (slot, tree) in merges {
                let page = crossdie::eval_merge(tree, &mut partials[ui]);
                unit_outs[ui]
                    .as_mut()
                    .expect("executable units own an output buffer")
                    .copy_from(slot * page_bits, &page);
            }
        }
        stats.merge_us = merge_start.elapsed().as_secs_f64() * 1e6;

        // Accumulate unit results into the consumers' outputs (outputs
        // start zeroed, so OR doubles as the plain copy for single-unit
        // queries) and memoize fresh results for future submits.
        for (qi, out) in outs.iter_mut().enumerate() {
            out.reset(compiled.q_pages[qi] * page_bits, false);
        }
        for (ui, unit) in compiled.units.iter().enumerate() {
            if unit_failed[ui].is_some() {
                continue;
            }
            let (result, fresh_senses) = match &unit.work {
                UnitWork::Cached { result, .. } => (result, None),
                UnitWork::Execute { senses, .. } | UnitWork::Controller { senses, .. } => (
                    unit_outs[ui].as_ref().expect("executable units own an output buffer"),
                    Some(*senses),
                ),
            };
            for &qi in &unit.consumers {
                outs[qi].or_assign(result);
            }
            if let Some(senses) = fresh_senses {
                let mut cache = self.session.cache();
                if cache.enabled() {
                    cache.insert(unit.key.clone(), result.clone(), senses);
                }
            }
        }
        for (qi, out) in outs.iter_mut().enumerate() {
            out.resize(compiled.q_bits[qi], false);
        }
        // A failed query must not look like an all-zeros answer: its
        // output buffer is emptied instead.
        for f in &failures {
            outs[f.query].reset(0, false);
        }
        Ok((stats, failures))
    }

    /// Senses a controller evaluation costs: every operand page is read
    /// once, at its real page-read price (1 sense for SLC/ESP pages, 2–4
    /// for MLC/TLC logical pages).
    fn controller_senses(&self, ids: &[OperandId]) -> Result<u64, FcError> {
        let mut senses = 0u64;
        for &id in ids {
            let rec = self.record(id)?;
            for &lpn in &rec.lpns {
                let meta = self.ssd.page_meta(lpn).expect("written operands carry metadata");
                let mode = meta.scheme.cell_mode();
                senses += if mode.bits_per_cell() > 1 {
                    fc_nand::mlsense::senses_for_page(mode, meta.ml_page as usize) as u64
                } else {
                    1
                };
            }
        }
        Ok(senses)
    }

    /// Plan A: one unit per unique query, compiled exactly as a serial
    /// `fc_read` would compile it.
    fn whole_query_units(
        &self,
        uniques: &[UniqueQuery],
        q_pages: &[usize],
    ) -> Result<Vec<Unit>, FcError> {
        uniques
            .iter()
            .map(|uq| {
                Ok(Unit {
                    nnf: uq.nnf.clone(),
                    canon: uq.canon.clone(),
                    ids: uq.nnf.operands().into_iter().collect(),
                    pages: q_pages[uq.consumers[0]],
                    consumers: uq.consumers.clone(),
                    shared: false,
                })
            })
            .collect()
    }

    /// Plan B: top-level OR terms recurring across unique queries become
    /// their own single plan units (sensed once, OR-merged into every
    /// consumer by the controller); each query keeps a residual unit for
    /// its unshared terms. Returns `None` when no term is shared.
    fn shared_term_units(
        &self,
        uniques: &[UniqueQuery],
        q_pages: &[usize],
        plan_a: &[Unit],
    ) -> Option<Vec<Unit>> {
        // Count, per canonical term, the unique queries containing it.
        let mut term_index: HashMap<Nnf, usize> = HashMap::new();
        let mut terms: Vec<(Nnf, Nnf, Vec<usize>)> = Vec::new(); // (rep, canon, uniques)
        for (u, uq) in uniques.iter().enumerate() {
            let Nnf::Or(children) = &uq.nnf else { continue };
            let mut local: HashSet<Nnf> = HashSet::new();
            for child in children {
                let key = canonicalize(child);
                if !local.insert(key.clone()) {
                    continue;
                }
                match term_index.get(&key) {
                    Some(&t) => terms[t].2.push(u),
                    None => {
                        term_index.insert(key.clone(), terms.len());
                        terms.push((child.clone(), key, vec![u]));
                    }
                }
            }
        }
        let shared: Vec<&(Nnf, Nnf, Vec<usize>)> =
            terms.iter().filter(|(_, _, us)| us.len() >= 2).collect();
        if shared.is_empty() {
            return None;
        }
        let shared_keys: HashSet<&Nnf> = shared.iter().map(|(_, canon, _)| canon).collect();

        let mut units = Vec::new();
        for (rep, canon, uqs) in &shared {
            let mut consumers: Vec<QueryId> = Vec::new();
            for &u in uqs {
                consumers.extend(&uniques[u].consumers);
            }
            consumers.sort_unstable();
            consumers.dedup();
            units.push(Unit {
                nnf: rep.clone(),
                canon: canon.clone(),
                ids: rep.operands().into_iter().collect(),
                pages: q_pages[consumers[0]],
                consumers,
                shared: true,
            });
        }
        for (u, uq) in uniques.iter().enumerate() {
            let Nnf::Or(children) = &uq.nnf else {
                units.push(Unit {
                    nnf: plan_a[u].nnf.clone(),
                    canon: plan_a[u].canon.clone(),
                    ids: plan_a[u].ids.clone(),
                    pages: plan_a[u].pages,
                    consumers: uq.consumers.clone(),
                    shared: false,
                });
                continue;
            };
            // Residual: this query's unshared terms, canonically deduped.
            let mut local: HashSet<Nnf> = HashSet::new();
            let residual: Vec<Nnf> = children
                .iter()
                .filter(|c| {
                    let key = canonicalize(c);
                    !shared_keys.contains(&key) && local.insert(key)
                })
                .cloned()
                .collect();
            if residual.is_empty() {
                continue;
            }
            let nnf = if residual.len() == 1 {
                residual.into_iter().next().expect("non-empty")
            } else {
                Nnf::Or(residual)
            };
            units.push(Unit {
                canon: canonicalize(&nnf),
                ids: nnf.operands().into_iter().collect(),
                pages: q_pages[uq.consumers[0]],
                consumers: uq.consumers.clone(),
                shared: false,
                nnf,
            });
        }
        Some(units)
    }

    /// Total senses a plan would execute, projected from stripe 0 (stripe
    /// structure is identical across slots: placement groups fill each
    /// slot the same way).
    fn estimate_senses(&self, units: &[Unit], caps: PlannerCaps) -> Result<u64, FcError> {
        let mut total = 0u64;
        for unit in units {
            let plan = self.stripe_plan(&unit.nnf, &unit.ids, 0, caps)?;
            total += plan.sense_count() as u64 * unit.pages as u64;
        }
        Ok(total)
    }

    /// Builds one stripe's placement from the FTL and compiles the unit
    /// into a cross-die execution plan: a single program when every
    /// operand shares a plane, per-plane programs plus a controller merge
    /// when the unit spans dies.
    fn stripe_plan(
        &self,
        nnf: &Nnf,
        ids: &[OperandId],
        slot: usize,
        caps: PlannerCaps,
    ) -> Result<ExecPlan, FcError> {
        let map = self.stripe_map(ids, slot)?;
        crossdie::compile_spanning(nnf, &|id| self.operand_plane(id, slot), &mut |sub| {
            planner::compile(sub, &map, caps)
        })
        .map_err(FcError::Plan)
    }
}

impl FlashCosmosDevice {
    /// Executes a batch of queries in one jointly planned device pass and
    /// returns per-query result vectors plus [`BatchStats`]. Runs under
    /// the shared device lock — concurrent submitters interleave on the
    /// per-die chip mutexes.
    ///
    /// # Errors
    ///
    /// Fails like [`FlashCosmosDevice::fc_read`] would on the offending
    /// query: unknown operands, operand size mismatches *within* a query,
    /// planner rejections, or chip errors. Queries of different vector
    /// lengths may share a batch.
    ///
    /// A query that depends on a page the recovery layer lost (unreadable
    /// after read-retry *and* parity rebuild) does **not** fail the
    /// batch: it is reported in [`BatchResults::failures`] with an empty
    /// result vector, while every other query completes normally.
    pub fn submit(&self, batch: &QueryBatch) -> Result<BatchResults, FcError> {
        self.core().submit(batch)
    }

    /// Like [`FlashCosmosDevice::submit`], but writes each query's result
    /// into the caller's buffers (`outs[i]` receives query `i`, resized in
    /// place) — the zero-copy output mode for callers that recycle
    /// vectors across submissions.
    ///
    /// # Errors
    ///
    /// [`FcError::OutputSlots`] when `outs.len() != batch.len()`, plus
    /// everything [`FlashCosmosDevice::submit`] can return. Unlike
    /// [`FlashCosmosDevice::submit`], this path fails fast: the first
    /// query touching a lost page surfaces as [`FcError::QueryFailed`]
    /// (use [`FlashCosmosDevice::submit`] for partial results).
    pub fn submit_into(
        &self,
        batch: &QueryBatch,
        outs: &mut [BitVec],
    ) -> Result<BatchStats, FcError> {
        self.core().submit_into(batch, outs)
    }
}

/// Canonical form used as the dedup/sharing key. Key equality implies
/// semantic equality: AND/OR children are sorted and deduplicated
/// (commutativity + idempotence), XOR is commutative, and literal-literal
/// XOR folds its negations into one parity bit (`!a ^ b == a ^ !b`).
/// The *original* NNF is what gets compiled — the canonical form never
/// reaches the planner.
/// Controller-side evaluation of one stripe page over already-read
/// operand pages (`env` maps operand id → its logical page bits).
fn eval_nnf_page(nnf: &Nnf, env: &HashMap<OperandId, BitVec>) -> BitVec {
    match nnf {
        Nnf::Literal(l) => {
            let p = env.get(&l.id).expect("unit env holds every operand page");
            if l.negated {
                p.not()
            } else {
                p.clone()
            }
        }
        Nnf::And(cs) => {
            let mut acc = eval_nnf_page(&cs[0], env);
            for c in &cs[1..] {
                acc.and_assign(&eval_nnf_page(c, env));
            }
            acc
        }
        Nnf::Or(cs) => {
            let mut acc = eval_nnf_page(&cs[0], env);
            for c in &cs[1..] {
                acc.or_assign(&eval_nnf_page(c, env));
            }
            acc
        }
        Nnf::Xor(a, b) => {
            let mut acc = eval_nnf_page(a, env);
            acc.xor_assign(&eval_nnf_page(b, env));
            acc
        }
        Nnf::Threshold { k, children } => {
            let pages: Vec<BitVec> = children.iter().map(|c| eval_nnf_page(c, env)).collect();
            let refs: Vec<&BitVec> = pages.iter().collect();
            fc_nand::mlsense::threshold_ge_serial(&refs, *k)
        }
    }
}

pub(crate) fn canonicalize(nnf: &Nnf) -> Nnf {
    match nnf {
        Nnf::Literal(_) => nnf.clone(),
        Nnf::And(cs) => canonical_nary(cs, Nnf::And),
        Nnf::Or(cs) => canonical_nary(cs, Nnf::Or),
        Nnf::Xor(a, b) => {
            let ca = canonicalize(a);
            let cb = canonicalize(b);
            if let (Nnf::Literal(la), Nnf::Literal(lb)) = (&ca, &cb) {
                let parity = la.negated ^ lb.negated;
                let (lo, hi) = (la.id.min(lb.id), la.id.max(lb.id));
                return Nnf::Xor(
                    Box::new(Nnf::Literal(Literal { id: lo, negated: false })),
                    Box::new(Nnf::Literal(Literal { id: hi, negated: parity })),
                );
            }
            if nnf_cmp(&ca, &cb) == Ordering::Greater {
                Nnf::Xor(Box::new(cb), Box::new(ca))
            } else {
                Nnf::Xor(Box::new(ca), Box::new(cb))
            }
        }
        // Votes commute, so children sort — but they do NOT dedup: a
        // child appearing twice casts two votes (TH2(a,a,b) ≡ a, not
        // TH2(a,b)). Degenerate k never appears here (`to_nnf` collapses
        // k = 1 to OR and k = n to AND before batching).
        Nnf::Threshold { k, children } => {
            let mut canon: Vec<Nnf> = children.iter().map(canonicalize).collect();
            canon.sort_by(nnf_cmp);
            Nnf::Threshold { k: *k, children: canon }
        }
    }
}

fn canonical_nary(children: &[Nnf], build: fn(Vec<Nnf>) -> Nnf) -> Nnf {
    let mut canon: Vec<Nnf> = children.iter().map(canonicalize).collect();
    canon.sort_by(nnf_cmp);
    canon.dedup();
    if canon.len() == 1 {
        canon.pop().expect("non-empty")
    } else {
        build(canon)
    }
}

/// Total order over NNF trees (for canonical sorting); consistent with
/// equality.
fn nnf_cmp(a: &Nnf, b: &Nnf) -> Ordering {
    fn rank(n: &Nnf) -> u8 {
        match n {
            Nnf::Literal(_) => 0,
            Nnf::And(_) => 1,
            Nnf::Or(_) => 2,
            Nnf::Xor(_, _) => 3,
            Nnf::Threshold { .. } => 4,
        }
    }
    match (a, b) {
        (Nnf::Literal(x), Nnf::Literal(y)) => (x.id, x.negated).cmp(&(y.id, y.negated)),
        (Nnf::And(x), Nnf::And(y)) | (Nnf::Or(x), Nnf::Or(y)) => {
            for (cx, cy) in x.iter().zip(y.iter()) {
                let c = nnf_cmp(cx, cy);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Nnf::Xor(xa, xb), Nnf::Xor(ya, yb)) => nnf_cmp(xa, ya).then_with(|| nnf_cmp(xb, yb)),
        (Nnf::Threshold { k: ka, children: xa }, Nnf::Threshold { k: kb, children: xb }) => {
            ka.cmp(kb).then_with(|| {
                for (cx, cy) in xa.iter().zip(xb.iter()) {
                    let c = nnf_cmp(cx, cy);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                xa.len().cmp(&xb.len())
            })
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StoreHints;
    use fc_ssd::SsdConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device() -> FlashCosmosDevice {
        FlashCosmosDevice::new(SsdConfig::tiny_test())
    }

    fn vectors(n: usize, bits: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| BitVec::random(bits, &mut rng)).collect()
    }

    fn store_group(dev: &mut FlashCosmosDevice, vs: &[BitVec], group: &str) -> Vec<OperandId> {
        vs.iter()
            .enumerate()
            .map(|(i, v)| {
                dev.fc_write(&format!("{group}-{i}"), v, StoreHints::and_group(group)).unwrap().id
            })
            .collect()
    }

    #[test]
    fn canonical_key_identifies_reordered_queries() {
        let a = Expr::and_vars([0, 1, 2]).to_nnf();
        let b = Expr::and_vars([2, 0, 1]).to_nnf();
        assert_eq!(canonicalize(&a), canonicalize(&b));
        let c = Expr::and_vars([0, 1]).to_nnf();
        assert_ne!(canonicalize(&a), canonicalize(&c));
        // Duplicate terms collapse (idempotence)...
        let d = Expr::and_vars([0, 1, 2, 2, 0]).to_nnf();
        assert_eq!(canonicalize(&a), canonicalize(&d));
        // ...and XOR negation parity folds onto one side.
        let x = Expr::xor(Expr::not(Expr::var(3)), Expr::var(1)).to_nnf();
        let y = Expr::xor(Expr::var(1), Expr::not(Expr::var(3))).to_nnf();
        assert_eq!(canonicalize(&x), canonicalize(&y));
        let z = Expr::xor(Expr::var(1), Expr::var(3)).to_nnf();
        assert_ne!(canonicalize(&x), canonicalize(&z));
    }

    #[test]
    fn batch_of_duplicate_queries_senses_once() {
        let mut dev = device();
        let vs = vectors(5, 700, 1);
        let ids = store_group(&mut dev, &vs, "g");
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        batch.push(Expr::and_vars(ids.iter().rev().copied()));
        batch.push(Expr::and_vars(ids.iter().copied()));
        let BatchResults { results, stats, .. } = dev.submit(&batch).unwrap();
        let expect = vs.iter().skip(1).fold(vs[0].clone(), |a, v| a.and(v));
        for r in &results {
            assert_eq!(r, &expect);
        }
        // 3 stripes of 700 bits at 256-bit pages, one MWS each — once,
        // not three times.
        assert_eq!(stats.senses, 3);
        assert_eq!(stats.serial_senses, 9);
        assert_eq!(stats.senses_saved(), 6);
        assert_eq!(stats.deduped_queries, 2);
        // Amortized attribution: each query pays a third of each sense.
        let total: f64 = stats.per_query.iter().map(|q| q.senses).sum();
        assert!((total - stats.senses as f64).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_sizes_share_a_batch() {
        let mut dev = device();
        let long = vectors(2, 600, 2);
        let short = vectors(2, 100, 3);
        let la = store_group(&mut dev, &long, "long");
        let sa = store_group(&mut dev, &short, "short");
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(la.iter().copied()));
        batch.push(Expr::or_vars(sa.iter().copied()));
        let BatchResults { results, .. } = dev.submit(&batch).unwrap();
        assert_eq!(results[0], long[0].and(&long[1]));
        assert_eq!(results[0].len(), 600);
        assert_eq!(results[1], short[0].or(&short[1]));
        assert_eq!(results[1].len(), 100);
    }

    #[test]
    fn shared_or_term_is_sensed_once_when_cheaper() {
        // A 12-operand AND term (2 senses on 8-WL blocks) shared by two
        // queries, each OR-ing in its own extra operand. Serial: each
        // query senses the big term itself (2) plus its own literal (1)
        // → 6 total. Joint: big term once (2) + two residual literals
        // (1 + 1) → 4.
        let mut dev = device();
        let big = vectors(12, 256, 4);
        let extras = vectors(2, 256, 5);
        let big_ids = store_group(&mut dev, &big, "big");
        let e0 = store_group(&mut dev, &extras[..1], "extra0")[0];
        let e1 = store_group(&mut dev, &extras[1..], "extra1")[0];
        let term = Expr::and_vars(big_ids.iter().copied());
        let q0 = Expr::or(vec![term.clone(), Expr::var(e0)]);
        let q1 = Expr::or(vec![term.clone(), Expr::var(e1)]);
        let (serial0, s0) = dev.fc_read(&q0).unwrap();
        let (serial1, s1) = dev.fc_read(&q1).unwrap();
        let mut batch = QueryBatch::new();
        batch.push(q0);
        batch.push(q1);
        let BatchResults { results, stats, .. } = dev.submit(&batch).unwrap();
        assert_eq!(results[0], serial0);
        assert_eq!(results[1], serial1);
        assert_eq!(stats.serial_senses, s0.senses + s1.senses);
        assert_eq!(stats.shared_units, 1);
        assert!(
            stats.senses < stats.serial_senses,
            "shared term must save senses: {} vs {}",
            stats.senses,
            stats.serial_senses
        );
    }

    #[test]
    fn sharing_is_rejected_when_it_would_cost_extra_senses() {
        // Two 2-term OR queries over single-block operands (colocated on
        // one plane so the whole query fuses) share one term, but each
        // whole query is a single inter-block MWS (1 sense). Decomposing
        // would need 3 senses for 2 queries — the planner must keep the
        // 2-sense serial plan.
        let mut dev = device();
        let vs = vectors(3, 256, 6);
        let colocated = |dev: &mut FlashCosmosDevice, i: usize, g: &str| {
            dev.fc_write(&format!("{g}-0"), &vs[i], StoreHints::and_group(g).colocated("fuse"))
                .unwrap()
                .id
        };
        let a = colocated(&mut dev, 0, "ga");
        let b = colocated(&mut dev, 1, "gb");
        let c = colocated(&mut dev, 2, "gc");
        let mut batch = QueryBatch::new();
        batch.push(Expr::or_vars([a, b]));
        batch.push(Expr::or_vars([a, c]));
        let BatchResults { results, stats, .. } = dev.submit(&batch).unwrap();
        assert_eq!(results[0], vs[0].or(&vs[1]));
        assert_eq!(results[1], vs[0].or(&vs[2]));
        assert_eq!(stats.shared_units, 0, "extraction must not fire at a loss");
        assert_eq!(stats.senses, stats.serial_senses);
    }

    #[test]
    fn empty_batch_and_output_slot_mismatch() {
        let mut dev = device();
        let r = dev.submit(&QueryBatch::new()).unwrap();
        assert!(r.results.is_empty());
        assert_eq!(r.stats.senses, 0);
        let vs = vectors(1, 64, 7);
        let id = store_group(&mut dev, &vs, "g")[0];
        let mut batch = QueryBatch::new();
        batch.push(Expr::var(id));
        let mut outs: Vec<BitVec> = Vec::new();
        assert!(matches!(
            dev.submit_into(&batch, &mut outs).unwrap_err(),
            FcError::OutputSlots { got: 0, expected: 1 }
        ));
    }

    #[test]
    fn submit_into_recycles_buffers() {
        let mut dev = device();
        let vs = vectors(2, 300, 8);
        let ids = store_group(&mut dev, &vs, "g");
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        let mut outs = vec![BitVec::ones(9999)];
        dev.submit_into(&batch, &mut outs).unwrap();
        assert_eq!(outs[0], vs[0].and(&vs[1]));
        // Second submission reuses the (now correctly sized) buffer.
        dev.submit_into(&batch, &mut outs).unwrap();
        assert_eq!(outs[0], vs[0].and(&vs[1]));
    }
}
