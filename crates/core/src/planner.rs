//! The MWS program compiler: lowers a normalized expression onto the
//! chip's command set (§6.1, §6.2, Fig. 16).
//!
//! ## Circuit-derived compilation rules
//!
//! The latch periphery imposes exactly these constraints (see
//! `fc_nand::latch`):
//!
//! 1. A normal sense AND-accumulates into the S-latch; one MWS command
//!    senses `OR` over its block-targets of (`AND` of each target's
//!    wordlines) — Eq. (1).
//! 2. An inverse sense *re-initializes* the S-latch (Fig. 4), so a
//!    program gets at most **one** inverse command and it must come
//!    first (the Fig. 16 ordering rule).
//! 3. The M3 transfer OR-accumulates into the C-latch; a clean copy
//!    needs a C-latch init in the same command.
//!
//! From these, two composition strategies:
//!
//! * **S-strategy (AND of groups)** — one optional leading inverse
//!   command computes the AND of all *complement-flavored* groups (each
//!   group one block-target; De Morgan turns the sensed `OR` into the
//!   required `AND` under the inversion); subsequent normal commands
//!   AND-accumulate the positive groups; the final command carries
//!   `init_c + transfer`.
//! * **C-strategy (OR of children)** — each child compiles to its own
//!   S-strategy sub-sequence ending in a transfer; the C-latch
//!   OR-accumulates across children. This also lets Flash-Cosmos OR more
//!   blocks than the inter-block power cap allows, at one extra command
//!   per chunk.
//!
//! Literal polarity folds the §6.1 inverse-storage trick in: a literal is
//! *raw-positive* when `negated == stored_inverted` (the raw page equals
//! the literal's value), *raw-complement* otherwise.

use std::collections::HashMap;

use fc_nand::calib::timing;
use fc_nand::command::{Command, IscmFlags, MwsTarget};
use fc_nand::geometry::{BlockAddr, WlAddr};
use fc_nand::sense;
use serde::{Deserialize, Serialize};

use crate::expr::{flatten_and, flatten_or, Literal, Nnf, OperandId};

/// Where one operand's page lives on the plane, and how it was stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// Wordline holding the operand's page.
    pub wl: WlAddr,
    /// Whether the *inverse* of the operand was stored (§6.1).
    pub inverted: bool,
}

/// Operand-to-wordline mapping for one plane.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementMap {
    inner: HashMap<OperandId, Placement>,
}

impl PlacementMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an operand's placement.
    pub fn insert(&mut self, id: OperandId, wl: WlAddr, inverted: bool) {
        self.inner.insert(id, Placement { wl, inverted });
    }

    /// Looks up an operand.
    pub fn get(&self, id: OperandId) -> Option<Placement> {
        self.inner.get(&id).copied()
    }

    /// Number of placed operands.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// Chip capabilities the planner must respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannerCaps {
    /// Power cap on blocks per MWS command (Table 1: 4).
    pub max_inter_blocks: usize,
    /// Wordlines per block (string length; Table 1: 48).
    pub wls_per_block: usize,
}

impl Default for PlannerCaps {
    fn default() -> Self {
        Self { max_inter_blocks: timing::MAX_INTER_BLOCKS, wls_per_block: 48 }
    }
}

impl PlannerCaps {
    /// The caps of a concrete SSD configuration — the single source the
    /// advisor, batch compiler and planner all plan against.
    pub fn for_config(config: &fc_ssd::SsdConfig) -> Self {
        Self { max_inter_blocks: config.max_inter_blocks, wls_per_block: config.wls_per_block }
    }
}

/// Planner failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// An operand has no placement on this plane.
    NoPlacement(OperandId),
    /// The expression references wordlines on different planes (a latch
    /// bank is per-plane).
    PlaneMismatch,
    /// One MWS command would need two targets in the same block (a block
    /// is activated once per sense).
    BlockConflict(BlockAddr),
    /// A command would activate more blocks than the power cap allows.
    PowerCapExceeded {
        /// Blocks the command needs.
        needed: usize,
        /// Configured cap.
        cap: usize,
    },
    /// The expression shape cannot be lowered with the circuit's latch
    /// rules and the current data layout. The payload explains which rule
    /// failed; re-storing operands inverted or regrouping usually fixes it.
    Unplannable(String),
    /// XOR is supported only between two literals (the chip XOR logic
    /// combines the two latches once).
    UnsupportedXor,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoPlacement(id) => write!(f, "operand v{id} has no placement"),
            PlanError::PlaneMismatch => write!(f, "operands span multiple planes"),
            PlanError::BlockConflict(b) => {
                write!(f, "two targets in the same block {b} within one MWS command")
            }
            PlanError::PowerCapExceeded { needed, cap } => {
                write!(f, "command needs {needed} blocks, power cap is {cap}")
            }
            PlanError::Unplannable(msg) => write!(f, "expression cannot be lowered: {msg}"),
            PlanError::UnsupportedXor => {
                write!(f, "XOR is only supported between two literals")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A compiled MWS program for one plane.
#[derive(Debug, Clone, PartialEq)]
pub struct MwsProgram {
    /// Chip commands, in order. The final data lands in the C-latch.
    pub commands: Vec<Command>,
    /// Whether the controller must complement the read-out page (the
    /// De Morgan fallback when the chip-side inverse could not be used).
    pub controller_not: bool,
    /// Plane the program runs on.
    pub plane: u32,
}

impl MwsProgram {
    /// Number of sensing operations (MWS commands) in the program — the
    /// paper's headline cost metric.
    pub fn sense_count(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, Command::Mws { .. } | Command::ThresholdMws { .. }))
            .count()
    }

    /// Estimated chip latency of the program, µs, using the Fig. 12/13
    /// latency model on the Table 1 base read latency.
    pub fn estimated_latency_us(&self) -> f64 {
        self.commands
            .iter()
            .map(|c| match c {
                Command::Mws { targets, .. } => {
                    let max_wls = targets.iter().map(MwsTarget::wl_count).max().unwrap_or(1);
                    sense::mws_latency_us(timing::T_R_SLC_US, max_wls, targets.len())
                }
                Command::ThresholdMws { target, .. } => {
                    sense::mws_latency_us(timing::T_R_SLC_US, target.wl_count(), 1)
                }
                _ => 0.0,
            })
            .sum()
    }
}

/// Compiles an NNF expression into an MWS program.
///
/// # Errors
///
/// Returns a [`PlanError`] when the expression cannot be lowered under
/// the latch rules, the power cap, or the current placement. The caller
/// can retry after re-storing operands (e.g. inverted, §6.1).
pub fn compile(
    nnf: &Nnf,
    placements: &PlacementMap,
    caps: PlannerCaps,
) -> Result<MwsProgram, PlanError> {
    // XOR programs have their own two-command + XorLatch shape.
    if let Nnf::Xor(a, b) = nnf {
        let mut planner = Planner { placements, caps, plane: None };
        return planner.compile_xor(a, b);
    }
    // Dynamic-sense lowering: a top-level threshold whose literals share
    // one block with uniform raw polarity is a single `ThresholdMws`.
    if let Nnf::Threshold { k, children } = nnf {
        let mut planner = Planner { placements, caps, plane: None };
        if let Some(p) = planner.try_compile_threshold(*k, children)? {
            return Ok(p);
        }
    }
    // Any threshold the dynamic sense cannot serve takes the exact
    // OR-of-combinations expansion through the latch strategies.
    let expanded;
    let nnf = if contains_threshold(nnf) {
        expanded = expand_thresholds(nnf)?;
        &expanded
    } else {
        nnf
    };
    let mut planner = Planner { placements, caps, plane: None };
    match planner.compile_and_strategy(nnf) {
        Ok(p) => Ok(p),
        Err(first_err) => {
            // De Morgan fallback: plan the complement and let the
            // controller invert the read-out page.
            let negated = negate_nnf(nnf);
            let mut retry = Planner { placements, caps, plane: None };
            match retry.compile_and_strategy(&negated) {
                Ok(mut p) => {
                    p.controller_not = !p.controller_not;
                    Ok(p)
                }
                Err(_) => Err(first_err),
            }
        }
    }
}

/// Complements an NNF (De Morgan).
pub fn negate_nnf(nnf: &Nnf) -> Nnf {
    match nnf {
        Nnf::Literal(l) => Nnf::Literal(Literal { id: l.id, negated: !l.negated }),
        Nnf::And(cs) => Nnf::Or(cs.iter().map(negate_nnf).collect()),
        Nnf::Or(cs) => Nnf::And(cs.iter().map(negate_nnf).collect()),
        Nnf::Xor(a, b) => Nnf::Xor(Box::new(negate_nnf(a)), Box::new(b.as_ref().clone())),
        // Fewer than k ones means at least n−k+1 zeros:
        // NOT THkₙ(c…) = TH(n−k+1)ₙ(!c…). The NNF invariant 1 < k < n is
        // preserved because k ↦ n−k+1 maps (1, n) onto itself.
        Nnf::Threshold { k, children } => Nnf::Threshold {
            k: children.len() - *k + 1,
            children: children.iter().map(negate_nnf).collect(),
        },
    }
}

/// Whether any threshold node remains in the tree.
fn contains_threshold(nnf: &Nnf) -> bool {
    match nnf {
        Nnf::Literal(_) => false,
        Nnf::And(cs) | Nnf::Or(cs) => cs.iter().any(contains_threshold),
        Nnf::Xor(a, b) => contains_threshold(a) || contains_threshold(b),
        Nnf::Threshold { .. } => true,
    }
}

/// Cap on the number of AND terms one threshold may expand into,
/// mirroring `ops::at_least_k_of`.
const MAX_THRESHOLD_COMBOS: usize = 10_000;

/// Rewrites every threshold node into its exact `OR` of `C(n, k)`
/// size-`k` `AND` combinations so the latch strategies can lower it.
///
/// This is the fallback when the dynamic sense does not apply (mixed
/// raw polarity, operands spread over blocks or planes, nested votes,
/// repeated wordlines): it is exact — never silently approximate — but
/// costs combinatorially more senses, which is precisely the gap the
/// `ThresholdMws` primitive closes.
pub(crate) fn expand_thresholds(nnf: &Nnf) -> Result<Nnf, PlanError> {
    Ok(match nnf {
        Nnf::Literal(l) => Nnf::Literal(*l),
        Nnf::And(cs) => {
            flatten_and(cs.iter().map(expand_thresholds).collect::<Result<Vec<_>, _>>()?)
        }
        Nnf::Or(cs) => flatten_or(cs.iter().map(expand_thresholds).collect::<Result<Vec<_>, _>>()?),
        Nnf::Xor(a, b) => {
            Nnf::Xor(Box::new(expand_thresholds(a)?), Box::new(expand_thresholds(b)?))
        }
        Nnf::Threshold { k, children } => {
            let children: Vec<Nnf> =
                children.iter().map(expand_thresholds).collect::<Result<Vec<_>, _>>()?;
            let n = children.len();
            if binomial(n, *k) > MAX_THRESHOLD_COMBOS {
                return Err(PlanError::Unplannable(format!(
                    "threshold C({n}, {k}) expansion exceeds {MAX_THRESHOLD_COMBOS} terms; \
                     co-locate the operands in one block so the dynamic sense applies"
                )));
            }
            let disjuncts: Vec<Nnf> = index_combinations(n, *k)
                .into_iter()
                .map(|combo| flatten_and(combo.into_iter().map(|i| children[i].clone()).collect()))
                .collect();
            flatten_or(disjuncts)
        }
    })
}

/// `C(n, k)`, saturating far above [`MAX_THRESHOLD_COMBOS`].
pub(crate) fn binomial(n: usize, k: usize) -> usize {
    let k = k.min(n - k);
    let mut c: usize = 1;
    for i in 0..k {
        // Exact at each step: the running product of i+1 consecutive
        // binomial factors is divisible by (i + 1).
        c = c.saturating_mul(n - i) / (i + 1);
        if c > 1_000_000 {
            return usize::MAX;
        }
    }
    c
}

/// All size-`k` index subsets of `0..n`, lexicographic.
fn index_combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    fn rec(start: usize, n: usize, k: usize, stack: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if stack.len() == k {
            out.push(stack.clone());
            return;
        }
        for i in start..n {
            if n - i < k - stack.len() {
                break;
            }
            stack.push(i);
            rec(i + 1, n, k, stack, out);
            stack.pop();
        }
    }
    let mut out = Vec::new();
    rec(0, n, k, &mut Vec::with_capacity(k), &mut out);
    out
}

/// A literal resolved against the data layout.
#[derive(Debug, Clone, Copy)]
struct RawLiteral {
    wl: WlAddr,
    /// True when the raw page equals the literal's value.
    raw_positive: bool,
}

struct Planner<'a> {
    placements: &'a PlacementMap,
    caps: PlannerCaps,
    plane: Option<u32>,
}

impl<'a> Planner<'a> {
    fn resolve(&mut self, lit: Literal) -> Result<RawLiteral, PlanError> {
        let p = self.placements.get(lit.id).ok_or(PlanError::NoPlacement(lit.id))?;
        match self.plane {
            None => self.plane = Some(p.wl.plane),
            Some(pl) if pl != p.wl.plane => return Err(PlanError::PlaneMismatch),
            _ => {}
        }
        Ok(RawLiteral { wl: p.wl, raw_positive: lit.negated == p.inverted })
    }

    fn plane(&self) -> u32 {
        self.plane.unwrap_or(0)
    }

    /// S-strategy: `nnf` is an AND of groups (or a single group).
    fn compile_and_strategy(&mut self, nnf: &Nnf) -> Result<MwsProgram, PlanError> {
        let groups: Vec<&Nnf> = match nnf {
            Nnf::And(cs) => cs.iter().collect(),
            other => vec![other],
        };

        // Partition: complement-flavored groups feed the single leading
        // inverse command; positive groups become normal commands.
        // Positive literals sharing a block merge into one intra-block
        // MWS target (the whole point of MWS).
        let mut inverse_targets: Vec<MwsTarget> = Vec::new();
        let mut normal_commands: Vec<Vec<MwsTarget>> = Vec::new();
        let mut positive_by_block: Vec<(BlockAddr, Vec<u32>)> = Vec::new();

        for group in &groups {
            match group {
                Nnf::Literal(lit) => {
                    let r = self.resolve(*lit)?;
                    if r.raw_positive {
                        let block = r.wl.block();
                        match positive_by_block.iter_mut().find(|(b, _)| *b == block) {
                            Some((_, wls)) => wls.push(r.wl.wl),
                            None => positive_by_block.push((block, vec![r.wl.wl])),
                        }
                    } else {
                        let target = MwsTarget::new(r.wl.block(), &[r.wl.wl]);
                        push_distinct(&mut inverse_targets, target)?;
                    }
                }
                Nnf::Or(children) => match self.classify_or(children)? {
                    OrLowering::InverseTargets(ts) => {
                        for t in ts {
                            push_distinct(&mut inverse_targets, t)?;
                        }
                    }
                    OrLowering::SingleCommand(ts) => normal_commands.push(ts),
                    OrLowering::NeedsCAccumulation => {
                        if groups.len() == 1 {
                            return self.compile_or_strategy(children);
                        }
                        return Err(PlanError::Unplannable(
                            "an OR group inside a conjunction needs C-latch accumulation, \
                                 which cannot combine with AND accumulation; store the group's \
                                 operands inverted in one block instead"
                                .to_string(),
                        ));
                    }
                },
                Nnf::And(_) => unreachable!("NNF flattening removes nested ANDs"),
                Nnf::Xor(_, _) => {
                    return Err(PlanError::Unplannable(
                        "XOR may only appear at the top of an expression".to_string(),
                    ))
                }
                // `compile` expands thresholds before strategy lowering;
                // reject rather than answer wrong if one slips through a
                // future call path.
                Nnf::Threshold { .. } => {
                    return Err(PlanError::Unplannable(
                        "a threshold group must be expanded or dynamically sensed \
                         before strategy lowering"
                            .to_string(),
                    ))
                }
            }
        }

        for (block, wls) in positive_by_block {
            normal_commands.push(vec![MwsTarget::new(block, &wls)]);
        }

        if inverse_targets.len() > self.caps.max_inter_blocks {
            return Err(PlanError::PowerCapExceeded {
                needed: inverse_targets.len(),
                cap: self.caps.max_inter_blocks,
            });
        }

        // Assemble: inverse first (Fig. 16 ordering), then accumulation.
        let mut commands = Vec::new();
        if !inverse_targets.is_empty() {
            commands.push(Command::Mws {
                flags: IscmFlags { inverse: true, init_s: true, init_c: true, transfer: false },
                targets: inverse_targets,
            });
        }
        let n_normal = normal_commands.len();
        for (i, targets) in normal_commands.into_iter().enumerate() {
            for t in &targets {
                if t.wl_count() > self.caps.wls_per_block {
                    return Err(PlanError::Unplannable(format!(
                        "target asks for {} wordlines in one block of {}",
                        t.wl_count(),
                        self.caps.wls_per_block
                    )));
                }
            }
            if targets.len() > self.caps.max_inter_blocks {
                return Err(PlanError::PowerCapExceeded {
                    needed: targets.len(),
                    cap: self.caps.max_inter_blocks,
                });
            }
            let first = commands.is_empty();
            let last = i + 1 == n_normal;
            commands.push(Command::Mws {
                flags: IscmFlags { inverse: false, init_s: first, init_c: last, transfer: last },
                targets,
            });
        }
        // All-complement expression: the inverse command is also the last
        // one — give it the publish flags.
        if n_normal == 0 {
            match commands.last_mut() {
                Some(Command::Mws { flags, .. }) => {
                    flags.transfer = true;
                }
                _ => {
                    return Err(PlanError::Unplannable("empty expression".to_string()));
                }
            }
        }
        Ok(MwsProgram { commands, controller_not: false, plane: self.plane() })
    }

    /// C-strategy for a top-level OR whose children do not fit one
    /// command: each child transfers into the OR-accumulating C-latch.
    /// Consecutive children that each reduce to a raw-positive block
    /// target are merged into shared multi-target commands up to the
    /// power cap — ORing N blocks costs `ceil(N / cap)` senses.
    fn compile_or_strategy(&mut self, children: &[Nnf]) -> Result<MwsProgram, PlanError> {
        let mut commands: Vec<Command> = Vec::new();
        let mut pending: Vec<MwsTarget> = Vec::new();
        for child in children {
            if let Some(target) = self.as_positive_target(child)? {
                let conflict = pending.iter().any(|t| t.block == target.block);
                if conflict || pending.len() == self.caps.max_inter_blocks {
                    flush_or_chunk(&mut commands, &mut pending);
                }
                if pending.iter().any(|t| t.block == target.block) {
                    return Err(PlanError::BlockConflict(target.block));
                }
                pending.push(target);
                continue;
            }
            flush_or_chunk(&mut commands, &mut pending);
            let sub = {
                let mut sub_planner =
                    Planner { placements: self.placements, caps: self.caps, plane: self.plane };
                let p = sub_planner.compile_and_strategy(child)?;
                self.plane = sub_planner.plane;
                p
            };
            if sub.controller_not {
                return Err(PlanError::Unplannable(
                    "an OR child required a controller-side NOT, which cannot feed the \
                     C-latch accumulation; store its operands inverted instead"
                        .to_string(),
                ));
            }
            // Re-flag the sub-program: keep C across children (init_c only
            // on the very first command of the whole program); every child
            // publishes with a transfer on its last command.
            let first_of_program = commands.is_empty();
            let n = sub.commands.len();
            for (i, mut cmd) in sub.commands.into_iter().enumerate() {
                if let Command::Mws { flags, .. } = &mut cmd {
                    flags.init_c = first_of_program && i == 0;
                    flags.transfer = i + 1 == n;
                }
                commands.push(cmd);
            }
        }
        flush_or_chunk(&mut commands, &mut pending);
        Ok(MwsProgram { commands, controller_not: false, plane: self.plane() })
    }

    /// A child expressible as one raw-positive block target (literal or
    /// one-block AND of positives).
    fn as_positive_target(&mut self, child: &Nnf) -> Result<Option<MwsTarget>, PlanError> {
        match child {
            Nnf::Literal(l) => {
                let r = self.resolve(*l)?;
                Ok(r.raw_positive.then(|| MwsTarget::new(r.wl.block(), &[r.wl.wl])))
            }
            Nnf::And(lits) => self.try_one_block_positive_and(lits),
            _ => Ok(None),
        }
    }

    /// How an OR group can be lowered.
    fn classify_or(&mut self, children: &[Nnf]) -> Result<OrLowering, PlanError> {
        // Case A — the §6.1 inverse-storage shape: every child is a
        // raw-complement literal and all share one block. One inverse
        // block-target computes the OR.
        let mut complement_wls: Vec<WlAddr> = Vec::new();
        let mut all_complement_one_block = true;
        for c in children {
            match c {
                Nnf::Literal(l) => {
                    let r = self.resolve(*l)?;
                    if r.raw_positive {
                        all_complement_one_block = false;
                        break;
                    }
                    complement_wls.push(r.wl);
                }
                _ => {
                    all_complement_one_block = false;
                    break;
                }
            }
        }
        if all_complement_one_block && !complement_wls.is_empty() {
            let block = complement_wls[0].block();
            if complement_wls.iter().all(|w| w.block() == block) {
                let wls: Vec<u32> = complement_wls.iter().map(|w| w.wl).collect();
                return Ok(OrLowering::InverseTargets(vec![MwsTarget::new(block, &wls)]));
            }
            // All-complement but spread over blocks: an inverse command
            // with multiple targets computes an AND of per-block ORs, not
            // the OR of all complements, so this shape cannot use the
            // inverse path — fall through to the other strategies.
        }

        // Case B — Eq. (1): every child maps to one raw-positive block
        // target; one normal command computes OR across targets.
        let mut targets: Vec<MwsTarget> = Vec::new();
        let mut single_command = true;
        for c in children {
            let target = match c {
                Nnf::Literal(l) => {
                    let r = self.resolve(*l)?;
                    if !r.raw_positive {
                        single_command = false;
                        break;
                    }
                    MwsTarget::new(r.wl.block(), &[r.wl.wl])
                }
                Nnf::And(lits) => match self.try_one_block_positive_and(lits)? {
                    Some(t) => t,
                    None => {
                        single_command = false;
                        break;
                    }
                },
                _ => {
                    single_command = false;
                    break;
                }
            };
            if targets.iter().any(|t| t.block == target.block) {
                single_command = false;
                break;
            }
            targets.push(target);
        }
        if single_command {
            if targets.len() > self.caps.max_inter_blocks {
                return Ok(OrLowering::NeedsCAccumulation);
            }
            return Ok(OrLowering::SingleCommand(targets));
        }
        Ok(OrLowering::NeedsCAccumulation)
    }

    /// An AND of literals expressible as a single raw-positive block
    /// target.
    fn try_one_block_positive_and(&mut self, lits: &[Nnf]) -> Result<Option<MwsTarget>, PlanError> {
        let mut wls: Vec<u32> = Vec::new();
        let mut block: Option<BlockAddr> = None;
        for l in lits {
            let Nnf::Literal(lit) = l else { return Ok(None) };
            let r = self.resolve(*lit)?;
            if !r.raw_positive {
                return Ok(None);
            }
            match block {
                None => block = Some(r.wl.block()),
                Some(b) if b != r.wl.block() => return Ok(None),
                _ => {}
            }
            wls.push(r.wl.wl);
        }
        Ok(block.map(|b| MwsTarget::new(b, &wls)))
    }

    /// Single-sense threshold lowering (`mlsense`): when every vote is a
    /// literal on a *distinct* wordline of **one** block and all votes
    /// share the same raw polarity, one dynamic-reference `ThresholdMws`
    /// answers the whole vote:
    ///
    /// * uniform raw-complement (`raw_positive == false`): a true vote is
    ///   a programmed cell, so "≥ k of n true" is exactly the chip's
    ///   "≥ k activated cells programmed" report — direct `k`.
    /// * uniform raw-positive: a true vote is an *erased* cell;
    ///   "≥ k erased" = NOT("≥ n−k+1 programmed"), so the chip senses at
    ///   `k' = n−k+1` and the controller complements the page.
    ///
    /// Returns `Ok(None)` when the shape does not fit (mixed polarity,
    /// multiple blocks, nested votes, repeated wordlines — a repeat would
    /// silently collapse in the activation bitmap and lose a vote); the
    /// caller then falls back to the exact OR-of-combinations expansion.
    fn try_compile_threshold(
        &mut self,
        k: usize,
        children: &[Nnf],
    ) -> Result<Option<MwsProgram>, PlanError> {
        let n = children.len();
        let mut raws: Vec<RawLiteral> = Vec::with_capacity(n);
        for c in children {
            let Nnf::Literal(lit) = c else { return Ok(None) };
            raws.push(self.resolve(*lit)?);
        }
        let raw_positive = raws[0].raw_positive;
        if raws.iter().any(|r| r.raw_positive != raw_positive) {
            return Ok(None);
        }
        let block = raws[0].wl.block();
        if raws.iter().any(|r| r.wl.block() != block) {
            return Ok(None);
        }
        let mut wls: Vec<u32> = raws.iter().map(|r| r.wl.wl).collect();
        wls.sort_unstable();
        if wls.windows(2).any(|w| w[0] == w[1]) {
            return Ok(None);
        }
        if n > self.caps.wls_per_block {
            return Ok(None);
        }
        let (chip_k, controller_not) = if raw_positive { (n - k + 1, true) } else { (k, false) };
        let target = MwsTarget::new(block, &wls);
        let commands = vec![Command::ThresholdMws { target, k: chip_k }];
        Ok(Some(MwsProgram { commands, controller_not, plane: self.plane() }))
    }

    /// XOR program: C ← value(a); S ← value(b); C ← S XOR C.
    fn compile_xor(&mut self, a: &Nnf, b: &Nnf) -> Result<MwsProgram, PlanError> {
        let (Nnf::Literal(la), Nnf::Literal(lb)) = (a, b) else {
            return Err(PlanError::UnsupportedXor);
        };
        let ra = self.resolve(*la)?;
        let rb = self.resolve(*lb)?;
        let commands = vec![
            Command::Mws {
                flags: IscmFlags {
                    inverse: !ra.raw_positive,
                    init_s: true,
                    init_c: true,
                    transfer: true,
                },
                targets: vec![MwsTarget::new(ra.wl.block(), &[ra.wl.wl])],
            },
            Command::Mws {
                flags: IscmFlags {
                    inverse: !rb.raw_positive,
                    init_s: true,
                    init_c: false,
                    transfer: false,
                },
                targets: vec![MwsTarget::new(rb.wl.block(), &[rb.wl.wl])],
            },
            Command::XorLatch { plane: self.plane() },
        ];
        Ok(MwsProgram { commands, controller_not: false, plane: self.plane() })
    }
}

/// Emits one OR-chunk command (multi-target, S-init, transfer) from the
/// pending target batch.
fn flush_or_chunk(commands: &mut Vec<Command>, pending: &mut Vec<MwsTarget>) {
    if pending.is_empty() {
        return;
    }
    let first = commands.is_empty();
    commands.push(Command::Mws {
        flags: IscmFlags { inverse: false, init_s: true, init_c: first, transfer: true },
        targets: std::mem::take(pending),
    });
}

/// How an OR group lowers onto commands.
enum OrLowering {
    /// Targets to add to the leading inverse command.
    InverseTargets(Vec<MwsTarget>),
    /// One normal multi-target command (Eq. 1).
    SingleCommand(Vec<MwsTarget>),
    /// Needs the C-accumulation strategy (only legal at top level).
    NeedsCAccumulation,
}

/// Adds `target` to the inverse-command target list, rejecting duplicate
/// blocks (a block is activated once per sense).
fn push_distinct(targets: &mut Vec<MwsTarget>, target: MwsTarget) -> Result<(), PlanError> {
    if targets.iter().any(|t| t.block == target.block) {
        return Err(PlanError::BlockConflict(target.block));
    }
    targets.push(target);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn caps() -> PlannerCaps {
        PlannerCaps { max_inter_blocks: 4, wls_per_block: 8 }
    }

    /// Places operands 0..n sequentially in `block`, not inverted.
    fn straight_placement(n: usize, block: u32) -> PlacementMap {
        let mut m = PlacementMap::new();
        for i in 0..n {
            m.insert(i, WlAddr::new(0, block, i as u32), false);
        }
        m
    }

    #[test]
    fn and_of_colocated_operands_is_one_command() {
        let m = straight_placement(5, 0);
        let e = Expr::and_vars(0..5);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
        assert!(!p.controller_not);
        match &p.commands[0] {
            Command::Mws { flags, targets } => {
                assert_eq!(targets.len(), 1);
                assert_eq!(targets[0].wl_count(), 5);
                assert!(flags.init_s && flags.init_c && flags.transfer && !flags.inverse);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_across_blocks_accumulates_in_s() {
        let mut m = PlacementMap::new();
        for i in 0..4 {
            m.insert(i, WlAddr::new(0, 0, i as u32), false);
        }
        for i in 4..8 {
            m.insert(i, WlAddr::new(0, 1, (i - 4) as u32), false);
        }
        let e = Expr::and_vars(0..8);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 2);
        // First command initializes S, last publishes to C.
        match (&p.commands[0], &p.commands[1]) {
            (Command::Mws { flags: f0, .. }, Command::Mws { flags: f1, .. }) => {
                assert!(f0.init_s && !f0.transfer);
                assert!(!f1.init_s && f1.init_c && f1.transfer);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn or_of_inverted_operands_is_one_inverse_command() {
        // §6.1: operands stored inverted in one block → OR via a single
        // intra-block inverse MWS.
        let mut m = PlacementMap::new();
        for i in 0..6 {
            m.insert(i, WlAddr::new(0, 2, i as u32), true);
        }
        let e = Expr::or_vars(0..6);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
        match &p.commands[0] {
            Command::Mws { flags, targets } => {
                assert!(flags.inverse && flags.transfer);
                assert_eq!(targets[0].wl_count(), 6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn or_across_blocks_is_inter_block_mws() {
        // Eq. (1): one command, multiple block targets.
        let mut m = PlacementMap::new();
        for i in 0..3 {
            m.insert(i, WlAddr::new(0, i as u32, 0), false);
        }
        let e = Expr::or_vars(0..3);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
        match &p.commands[0] {
            Command::Mws { flags, targets } => {
                assert!(!flags.inverse);
                assert_eq!(targets.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn kcs_shape_and_plus_or_in_one_command() {
        // (v0 & v1 & v2) | v3 with the AND group in block 0 and the
        // clique vector in block 1 — the paper's KCS observation.
        let mut m = straight_placement(3, 0);
        m.insert(3, WlAddr::new(0, 1, 0), false);
        let e = Expr::or(vec![Expr::and_vars(0..3), Expr::var(3)]);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
        match &p.commands[0] {
            Command::Mws { targets, .. } => {
                assert_eq!(targets.len(), 2);
                assert_eq!(targets[0].wl_count(), 3);
                assert_eq!(targets[1].wl_count(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fig16_shape_inverse_first_then_accumulation() {
        // {A1 + (B1·B2·B3·B4)} · (C1+C3) · (D2+D4), with C and D stored
        // inverted (Fig. 16).
        let mut m = PlacementMap::new();
        m.insert(0, WlAddr::new(0, 0, 0), false); // A1
        for i in 0..4 {
            m.insert(1 + i, WlAddr::new(0, 1, i as u32), false); // B1..B4
        }
        m.insert(5, WlAddr::new(0, 2, 0), true); // C1 (inverted)
        m.insert(6, WlAddr::new(0, 2, 2), true); // C3
        m.insert(7, WlAddr::new(0, 3, 1), true); // D2
        m.insert(8, WlAddr::new(0, 3, 3), true); // D4
        let e = Expr::and(vec![
            Expr::or(vec![Expr::var(0), Expr::and_vars(1..5)]),
            Expr::or_vars([5, 6]),
            Expr::or_vars([7, 8]),
        ]);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        // Two MWS commands, exactly as in Fig. 16.
        assert_eq!(p.sense_count(), 2);
        match &p.commands[0] {
            Command::Mws { flags, targets } => {
                assert!(flags.inverse, "inverse command must come first");
                assert!(!flags.transfer);
                assert_eq!(targets.len(), 2, "C-block and D-block targets");
                assert_eq!(targets[0].wl_count(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.commands[1] {
            Command::Mws { flags, targets } => {
                assert!(!flags.inverse && !flags.init_s);
                assert!(flags.init_c && flags.transfer);
                assert_eq!(targets.len(), 2, "A-block and B-block targets");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn not_of_operand_is_inverse_read() {
        let m = straight_placement(1, 0);
        let e = Expr::not(Expr::var(0));
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
        match &p.commands[0] {
            Command::Mws { flags, .. } => assert!(flags.inverse && flags.transfer),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nand_and_nor_compile_to_single_inverse_senses() {
        let m = straight_placement(4, 0);
        let nand = Expr::nand(vec![Expr::var(0), Expr::var(1), Expr::var(2)]);
        let p = compile(&nand.to_nnf(), &m, caps()).unwrap();
        // NAND = controller sees it as OR of complements; De Morgan
        // fallback plans AND of raws with chip inverse... either way a
        // single sense with no controller work or a single sense plus NOT.
        assert_eq!(p.sense_count(), 1);

        let mut m2 = PlacementMap::new();
        for i in 0..3 {
            m2.insert(i, WlAddr::new(0, i as u32, 0), false);
        }
        let nor = Expr::nor(vec![Expr::var(0), Expr::var(1), Expr::var(2)]);
        let p = compile(&nor.to_nnf(), &m2, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
    }

    #[test]
    fn or_beyond_power_cap_uses_c_accumulation() {
        // 6 operands in 6 different blocks, cap 4 → chunked transfers.
        let mut m = PlacementMap::new();
        for i in 0..6 {
            m.insert(i, WlAddr::new(0, i as u32, 0), false);
        }
        let e = Expr::or_vars(0..6);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 2, "6 blocks at cap 4 → 2 chunked commands");
        // Every command transfers (C accumulates the OR).
        for c in &p.commands {
            if let Command::Mws { flags, .. } = c {
                assert!(flags.transfer);
            }
        }
    }

    #[test]
    fn xor_of_two_literals() {
        let m = straight_placement(2, 0);
        let e = Expr::xor(Expr::var(0), Expr::var(1));
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 2);
        assert!(matches!(p.commands[2], Command::XorLatch { .. }));
        // XNOR rides the same shape via the inverse read (Eq. 2).
        let xnor = Expr::xnor(Expr::var(0), Expr::var(1));
        let p = compile(&xnor.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 2);
        match &p.commands[0] {
            Command::Mws { flags, .. } => assert!(flags.inverse),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn xor_of_non_literals_is_rejected() {
        let m = straight_placement(3, 0);
        let e = Expr::xor(Expr::and_vars(0..2), Expr::var(2));
        assert_eq!(compile(&e.to_nnf(), &m, caps()).unwrap_err(), PlanError::UnsupportedXor);
    }

    #[test]
    fn missing_placement_is_reported() {
        let m = straight_placement(1, 0);
        let e = Expr::and_vars(0..2);
        assert_eq!(compile(&e.to_nnf(), &m, caps()).unwrap_err(), PlanError::NoPlacement(1));
    }

    #[test]
    fn two_complement_literals_in_one_block_use_demorgan_fallback() {
        // !v0 & !v1 with both raw in block 0: the inverse command cannot
        // hold two same-block targets (a block is activated once per
        // sense), so the planner falls back to De Morgan — it senses
        // v0 | v1 via C-accumulation (two senses; same-block OR has no
        // single-sense form, which is exactly the §6.1 motivation for
        // storing such operands inverted) and complements in the
        // controller.
        let m = straight_placement(2, 0);
        let e = Expr::and(vec![Expr::not(Expr::var(0)), Expr::not(Expr::var(1))]);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert!(p.controller_not, "De Morgan fallback complements in the controller");
        assert_eq!(p.sense_count(), 2);
    }

    #[test]
    fn complement_literals_across_blocks_fold_into_one_inverse_command() {
        // !v0 & !v1 with raws in different blocks: one inverse command
        // with two targets — S = NOT(v0 | v1) = !v0 & !v1.
        let mut m = PlacementMap::new();
        m.insert(0, WlAddr::new(0, 0, 0), false);
        m.insert(1, WlAddr::new(0, 1, 0), false);
        let e = Expr::and(vec![Expr::not(Expr::var(0)), Expr::not(Expr::var(1))]);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
        match &p.commands[0] {
            Command::Mws { flags, targets } => {
                assert!(flags.inverse && flags.transfer);
                assert_eq!(targets.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plane_mismatch_is_rejected() {
        let mut m = PlacementMap::new();
        m.insert(0, WlAddr::new(0, 0, 0), false);
        m.insert(1, WlAddr::new(1, 0, 0), false);
        let e = Expr::and_vars(0..2);
        assert_eq!(compile(&e.to_nnf(), &m, caps()).unwrap_err(), PlanError::PlaneMismatch);
    }

    #[test]
    fn threshold_of_colocated_raw_positive_literals_is_one_dynamic_sense() {
        // Straight (non-inverted) storage: a true vote is an erased cell,
        // so the chip counts the complement — k' = n−k+1, controller NOT.
        let m = straight_placement(5, 0);
        let e = Expr::threshold_vars(3, 0..5);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
        assert!(p.controller_not);
        match &p.commands[0] {
            Command::ThresholdMws { target, k } => {
                assert_eq!(*k, 3, "k' = n − k + 1 = 5 − 3 + 1");
                assert_eq!(target.wl_count(), 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.estimated_latency_us() > 0.0);
    }

    #[test]
    fn threshold_of_inverted_storage_senses_direct_k() {
        // Operands stored inverted: a true vote is a programmed cell —
        // the chip's report is the answer as-is.
        let mut m = PlacementMap::new();
        for i in 0..7 {
            m.insert(i, WlAddr::new(0, 3, i as u32), true);
        }
        let e = Expr::threshold_vars(2, 0..7);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
        assert!(!p.controller_not);
        match &p.commands[0] {
            Command::ThresholdMws { target, k } => {
                assert_eq!(*k, 2);
                assert_eq!(target.wl_count(), 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn majority_lowers_through_threshold() {
        let m = straight_placement(7, 0);
        let e = Expr::majority_vars(0..7);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
        match &p.commands[0] {
            Command::ThresholdMws { k, .. } => assert_eq!(*k, 4, "7 − ⌈7/2⌉ + 1"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn threshold_wider_than_the_string_expands() {
        // 9 votes do not fit an 8-WL string: no single activation can
        // cover the vote, so the expansion takes over (C(9, 5) ANDs).
        let m = straight_placement(9, 0);
        let e = Expr::majority_vars(0..9);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert!(p.sense_count() > 1);
        assert!(!p.commands.iter().any(|c| matches!(c, Command::ThresholdMws { .. })));
    }

    #[test]
    fn negated_threshold_flips_k_and_stays_one_sense() {
        // NOT TH3₅(v…) = TH3₅(!v…); the negated literals over straight
        // storage are raw-complement → direct chip k, no controller NOT.
        let m = straight_placement(5, 0);
        let e = Expr::not(Expr::threshold_vars(3, 0..5));
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert_eq!(p.sense_count(), 1);
        assert!(!p.controller_not);
        match &p.commands[0] {
            Command::ThresholdMws { k, .. } => assert_eq!(*k, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn threshold_with_mixed_polarity_expands_exactly() {
        // Two operands stored inverted, three straight: no uniform raw
        // polarity → the planner must fall back to the OR-of-C(n,k)-ANDs
        // expansion rather than answer wrong. (Operands sit in distinct
        // blocks so the expansion's inverse commands stay conflict-free.)
        let mut m = PlacementMap::new();
        for i in 0..3 {
            m.insert(i, WlAddr::new(0, i as u32, 0), false);
        }
        m.insert(3, WlAddr::new(0, 3, 0), true);
        m.insert(4, WlAddr::new(0, 4, 0), true);
        let e = Expr::threshold_vars(4, 0..5);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert!(p.sense_count() > 1, "expansion costs more senses");
        assert!(!p.commands.iter().any(|c| matches!(c, Command::ThresholdMws { .. })));
    }

    #[test]
    fn threshold_spread_over_blocks_expands_exactly() {
        let mut m = PlacementMap::new();
        for i in 0..4 {
            m.insert(i, WlAddr::new(0, i as u32, 0), false);
        }
        let e = Expr::threshold_vars(3, 0..4);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert!(p.sense_count() > 1);
        assert!(!p.commands.iter().any(|c| matches!(c, Command::ThresholdMws { .. })));
    }

    #[test]
    fn threshold_with_repeated_wordline_keeps_vote_multiplicity() {
        // TH2(v0, v0, v1) ≡ v0: a repeated wordline would collapse in the
        // activation bitmap, so the dynamic sense must refuse and the
        // expansion (which keeps multiplicity) take over.
        let m = straight_placement(2, 0);
        let e = Expr::threshold(2, vec![Expr::var(0), Expr::var(0), Expr::var(1)]);
        let p = compile(&e.to_nnf(), &m, caps()).unwrap();
        assert!(!p.commands.iter().any(|c| matches!(c, Command::ThresholdMws { .. })));
    }

    #[test]
    fn oversized_threshold_expansion_is_rejected() {
        // C(20, 10) = 184,756 > 10,000 — and the operands span blocks so
        // the dynamic sense cannot serve it either.
        let mut m = PlacementMap::new();
        for i in 0..20 {
            m.insert(i, WlAddr::new(0, (i % 5) as u32, (i / 5) as u32), false);
        }
        let e = Expr::threshold_vars(10, 0..20);
        match compile(&e.to_nnf(), &m, caps()) {
            Err(PlanError::Unplannable(msg)) => assert!(msg.contains("expansion")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn estimated_latency_reflects_command_count() {
        let mut m = PlacementMap::new();
        for i in 0..8 {
            m.insert(i, WlAddr::new(0, (i / 4) as u32, (i % 4) as u32), false);
        }
        let one = compile(&Expr::and_vars(0..4).to_nnf(), &m, caps()).unwrap();
        let two = compile(&Expr::and_vars(0..8).to_nnf(), &m, caps()).unwrap();
        assert!(two.estimated_latency_us() > one.estimated_latency_us());
        assert!(one.estimated_latency_us() > 22.0);
    }
}
