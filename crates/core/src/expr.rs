//! Bulk bitwise expressions over named operands.
//!
//! Applications describe the computation they want (`fc_read` in §6.3
//! takes "the types of bitwise operations required") as an [`Expr`] —
//! AND/OR/NOT/XOR over operand vectors. The planner lowers a normalized
//! expression onto MWS commands; the same expression evaluates directly
//! on bit vectors for ground truth.

use std::collections::BTreeSet;
use std::fmt;

use fc_bits::BitVec;
use serde::{Deserialize, Serialize};

/// Identifies an operand vector (index into the caller's operand table).
pub type OperandId = usize;

/// A bulk bitwise expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// An operand vector.
    Operand(OperandId),
    /// Bitwise complement.
    Not(Box<Expr>),
    /// Bitwise AND over at least one sub-expression ([`Expr::and`]
    /// returns a single sub-expression unchanged, so constructor-built
    /// trees always hold two or more here).
    And(Vec<Expr>),
    /// Bitwise OR over at least one sub-expression (same contract as
    /// [`Expr::And`]: [`Expr::or`] collapses the one-child case).
    Or(Vec<Expr>),
    /// Bitwise XOR of exactly two sub-expressions (the chip's XOR logic
    /// is binary, §6.1).
    Xor(Box<Expr>, Box<Expr>),
    /// Position-wise threshold vote: bit `i` of the result is 1 iff at
    /// least `k` of the children have bit `i` set (the mlsense dynamic-
    /// sensing primitive; MCFlash-style "≥ K of the activated cells").
    /// [`Expr::threshold`] collapses `k = 1` to OR and `k = n` to AND,
    /// so constructor-built trees hold `1 < k < n` here.
    Threshold {
        /// Minimum number of children that must be 1 at a bit position.
        k: usize,
        /// The voting sub-expressions (at least two).
        children: Vec<Expr>,
    },
    /// Position-wise majority vote over the children — equivalent to
    /// [`Expr::Threshold`] at `k = ⌈n/2⌉` (and normalized to exactly
    /// that threshold by [`Expr::to_nnf`]), kept first-class so HDC-style
    /// bundling reads as what it is.
    Majority(Vec<Expr>),
}

impl Expr {
    /// An operand leaf.
    pub fn var(id: OperandId) -> Self {
        Expr::Operand(id)
    }

    /// Bitwise NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Self {
        Expr::Not(Box::new(e))
    }

    /// Bitwise AND of the given sub-expressions. A single sub-expression
    /// is returned unchanged (AND of one thing is that thing).
    ///
    /// # Panics
    ///
    /// Panics if `es` is empty.
    pub fn and(es: Vec<Expr>) -> Self {
        assert!(!es.is_empty(), "AND needs at least one sub-expression");
        if es.len() == 1 {
            return es.into_iter().next().unwrap();
        }
        Expr::And(es)
    }

    /// Bitwise OR of the given sub-expressions. A single sub-expression
    /// is returned unchanged (OR of one thing is that thing).
    ///
    /// # Panics
    ///
    /// Panics if `es` is empty.
    pub fn or(es: Vec<Expr>) -> Self {
        assert!(!es.is_empty(), "OR needs at least one sub-expression");
        if es.len() == 1 {
            return es.into_iter().next().unwrap();
        }
        Expr::Or(es)
    }

    /// Position-wise threshold vote: at least `k` of `es` are 1. Follows
    /// the same degenerate-case contract as [`Expr::and`]/[`Expr::or`]:
    /// `k = 1` collapses to OR, `k = n` to AND (and a single
    /// sub-expression is therefore returned unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `es` is empty, `k` is zero, or `k` exceeds the number of
    /// sub-expressions.
    pub fn threshold(k: usize, es: Vec<Expr>) -> Self {
        assert!(!es.is_empty(), "threshold needs at least one sub-expression");
        assert!(k >= 1, "threshold k must be at least 1");
        assert!(k <= es.len(), "threshold k={k} exceeds the {} sub-expressions", es.len());
        if k == 1 {
            Expr::or(es)
        } else if k == es.len() {
            Expr::and(es)
        } else {
            Expr::Threshold { k, children: es }
        }
    }

    /// Position-wise threshold over operand ids.
    ///
    /// # Panics
    ///
    /// Same contract as [`Expr::threshold`].
    pub fn threshold_vars<I: IntoIterator<Item = OperandId>>(k: usize, ids: I) -> Self {
        Expr::threshold(k, ids.into_iter().map(Expr::var).collect())
    }

    /// Position-wise majority vote (threshold at `⌈n/2⌉`, the HDC
    /// bundling operation). Degenerate cases collapse like
    /// [`Expr::threshold`]: one sub-expression is returned unchanged and
    /// two become an OR (`⌈2/2⌉ = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `es` is empty.
    pub fn majority(es: Vec<Expr>) -> Self {
        assert!(!es.is_empty(), "majority needs at least one sub-expression");
        if es.len() <= 2 {
            return Expr::threshold(es.len().div_ceil(2), es);
        }
        Expr::Majority(es)
    }

    /// Position-wise majority over operand ids.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty.
    pub fn majority_vars<I: IntoIterator<Item = OperandId>>(ids: I) -> Self {
        Expr::majority(ids.into_iter().map(Expr::var).collect())
    }

    /// Bitwise AND over operand ids (the common multi-operand case).
    pub fn and_vars<I: IntoIterator<Item = OperandId>>(ids: I) -> Self {
        Expr::and(ids.into_iter().map(Expr::var).collect())
    }

    /// Bitwise OR over operand ids.
    pub fn or_vars<I: IntoIterator<Item = OperandId>>(ids: I) -> Self {
        Expr::or(ids.into_iter().map(Expr::var).collect())
    }

    /// Bitwise XOR.
    pub fn xor(a: Expr, b: Expr) -> Self {
        Expr::Xor(Box::new(a), Box::new(b))
    }

    /// Bitwise NAND.
    pub fn nand(es: Vec<Expr>) -> Self {
        Expr::not(Expr::and(es))
    }

    /// Bitwise NOR.
    pub fn nor(es: Vec<Expr>) -> Self {
        Expr::not(Expr::or(es))
    }

    /// Bitwise XNOR (Eq. 2: `A XNOR B = (NOT A) XOR B`).
    pub fn xnor(a: Expr, b: Expr) -> Self {
        Expr::not(Expr::xor(a, b))
    }

    /// All operand ids referenced by the expression, ascending.
    pub fn operands(&self) -> BTreeSet<OperandId> {
        let mut out = BTreeSet::new();
        self.collect_operands(&mut out);
        out
    }

    fn collect_operands(&self, out: &mut BTreeSet<OperandId>) {
        match self {
            Expr::Operand(id) => {
                out.insert(*id);
            }
            Expr::Not(e) => e.collect_operands(out),
            Expr::And(es)
            | Expr::Or(es)
            | Expr::Threshold { children: es, .. }
            | Expr::Majority(es) => {
                for e in es {
                    e.collect_operands(out);
                }
            }
            Expr::Xor(a, b) => {
                a.collect_operands(out);
                b.collect_operands(out);
            }
        }
    }

    /// Evaluates the expression over bit vectors (ground truth).
    ///
    /// # Panics
    ///
    /// Panics if `lookup` returns vectors of different lengths.
    pub fn eval(&self, lookup: &impl Fn(OperandId) -> BitVec) -> BitVec {
        match self {
            Expr::Operand(id) => lookup(*id),
            Expr::Not(e) => e.eval(lookup).not(),
            Expr::And(es) => {
                let mut acc = es[0].eval(lookup);
                for e in &es[1..] {
                    acc.and_assign(&e.eval(lookup));
                }
                acc
            }
            Expr::Or(es) => {
                let mut acc = es[0].eval(lookup);
                for e in &es[1..] {
                    acc.or_assign(&e.eval(lookup));
                }
                acc
            }
            Expr::Xor(a, b) => a.eval(lookup).xor(&b.eval(lookup)),
            Expr::Threshold { k, children } => {
                threshold_eval(*k, children.iter().map(|c| c.eval(lookup)).collect())
            }
            Expr::Majority(children) => threshold_eval(
                children.len().div_ceil(2),
                children.iter().map(|c| c.eval(lookup)).collect(),
            ),
        }
    }

    /// Negation-normal form: `Not` pushed down to the leaves via
    /// De Morgan's laws, nested `And`/`Or` flattened, `Xor` rewritten
    /// with its complement identity (`NOT (a XOR b) = (NOT a) XOR b`).
    pub fn to_nnf(&self) -> Nnf {
        nnf_of(self, false)
    }

    /// Total number of operand *references* (a leaf used twice counts
    /// twice) — the paper's "number of operands" of a bulk operation.
    pub fn operand_refs(&self) -> usize {
        match self {
            Expr::Operand(_) => 1,
            Expr::Not(e) => e.operand_refs(),
            Expr::And(es)
            | Expr::Or(es)
            | Expr::Threshold { children: es, .. }
            | Expr::Majority(es) => es.iter().map(Expr::operand_refs).sum(),
            Expr::Xor(a, b) => a.operand_refs() + b.operand_refs(),
        }
    }
}

/// `a & b` builds a flattened n-ary [`Expr::And`] — together with
/// [`BitOr`](std::ops::BitOr), [`BitXor`](std::ops::BitXor) and
/// [`Not`](std::ops::Not) this gives expressions their natural spelling:
/// `(a & b) | !c`.
impl std::ops::BitAnd for Expr {
    type Output = Expr;

    fn bitand(self, rhs: Expr) -> Expr {
        let mut children = match self {
            Expr::And(es) => es,
            other => vec![other],
        };
        match rhs {
            Expr::And(es) => children.extend(es),
            other => children.push(other),
        }
        Expr::And(children)
    }
}

/// `a | b` builds a flattened n-ary [`Expr::Or`].
impl std::ops::BitOr for Expr {
    type Output = Expr;

    fn bitor(self, rhs: Expr) -> Expr {
        let mut children = match self {
            Expr::Or(es) => es,
            other => vec![other],
        };
        match rhs {
            Expr::Or(es) => children.extend(es),
            other => children.push(other),
        }
        Expr::Or(children)
    }
}

/// `a ^ b` is [`Expr::xor`] (binary, like the chip's XOR logic).
impl std::ops::BitXor for Expr {
    type Output = Expr;

    fn bitxor(self, rhs: Expr) -> Expr {
        Expr::xor(self, rhs)
    }
}

/// `!a` is [`Expr::not`], collapsing double negation.
impl std::ops::Not for Expr {
    type Output = Expr;

    fn not(self) -> Expr {
        match self {
            Expr::Not(inner) => *inner,
            other => Expr::Not(Box::new(other)),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Operand(id) => write!(f, "v{id}"),
            Expr::Not(e) => write!(f, "!{e}"),
            Expr::And(es) => write_joined(f, es, " & "),
            Expr::Or(es) => write_joined(f, es, " | "),
            Expr::Xor(a, b) => write!(f, "({a} ^ {b})"),
            Expr::Threshold { k, children } => {
                write!(f, "TH{k}")?;
                write_joined(f, children, ", ")
            }
            Expr::Majority(children) => {
                write!(f, "MAJ")?;
                write_joined(f, children, ", ")
            }
        }
    }
}

/// Ground-truth per-position vote: bit `i` of the result is 1 iff at
/// least `k` of `votes` have bit `i` set. Deliberately scalar — the
/// word-parallel bit-sliced counter lives in `fc_nand::mlsense` and is
/// property-tested against exactly this.
fn threshold_eval(k: usize, votes: Vec<BitVec>) -> BitVec {
    BitVec::from_fn(votes[0].len(), |i| votes.iter().filter(|v| v.get(i)).count() >= k)
}

fn write_joined(f: &mut fmt::Formatter<'_>, es: &[Expr], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, e) in es.iter().enumerate() {
        if i > 0 {
            write!(f, "{sep}")?;
        }
        write!(f, "{e}")?;
    }
    write!(f, ")")
}

/// A literal: an operand, possibly complemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// The operand.
    pub id: OperandId,
    /// Whether the literal is the operand's complement.
    pub negated: bool,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "!v{}", self.id)
        } else {
            write!(f, "v{}", self.id)
        }
    }
}

/// Negation-normal form with flattened n-ary connectives.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Nnf {
    /// A (possibly negated) operand.
    Literal(Literal),
    /// AND over two or more children.
    And(Vec<Nnf>),
    /// OR over two or more children.
    Or(Vec<Nnf>),
    /// XOR of two children (negation hoisted onto the left child).
    Xor(Box<Nnf>, Box<Nnf>),
    /// Threshold vote over three or more children with `1 < k < n`
    /// (degenerate thresholds collapse to [`Nnf::Or`]/[`Nnf::And`]
    /// during normalization; `Expr::Majority` normalizes to a threshold
    /// at `k = ⌈n/2⌉`). Negation commutes through the vote as
    /// `NOT THkₙ(c…) = TH(n−k+1)ₙ(!c…)`, so no `Not` node is needed.
    Threshold {
        /// Minimum number of children that must be 1 at a bit position.
        k: usize,
        /// The voting children (multiplicity is semantic: a child
        /// appearing twice casts two votes, so no dedup happens here).
        children: Vec<Nnf>,
    },
}

impl Nnf {
    /// All operand ids referenced by the normalized expression, ascending.
    pub fn operands(&self) -> BTreeSet<OperandId> {
        let mut out = BTreeSet::new();
        self.collect_operands(&mut out);
        out
    }

    fn collect_operands(&self, out: &mut BTreeSet<OperandId>) {
        match self {
            Nnf::Literal(l) => {
                out.insert(l.id);
            }
            Nnf::And(cs) | Nnf::Or(cs) | Nnf::Threshold { children: cs, .. } => {
                for c in cs {
                    c.collect_operands(out);
                }
            }
            Nnf::Xor(a, b) => {
                a.collect_operands(out);
                b.collect_operands(out);
            }
        }
    }

    /// Evaluates the NNF (used by property tests to check normalization
    /// preserves semantics).
    pub fn eval(&self, lookup: &impl Fn(OperandId) -> BitVec) -> BitVec {
        match self {
            Nnf::Literal(l) => {
                let v = lookup(l.id);
                if l.negated {
                    v.not()
                } else {
                    v
                }
            }
            Nnf::And(cs) => {
                let mut acc = cs[0].eval(lookup);
                for c in &cs[1..] {
                    acc.and_assign(&c.eval(lookup));
                }
                acc
            }
            Nnf::Or(cs) => {
                let mut acc = cs[0].eval(lookup);
                for c in &cs[1..] {
                    acc.or_assign(&c.eval(lookup));
                }
                acc
            }
            Nnf::Xor(a, b) => a.eval(lookup).xor(&b.eval(lookup)),
            Nnf::Threshold { k, children } => {
                threshold_eval(*k, children.iter().map(|c| c.eval(lookup)).collect())
            }
        }
    }
}

fn nnf_of(e: &Expr, negate: bool) -> Nnf {
    match e {
        Expr::Operand(id) => Nnf::Literal(Literal { id: *id, negated: negate }),
        Expr::Not(inner) => nnf_of(inner, !negate),
        Expr::And(es) => {
            let children: Vec<Nnf> = es.iter().map(|c| nnf_of(c, negate)).collect();
            if negate {
                flatten_or(children)
            } else {
                flatten_and(children)
            }
        }
        Expr::Or(es) => {
            let children: Vec<Nnf> = es.iter().map(|c| nnf_of(c, negate)).collect();
            if negate {
                flatten_and(children)
            } else {
                flatten_or(children)
            }
        }
        Expr::Xor(a, b) => {
            // NOT (a ^ b) == (NOT a) ^ b: hoist negation onto `a`.
            let left = nnf_of(a, negate);
            let right = nnf_of(b, false);
            Nnf::Xor(Box::new(left), Box::new(right))
        }
        Expr::Threshold { k, children } => nnf_threshold(*k, children, negate),
        Expr::Majority(children) => nnf_threshold(children.len().div_ceil(2), children, negate),
    }
}

/// Normalizes a threshold node, pushing negation through the vote:
/// fewer than `k` ones means at least `n − k + 1` zeros, so
/// `NOT THkₙ(c…) = TH(n−k+1)ₙ(!c…)`. The (possibly flipped) threshold
/// then collapses to OR at `k = 1` and AND at `k = n`, keeping
/// [`Nnf::Threshold`] strictly between the degenerate forms.
fn nnf_threshold(k: usize, children: &[Expr], negate: bool) -> Nnf {
    let n = children.len();
    let k = if negate { n - k + 1 } else { k };
    let cs: Vec<Nnf> = children.iter().map(|c| nnf_of(c, negate)).collect();
    if k == 1 {
        flatten_or(cs)
    } else if k == n {
        flatten_and(cs)
    } else {
        Nnf::Threshold { k, children: cs }
    }
}

pub(crate) fn flatten_and(children: Vec<Nnf>) -> Nnf {
    let mut flat = Vec::with_capacity(children.len());
    for c in children {
        match c {
            Nnf::And(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    if flat.len() == 1 {
        flat.pop().unwrap()
    } else {
        Nnf::And(flat)
    }
}

pub(crate) fn flatten_or(children: Vec<Nnf>) -> Nnf {
    let mut flat = Vec::with_capacity(children.len());
    for c in children {
        match c {
            Nnf::Or(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    if flat.len() == 1 {
        flat.pop().unwrap()
    } else {
        Nnf::Or(flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize, bits: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| BitVec::random(bits, &mut rng)).collect()
    }

    #[test]
    fn eval_matches_bitvec_ops() {
        let t = table(4, 256, 1);
        let lookup = |i: usize| t[i].clone();
        let e = Expr::and(vec![Expr::var(0), Expr::or_vars([1, 2]), Expr::not(Expr::var(3))]);
        let expect = t[0].and(&t[1].or(&t[2])).and(&t[3].not());
        assert_eq!(e.eval(&lookup), expect);
    }

    #[test]
    fn nand_nor_xnor_definitions() {
        let t = table(2, 128, 2);
        let lookup = |i: usize| t[i].clone();
        assert_eq!(
            Expr::nand(vec![Expr::var(0), Expr::var(1)]).eval(&lookup),
            t[0].and(&t[1]).not()
        );
        assert_eq!(Expr::nor(vec![Expr::var(0), Expr::var(1)]).eval(&lookup), t[0].or(&t[1]).not());
        assert_eq!(Expr::xnor(Expr::var(0), Expr::var(1)).eval(&lookup), t[0].xor(&t[1]).not());
    }

    #[test]
    fn nnf_pushes_negation_to_leaves() {
        // NOT (a & (b | !c)) → !a | (!b & c)
        let e = Expr::not(Expr::and(vec![
            Expr::var(0),
            Expr::or(vec![Expr::var(1), Expr::not(Expr::var(2))]),
        ]));
        let nnf = e.to_nnf();
        match &nnf {
            Nnf::Or(cs) => {
                assert_eq!(cs.len(), 2);
                assert_eq!(cs[0], Nnf::Literal(Literal { id: 0, negated: true }));
                match &cs[1] {
                    Nnf::And(inner) => {
                        assert_eq!(inner[0], Nnf::Literal(Literal { id: 1, negated: true }));
                        assert_eq!(inner[1], Nnf::Literal(Literal { id: 2, negated: false }));
                    }
                    other => panic!("expected And, got {other:?}"),
                }
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn nnf_flattens_nested_connectives() {
        let e = Expr::and(vec![
            Expr::and(vec![Expr::var(0), Expr::var(1)]),
            Expr::and(vec![Expr::var(2), Expr::and(vec![Expr::var(3), Expr::var(4)])]),
        ]);
        match e.to_nnf() {
            Nnf::And(cs) => assert_eq!(cs.len(), 5),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn nnf_preserves_semantics() {
        let t = table(5, 512, 3);
        let lookup = |i: usize| t[i].clone();
        let exprs = vec![
            Expr::not(Expr::and_vars([0, 1, 2])),
            Expr::nor(vec![Expr::and_vars([0, 1]), Expr::var(2), Expr::not(Expr::var(3))]),
            Expr::not(Expr::xor(Expr::var(0), Expr::and_vars([1, 2]))),
            Expr::and(vec![
                Expr::or(vec![Expr::var(0), Expr::nand(vec![Expr::var(1), Expr::var(2)])]),
                Expr::not(Expr::or_vars([3, 4])),
            ]),
        ];
        for e in exprs {
            assert_eq!(e.to_nnf().eval(&lookup), e.eval(&lookup), "expr {e}");
        }
    }

    #[test]
    fn operand_collection_and_counts() {
        let e = Expr::and(vec![Expr::var(3), Expr::or_vars([1, 3]), Expr::not(Expr::var(0))]);
        assert_eq!(e.operands().into_iter().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(e.operand_refs(), 4);
    }

    #[test]
    fn single_child_connectives_collapse() {
        assert_eq!(Expr::and(vec![Expr::var(7)]), Expr::var(7));
        assert_eq!(Expr::or(vec![Expr::var(7)]), Expr::var(7));
    }

    #[test]
    fn operator_overloads_build_flattened_trees() {
        let t = table(4, 128, 10);
        let lookup = |i: usize| t[i].clone();
        let e = (Expr::var(0) & Expr::var(1) & Expr::var(2)) | !Expr::var(3);
        assert_eq!(
            e,
            Expr::or(vec![Expr::and_vars([0, 1, 2]), Expr::not(Expr::var(3))]),
            "& and | flatten into the n-ary constructors"
        );
        assert_eq!(e.eval(&lookup), t[0].and(&t[1]).and(&t[2]).or(&t[3].not()));
        assert_eq!((Expr::var(0) ^ Expr::var(1)).eval(&lookup), t[0].xor(&t[1]));
        assert_eq!(!!Expr::var(2), Expr::var(2), "double negation collapses");
    }

    #[test]
    fn nnf_operand_collection() {
        let e = Expr::nor(vec![Expr::var(5), Expr::and_vars([1, 3])]);
        assert_eq!(e.to_nnf().operands().into_iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn display_round() {
        let e = Expr::or(vec![Expr::and_vars([0, 1]), Expr::not(Expr::var(2))]);
        assert_eq!(e.to_string(), "((v0 & v1) | !v2)");
        assert_eq!(Literal { id: 4, negated: true }.to_string(), "!v4");
        assert_eq!(Expr::threshold_vars(2, [0, 1, 2]).to_string(), "TH2(v0, v1, v2)");
        assert_eq!(Expr::majority_vars([0, 1, 2]).to_string(), "MAJ(v0, v1, v2)");
    }

    #[test]
    fn threshold_eval_counts_votes() {
        let t = table(5, 512, 20);
        let lookup = |i: usize| t[i].clone();
        for k in 1..=5 {
            let e = Expr::threshold_vars(k, 0..5);
            let got = e.eval(&lookup);
            for i in 0..512 {
                let votes = (0..5).filter(|&j| t[j].get(i)).count();
                assert_eq!(got.get(i), votes >= k, "k={k} bit {i} ({votes} votes)");
            }
        }
    }

    #[test]
    fn majority_is_threshold_at_half() {
        let t = table(9, 256, 21);
        let lookup = |i: usize| t[i].clone();
        let maj = Expr::majority_vars(0..9);
        assert_eq!(maj.eval(&lookup), Expr::threshold_vars(5, 0..9).eval(&lookup));
        assert_eq!(maj.to_nnf(), Expr::threshold_vars(5, 0..9).to_nnf());
    }

    #[test]
    fn threshold_degenerate_cases_collapse() {
        assert_eq!(Expr::threshold_vars(1, [0, 1, 2]), Expr::or_vars([0, 1, 2]));
        assert_eq!(Expr::threshold_vars(3, [0, 1, 2]), Expr::and_vars([0, 1, 2]));
        assert_eq!(Expr::threshold_vars(1, [4]), Expr::var(4));
        assert_eq!(Expr::majority_vars([4]), Expr::var(4));
        assert_eq!(Expr::majority_vars([0, 1]), Expr::or_vars([0, 1]));
    }

    #[test]
    fn threshold_nnf_duality_preserves_semantics() {
        let t = table(7, 512, 22);
        let lookup = |i: usize| t[i].clone();
        let exprs = vec![
            Expr::not(Expr::threshold_vars(3, 0..7)),
            Expr::not(Expr::majority_vars(0..5)),
            Expr::threshold(2, vec![Expr::not(Expr::var(0)), Expr::and_vars([1, 2]), Expr::var(3)]),
            Expr::not(Expr::threshold(
                2,
                vec![Expr::var(0), Expr::not(Expr::majority_vars(1..6)), Expr::var(6)],
            )),
            // NOT TH2₃ flips to TH2₃ over negated children (n−k+1 = 2).
            Expr::nor(vec![Expr::threshold_vars(2, 0..3), Expr::var(4)]),
        ];
        for e in exprs {
            assert_eq!(e.to_nnf().eval(&lookup), e.eval(&lookup), "expr {e}");
        }
    }

    #[test]
    fn threshold_nnf_duality_flips_k() {
        // NOT TH4₅ = TH2₅ over negated literals.
        match Expr::not(Expr::threshold_vars(4, 0..5)).to_nnf() {
            Nnf::Threshold { k, children } => {
                assert_eq!(k, 2);
                assert_eq!(children.len(), 5);
                assert!(children
                    .iter()
                    .all(|c| matches!(c, Nnf::Literal(Literal { negated: true, .. }))));
            }
            other => panic!("expected Threshold, got {other:?}"),
        }
        // A hand-built degenerate threshold (bypassing the constructor)
        // still collapses during normalization: NOT TH1₃ flips to
        // k' = n − 1 + 1 = 3 = n, i.e. AND over negated literals.
        let raw = Expr::Not(Box::new(Expr::Threshold {
            k: 1,
            children: vec![Expr::var(0), Expr::var(1), Expr::var(2)],
        }));
        match raw.to_nnf() {
            Nnf::And(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn threshold_multiplicity_counts_votes() {
        // The same operand twice casts two votes: TH2(v0, v0, v1) = v0 | (v0 & v1) = v0.
        let t = table(2, 256, 23);
        let lookup = |i: usize| t[i].clone();
        let e = Expr::threshold(2, vec![Expr::var(0), Expr::var(0), Expr::var(1)]);
        assert_eq!(e.eval(&lookup), t[0]);
        assert_eq!(e.to_nnf().eval(&lookup), t[0]);
    }

    #[test]
    fn threshold_operand_collection() {
        let e = Expr::threshold(2, vec![Expr::var(5), Expr::not(Expr::var(1)), Expr::var(3)]);
        assert_eq!(e.operands().into_iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(e.operand_refs(), 3);
        assert_eq!(e.to_nnf().operands().into_iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        let m = Expr::majority_vars([0, 2, 2]);
        assert_eq!(m.operands().into_iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(m.operand_refs(), 3);
    }

    #[test]
    #[should_panic(expected = "AND needs at least one")]
    fn empty_and_panics() {
        let _ = Expr::and(vec![]);
    }

    #[test]
    #[should_panic(expected = "OR needs at least one")]
    fn empty_or_panics() {
        let _ = Expr::or(vec![]);
    }

    #[test]
    #[should_panic(expected = "threshold needs at least one")]
    fn empty_threshold_panics() {
        let _ = Expr::threshold(1, vec![]);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_threshold_panics() {
        let _ = Expr::threshold_vars(0, [0, 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds the 2 sub-expressions")]
    fn oversized_k_threshold_panics() {
        let _ = Expr::threshold_vars(3, [0, 1]);
    }

    #[test]
    #[should_panic(expected = "majority needs at least one")]
    fn empty_majority_panics() {
        let _ = Expr::majority(vec![]);
    }
}
